"""Clock tree nodes and the ClockTree container."""

import pytest

from repro.geom import Point
from repro.tech import cts_buffer_library
from repro.tree.clocktree import ClockTree, tree_edges
from repro.tree.nodes import (
    NodeKind,
    make_buffer,
    make_merge,
    make_sink,
    make_source,
    make_steiner,
)
from repro.tree.validate import TreeInvariantError, validate_tree


@pytest.fixture()
def buf20():
    return cts_buffer_library()["BUF20X"]


def small_tree(buf20):
    """source -> buffer -> merge -> (sinkA, buffer -> sinkB)"""
    sink_a = make_sink(Point(0, 0), 5e-15, "sA")
    sink_b = make_sink(Point(2000, 0), 6e-15, "sB")
    buf_b = make_buffer(Point(1500, 0), buf20)
    buf_b.attach(sink_b)
    merge = make_merge(Point(1000, 0))
    merge.attach(sink_a)
    merge.attach(buf_b)
    root_buf = make_buffer(Point(1000, 100), buf20)
    root_buf.attach(merge)
    return ClockTree.from_network(Point(1000, 120), root_buf)


class TestNodeConstruction:
    def test_kinds_enforce_payload(self, buf20):
        from repro.tree.nodes import TreeNode

        with pytest.raises(ValueError):
            TreeNode(NodeKind.MERGE, Point(0, 0), buffer=buf20)  # no buffer here
        with pytest.raises(ValueError):
            TreeNode(NodeKind.BUFFER, Point(0, 0))  # buffer type required
        with pytest.raises(ValueError):
            TreeNode(NodeKind.MERGE, Point(0, 0), cap=1e-15)  # no sink cap here

    def test_auto_names_unique(self):
        a = make_merge(Point(0, 0))
        b = make_merge(Point(0, 0))
        assert a.name != b.name

    def test_attach_default_wire_is_manhattan(self, buf20):
        parent = make_merge(Point(0, 0))
        child = make_sink(Point(30, 40), 1e-15)
        parent.attach(child)
        assert child.wire_to_parent == 70

    def test_attach_rejects_short_wire(self):
        parent = make_merge(Point(0, 0))
        child = make_sink(Point(30, 40), 1e-15)
        with pytest.raises(ValueError):
            parent.attach(child, wire_length=10.0)

    def test_attach_allows_snaked_wire(self):
        parent = make_merge(Point(0, 0))
        child = make_sink(Point(30, 40), 1e-15)
        parent.attach(child, wire_length=500.0)
        assert child.wire_to_parent == 500.0

    def test_double_attach_rejected(self):
        parent = make_merge(Point(0, 0))
        child = make_sink(Point(1, 1), 1e-15)
        parent.attach(child)
        with pytest.raises(ValueError):
            make_merge(Point(5, 5)).attach(child)

    def test_detach_and_reattach(self):
        parent = make_merge(Point(0, 0))
        child = make_sink(Point(1, 1), 1e-15)
        parent.attach(child)
        child.detach()
        assert child.parent is None
        assert child not in parent.children
        make_merge(Point(2, 2)).attach(child)


class TestTraversal:
    def test_walk_parents_first(self, buf20):
        tree = small_tree(buf20)
        seen = set()
        for node in tree.root.walk():
            if node.parent is not None:
                assert node.parent.id in seen
            seen.add(node.id)

    def test_sinks_and_buffers(self, buf20):
        tree = small_tree(buf20)
        assert {s.name for s in tree.sinks()} == {"sA", "sB"}
        assert len(tree.buffers()) == 2

    def test_downstream_wirelength(self, buf20):
        tree = small_tree(buf20)
        merge = tree.node_by_name("sA").parent
        assert merge.downstream_wirelength() == pytest.approx(
            1000 + 500 + 500
        )

    def test_unbuffered_cap_stops_at_buffers(self, buf20, tech):
        tree = small_tree(buf20)
        merge = tree.node_by_name("sA").parent
        cap = merge.unbuffered_cap(tech.wire.capacitance_per_unit)
        expected = (
            tech.wire.capacitance_per_unit * (1000 + 500)  # to sA and to buf
            + 5e-15  # sink A
        )
        assert cap == pytest.approx(expected)

    def test_root_helper(self, buf20):
        tree = small_tree(buf20)
        assert tree.node_by_name("sB").root() is tree.root


class TestClockTree:
    def test_requires_source_root(self, buf20):
        with pytest.raises(ValueError):
            ClockTree(make_merge(Point(0, 0)))

    def test_stats(self, buf20):
        tree = small_tree(buf20)
        stats = tree.stats()
        assert stats["n_sinks"] == 2
        assert stats["n_buffers"] == 2
        assert stats["buffers"] == {"BUF20X": 2}
        assert stats["depth"] >= 3

    def test_total_wirelength(self, buf20):
        tree = small_tree(buf20)
        assert tree.total_wirelength() == pytest.approx(1000 + 500 + 500 + 100 + 20)

    def test_stats_matches_per_statistic_helpers(self, buf20):
        tree = small_tree(buf20)
        stats = tree.stats()
        assert stats["n_sinks"] == len(tree.sinks())
        assert stats["n_buffers"] == tree.buffer_count()
        assert stats["n_nodes"] == len(tree.nodes())
        assert stats["depth"] == tree.depth()
        assert stats["buffers"] == tree.buffer_histogram()
        # Same walk order, so the float sum is bit-identical, not approx.
        assert stats["wirelength"] == tree.total_wirelength()

    def test_node_by_name_missing(self, buf20):
        with pytest.raises(KeyError):
            small_tree(buf20).node_by_name("nope")

    def test_node_by_name_index_survives_surgery(self, buf20):
        tree = small_tree(buf20)
        sink_a = tree.node_by_name("sA")  # builds the lazy index
        assert tree.node_by_name("sA") is sink_a
        # Rename: the stale entry must not serve the old name, and the
        # rebuilt index must find the new one.
        sink_a.name = "sA2"
        with pytest.raises(KeyError):
            tree.node_by_name("sA")
        assert tree.node_by_name("sA2") is sink_a
        # Detach: a cached node that left the tree must not be served.
        buf_b = tree.node_by_name("sB").parent
        tree.node_by_name(buf_b.name)  # cache the soon-detached branch
        buf_b.detach()
        with pytest.raises(KeyError):
            tree.node_by_name("sB")
        # Reattach elsewhere: the rebuild sees it again.
        sink_a.parent.attach(buf_b)
        assert tree.node_by_name("sB") is buf_b.children[0]

    def test_tree_edges(self, buf20):
        tree = small_tree(buf20)
        edges = tree_edges(tree.root)
        assert len(edges) == len(tree.nodes()) - 1
        for edge in edges:
            assert edge.child.parent is edge.parent


class TestValidate:
    def test_valid_tree_passes(self, buf20):
        validate_tree(small_tree(buf20).root, expect_source_root=True)

    def test_merge_with_one_child_fails(self):
        merge = make_merge(Point(0, 0))
        merge.attach(make_sink(Point(1, 1), 1e-15))
        with pytest.raises(TreeInvariantError):
            validate_tree(merge)

    def test_buffer_with_two_children_fails(self, buf20):
        buf = make_buffer(Point(0, 0), buf20)
        buf.attach(make_sink(Point(1, 0), 1e-15))
        child2 = make_sink(Point(0, 1), 1e-15)
        child2.parent = buf
        buf.children.append(child2)
        with pytest.raises(TreeInvariantError):
            validate_tree(buf)

    def test_sink_with_zero_cap_fails(self):
        merge = make_merge(Point(0, 0))
        bad = make_sink(Point(1, 1), 1e-15)
        bad.cap = 0.0
        merge.attach(bad)
        merge.attach(make_sink(Point(2, 2), 1e-15))
        with pytest.raises(TreeInvariantError):
            validate_tree(merge)

    def test_inconsistent_parent_link_fails(self):
        a = make_merge(Point(0, 0))
        s1 = make_sink(Point(1, 1), 1e-15)
        s2 = make_sink(Point(2, 2), 1e-15)
        a.attach(s1)
        a.attach(s2)
        s1.parent = s2  # corrupt
        with pytest.raises(TreeInvariantError):
            validate_tree(a)

    def test_short_wire_fails(self):
        a = make_merge(Point(0, 0))
        s1 = make_sink(Point(100, 0), 1e-15)
        s2 = make_sink(Point(0, 100), 1e-15)
        a.attach(s1)
        a.attach(s2)
        s1.wire_to_parent = 10.0  # corrupt: shorter than distance
        with pytest.raises(TreeInvariantError):
            validate_tree(a)

    def test_steiner_pass_through_allowed(self, buf20):
        root = make_buffer(Point(0, 0), buf20)
        bend = make_steiner(Point(100, 0))
        root.attach(bend)
        bend.attach(make_sink(Point(100, 100), 1e-15))
        validate_tree(root)
