"""Shared-window routing subsystem: equivalence and determinism.

The contract of :mod:`repro.core.grid_cache`:

- synthesis through the shared-window path (level tile cache + cross-pair
  batcher) is byte-identical — tree signature and merge stats — to the
  per-pair fallback, on blockage, H-structure and snaking scenarios,
  serial and under the worker pool;
- routing results are invariant to how a level is split into batches
  (what makes pooled execution compose);
- tiles are immutable and shared: equal window keys are served the same
  grid, and the documented ``nearest_free`` fallback scan is
  deterministic no matter which pair first touched the tile.
"""

import numpy as np
import pytest

from repro.core.cts import AggressiveBufferedCTS
from repro.core.grid_cache import GridCache, route_level
from repro.core.maze_router import MazeGrid
from repro.core.options import CTSOptions
from repro.core.routing_common import RouteTerminal, slew_limited_length
from repro.evalx.perfstats import scaling_scenario
from repro.geom.bbox import BBox
from repro.geom.point import Point
from repro.tree.export import tree_signature
from repro.tree.nodes import make_sink, peek_node_id


def synthesize_signature(sinks, source, blockages, **option_kwargs):
    cts = AggressiveBufferedCTS(
        options=CTSOptions(**option_kwargs),
        blockages=blockages or None,
    )
    base = peek_node_id()
    result = cts.synthesize(sinks, source)
    return tree_signature(result.tree, base), result


def snaking_scenario():
    """A tight cluster plus one far-flung sink: the top merge's delay
    imbalance exceeds what routing absorbs, forcing balance snaking."""
    gen = np.random.default_rng(7)
    sinks = [
        (Point(float(x), float(y)), 8e-15)
        for x, y in gen.uniform(0, 3000, (24, 2))
    ]
    sinks.append((Point(42000.0, 38000.0), 8e-15))
    blockages = [BBox(15000, 5000, 22000, 30000)]
    return sinks, Point(2000.0, 2000.0), blockages


class TestSharedEqualsPerPair:
    def test_blockage_scenario_serial(self):
        sinks, source, blockages = scaling_scenario(120, True)
        shared_sig, shared = synthesize_signature(
            sinks, source, blockages, workers=0, shared_windows=True
        )
        per_pair_sig, per_pair = synthesize_signature(
            sinks, source, blockages, workers=0, shared_windows=False
        )
        assert shared_sig == per_pair_sig
        assert shared.merge_stats == per_pair.merge_stats
        assert shared.levels == per_pair.levels
        # the shared subsystem actually engaged (and the fallback did not)
        assert shared.route_sharing["windows_served"] > 0
        assert per_pair.route_sharing["windows_served"] == 0

    def test_blockage_scenario_pooled(self):
        """Shared windows under the PR 2 worker pool: worker batches route
        through batch-local caches, still identical to the serial
        per-pair fallback."""
        sinks, source, blockages = scaling_scenario(120, True)
        pooled_sig, pooled = synthesize_signature(
            sinks, source, blockages, workers=2, shared_windows=True
        )
        per_pair_sig, __ = synthesize_signature(
            sinks, source, blockages, workers=0, shared_windows=False
        )
        assert pooled_sig == per_pair_sig
        assert pooled.levels > 0

    def test_hstructure_scenario(self):
        """H-structure correction re-routes each pair once per candidate
        pairing — the flow where equal window keys genuinely recur."""
        sinks, source, blockages = scaling_scenario(60, True)
        shared_sig, shared = synthesize_signature(
            sinks,
            source,
            blockages,
            workers=0,
            shared_windows=True,
            hstructure="correct",
        )
        per_pair_sig, per_pair = synthesize_signature(
            sinks,
            source,
            blockages,
            workers=0,
            shared_windows=False,
            hstructure="correct",
        )
        assert shared_sig == per_pair_sig
        assert shared.merge_stats == per_pair.merge_stats
        assert shared.route_sharing["tiles_reused"] > 0

    def test_snaking_scenario(self):
        sinks, source, blockages = snaking_scenario()
        shared_sig, shared = synthesize_signature(
            sinks, source, blockages, workers=0, shared_windows=True
        )
        per_pair_sig, per_pair = synthesize_signature(
            sinks, source, blockages, workers=0, shared_windows=False
        )
        assert shared.merge_stats.n_snaked > 0, "scenario must exercise snaking"
        assert shared_sig == per_pair_sig
        assert shared.merge_stats == per_pair.merge_stats


class TestBatchInvariance:
    """route_level results do not depend on how pairs are grouped."""

    @pytest.fixture(scope="class")
    def routed(self, library):
        options = CTSOptions(router="maze")
        stage_length = slew_limited_length(library, options.target_slew)
        blockages = [
            BBox(4000, -2000, 5000, 1200),
            BBox(9000, 2000, 10500, 9000),
        ]
        gen = np.random.default_rng(11)

        def free_point():
            while True:
                x, y = gen.uniform(0, 14000, 2)
                p = Point(float(x), float(y))
                if not any(r.contains(p) for r in blockages):
                    return p

        pairs = []
        for k in range(8):
            t1 = RouteTerminal(None, free_point(), float(k) * 5e-12, 0.0, "BUF20X")
            t2 = RouteTerminal(None, free_point(), 0.0, 0.0, "BUF20X")
            pairs.append((t1, t2))
        return pairs, library, options, stage_length, blockages

    @staticmethod
    def _route(pairs, library, options, stage_length, blockages):
        return route_level(
            pairs,
            library,
            options,
            stage_length,
            blockages,
            cache=GridCache(blockages),
        )

    def test_one_batch_equals_split_batches_equals_per_pair(self, routed):
        pairs, library, options, stage_length, blockages = routed
        whole = self._route(pairs, library, options, stage_length, blockages)
        split = []
        for chunk in (pairs[:3], pairs[3:5], pairs[5:]):
            split.extend(
                self._route(chunk, library, options, stage_length, blockages)
            )
        from repro.core.merge_routing import route_pair

        single = [
            route_pair(t1, t2, library, options, stage_length, blockages)
            for t1, t2 in pairs
        ]
        for a, b, c in zip(whole, split, single):
            for other in (b, c):
                assert a.meeting_point == other.meeting_point
                assert a.est_left_delay == other.est_left_delay
                assert a.est_right_delay == other.est_right_delay
                assert a.left.polyline.points == other.left.polyline.points
                assert a.right.polyline.points == other.right.polyline.points
                assert a.left.state == other.left.state
                assert a.right.state == other.right.state


class TestGridCacheTiles:
    def test_equal_keys_share_one_tile(self):
        blockages = [BBox(300, 300, 900, 900)]
        cache = GridCache(blockages)
        bbox = BBox(0, 0, 2000, 2000)
        g1, p1 = cache.window(bbox, 100.0)
        g2, p2 = cache.window(bbox, 100.0)
        assert g1 is g2 and p1 == p2
        assert cache.stats.tiles_built == 1
        assert cache.stats.tiles_reused == 1
        assert cache.stats.windows_served == 2
        cache.reset()
        g3, __ = cache.window(bbox, 100.0)
        assert g3 is not g1  # tiles are level-scoped
        assert cache.stats.tiles_built == 2

    def test_cached_window_identical_to_fresh_build(self):
        from repro.core.routing_common import build_window

        blockages = [BBox(500, -100, 1500, 700), BBox(90000, 90000, 91000, 91000)]
        bbox = BBox(0, 0, 60000, 45000)  # big enough to force coarsening
        cache = GridCache(blockages)
        cached, cached_pitch = cache.window(bbox, 100.0)
        fresh, fresh_pitch = build_window(bbox, 100.0, blockages)
        assert cached_pitch == fresh_pitch
        assert cached.pitch == fresh.pitch
        assert (cached.nx, cached.ny) == (fresh.nx, fresh.ny)
        assert np.array_equal(cached.blocked, fresh.blocked)
        assert cache.stats.pitch_buckets.get(0, 0) == 0  # pitch was coarsened

    def test_nearest_free_tie_breaks_row_major(self):
        """The documented fallback scan: Manhattan ties resolve to the
        free cell with the lowest i, then the lowest j — identically on
        every window served from the tile."""
        grid = MazeGrid(BBox(0, 0, 400, 400), pitch=100.0)
        # Block the center cell (2, 2); its four neighbors tie at
        # distance 1 and (1, 2) is the row-major winner.
        grid.block(BBox(150, 150, 250, 250))
        assert grid.blocked[2, 2]
        assert grid.nearest_free((2, 2)) == (1, 2)
        # Blocking the winner moves the choice to the next row-major
        # free cell at the same distance.
        grid.blocked[1, 2] = True
        assert grid.nearest_free((2, 2)) == (2, 1)
        # Served twice from a cache, the same mask gives the same answer.
        cache = GridCache([BBox(150, 150, 250, 250)])
        g1, __ = cache.window(BBox(0, 0, 400, 400), 100.0)
        g2, __ = cache.window(BBox(0, 0, 400, 400), 100.0)
        assert g1.nearest_free((2, 2)) == g2.nearest_free((2, 2)) == (1, 2)

    def test_consolidated_engine_matches_reference_on_served_tiles(self):
        """Unit bit-identity of the engine on blocked and unblocked
        windows exactly as the cache serves them."""
        blockages = [BBox(500, 500, 1500, 1500)]
        cache = GridCache(blockages)
        blocked_grid, __ = cache.window(BBox(0, 0, 3000, 3000), 100.0)
        unblocked_grid, __ = cache.window(BBox(5000, 5000, 8000, 8000), 100.0)
        assert blocked_grid._any_blocked
        assert not unblocked_grid._any_blocked
        for grid in (blocked_grid, unblocked_grid):
            free = np.argwhere(~grid.blocked)
            for cell in (tuple(free[0]), tuple(free[len(free) // 2])):
                assert np.array_equal(grid.bfs(cell), grid.bfs_reference(cell))
