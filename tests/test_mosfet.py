"""The alpha-power MOSFET model: regions, symmetry, derivatives."""

import pytest

from repro.spice.mosfet import (
    MosfetParams,
    mosfet_current,
    nmos_params,
    pmos_params,
)
from repro.tech import default_technology


@pytest.fixture(scope="module")
def nmos():
    return nmos_params(default_technology(), width=10.0)


@pytest.fixture(scope="module")
def pmos():
    return pmos_params(default_technology(), width=10.0)


class TestRegions:
    def test_cutoff(self, nmos):
        i, *_ = mosfet_current(vg=0.1, vd=1.0, vs=0.0, p=nmos)
        # Only the gmin leak remains.
        assert abs(i) < 1e-6

    def test_on_current_positive(self, nmos):
        i, *_ = mosfet_current(vg=1.0, vd=1.0, vs=0.0, p=nmos)
        assert i > 1e-4

    def test_saturation_flat_in_vds(self, nmos):
        i1, *_ = mosfet_current(1.0, 0.8, 0.0, nmos)
        i2, *_ = mosfet_current(1.0, 1.0, 0.0, nmos)
        # Only channel-length modulation separates them (< 5%).
        assert i2 > i1
        assert (i2 - i1) / i1 < 0.05

    def test_linear_region_grows_with_vds(self, nmos):
        i1, *_ = mosfet_current(1.0, 0.05, 0.0, nmos)
        i2, *_ = mosfet_current(1.0, 0.15, 0.0, nmos)
        assert i2 > 1.5 * i1

    def test_current_scales_with_width(self):
        tech = default_technology()
        i10, *_ = mosfet_current(1.0, 1.0, 0.0, nmos_params(tech, 10.0))
        i20, *_ = mosfet_current(1.0, 1.0, 0.0, nmos_params(tech, 20.0))
        assert i20 == pytest.approx(2 * i10, rel=1e-3)

    def test_gate_overdrive_superlinear(self, nmos):
        """alpha > 1: doubling overdrive more than doubles current."""
        i1, *_ = mosfet_current(0.3 + 0.2, 1.0, 0.0, nmos)
        i2, *_ = mosfet_current(0.3 + 0.4, 1.0, 0.0, nmos)
        assert i2 > 2.0 * i1


class TestSymmetryAndPolarity:
    def test_reverse_vds_negates_current(self, nmos):
        fwd, *_ = mosfet_current(1.0, 0.4, 0.0, nmos)
        rev, *_ = mosfet_current(1.0, 0.0, 0.4, nmos)
        assert rev == pytest.approx(-fwd, rel=1e-9)

    def test_continuity_at_vds_zero(self, nmos):
        below, *_ = mosfet_current(1.0, -1e-9, 0.0, nmos)
        above, *_ = mosfet_current(1.0, 1e-9, 0.0, nmos)
        assert abs(above - below) < 1e-9

    def test_pmos_pulls_up(self, pmos):
        """PMOS in an inverter: source at vdd, output low -> current INTO
        the drain node is negative (charging the output toward vdd)."""
        i, *_ = mosfet_current(vg=0.0, vd=0.0, vs=1.0, p=pmos)
        assert i < -1e-4

    def test_pmos_off_at_high_gate(self, pmos):
        i, *_ = mosfet_current(vg=1.0, vd=0.0, vs=1.0, p=pmos)
        assert abs(i) < 1e-6


class TestDerivatives:
    @pytest.mark.parametrize(
        "vg,vd,vs",
        [
            (1.0, 1.0, 0.0),  # saturation
            (1.0, 0.1, 0.0),  # linear
            (0.5, 0.8, 0.0),  # moderate overdrive
            (1.0, 0.0, 0.4),  # reversed
            (0.2, 1.0, 0.0),  # cutoff
        ],
    )
    def test_jacobian_matches_finite_difference(self, nmos, vg, vd, vs):
        h = 1e-7
        i0, di_dvg, di_dvd, di_dvs = mosfet_current(vg, vd, vs, nmos)
        for idx, analytic in ((0, di_dvg), (1, di_dvd), (2, di_dvs)):
            args = [vg, vd, vs]
            args[idx] += h
            i1, *_ = mosfet_current(*args, nmos)
            numeric = (i1 - i0) / h
            assert numeric == pytest.approx(analytic, rel=2e-3, abs=1e-9)

    def test_pmos_jacobian_matches_finite_difference(self, pmos):
        h = 1e-7
        vg, vd, vs = 0.2, 0.3, 1.0
        i0, di_dvg, di_dvd, di_dvs = mosfet_current(vg, vd, vs, pmos)
        for idx, analytic in ((0, di_dvg), (1, di_dvd), (2, di_dvs)):
            args = [vg, vd, vs]
            args[idx] += h
            i1, *_ = mosfet_current(*args, pmos)
            assert (i1 - i0) / h == pytest.approx(analytic, rel=2e-3, abs=1e-9)
