"""CLI characterize command (uses the cached library — no rebuild)."""

from repro.cli import main as cli_main


class TestCharacterizeCommand:
    def test_loads_cached_library(self, capsys):
        code = cli_main(["characterize", "--wire-scale", "10"])
        assert code == 0
        out = capsys.readouterr().out
        assert "3 buffers" in out
        assert "worst fit RMS" in out

    def test_reports_cache_location(self, capsys):
        cli_main(["characterize", "--wire-scale", "10"])
        out = capsys.readouterr().out
        assert "library_ptm45-like-w10x.json" in out
