"""Transient-solver edge cases and numerical controls."""

import numpy as np
import pytest

from repro.spice.circuit import Circuit
from repro.spice.transient import (
    ConvergenceError,
    TransientOptions,
    dc_operating_point,
    simulate,
)
from repro.tech import cts_buffer_library, default_technology
from repro.timing.waveform import Waveform, ramp_waveform


@pytest.fixture(scope="module")
def tech():
    return default_technology()


class TestDCOperatingPoint:
    def test_inverter_chain_alternates(self, tech):
        circuit = Circuit(tech)
        circuit.add_vsource("in", 0.0)
        prev = "in"
        for i in range(4):
            node = f"n{i}"
            circuit.add_inverter(prev, node, 10.0)
            prev = node
        op = dc_operating_point(circuit)
        assert op["n0"] == pytest.approx(tech.vdd, abs=0.02)
        assert op["n1"] == pytest.approx(0.0, abs=0.02)
        assert op["n2"] == pytest.approx(tech.vdd, abs=0.02)
        assert op["n3"] == pytest.approx(0.0, abs=0.02)

    def test_dc_through_resistive_divider(self, tech):
        circuit = Circuit(tech)
        circuit.add_vsource("in", 1.0)
        circuit.add_resistor("in", "mid", 1000.0)
        circuit.add_resistor("mid", "0", 1000.0)
        op = dc_operating_point(circuit)
        assert op["mid"] == pytest.approx(0.5, abs=1e-3)

    def test_dc_at_nonzero_time(self, tech):
        wave = ramp_waveform(1.0, 100e-12, t_start=0.0)
        circuit = Circuit(tech)
        circuit.add_vsource("in", wave)
        circuit.add_resistor("in", "out", 100.0)
        circuit.add_cap("out", 1e-15)
        op_late = dc_operating_point(circuit, at_time=1e-9)
        assert op_late["out"] == pytest.approx(1.0, abs=1e-3)

    def test_mid_node_initialized_high(self, tech):
        """A buffer's internal node starts at Vdd for a low input — the
        logic-guess propagation working as intended."""
        circuit = Circuit(tech)
        circuit.add_vsource("in", 0.0)
        mid = circuit.add_buffer("in", "out", cts_buffer_library()["BUF20X"])
        op = dc_operating_point(circuit)
        assert op[mid] == pytest.approx(tech.vdd, abs=0.02)
        assert op["out"] == pytest.approx(0.0, abs=0.02)


class TestNumericalControls:
    def test_tight_tolerance_still_converges(self, tech):
        circuit = Circuit(tech)
        circuit.add_vsource("in", ramp_waveform(tech.vdd, 60e-12, t_start=20e-12))
        circuit.add_buffer("in", "out", cts_buffer_library()["BUF30X"])
        circuit.add_cap("out", 50e-15)
        opts = TransientOptions(dt=1e-12, vtol=1e-8, max_newton=120)
        result = simulate(circuit, opts)
        assert result.final_voltage("out") == pytest.approx(tech.vdd, abs=0.01)

    def test_coarse_timestep_stable(self, tech):
        """Backward Euler is A-stable: a huge dt must not oscillate."""
        circuit = Circuit(tech)
        times = np.array([0.0, 1e-15, 1e-9])
        circuit.add_vsource("in", Waveform(times, np.array([0.0, 1.0, 1.0])))
        circuit.add_resistor("in", "out", 100.0)
        circuit.add_cap("out", 10e-15)  # tau = 1 ps << dt
        result = simulate(
            circuit, TransientOptions(dt=50e-12, t_stop=1e-9, auto_stop=False)
        )
        values = result.waveform("out").values
        assert np.all(values <= 1.0 + 1e-6)
        assert np.all(np.diff(values) >= -1e-9)  # monotone rise

    def test_two_waveform_sources(self, tech):
        w1 = ramp_waveform(1.0, 50e-12, t_start=10e-12)
        w2 = ramp_waveform(1.0, 50e-12, t_start=200e-12)
        circuit = Circuit(tech)
        circuit.add_vsource("a", w1)
        circuit.add_vsource("b", w2)
        circuit.add_resistor("a", "out", 1000.0)
        circuit.add_resistor("b", "out", 1000.0)
        circuit.add_cap("out", 20e-15)
        result = simulate(circuit, TransientOptions(dt=1e-12, t_stop=0.6e-9, auto_stop=False))
        wave = result.waveform("out")
        # Midpoint after first ramp only: ~0.5; after both: ~1.0.
        assert wave.value_at(150e-12) == pytest.approx(0.5, abs=0.05)
        assert wave.value_at(550e-12) == pytest.approx(1.0, abs=0.02)

    def test_no_unknowns_rejected(self, tech):
        circuit = Circuit(tech)
        circuit.add_vsource("in", 1.0)
        circuit.add_cap("in", 1e-15)
        with pytest.raises(ValueError):
            simulate(circuit, TransientOptions(dt=1e-12, t_stop=1e-10))


class TestWireSegmentation:
    def test_segment_cap_hard_cap(self, tech):
        from repro.spice.circuit import MAX_SEGMENTS_PER_WIRE

        circuit = Circuit(tech)
        circuit.add_wire("a", "b", 1e6, segment_length=1.0)
        assert len(circuit.resistors) == MAX_SEGMENTS_PER_WIRE

    def test_fine_and_coarse_segmentation_agree(self, tech):
        """50% delay through a wire barely moves with segmentation."""
        delays = {}
        for seg_len in (200.0, 800.0):
            circuit = Circuit(tech)
            wave = ramp_waveform(tech.vdd, 60e-12, t_start=20e-12)
            circuit.add_vsource("in", wave)
            circuit.add_buffer("in", "drv", cts_buffer_library()["BUF20X"])
            circuit.add_wire("drv", "end", 2400.0, segment_length=seg_len)
            circuit.add_cap("end", 10e-15)
            result = simulate(circuit, TransientOptions(dt=1e-12))
            delays[seg_len] = result.waveform("end").cross_time(tech.vdd / 2)
        assert delays[200.0] == pytest.approx(delays[800.0], abs=1.5e-12)
