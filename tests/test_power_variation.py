"""Power estimation and process-variation Monte Carlo extensions."""

import pytest

from repro.core import AggressiveBufferedCTS
from repro.evalx.power import PowerReport, tree_power
from repro.evalx.variation import VariationModel, monte_carlo_skew
from repro.geom import Point
from repro.tech import cts_buffer_library
from repro.tree.clocktree import ClockTree
from repro.tree.nodes import make_buffer, make_merge, make_sink

from tests.conftest import make_sink_pairs


@pytest.fixture()
def small_tree(tech):
    buf = cts_buffer_library()["BUF20X"]
    s_a = make_sink(Point(0, 0), 8e-15, "sA")
    s_b = make_sink(Point(4000, 0), 8e-15, "sB")
    b_a = make_buffer(Point(1000, 0), buf)
    b_a.attach(s_a)
    b_b = make_buffer(Point(3000, 0), buf)
    b_b.attach(s_b)
    merge = make_merge(Point(2000, 0))
    merge.attach(b_a)
    merge.attach(b_b)
    root = make_buffer(Point(2000, 100), buf)
    root.attach(merge)
    return ClockTree.from_network(Point(2000, 110), root)


class TestPower:
    def test_cap_breakdown(self, small_tree, tech):
        report = tree_power(small_tree, tech)
        wl = small_tree.total_wirelength()
        assert report.wire_cap == pytest.approx(
            tech.wire.capacitance_per_unit * wl
        )
        assert report.sink_cap == pytest.approx(16e-15)
        assert report.buffer_cap > 0
        assert report.total_cap == pytest.approx(
            report.wire_cap + report.sink_cap + report.buffer_cap
        )

    def test_power_scales_with_frequency(self, small_tree, tech):
        p1 = tree_power(small_tree, tech, frequency=1e9)
        p2 = tree_power(small_tree, tech, frequency=2e9)
        assert p2.dynamic_power == pytest.approx(2 * p1.dynamic_power)

    def test_power_plausible_magnitude(self, tech):
        """A small synthesized tree should burn milliwatts at 1 GHz."""
        sinks = make_sink_pairs(8, 20000.0, seed=13)
        result = AggressiveBufferedCTS(tech=tech).synthesize(sinks)
        report = tree_power(result.tree, tech)
        assert 1e-4 < report.dynamic_power < 1.0

    def test_more_buffers_more_power(self, small_tree, tech):
        base = tree_power(small_tree, tech)
        extra = make_buffer(Point(2000, 105), cts_buffer_library()["BUF30X"])
        old_child = small_tree.root.children[0]
        old_child.detach()
        extra.attach(old_child, 10.0)
        small_tree.root.attach(extra, 10.0)
        richer = tree_power(small_tree, tech)
        assert richer.dynamic_power > base.dynamic_power

    def test_row_units(self, small_tree, tech):
        row = tree_power(small_tree, tech).row()
        assert row["total_cap_pF"] == pytest.approx(
            tree_power(small_tree, tech).total_cap * 1e12
        )
        assert "power_mW" in row


class TestVariation:
    def test_nominal_matches_evaluate(self, small_tree, tech):
        from repro.evalx import evaluate_tree

        result = monte_carlo_skew(small_tree, tech, n_samples=2, dt=2e-12)
        metrics = evaluate_tree(small_tree, tech, dt=2e-12)
        assert result.nominal_skew == pytest.approx(metrics.skew, abs=1.5e-12)
        assert result.nominal_latency == pytest.approx(metrics.latency, rel=0.02)

    def test_local_variation_degrades_skew(self, small_tree, tech):
        """Within-die variation must widen skew beyond nominal on average."""
        model = VariationModel(
            buffer_strength_sigma=0.10, wire_r_sigma=0.08, wire_c_sigma=0.05, seed=3
        )
        result = monte_carlo_skew(small_tree, tech, model, n_samples=8, dt=2e-12)
        assert result.mean_skew > result.nominal_skew
        assert result.p95_skew >= result.mean_skew

    def test_zero_sigma_reproduces_nominal(self, small_tree, tech):
        model = VariationModel(0.0, 0.0, 0.0, 0.0, seed=9)
        result = monte_carlo_skew(small_tree, tech, model, n_samples=3, dt=2e-12)
        for skew in result.skews:
            assert skew == pytest.approx(result.nominal_skew, abs=0.5e-12)

    def test_global_variation_shifts_latency_not_skew(self, small_tree, tech):
        local_only = VariationModel(0.06, 0.0, 0.0, global_sigma=0.0, seed=5)
        with_global = VariationModel(0.06, 0.0, 0.0, global_sigma=0.15, seed=5)
        r_local = monte_carlo_skew(small_tree, tech, local_only, n_samples=6, dt=2e-12)
        r_global = monte_carlo_skew(small_tree, tech, with_global, n_samples=6, dt=2e-12)
        assert r_global.sigma_latency > r_local.sigma_latency
        # Skew inflation from the global term is comparatively small.
        assert r_global.mean_skew < r_local.mean_skew * 3.0

    def test_result_row(self, small_tree, tech):
        result = monte_carlo_skew(small_tree, tech, n_samples=2, dt=2e-12)
        row = result.row()
        assert set(row) == {
            "nominal_skew_ps",
            "mean_skew_ps",
            "p95_skew_ps",
            "nominal_latency_ns",
            "sigma_latency_ps",
        }
