"""The two merge-routers: profile (fast) and maze (general, blockages)."""

import pytest

from repro.core.maze_router import MazeGrid, route_maze
from repro.core.options import CTSOptions
from repro.core.profile_router import route_profile
from repro.core.routing_common import RouteTerminal, slew_limited_length
from repro.geom.bbox import BBox
from repro.geom.point import Point
from repro.tree.nodes import make_sink


@pytest.fixture(scope="module")
def options():
    return CTSOptions()


@pytest.fixture(scope="module")
def stage_length(library, options):
    return slew_limited_length(library, options.target_slew)


def term(x, y, delay=0.0, load="BUF20X"):
    node = make_sink(Point(x, y), 8e-15)
    return RouteTerminal(node, Point(x, y), delay, delay, load)


class TestProfileRouter:
    def test_balanced_terminals_meet_near_middle(self, library, options, stage_length):
        result = route_profile(term(0, 0), term(12000, 0), library, options, stage_length)
        assert 4000 < result.meeting_point.x < 8000
        assert result.est_skew < 5e-12

    def test_unbalanced_meeting_shifts_toward_slow_side(
        self, library, options, stage_length
    ):
        slow = term(0, 0, delay=150e-12)
        fast = term(12000, 0, delay=0.0)
        result = route_profile(slow, fast, library, options, stage_length)
        assert result.meeting_point.x < 5000  # closer to the slow side
        assert result.est_skew < 10e-12

    def test_buffers_inserted_on_both_sides(self, library, options, stage_length):
        result = route_profile(term(0, 0), term(16000, 0), library, options, stage_length)
        assert result.left.state.n_stages >= 1
        assert result.right.state.n_stages >= 1

    def test_polylines_reach_meeting_point(self, library, options, stage_length):
        result = route_profile(term(0, 0), term(9000, 5000), library, options, stage_length)
        assert result.left.polyline.points[0] == Point(0, 0)
        assert result.left.polyline.points[-1] == result.meeting_point
        assert result.right.polyline.points[0] == Point(9000, 5000)
        assert result.right.polyline.points[-1] == result.meeting_point

    def test_coincident_terminals_rejected(self, library, options, stage_length):
        with pytest.raises(ValueError):
            route_profile(term(5, 5), term(5, 5), library, options, stage_length)

    def test_dynamic_grid_growth(self, library, options, stage_length):
        short = route_profile(term(0, 0), term(3000, 0), library, options, stage_length)
        long = route_profile(term(0, 0), term(60000, 0), library, options, stage_length)
        assert long.grid_cells > short.grid_cells


class TestMazeRouter:
    def test_agrees_with_profile_router_without_blockages(
        self, library, options, stage_length
    ):
        """The equivalence DESIGN.md promises: same medium, same answer.

        The two routers evaluate the same profiles on slightly different
        lattices, so the chosen cells can differ by a grid quantum — and a
        buffer-insertion step in the profile makes the *estimated* skew
        jumpy (binary search then nulls it). Equivalence here means: same
        buffer plan (within one), delay estimates within a stage quantum.
        """
        t1, t2 = term(0, 0, delay=40e-12), term(10000, 6000)
        prof = route_profile(t1, t2, library, options, stage_length)
        maze = route_maze(t1, t2, library, options, stage_length, blockages=None)
        assert maze.est_skew < 30e-12
        assert abs(maze.left.state.n_stages - prof.left.state.n_stages) <= 1
        assert abs(maze.right.state.n_stages - prof.right.state.n_stages) <= 1
        assert maze.est_left_delay == pytest.approx(prof.est_left_delay, abs=40e-12)
        total_prof = prof.left.arc_length + prof.right.arc_length
        total_maze = maze.left.arc_length + maze.right.arc_length
        assert total_maze == pytest.approx(total_prof, rel=0.25)

    def test_blockage_forces_detour(self, library, options, stage_length):
        t1, t2 = term(0, 0), term(10000, 0)
        # Wall blocking the straight shot; a gap exists inside the routing
        # margin above/below it.
        wall = BBox(4500, -800, 5500, 800)
        blocked = route_maze(t1, t2, library, options, stage_length, [wall])
        d_blocked = blocked.left.polyline.length + blocked.right.polyline.length
        # Any wall-avoiding path must climb past the wall edge and back.
        assert d_blocked > 10000 + 1500
        # The detour path must avoid the wall interior.
        for path in (blocked.left.polyline, blocked.right.polyline):
            for s in range(0, int(path.length), 200):
                p = path.point_at_length(float(s))
                assert not wall.contains(p, tol=-300), f"path enters blockage at {p}"

    def test_window_grows_around_tall_walls(self, library, options, stage_length):
        """A finite wall taller than the default window is not a dead end:
        the router must grow the window and route around it."""
        t1, t2 = term(0, 0), term(8000, 0)
        wall = BBox(3900, -20000, 4100, 20000)
        result = route_maze(t1, t2, library, options, stage_length, [wall])
        d_total = result.left.polyline.length + result.right.polyline.length
        assert d_total > 8000 + 30000  # forced over the wall's far edge

    def test_fully_enclosed_terminal_raises(self, library, options, stage_length):
        """A terminal sealed inside a blockage ring is unroutable."""
        t1, t2 = term(0, 0), term(8000, 0)
        ring = [
            BBox(-5000, -5000, 5000, -2000),  # south
            BBox(-5000, 2000, 5000, 5000),  # north
            BBox(-5000, -2000, -2000, 2000),  # west
            BBox(2000, -5000 + 3000, 5000, 2000),  # east
        ]
        with pytest.raises(RuntimeError):
            route_maze(t1, t2, library, options, stage_length, ring)

    def test_terminal_inside_blockage_rejected(self, library, options, stage_length):
        t1, t2 = term(0, 0), term(8000, 0)
        with pytest.raises(ValueError):
            route_maze(
                t1, t2, library, options, stage_length, [BBox(-500, -500, 500, 500)]
            )


class TestMazeGrid:
    def test_bfs_distances_manhattan_without_blockages(self):
        grid = MazeGrid(BBox(0, 0, 1000, 1000), pitch=100.0)
        dist = grid.bfs((0, 0))
        assert dist[0, 0] == 0
        assert dist[5, 3] == 8
        assert dist[10, 10] == 20

    def test_descend_path_connected(self):
        grid = MazeGrid(BBox(0, 0, 1000, 1000), pitch=100.0)
        dist = grid.bfs((0, 0))
        path = grid.descend(dist, (7, 4))
        assert path[0] == (0, 0)
        assert path[-1] == (7, 4)
        for (i1, j1), (i2, j2) in zip(path, path[1:]):
            assert abs(i1 - i2) + abs(j1 - j2) == 1

    def test_blocked_start_raises(self):
        grid = MazeGrid(BBox(0, 0, 1000, 1000), pitch=100.0)
        grid.block(BBox(-50, -50, 50, 50))
        with pytest.raises(ValueError):
            grid.bfs((0, 0))
