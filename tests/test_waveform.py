"""Waveform measurements: crossings, slews, generators, windows."""

import numpy as np
import pytest

from repro.timing.waveform import (
    Waveform,
    measure_slew,
    ramp_waveform,
    smooth_curve_waveform,
)


class TestConstruction:
    def test_rejects_mismatched_arrays(self):
        with pytest.raises(ValueError):
            Waveform(np.array([0.0, 1.0]), np.array([0.0]))

    def test_rejects_non_monotone_times(self):
        with pytest.raises(ValueError):
            Waveform(np.array([0.0, 2.0, 1.0]), np.zeros(3))

    def test_rejects_single_sample(self):
        with pytest.raises(ValueError):
            Waveform(np.array([0.0]), np.array([1.0]))


class TestCrossings:
    def linear(self):
        return Waveform(np.array([0.0, 1.0]), np.array([0.0, 1.0]))

    def test_interpolated_crossing(self):
        assert self.linear().cross_time(0.25) == pytest.approx(0.25)

    def test_first_crossing_of_nonmonotone(self):
        wave = Waveform(
            np.array([0.0, 1.0, 2.0, 3.0]), np.array([0.0, 1.0, 0.0, 1.0])
        )
        assert wave.cross_time(0.5) == pytest.approx(0.5)

    def test_falling_crossing(self):
        wave = Waveform(np.array([0.0, 1.0]), np.array([1.0, 0.0]))
        assert wave.cross_time(0.5, rising=False) == pytest.approx(0.5)

    def test_never_crosses_raises(self):
        with pytest.raises(ValueError):
            self.linear().cross_time(2.0)

    def test_already_above_returns_start(self):
        wave = Waveform(np.array([1.0, 2.0]), np.array([0.8, 1.0]))
        assert wave.cross_time(0.5) == pytest.approx(1.0)

    def test_value_at_clamps(self):
        wave = self.linear()
        assert wave.value_at(-1.0) == 0.0
        assert wave.value_at(2.0) == 1.0


class TestSlewAndDelay:
    def test_linear_ramp_slew(self):
        wave = Waveform(np.array([0.0, 1.0]), np.array([0.0, 1.0]))
        assert wave.slew(vdd=1.0) == pytest.approx(0.8)

    def test_delay_between_waveforms(self):
        a = Waveform(np.array([0.0, 1.0]), np.array([0.0, 1.0]))
        b = a.shifted(0.3)
        assert a.delay_to(b, vdd=1.0) == pytest.approx(0.3)

    def test_measure_slew_helper(self):
        wave = ramp_waveform(1.0, 100e-12)
        assert measure_slew(wave, 1.0) == pytest.approx(100e-12, rel=1e-6)


class TestGenerators:
    def test_ramp_has_requested_slew(self):
        for slew in (20e-12, 80e-12, 200e-12):
            wave = ramp_waveform(1.0, slew, t_start=50e-12)
            assert wave.slew(1.0) == pytest.approx(slew, rel=1e-6)

    def test_ramp_settles_at_vdd(self):
        wave = ramp_waveform(0.9, 100e-12)
        assert wave.v_final == pytest.approx(0.9)

    def test_curve_has_requested_slew(self):
        wave = smooth_curve_waveform(1.0, 150e-12)
        assert wave.slew(1.0) == pytest.approx(150e-12, rel=0.02)

    def test_curve_and_ramp_have_same_slew_but_different_shape(self):
        """The premise of the paper's Fig. 3.2 experiment."""
        slew = 150e-12
        ramp = ramp_waveform(1.0, slew, t_start=0.0)
        curve = smooth_curve_waveform(1.0, slew, t_start=0.0)
        assert ramp.slew(1.0) == pytest.approx(curve.slew(1.0), rel=0.02)
        # Compare shapes around the 50% crossing: the 5%-10% approach of a
        # logistic is much slower than a saturated ramp's.
        r5 = ramp.cross_time(0.10) - ramp.cross_time(0.05)
        c5 = curve.cross_time(0.10) - curve.cross_time(0.05)
        assert c5 > 2.0 * r5

    def test_invalid_slew_rejected(self):
        with pytest.raises(ValueError):
            ramp_waveform(1.0, -1e-12)
        with pytest.raises(ValueError):
            smooth_curve_waveform(1.0, 0.0)


class TestTransforms:
    def test_shifted(self):
        wave = ramp_waveform(1.0, 100e-12, t_start=0.0)
        moved = wave.shifted(1e-9)
        assert moved.cross_time(0.5) == pytest.approx(
            wave.cross_time(0.5) + 1e-9
        )

    def test_resampled_preserves_values(self):
        wave = ramp_waveform(1.0, 100e-12)
        dense = wave.resampled(np.linspace(wave.times[0], wave.times[-1], 500))
        assert dense.value_at(wave.times[10]) == pytest.approx(
            wave.values[10], abs=1e-6
        )

    def test_windowed(self):
        wave = ramp_waveform(1.0, 100e-12, t_start=100e-12)
        sub = wave.windowed(50e-12, 400e-12)
        assert sub.times[0] == pytest.approx(50e-12)
        assert sub.times[-1] == pytest.approx(400e-12)
        assert sub.slew(1.0) == pytest.approx(wave.slew(1.0), rel=1e-3)

    def test_windowed_empty_raises(self):
        wave = ramp_waveform(1.0, 100e-12)
        with pytest.raises(ValueError):
            wave.windowed(1e-9, 1e-9)
