"""Property-based tests on the synthesis machinery (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.charlib import load_default_library
from repro.core.options import CTSOptions
from repro.core.segment_builder import PathBuilder, SegmentTables
from repro.geom.point import Point
from repro.tech import default_technology
from repro.timing.analysis import LibraryTimingEngine
from repro.tree.nodes import make_buffer, make_merge, make_sink


@pytest.fixture(scope="module")
def lib():
    return load_default_library(default_technology())


class TestPathBuilderProperties:
    @given(
        step=st.floats(120.0, 900.0),
        target_ps=st.floats(55.0, 95.0),
        load_idx=st.integers(0, 2),
        distance_steps=st.integers(5, 70),
    )
    @settings(max_examples=25, deadline=None)
    def test_slew_invariant_across_parameters(
        self, lib, step, target_ps, load_idx, distance_steps
    ):
        """Whatever the grid pitch, slew target and load: every committed
        segment of a built path admits its chosen buffer within target."""
        target = target_ps * 1e-12
        load = lib.buffer_names[load_idx]
        tables = SegmentTables(lib, step, distance_steps + 2, target)
        builder = PathBuilder(
            tables, 0.0, load, target, lib.buffer_names, lib.buffer_names[-1], 3
        )
        state = builder.state(distance_steps)
        positions = [0] + [b.steps for b in state.buffers]
        loads = [load] + [b.type_name for b in state.buffers]
        for i in range(1, len(positions)):
            seg = positions[i] - positions[i - 1]
            assert seg >= 0
            drive = state.buffers[i - 1].type_name
            slew = tables.wire_slew(drive, loads[i - 1], seg)
            assert slew <= target * 1.0001
        # Delay accumulates and positions stay ordered/in range.
        assert state.delay >= 0
        assert positions == sorted(positions)
        assert all(0 <= p <= distance_steps for p in positions[1:])

    @given(
        base_ps=st.floats(0.0, 500.0),
        distance_steps=st.integers(2, 40),
    )
    @settings(max_examples=20, deadline=None)
    def test_base_delay_is_pure_offset(self, lib, base_ps, distance_steps):
        target = 80e-12
        tables = SegmentTables(lib, 300.0, distance_steps + 2, target)

        def build(base):
            return PathBuilder(
                tables, base, "BUF20X", target, lib.buffer_names,
                lib.buffer_names[-1], 3,
            ).state(distance_steps)

        s0 = build(0.0)
        s1 = build(base_ps * 1e-12)
        assert s1.delay - s0.delay == pytest.approx(base_ps * 1e-12, abs=1e-18)
        assert s1.buffers == s0.buffers


class TestEngineProperties:
    @given(
        wire=st.floats(100.0, 2800.0),
        slew_ps=st.floats(30.0, 110.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_buffer_bounds_monotone_in_wire(self, lib, wire, slew_ps):
        """Longer stage wire below a buffer never reduces its delay."""
        tech = default_technology()
        engine = LibraryTimingEngine(lib, tech)
        buf_type = lib.buffer_names[1]
        from repro.tech import cts_buffer_library

        buffers = cts_buffer_library()
        short = make_buffer(Point(0, 0), buffers[buf_type])
        short.attach(make_sink(Point(wire, 0), 8e-15))
        long = make_buffer(Point(0, 0), buffers[buf_type])
        long.attach(make_sink(Point(wire + 300.0, 0), 8e-15))
        s = engine.buffer_subtree_bounds(short, slew_ps * 1e-12)
        l = engine.buffer_subtree_bounds(long, slew_ps * 1e-12)
        assert l.max_delay >= s.max_delay - 0.3e-12

    @given(split=st.floats(0.1, 0.9))
    @settings(max_examples=20, deadline=None)
    def test_merge_bounds_contain_child_extremes(self, lib, split):
        """A merge's delay interval spans (at least) its children's."""
        tech = default_technology()
        engine = LibraryTimingEngine(lib, tech)
        total = 2400.0
        merge = make_merge(Point(split * total, 0))
        merge.attach(make_sink(Point(0, 0), 8e-15))
        merge.attach(make_sink(Point(total, 0), 6e-15))
        bounds = engine.subtree_bounds(merge, 80e-12)
        assert bounds.min_delay >= 0
        assert bounds.max_delay >= bounds.min_delay
        # The longer side's wire delay dominates the max.
        longer = max(split, 1.0 - split) * total
        shorter = min(split, 1.0 - split) * total
        assert bounds.max_delay >= bounds.min_delay * (
            1.0 if longer == shorter else 0.99
        )
