"""Manhattan arcs and DME merge segments."""

import pytest

from repro.geom.manhattan_arc import ManhattanArc, merge_arc, tilted_rect_region
from repro.geom.point import Point


class TestConstruction:
    def test_point_arc(self):
        arc = ManhattanArc.point(Point(3, 4))
        assert arc.is_point
        assert arc.length == 0

    def test_plus_slope(self):
        arc = ManhattanArc(Point(0, 0), Point(3, 3))
        assert not arc.is_point
        assert arc.length == 6

    def test_minus_slope(self):
        arc = ManhattanArc(Point(0, 3), Point(3, 0))
        assert arc.length == 6

    def test_rejects_non_45_degree(self):
        with pytest.raises(ValueError):
            ManhattanArc(Point(0, 0), Point(5, 2))

    def test_axis_aligned_rejected(self):
        with pytest.raises(ValueError):
            ManhattanArc(Point(0, 0), Point(5, 0))


class TestDistance:
    def test_point_to_point(self):
        a = ManhattanArc.point(Point(0, 0))
        b = ManhattanArc.point(Point(3, 4))
        assert a.distance_to(b) == pytest.approx(7)

    def test_point_to_arc(self):
        arc = ManhattanArc(Point(2, 0), Point(4, 2))
        assert arc.distance_to_point(Point(0, 0)) == pytest.approx(2)

    def test_overlapping_arcs_distance_zero(self):
        a = ManhattanArc(Point(0, 0), Point(4, 4))
        b = ManhattanArc(Point(2, 2), Point(6, 6))
        assert a.distance_to(b) == pytest.approx(0)

    def test_closest_point_is_on_arc_and_optimal(self):
        arc = ManhattanArc(Point(2, 0), Point(6, 4))
        target = Point(0, 0)
        close = arc.closest_point_to(target)
        assert arc.distance_to_point(close) < 1e-9
        assert close.manhattan_to(target) == pytest.approx(
            arc.distance_to_point(target)
        )


class TestSampleAndIntersect:
    def test_sample_endpoints(self):
        arc = ManhattanArc(Point(0, 0), Point(3, 3))
        assert arc.sample(0) == Point(0, 0)
        assert arc.sample(1) == Point(3, 3)

    def test_intersection_overlap(self):
        a = ManhattanArc(Point(0, 0), Point(4, 4))
        b = ManhattanArc(Point(2, 2), Point(6, 6))
        inter = a.intersection(b)
        assert inter is not None
        assert inter.p == Point(2, 2)
        assert inter.q == Point(4, 4)

    def test_intersection_disjoint(self):
        a = ManhattanArc(Point(0, 0), Point(1, 1))
        b = ManhattanArc.point(Point(10, 10))
        assert a.intersection(b) is None


class TestMergeArc:
    def test_between_points_is_manhattan_arc(self):
        a = ManhattanArc.point(Point(0, 0))
        b = ManhattanArc.point(Point(10, 4))
        merged = merge_arc(a, b, 7, 7)
        # Every point on the merge segment is at distance 7 from both.
        for t in (0.0, 0.5, 1.0):
            p = merged.sample(t)
            assert a.distance_to_point(p) == pytest.approx(7, abs=1e-6)
            assert b.distance_to_point(p) == pytest.approx(7, abs=1e-6)

    def test_exact_bridging(self):
        a = ManhattanArc.point(Point(0, 0))
        b = ManhattanArc.point(Point(6, 2))
        merged = merge_arc(a, b, 3, 5)
        p = merged.sample(0.5)
        assert a.distance_to_point(p) == pytest.approx(3, abs=1e-6)
        assert b.distance_to_point(p) == pytest.approx(5, abs=1e-6)

    def test_insufficient_distance_raises(self):
        a = ManhattanArc.point(Point(0, 0))
        b = ManhattanArc.point(Point(10, 0))
        with pytest.raises(ValueError):
            merge_arc(a, b, 3, 3)

    def test_degenerate_zero_distance(self):
        a = ManhattanArc.point(Point(5, 5))
        merged = merge_arc(a, a, 0, 0)
        assert merged.is_point


class TestTiltedRect:
    def test_corners_at_radius(self):
        corners = tilted_rect_region(Point(0, 0), 5)
        assert len(corners) == 4
        for corner in corners:
            assert corner.manhattan_to(Point(0, 0)) == pytest.approx(5)
