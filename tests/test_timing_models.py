"""RC trees, Elmore delay, and moment metrics (D2M / PERI / S2M)."""

import math

import pytest

from repro.spice.circuit import Circuit
from repro.spice.transient import TransientOptions, simulate
from repro.tech import default_technology
from repro.timing.elmore import elmore_delay_to, elmore_delays, wire_elmore_delay
from repro.timing.moments import (
    d2m_delay,
    elmore_slew_peri,
    lognormal_step_slew,
    node_metrics,
    rc_tree_moments,
)
from repro.timing.rctree import RCTree
from repro.timing.waveform import Waveform

import numpy as np


@pytest.fixture(scope="module")
def tech():
    return default_technology()


def two_node_tree(r1=1000.0, c1=50e-15, r2=2000.0, c2=30e-15, rd=0.0):
    tree = RCTree("root", driver_resistance=rd)
    tree.add_node("a", "root", r1, c1)
    tree.add_node("b", "a", r2, c2)
    return tree


class TestRCTree:
    def test_add_and_lookup(self):
        tree = two_node_tree()
        assert tree["a"].resistance == 1000.0
        assert "b" in tree
        with pytest.raises(KeyError):
            tree["zzz"]

    def test_duplicate_rejected(self):
        tree = two_node_tree()
        with pytest.raises(ValueError):
            tree.add_node("a", "root", 1.0, 1e-15)

    def test_subtree_caps(self):
        tree = two_node_tree()
        caps = tree.subtree_caps()
        assert caps["b"] == pytest.approx(30e-15)
        assert caps["a"] == pytest.approx(80e-15)
        assert caps["root"] == pytest.approx(80e-15)

    def test_add_wire_totals(self, tech):
        tree = RCTree("root")
        tree.add_wire("root", "end", 1000.0, tech.wire, n_segments=8)
        assert tree.total_cap() == pytest.approx(tech.wire.total_c(1000.0))

    def test_leaves_and_path(self):
        tree = two_node_tree()
        assert [n.name for n in tree.leaves()] == ["b"]
        assert [n.name for n in tree["b"].path_to_root()] == ["b", "a", "root"]


class TestElmore:
    def test_hand_computed_chain(self):
        """T(b) = r1*(c1+c2) + r2*c2."""
        tree = two_node_tree()
        delays = elmore_delays(tree)
        assert delays["a"] == pytest.approx(1000 * 80e-15)
        assert delays["b"] == pytest.approx(1000 * 80e-15 + 2000 * 30e-15)

    def test_driver_resistance_adds_to_all(self):
        tree = two_node_tree(rd=500.0)
        delays = elmore_delays(tree)
        assert delays["root"] == pytest.approx(500 * 80e-15)
        assert delays["b"] == pytest.approx(
            500 * 80e-15 + 1000 * 80e-15 + 2000 * 30e-15
        )

    def test_branches_share_upstream(self):
        tree = RCTree("root")
        tree.add_node("stem", "root", 100.0, 10e-15)
        tree.add_node("l", "stem", 200.0, 20e-15)
        tree.add_node("r", "stem", 300.0, 5e-15)
        delays = elmore_delays(tree)
        total = 35e-15
        assert delays["l"] == pytest.approx(100 * total + 200 * 20e-15)
        assert delays["r"] == pytest.approx(100 * total + 300 * 5e-15)

    def test_wire_elmore_closed_form(self, tech):
        length, load = 2000.0, 20e-15
        closed = wire_elmore_delay(length, tech.wire, load, driver_resistance=100.0)
        r, c = tech.wire.total_r(length), tech.wire.total_c(length)
        assert closed == pytest.approx(100 * (c + load) + r * (c / 2 + load))

    def test_elmore_overestimates_simulated_delay(self, tech):
        """The paper's claim: Elmore is pessimistic for step responses."""
        r_seg, c_seg, n = 200.0, 40e-15, 8
        tree = RCTree("root")
        prev = "root"
        circuit = Circuit(tech)
        times = np.array([0.0, 1e-15, 1e-9])
        circuit.add_vsource("root", Waveform(times, np.array([0.0, 1.0, 1.0])))
        for i in range(n):
            node = f"n{i}"
            tree.add_node(node, prev, r_seg, c_seg)
            circuit.add_resistor(prev, node, r_seg)
            circuit.add_cap(node, c_seg)
            prev = node
        elmore = elmore_delay_to(tree, prev)
        result = simulate(circuit, TransientOptions(dt=0.25e-12, t_stop=0.5e-9, auto_stop=False))
        simulated = result.waveform(prev).cross_time(0.5)
        assert elmore > simulated  # pessimistic
        assert simulated > 0.4 * elmore  # but same order


class TestMoments:
    def test_first_moment_is_minus_elmore(self):
        tree = two_node_tree(rd=100.0)
        moments = rc_tree_moments(tree, order=1)
        delays = elmore_delays(tree)
        for name in ("a", "b"):
            assert -moments[name][0] == pytest.approx(delays[name])

    def test_d2m_below_elmore(self):
        """D2M is known to be tighter than Elmore for RC trees."""
        tree = two_node_tree()
        m = rc_tree_moments(tree, order=2)["b"]
        assert d2m_delay(abs(m[0]), abs(m[1])) <= abs(m[0])

    def test_d2m_close_to_simulation_on_ladder(self, tech):
        r_seg, c_seg, n = 200.0, 40e-15, 8
        tree = RCTree("root")
        circuit = Circuit(tech)
        times = np.array([0.0, 1e-15, 1e-9])
        circuit.add_vsource("root", Waveform(times, np.array([0.0, 1.0, 1.0])))
        prev = "root"
        for i in range(n):
            node = f"n{i}"
            tree.add_node(node, prev, r_seg, c_seg)
            circuit.add_resistor(prev, node, r_seg)
            circuit.add_cap(node, c_seg)
            prev = node
        m1, m2 = rc_tree_moments(tree, order=2)[prev]
        estimate = d2m_delay(abs(m1), abs(m2))
        result = simulate(circuit, TransientOptions(dt=0.25e-12, t_stop=0.5e-9, auto_stop=False))
        simulated = result.waveform(prev).cross_time(0.5)
        # D2M should be within ~20% where Elmore errs by ~45%.
        assert estimate == pytest.approx(simulated, rel=0.2)

    def test_peri_rss_composition(self):
        assert elmore_slew_peri(30e-12, 40e-12) == pytest.approx(50e-12)
        assert elmore_slew_peri(0.0, 70e-12) == pytest.approx(70e-12)

    def test_lognormal_slew_positive_and_scales(self):
        s1 = lognormal_step_slew(100e-12, 2e-20)
        assert s1 > 0
        # Scaling time by 2 scales the metric by 2 (m1 ~ t, m2 ~ t^2).
        s2 = lognormal_step_slew(200e-12, 8e-20)
        assert s2 == pytest.approx(2 * s1, rel=1e-6)

    def test_node_metrics_bundle(self):
        tree = two_node_tree()
        metrics = node_metrics(tree, "b", input_slew=50e-12)
        assert set(metrics) == {"elmore", "d2m", "step_slew", "ramp_delay", "ramp_slew"}
        assert metrics["ramp_slew"] >= metrics["step_slew"]
