"""The classic DME baseline: exact zero-skew under Elmore."""

import pytest

from repro.baselines.dme import (
    DMESynthesizer,
    _extension_length,
    zero_skew_merge_point,
)
from repro.geom import Point
from repro.tech import default_technology
from repro.timing.elmore import elmore_delays
from repro.timing.rctree import RCTree
from repro.tree.nodes import NodeKind
from repro.tree.validate import validate_tree

from tests.conftest import make_sink_pairs


@pytest.fixture(scope="module")
def tech():
    return default_technology()


def elmore_sink_delays(tree, tech):
    """Elmore delays of a (possibly snaked) clock tree's sinks."""
    rc = RCTree("root")
    sinks = []

    def build(node, parent):
        name = f"n{node.id}"
        if node.wire_to_parent > 0:
            rc.add_wire(parent, name, node.wire_to_parent, tech.wire, 6)
        else:
            rc.add_node(name, parent, 1e-6, 0.0)
        if node.kind is NodeKind.SINK:
            rc.add_cap(name, node.cap)
            sinks.append(name)
        for child in node.children:
            build(child, name)

    for child in tree.root.children:
        build(child, "root")
    delays = elmore_delays(rc)
    return [delays[s] for s in sinks]


class TestMergeFormula:
    def test_symmetric_case(self, tech):
        alpha = tech.wire.resistance_per_unit
        beta = tech.wire.capacitance_per_unit
        x = zero_skew_merge_point(0.0, 0.0, 10e-15, 10e-15, 1000.0, alpha, beta)
        assert x == pytest.approx(0.5)

    def test_slower_side_attracts_merge_point(self, tech):
        alpha = tech.wire.resistance_per_unit
        beta = tech.wire.capacitance_per_unit
        # t1 > t2: merge point moves toward side 1 (x < 0.5).
        x = zero_skew_merge_point(50e-12, 0.0, 10e-15, 10e-15, 2000.0, alpha, beta)
        assert x < 0.5

    def test_formula_actually_balances_elmore(self, tech):
        """x from Eq. 2.5 must equalize the two Elmore delays."""
        alpha = tech.wire.resistance_per_unit
        beta = tech.wire.capacitance_per_unit
        t1, t2 = 20e-12, 5e-12
        c1, c2 = 15e-15, 8e-15
        dist = 3000.0
        x = zero_skew_merge_point(t1, t2, c1, c2, dist, alpha, beta)
        assert 0 <= x <= 1
        l1, l2 = x * dist, (1 - x) * dist
        d1 = t1 + alpha * l1 * (beta * l1 / 2 + c1)
        d2 = t2 + alpha * l2 * (beta * l2 / 2 + c2)
        assert d1 == pytest.approx(d2, rel=1e-9)

    def test_extension_length_quadratic(self, tech):
        alpha = tech.wire.resistance_per_unit
        beta = tech.wire.capacitance_per_unit
        need = 30e-12
        ext = _extension_length(0.0, need, 10e-15, alpha, beta)
        added = alpha * ext * (beta * ext / 2 + 10e-15)
        assert added == pytest.approx(need, rel=1e-9)

    def test_extension_zero_when_not_needed(self, tech):
        assert _extension_length(10e-12, 5e-12, 1e-15, 1, 1) == 0.0


class TestDMESynthesis:
    def test_structure_valid(self, tech):
        sinks = make_sink_pairs(9, 12000.0, seed=4)
        tree = DMESynthesizer(tech).synthesize(sinks)
        validate_tree(tree.root, expect_source_root=True)
        assert len(tree.sinks()) == 9
        assert tree.buffer_count() == 0  # DME is unbuffered

    @pytest.mark.parametrize("n", [2, 5, 16])
    def test_zero_elmore_skew(self, tech, n):
        """The defining property: all Elmore sink delays equal."""
        sinks = make_sink_pairs(n, 15000.0, seed=n)
        tree = DMESynthesizer(tech).synthesize(sinks)
        delays = elmore_sink_delays(tree, tech)
        spread = max(delays) - min(delays)
        assert spread < 0.02 * max(delays) + 1e-15

    def test_wirelength_reasonable(self, tech):
        """No pathological snaking on a benign instance."""
        sinks = make_sink_pairs(8, 10000.0, seed=2)
        tree = DMESynthesizer(tech).synthesize(sinks)
        # Wirelength within a small factor of the half-perimeter bound.
        assert tree.total_wirelength() < 8 * 20000.0

    def test_detour_case_handled(self, tech):
        """One far sink forces x outside [0,1] -> wire snaking."""
        sinks = [
            (Point(0, 0), 8e-15),
            (Point(100, 0), 8e-15),
            (Point(20000, 0), 8e-15),
        ]
        tree = DMESynthesizer(tech).synthesize(sinks)
        delays = elmore_sink_delays(tree, tech)
        assert max(delays) - min(delays) < 0.02 * max(delays)
