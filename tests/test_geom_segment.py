"""Segments and routing polylines."""

import pytest

from repro.geom.point import Point
from repro.geom.segment import PathPolyline, Segment


class TestSegment:
    def test_lengths(self):
        seg = Segment(Point(0, 0), Point(3, 4))
        assert seg.manhattan_length == 7
        assert seg.euclidean_length == pytest.approx(5)

    def test_point_at_and_midpoint(self):
        seg = Segment(Point(0, 0), Point(10, 0))
        assert seg.point_at(0.25) == Point(2.5, 0)
        assert seg.midpoint() == Point(5, 0)

    def test_reversed(self):
        seg = Segment(Point(1, 2), Point(3, 4)).reversed()
        assert seg.a == Point(3, 4)
        assert seg.b == Point(1, 2)


class TestPathPolyline:
    def l_path(self):
        return PathPolyline([Point(0, 0), Point(10, 0), Point(10, 5)])

    def test_length_is_sum_of_manhattan_legs(self):
        assert self.l_path().length == 15

    def test_point_at_length_on_legs(self):
        path = self.l_path()
        assert path.point_at_length(0) == Point(0, 0)
        assert path.point_at_length(10) == Point(10, 0)
        assert path.point_at_length(12) == Point(10, 2)
        assert path.point_at_length(15) == Point(10, 5)

    def test_point_at_length_clamps(self):
        path = self.l_path()
        assert path.point_at_length(-3) == Point(0, 0)
        assert path.point_at_length(99) == Point(10, 5)

    def test_prefix_length(self):
        path = self.l_path()
        assert path.prefix_length(0) == 0
        assert path.prefix_length(1) == 10
        assert path.prefix_length(2) == 15

    def test_reversed_preserves_length(self):
        path = self.l_path()
        assert path.reversed().length == path.length
        assert path.reversed().points[0] == Point(10, 5)

    def test_subpath_interior(self):
        sub = self.l_path().subpath(5, 12)
        assert sub.length == pytest.approx(7)
        assert sub.points[0] == Point(5, 0)
        assert sub.points[-1] == Point(10, 2)
        # Keeps the bend vertex.
        assert Point(10, 0) in sub.points

    def test_subpath_clamps(self):
        sub = self.l_path().subpath(-5, 100)
        assert sub.length == pytest.approx(15)

    def test_subpath_degenerate(self):
        sub = self.l_path().subpath(7, 7)
        assert sub.length == 0
        assert len(sub.points) == 2

    def test_concat_with_shared_seam(self):
        a = PathPolyline([Point(0, 0), Point(5, 0)])
        b = PathPolyline([Point(5, 0), Point(5, 5)])
        joined = a.concat(b)
        assert joined.length == 10
        assert len(joined.points) == 3

    def test_concat_without_shared_seam(self):
        a = PathPolyline([Point(0, 0), Point(5, 0)])
        b = PathPolyline([Point(5, 2), Point(5, 5)])
        joined = a.concat(b)
        assert joined.length == pytest.approx(5 + 2 + 3)

    def test_single_point_rejected_for_empty(self):
        with pytest.raises(ValueError):
            PathPolyline([])

    def test_arc_length_ge_manhattan_between_any_params(self):
        path = self.l_path()
        p1, p2 = path.point_at_length(2), path.point_at_length(13)
        assert 11 >= p1.manhattan_to(p2) - 1e-9
