"""Circuit assembly and SPICE-netlist round-tripping."""

import pytest

from repro.spice.circuit import Circuit, GROUND, VDD
from repro.spice.netlist import parse_netlist, write_netlist
from repro.spice.transient import TransientOptions, simulate
from repro.tech import cts_buffer_library, default_technology
from repro.timing.waveform import ramp_waveform


@pytest.fixture()
def tech():
    return default_technology()


class TestCircuitAssembly:
    def test_wire_segmentation(self, tech):
        circuit = Circuit(tech)
        internal = circuit.add_wire("a", "b", 2000.0, segment_length=400.0)
        assert len(internal) == 4  # 5 segments -> 4 internal nodes
        assert len(circuit.resistors) == 5
        total_r = sum(r.r for r in circuit.resistors)
        assert total_r == pytest.approx(tech.wire.total_r(2000.0))
        total_c = sum(c.c for c in circuit.caps)
        assert total_c == pytest.approx(tech.wire.total_c(2000.0))

    def test_zero_length_wire_shorts(self, tech):
        circuit = Circuit(tech)
        internal = circuit.add_wire("a", "b", 0.0)
        assert internal == []
        assert circuit.resistors[0].r <= 1e-3

    def test_wire_segment_cap_distribution(self, tech):
        """pi model: end nodes get half a segment's cap."""
        circuit = Circuit(tech)
        circuit.add_wire("a", "b", 800.0, segment_length=400.0)
        caps = {c.node: c.c for c in circuit.caps}
        seg_c = tech.wire.total_c(800.0) / 2
        assert caps["a"] == pytest.approx(seg_c / 2)
        assert caps["b"] == pytest.approx(seg_c / 2)

    def test_buffer_adds_two_inverters(self, tech):
        circuit = Circuit(tech)
        circuit.add_vsource("in", 0.0)
        mid = circuit.add_buffer("in", "out", cts_buffer_library()["BUF20X"])
        assert len(circuit.mosfets) == 4
        assert mid in circuit.all_nodes()
        assert any(s.node == VDD for s in circuit.sources)

    def test_negative_element_values_rejected(self, tech):
        circuit = Circuit(tech)
        with pytest.raises(ValueError):
            circuit.add_resistor("a", "b", -1.0)
        with pytest.raises(ValueError):
            circuit.add_cap("a", -1e-15)
        with pytest.raises(ValueError):
            circuit.add_wire("a", "b", -5.0)

    def test_duplicate_source_rejected(self, tech):
        circuit = Circuit(tech)
        circuit.add_vsource("in", 0.0)
        with pytest.raises(ValueError):
            circuit.add_vsource("in", 1.0)

    def test_node_and_element_counts(self, tech):
        circuit = Circuit(tech)
        circuit.add_vsource("in", 1.0)
        circuit.add_resistor("in", "out", 100.0)
        circuit.add_cap("out", 1e-15)
        assert circuit.node_count() == 2  # ground excluded
        assert circuit.element_count() == 3


class TestNetlistRoundTrip:
    def build(self, tech):
        circuit = Circuit(tech, title="roundtrip test")
        wave = ramp_waveform(tech.vdd, 80e-12, t_start=50e-12)
        circuit.add_vsource("in", wave)
        circuit.add_buffer("in", "mid", cts_buffer_library()["BUF10X"])
        circuit.add_wire("mid", "out", 1000.0)
        circuit.add_cap("out", 10e-15)
        return circuit

    def test_roundtrip_preserves_elements(self, tech):
        original = self.build(tech)
        parsed = parse_netlist(write_netlist(original), tech)
        assert len(parsed.resistors) == len(original.resistors)
        assert len(parsed.caps) == len(original.caps)
        assert len(parsed.mosfets) == len(original.mosfets)
        assert len(parsed.sources) == len(original.sources)

    def test_roundtrip_simulates_identically(self, tech):
        original = self.build(tech)
        parsed = parse_netlist(write_netlist(original), tech)
        opts = TransientOptions(dt=1e-12)
        w1 = simulate(original, opts).waveform("out")
        w2 = simulate(parsed, opts).waveform("out")
        d1 = w1.cross_time(0.5 * tech.vdd)
        d2 = w2.cross_time(0.5 * tech.vdd)
        assert d1 == pytest.approx(d2, abs=0.2e-12)

    def test_netlist_contains_cards(self, tech):
        text = write_netlist(self.build(tech))
        assert text.startswith("*")
        assert ".END" in text
        assert "PWL(" in text
        assert "NMOS" in text and "PMOS" in text

    def test_parse_rejects_garbage(self, tech):
        with pytest.raises(ValueError):
            parse_netlist("Q1 a b c\n", tech)

    def test_parse_rejects_ungrounded_cap(self, tech):
        with pytest.raises(ValueError):
            parse_netlist("C1 a b 1e-15\n", tech)
