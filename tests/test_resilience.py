"""Fault-tolerant synthesis: degradation, checkpoint/resume, fault plans.

The contract under test: every fast path of the flow (worker pool,
lockstep batched commit, shared-window routing, level-batched route
finishing) degrades on failure to its retained scalar fallback with a
bit-identical tree and exactly one recorded ``Degradation`` per cause;
strict mode re-raises instead; and a synthesis killed at a level
boundary resumes from its checkpoint bit-identically.

Deterministic faults come from :mod:`repro.evalx.faultinject`
(``site:index:mode`` plans); every test compares against a clean run's
``tree_signature``.
"""

from __future__ import annotations

import os

import pytest

from repro.core import AggressiveBufferedCTS, CTSOptions
from repro.core.checkpoint import (
    CorruptCheckpointError,
    load_checkpoint,
    options_digest,
    sinks_digest,
)
from repro.evalx.faultinject import (
    FaultInjected,
    FaultPlan,
    SynthesisHalted,
    reset_plans,
)
from repro.geom.bbox import BBox
from repro.tree.export import tree_signature
from repro.tree.nodes import peek_node_id

from tests.conftest import make_sink_pairs

BLOCKAGES = [BBox(8000.0, 8000.0, 16000.0, 16000.0)]


@pytest.fixture(autouse=True)
def _fresh_fault_plans():
    """Tests reuse plan texts; firing state must not leak between them."""
    reset_plans()
    yield
    reset_plans()


def synth(sinks, blockages=None, **option_overrides):
    """One synthesis run plus the rebased signature of its tree.

    Chaos/strict CI legs export ``REPRO_FAULT_PLAN``/``REPRO_STRICT``;
    pin both so this module's reference runs stay clean under them.
    """
    option_overrides.setdefault("fault_plan", "")
    option_overrides.setdefault("strict", False)
    option_overrides.setdefault("workers", 0)
    options = CTSOptions(**option_overrides)
    cts = AggressiveBufferedCTS(options=options, blockages=blockages)
    base = peek_node_id()
    result = cts.synthesize(sinks)
    return tree_signature(result.tree, base), result, cts


POOL = dict(workers=2, parallel_min_level_size=1, merge_batch_size=2)


def blocked_sinks(n, seed):
    """Sinks clear of the blockage (terminals inside a macro are invalid)."""
    clear = [bbox.expanded(1200.0) for bbox in BLOCKAGES]
    sinks = [
        (p, c)
        for p, c in make_sink_pairs(n, 30000.0, seed=seed)
        if not any(region.contains(p) for region in clear)
    ]
    assert len(sinks) >= 10
    return sinks


class TestFaultPlanGrammar:
    def test_parse(self):
        plan = FaultPlan.parse("worker_batch:2:crash, batch_commit:1:raise")
        assert [(s.site, s.index, s.mode) for s in plan.specs] == [
            ("worker_batch", 2, "crash"),
            ("batch_commit", 1, "raise"),
        ]

    def test_empty_plan(self):
        assert FaultPlan.parse("").specs == ()

    @pytest.mark.parametrize(
        "text, message",
        [
            ("worker_batch:2", "expected site:index:mode"),
            ("warp_core:0:raise", "unknown site"),
            ("batch_commit:0:explode", "unknown mode"),
            ("batch_commit:x:raise", "index must be an integer"),
            ("batch_commit:-1:raise", "index must be >= 0"),
        ],
    )
    def test_bad_specs_rejected(self, text, message):
        with pytest.raises(ValueError, match=message):
            FaultPlan.parse(text)

    def test_counter_site_fires_once(self):
        plan = FaultPlan.parse("batch_commit:1:raise")
        plan.consult("batch_commit")  # visit 0
        with pytest.raises(FaultInjected):
            plan.consult("batch_commit")  # visit 1 fires
        plan.consult("batch_commit")  # never re-fires

    def test_ordinal_site_refires(self):
        plan = FaultPlan.parse("worker_batch:3:raise")
        plan.consult("worker_batch", 2)
        with pytest.raises(FaultInjected):
            plan.consult("worker_batch", 3)
        with pytest.raises(FaultInjected):
            plan.consult("worker_batch", 3)  # a retried batch fails again


class TestPoolDegradation:
    def _clean_and_faulted(self, fault_plan, n=16, **overrides):
        sinks = make_sink_pairs(n, 30000.0, seed=21)
        clean_sig, clean, _ = synth(sinks)
        reset_plans()
        sig, result, cts = synth(
            sinks, fault_plan=fault_plan, **{**POOL, **overrides}
        )
        assert sig == clean_sig
        return result, cts

    def test_worker_exception_degrades_one_batch(self):
        result, cts = self._clean_and_faulted("worker_batch:1:raise")
        assert [d.component for d in result.degradations] == ["pool"]
        assert "worker batch 1 failed" in result.degradations[0].reason
        assert cts.parallel_fallback_reason is None

    def test_worker_crash_respawns_pool(self):
        result, cts = self._clean_and_faulted("worker_batch:2:crash")
        assert [d.component for d in result.degradations] == ["pool"]
        # One break is within the respawn budget: not permanent.
        assert cts.parallel_fallback_reason is None

    def test_second_crash_degrades_permanently(self):
        result, cts = self._clean_and_faulted(
            "worker_batch:0:crash,worker_batch:6:crash"
        )
        assert [d.component for d in result.degradations] == ["pool", "pool"]
        assert cts.parallel_fallback_reason is not None
        assert "permanently" in cts.parallel_fallback_reason

    def test_timeout_backoff_then_degrade(self):
        # The injected timeout sleeps past the retry's doubled budget,
        # so the ladder concludes the pool is wedged and replaces it.
        result, __ = self._clean_and_faulted(
            "worker_batch:2:timeout", pool_timeout=0.2
        )
        assert [d.component for d in result.degradations] == ["pool"]
        assert "timed out twice" in result.degradations[0].reason

    def test_strict_mode_reraises_and_cleans_up(self, monkeypatch):
        import repro.core.cts as cts_mod

        captured = []
        original = cts_mod.AggressiveBufferedCTS._make_executor

        def capture(self):
            executor = original(self)
            captured.append(executor)
            return executor

        monkeypatch.setattr(
            cts_mod.AggressiveBufferedCTS, "_make_executor", capture
        )
        sinks = make_sink_pairs(16, 30000.0, seed=21)
        with pytest.raises(RuntimeError, match="strict mode"):
            synth(sinks, fault_plan="worker_batch:1:raise", strict=True, **POOL)
        # The failed level released its pool (no leaked workers).
        assert captured and captured[0]._pool is None


class TestKernelDegradation:
    def _clean_and_faulted(self, fault_plan, **overrides):
        sinks = blocked_sinks(18, seed=22)
        clean_sig, __, __ = synth(sinks, blockages=BLOCKAGES)
        reset_plans()
        sig, result, __ = synth(
            sinks, blockages=BLOCKAGES, fault_plan=fault_plan, **overrides
        )
        assert sig == clean_sig
        return result

    def test_batch_commit_degrades_scalar(self, monkeypatch):
        import repro.core.batch_commit as bc

        # Small instances would answer every round scalar anyway; force
        # the vectorized path so the guard actually runs.
        monkeypatch.setattr(bc, "SCALAR_ROUND_ROWS", 1)
        result = self._clean_and_faulted("batch_commit:1:raise")
        assert [d.component for d in result.degradations] == ["batch_commit"]
        assert result.degradations[0].level >= 1

    def test_shared_windows_degrades_per_pair(self):
        result = self._clean_and_faulted("shared_windows:1:raise")
        assert [d.component for d in result.degradations] == ["shared_windows"]

    def test_batch_expansion_degrades_per_pair(self):
        result = self._clean_and_faulted("batch_expansion:0:raise")
        assert [d.component for d in result.degradations] == [
            "batch_expansion"
        ]

    def test_route_finish_degrades_per_pair(self):
        result = self._clean_and_faulted("route_finish:0:raise")
        assert [d.component for d in result.degradations] == [
            "batch_route_finish"
        ]

    def test_strict_mode_reraises_kernel_fault(self):
        sinks = blocked_sinks(18, seed=22)
        with pytest.raises(FaultInjected):
            synth(
                sinks,
                blockages=BLOCKAGES,
                fault_plan="route_finish:0:raise",
                strict=True,
            )


class TestMemoryErrorPropagation:
    """Degradation guards must never swallow MemoryError.

    Every kernel guard catches broad ``Exception`` to replay through its
    bit-identical fallback, but each one re-raises ``MemoryError`` first:
    degrading on OOM would retry the same allocation on the slow path and
    thrash.  The ``oom`` fault mode raises a real ``MemoryError`` at the
    consult point; it must surface even in non-strict runs.
    """

    @pytest.mark.parametrize(
        "fault_plan",
        [
            "batch_commit:1:oom",
            "shared_windows:1:oom",
            "batch_expansion:0:oom",
            "route_finish:0:oom",
        ],
    )
    def test_oom_surfaces_in_non_strict_runs(self, fault_plan, monkeypatch):
        import repro.core.batch_commit as bc

        # Force the vectorized commit path so its guard actually runs
        # on this small instance (same trick as TestKernelDegradation).
        monkeypatch.setattr(bc, "SCALAR_ROUND_ROWS", 1)
        sinks = blocked_sinks(18, seed=22)
        with pytest.raises(MemoryError):
            synth(sinks, blockages=BLOCKAGES, fault_plan=fault_plan)


class TestCheckpointResume:
    def _sinks(self):
        return blocked_sinks(20, seed=23)

    def test_halt_then_resume_bit_identical(self, tmp_path):
        sinks = self._sinks()
        clean_sig, clean, __ = synth(sinks, blockages=BLOCKAGES)
        reset_plans()
        ckpt_dir = str(tmp_path / "ckpt")
        # Capture the base BEFORE the interrupted run: nodes created
        # before the halt keep their original ids through the resume.
        base = peek_node_id()
        with pytest.raises(SynthesisHalted):
            synth(
                sinks,
                blockages=BLOCKAGES,
                checkpoint_dir=ckpt_dir,
                fault_plan="checkpoint:1:halt",
            )
        written = sorted(os.listdir(ckpt_dir))
        assert written == ["level_0001.ckpt", "level_0002.ckpt"]
        reset_plans()
        options = CTSOptions(resume_from=ckpt_dir, fault_plan="", strict=False)
        cts = AggressiveBufferedCTS(options=options, blockages=BLOCKAGES)
        resumed = cts.synthesize(sinks)
        assert resumed.resumed_from == 2
        assert resumed.levels == clean.levels
        assert tree_signature(resumed.tree, base) == clean_sig
        assert resumed.merge_stats == clean.merge_stats

    def test_resume_across_execution_modes(self, tmp_path):
        """A checkpoint from a batched run resumes under scalar knobs."""
        sinks = self._sinks()
        clean_sig, __, __ = synth(sinks, blockages=BLOCKAGES)
        ckpt_dir = str(tmp_path / "ckpt")
        base = peek_node_id()
        with pytest.raises(SynthesisHalted):
            synth(
                sinks,
                blockages=BLOCKAGES,
                checkpoint_dir=ckpt_dir,
                fault_plan="checkpoint:0:halt",
            )
        reset_plans()
        sig, resumed, __ = synth(
            sinks,
            blockages=BLOCKAGES,
            resume_from=ckpt_dir,
            batch_commit=False,
            shared_windows=False,
        )
        assert resumed.resumed_from == 1
        assert tree_signature(resumed.tree, base) == clean_sig

    def test_resume_rejects_different_sinks(self, tmp_path):
        sinks = self._sinks()
        ckpt_dir = str(tmp_path / "ckpt")
        with pytest.raises(SynthesisHalted):
            synth(
                sinks,
                blockages=BLOCKAGES,
                checkpoint_dir=ckpt_dir,
                fault_plan="checkpoint:0:halt",
            )
        other = blocked_sinks(20, seed=99)
        with pytest.raises(ValueError, match="different sink instance"):
            synth(other, blockages=BLOCKAGES, resume_from=ckpt_dir)

    def test_resume_rejects_different_result_options(self, tmp_path):
        sinks = self._sinks()
        ckpt_dir = str(tmp_path / "ckpt")
        with pytest.raises(SynthesisHalted):
            synth(
                sinks,
                blockages=BLOCKAGES,
                checkpoint_dir=ckpt_dir,
                fault_plan="checkpoint:0:halt",
            )
        with pytest.raises(ValueError, match="different\n?.*options"):
            synth(
                sinks,
                blockages=BLOCKAGES,
                resume_from=ckpt_dir,
                grid_resolution=50,
            )

    def test_resume_missing_path_rejected(self, tmp_path):
        sinks = self._sinks()
        with pytest.raises(ValueError, match="does not exist"):
            synth(sinks, resume_from=str(tmp_path / "nope.ckpt"))
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(ValueError, match="no checkpoints"):
            synth(sinks, resume_from=str(empty))

    def test_truncated_latest_is_bypassed_on_resume(self, tmp_path):
        """A torn newest checkpoint costs one level, never the resume."""
        sinks = self._sinks()
        clean_sig, clean, __ = synth(sinks, blockages=BLOCKAGES)
        reset_plans()
        ckpt_dir = str(tmp_path / "ckpt")
        base = peek_node_id()
        with pytest.raises(SynthesisHalted):
            synth(
                sinks,
                blockages=BLOCKAGES,
                checkpoint_dir=ckpt_dir,
                fault_plan="checkpoint:1:halt",
            )
        top = os.path.join(ckpt_dir, "level_0002.ckpt")
        with open(top, "r+b") as fh:
            fh.truncate(os.path.getsize(top) // 2)
        reset_plans()
        with pytest.warns(RuntimeWarning, match="skipping corrupt"):
            sig, resumed, __ = synth(
                sinks, blockages=BLOCKAGES, resume_from=ckpt_dir
            )
        assert resumed.resumed_from == 1
        assert resumed.levels == clean.levels
        assert tree_signature(resumed.tree, base) == clean_sig

    def test_injected_torn_write_is_bypassed_on_resume(self, tmp_path):
        """The checkpoint_torn fault site produces a skippable file."""
        sinks = self._sinks()
        clean_sig, __, __ = synth(sinks, blockages=BLOCKAGES)
        reset_plans()
        ckpt_dir = str(tmp_path / "ckpt")
        base = peek_node_id()
        with pytest.raises(SynthesisHalted):
            synth(
                sinks,
                blockages=BLOCKAGES,
                checkpoint_dir=ckpt_dir,
                # Tear the second snapshot, then die holding it as the
                # newest file — resume must fall back to level 1.
                fault_plan="checkpoint_torn:1:torn,checkpoint:1:halt",
            )
        reset_plans()
        with pytest.warns(RuntimeWarning, match="skipping corrupt"):
            sig, resumed, __ = synth(
                sinks, blockages=BLOCKAGES, resume_from=ckpt_dir
            )
        assert resumed.resumed_from == 1
        assert tree_signature(resumed.tree, base) == clean_sig

    def test_corrupt_explicit_file_gets_no_second_chance(self, tmp_path):
        sinks = self._sinks()
        ckpt_dir = str(tmp_path / "ckpt")
        with pytest.raises(SynthesisHalted):
            synth(
                sinks,
                blockages=BLOCKAGES,
                checkpoint_dir=ckpt_dir,
                fault_plan="checkpoint:1:halt",
            )
        top = os.path.join(ckpt_dir, "level_0002.ckpt")
        with open(top, "r+b") as fh:
            fh.truncate(os.path.getsize(top) // 2)
        with pytest.raises(CorruptCheckpointError, match="digest"):
            synth(sinks, blockages=BLOCKAGES, resume_from=top)

    def test_all_corrupt_dir_rejected_loudly(self, tmp_path):
        sinks = self._sinks()
        ckpt_dir = str(tmp_path / "ckpt")
        with pytest.raises(SynthesisHalted):
            synth(
                sinks,
                blockages=BLOCKAGES,
                checkpoint_dir=ckpt_dir,
                fault_plan="checkpoint:0:halt",
            )
        for name in sorted(os.listdir(ckpt_dir)):
            with open(os.path.join(ckpt_dir, name), "r+b") as fh:
                fh.truncate(4)
        with pytest.warns(RuntimeWarning, match="skipping corrupt"):
            with pytest.raises(
                CorruptCheckpointError, match="no valid checkpoint"
            ):
                synth(sinks, blockages=BLOCKAGES, resume_from=ckpt_dir)

    def test_digests_are_mode_independent(self):
        sinks = self._sinks()
        a = CTSOptions(workers=0, batch_commit=True, strict=False)
        b = CTSOptions(
            workers=4, batch_commit=False, strict=True, pool_timeout=5.0
        )
        assert options_digest(a) == options_digest(b)
        assert options_digest(a) != options_digest(
            CTSOptions(grid_resolution=50)
        )
        assert sinks_digest(sinks) == sinks_digest(list(sinks))

    def test_loaded_state_roundtrips(self, tmp_path):
        sinks = self._sinks()
        ckpt_dir = str(tmp_path / "ckpt")
        with pytest.raises(SynthesisHalted):
            synth(
                sinks,
                blockages=BLOCKAGES,
                checkpoint_dir=ckpt_dir,
                fault_plan="checkpoint:1:halt",
            )
        options = CTSOptions(fault_plan="", strict=False)
        cts = AggressiveBufferedCTS(options=options, blockages=BLOCKAGES)
        state = load_checkpoint(ckpt_dir, sinks, options, cts.buffers)
        assert state.levels_done == 2
        assert state.next_node_id <= peek_node_id()
        for subtree in state.subtrees:
            # Child order survived the round trip (walk() reverses it,
            # which is exactly why the encoder must not use walk()).
            for node in subtree.root.walk():
                for child in node.children:
                    assert child.parent is node
