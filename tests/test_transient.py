"""The backward-Euler transient solver against analytic references."""

import math

import numpy as np
import pytest

from repro.spice.circuit import Circuit
from repro.spice.transient import TransientOptions, dc_operating_point, simulate
from repro.tech import cts_buffer_library, default_technology
from repro.timing.waveform import Waveform, ramp_waveform


@pytest.fixture(scope="module")
def tech():
    return default_technology()


def step_source(vdd, t_step=10e-12, t_end=2e-9):
    times = np.array([0.0, t_step, t_step + 1e-15, t_end])
    values = np.array([0.0, 0.0, vdd, vdd])
    return Waveform(times, values)


class TestLinearRC:
    def test_rc_step_response_matches_analytic(self, tech):
        """Single R-C low-pass: v(t) = 1 - exp(-t/RC)."""
        r, c = 1000.0, 100e-15  # tau = 100 ps
        circuit = Circuit(tech)
        circuit.add_vsource("in", step_source(1.0))
        circuit.add_resistor("in", "out", r)
        circuit.add_cap("out", c)
        result = simulate(circuit, TransientOptions(dt=0.5e-12, t_stop=1.0e-9, auto_stop=False))
        wave = result.waveform("out")
        tau = r * c
        for t_rel in (0.5 * tau, tau, 2 * tau, 4 * tau):
            expected = 1.0 - math.exp(-t_rel / tau)
            measured = wave.value_at(10e-12 + t_rel)
            assert measured == pytest.approx(expected, abs=0.01)

    def test_rc_ladder_delay_close_to_elmore(self, tech):
        """A 10-section ladder's 50% delay ~ 0.69 * Elmore."""
        n, r_seg, c_seg = 10, 100.0, 20e-15
        circuit = Circuit(tech)
        circuit.add_vsource("in", step_source(1.0))
        prev = "in"
        for i in range(n):
            node = f"n{i}"
            circuit.add_resistor(prev, node, r_seg)
            circuit.add_cap(node, c_seg)
            prev = node
        result = simulate(circuit, TransientOptions(dt=0.25e-12, t_stop=1.0e-9, auto_stop=False))
        delay = result.waveform(prev).cross_time(0.5) - 10e-12
        # Ladder Elmore: sum_k (k+1) * r_seg * c_seg; 50% delay ~ 0.69x it.
        elmore = r_seg * c_seg * n * (n + 1) / 2.0
        assert delay == pytest.approx(0.69 * elmore, rel=0.15)

    def test_charge_conservation_settles_to_source(self, tech):
        circuit = Circuit(tech)
        circuit.add_vsource("in", step_source(0.8))
        circuit.add_resistor("in", "a", 500.0)
        circuit.add_resistor("a", "b", 500.0)
        circuit.add_cap("a", 50e-15)
        circuit.add_cap("b", 50e-15)
        result = simulate(circuit, TransientOptions(dt=1e-12, t_stop=2e-9, auto_stop=False))
        assert result.final_voltage("a") == pytest.approx(0.8, abs=1e-3)
        assert result.final_voltage("b") == pytest.approx(0.8, abs=1e-3)


class TestInverterAndBuffer:
    def test_dc_inverter_rails(self, tech):
        circuit = Circuit(tech)
        circuit.add_vsource("in", 0.0)
        circuit.add_inverter("in", "out", 10.0)
        op = dc_operating_point(circuit)
        assert op["out"] == pytest.approx(tech.vdd, abs=0.02)

        circuit2 = Circuit(tech)
        circuit2.add_vsource("in", tech.vdd)
        circuit2.add_inverter("in", "out", 10.0)
        op2 = dc_operating_point(circuit2)
        assert op2["out"] == pytest.approx(0.0, abs=0.02)

    def test_buffer_is_non_inverting(self, tech):
        buf = cts_buffer_library()["BUF20X"]
        circuit = Circuit(tech)
        circuit.add_vsource("in", ramp_waveform(tech.vdd, 80e-12, t_start=50e-12))
        circuit.add_buffer("in", "out", buf)
        circuit.add_cap("out", 20e-15)
        result = simulate(circuit, TransientOptions(dt=1e-12))
        out = result.waveform("out")
        assert out.v_initial < 0.05
        assert out.v_final > 0.95 * tech.vdd

    def test_buffer_delay_positive_and_reasonable(self, tech):
        buf = cts_buffer_library()["BUF20X"]
        circuit = Circuit(tech)
        wave = ramp_waveform(tech.vdd, 80e-12, t_start=50e-12)
        circuit.add_vsource("in", wave)
        circuit.add_buffer("in", "out", buf)
        circuit.add_cap("out", 20e-15)
        result = simulate(circuit, TransientOptions(dt=1e-12))
        delay = result.waveform("out").cross_time(0.5) - wave.cross_time(0.5)
        assert 10e-12 < delay < 150e-12

    def test_larger_buffer_faster_into_same_load(self, tech):
        lib = cts_buffer_library()
        delays = {}
        for name in ("BUF10X", "BUF30X"):
            circuit = Circuit(tech)
            wave = ramp_waveform(tech.vdd, 80e-12, t_start=50e-12)
            circuit.add_vsource("in", wave)
            circuit.add_buffer("in", "out", lib[name])
            circuit.add_cap("out", 100e-15)
            result = simulate(circuit, TransientOptions(dt=1e-12))
            delays[name] = result.waveform("out").cross_time(0.5)
        assert delays["BUF30X"] < delays["BUF10X"]


class TestSolverControls:
    def test_auto_stop_trims_window(self, tech):
        circuit = Circuit(tech)
        circuit.add_vsource("in", step_source(1.0, t_end=100e-12))
        circuit.add_resistor("in", "out", 100.0)
        circuit.add_cap("out", 10e-15)  # tau = 1 ps, settles instantly
        result = simulate(
            circuit, TransientOptions(dt=1e-12, t_stop=5e-9, auto_stop=True)
        )
        assert result.times[-1] < 1e-9

    def test_t_start_offsets_timebase(self, tech):
        circuit = Circuit(tech)
        wave = ramp_waveform(1.0, 50e-12, t_start=1.0e-9)
        circuit.add_vsource("in", wave)
        circuit.add_resistor("in", "out", 100.0)
        circuit.add_cap("out", 10e-15)
        result = simulate(
            circuit,
            TransientOptions(dt=1e-12, t_start=0.9e-9, t_stop=1.6e-9, auto_stop=False),
        )
        assert result.times[0] == pytest.approx(0.9e-9)
        cross = result.waveform("out").cross_time(0.5)
        assert cross > 1.0e-9

    def test_waveform_for_unknown_node_raises(self, tech):
        circuit = Circuit(tech)
        circuit.add_vsource("in", step_source(1.0))
        circuit.add_resistor("in", "out", 100.0)
        circuit.add_cap("out", 10e-15)
        result = simulate(circuit, TransientOptions(dt=1e-12, t_stop=0.1e-9))
        with pytest.raises(KeyError):
            result.waveform("nope")

    def test_ground_waveform_is_zero(self, tech):
        circuit = Circuit(tech)
        circuit.add_vsource("in", step_source(1.0))
        circuit.add_resistor("in", "out", 100.0)
        circuit.add_cap("out", 10e-15)
        result = simulate(circuit, TransientOptions(dt=1e-12, t_stop=0.1e-9))
        assert np.all(result.waveform("0").values == 0)
