"""Benchmark instances: generators, parsers, scaling."""

import pytest

from repro.benchio import (
    GSRC_SINK_COUNTS,
    ISPD_SINK_COUNTS,
    BenchmarkInstance,
    Sink,
    clustered_instance,
    gsrc_instance,
    gsrc_suite,
    ispd_instance,
    ispd_suite,
    parse_gsrc,
    parse_ispd,
    random_instance,
)
from repro.geom import Point


class TestGenerators:
    def test_random_instance_counts_and_bounds(self):
        inst = random_instance(50, 10000.0, seed=1)
        assert inst.n_sinks == 50
        box = inst.bbox()
        assert box.xmin >= 0 and box.xmax <= 10000

    def test_seeded_determinism(self):
        a = random_instance(20, 5000.0, seed=7)
        b = random_instance(20, 5000.0, seed=7)
        assert [s.location for s in a.sinks] == [s.location for s in b.sinks]
        c = random_instance(20, 5000.0, seed=8)
        assert [s.location for s in a.sinks] != [s.location for s in c.sinks]

    def test_clustered_instance_clusters(self):
        inst = clustered_instance(100, 50000.0, n_clusters=3, seed=2)
        assert inst.n_sinks == 100
        # Clustered: mean nearest-neighbor distance far below uniform.
        pts = [s.location for s in inst.sinks]
        nn = []
        for i, p in enumerate(pts[:30]):
            nn.append(min(p.manhattan_to(q) for j, q in enumerate(pts) if j != i))
        uniform_spacing = 50000.0 / (100**0.5)
        assert sum(nn) / len(nn) < uniform_spacing

    def test_cap_range_respected(self):
        inst = random_instance(30, 1000.0, seed=0, cap_range=(5e-15, 6e-15))
        for sink in inst.sinks:
            assert 5e-15 <= sink.cap <= 6e-15

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            random_instance(0, 100.0)
        with pytest.raises(ValueError):
            clustered_instance(10, 100.0, n_clusters=0)


class TestSuites:
    def test_gsrc_published_sink_counts(self):
        assert GSRC_SINK_COUNTS == {
            "r1": 267, "r2": 598, "r3": 862, "r4": 1903, "r5": 3101,
        }
        for inst in gsrc_suite():
            assert inst.n_sinks == GSRC_SINK_COUNTS[inst.name]

    def test_ispd_published_sink_counts(self):
        assert sum(ISPD_SINK_COUNTS.values()) == 121 + 117 + 117 + 91 + 273 + 190 + 330
        for inst in ispd_suite():
            assert inst.n_sinks == ISPD_SINK_COUNTS[inst.name]

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(KeyError):
            gsrc_instance("r9")
        with pytest.raises(KeyError):
            ispd_instance("f99")

    def test_ispd_larger_than_gsrc(self):
        """The paper: ISPD chips have larger areas (harder slew)."""
        r1 = gsrc_instance("r1").bbox()
        fnb1 = ispd_instance("fnb1").bbox()
        assert fnb1.half_perimeter > r1.half_perimeter


class TestScaling:
    def test_scaled_down(self):
        inst = gsrc_instance("r1").scaled_down(40, seed=1)
        assert inst.n_sinks == 40
        assert inst.meta["scaled_from"] == 267
        assert inst.name == "r1@40"

    def test_scaled_down_noop_when_bigger(self):
        inst = gsrc_instance("r1")
        assert inst.scaled_down(1000) is inst

    def test_scaled_down_deterministic(self):
        a = gsrc_instance("r2").scaled_down(30, seed=5)
        b = gsrc_instance("r2").scaled_down(30, seed=5)
        assert [s.name for s in a.sinks] == [s.name for s in b.sinks]


class TestParsers:
    def test_parse_gsrc_roundtrip(self, tmp_path):
        path = tmp_path / "toy.bst"
        path.write_text(
            "# toy benchmark\n"
            "NumSinks : 3\n"
            "s0 100.0 200.0 5e-15\n"
            "s1 300.0 400.0 6e-15\n"
            "s2 500.0 600.0 7e-15\n"
        )
        inst = parse_gsrc(path)
        assert inst.n_sinks == 3
        assert inst.sinks[1].location == Point(300.0, 400.0)
        assert inst.sinks[2].cap == pytest.approx(7e-15)

    def test_parse_gsrc_count_mismatch(self, tmp_path):
        path = tmp_path / "bad.bst"
        path.write_text("NumSinks : 5\ns0 0 0 1e-15\n")
        with pytest.raises(ValueError):
            parse_gsrc(path)

    def test_parse_ispd(self, tmp_path):
        path = tmp_path / "toy.ispd"
        path.write_text(
            "num sink 2\n"
            "1 1000 2000 35\n"
            "2 3000 4000 20\n"
            "num blockage 1\n"
            "1500 2500 2500 3500\n"
        )
        inst = parse_ispd(path)
        assert inst.n_sinks == 2
        assert inst.sinks[0].cap == pytest.approx(35e-15)  # fF -> F
        assert len(inst.blockages) == 1

    def test_parse_ispd_garbage_rejected(self, tmp_path):
        path = tmp_path / "bad.ispd"
        path.write_text("1 2 3 4\n")
        with pytest.raises(ValueError):
            parse_ispd(path)


class TestInstanceValidation:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BenchmarkInstance("x", [])

    def test_duplicate_names_rejected(self):
        sinks = [Sink("a", Point(0, 0), 1e-15), Sink("a", Point(1, 1), 1e-15)]
        with pytest.raises(ValueError):
            BenchmarkInstance("x", sinks)

    def test_sink_pairs(self):
        inst = random_instance(5, 100.0, seed=1)
        pairs = inst.sink_pairs()
        assert len(pairs) == 5
        assert pairs[0][0] == inst.sinks[0].location

    def test_nan_sink_location_rejected(self):
        sinks = [
            Sink("a", Point(0.0, 0.0), 1e-15),
            Sink("b", Point(float("nan"), 10.0), 1e-15),
        ]
        with pytest.raises(ValueError, match="'b'.*non-finite location"):
            BenchmarkInstance("x", sinks)

    def test_inf_sink_location_rejected(self):
        sinks = [Sink("a", Point(float("inf"), 0.0), 1e-15)]
        with pytest.raises(ValueError, match="'a'.*non-finite location"):
            BenchmarkInstance("x", sinks)

    def test_nonpositive_sink_cap_rejected(self):
        for bad_cap in (0.0, -1e-15, float("nan"), float("inf")):
            sinks = [Sink("a", Point(0, 0), bad_cap)]
            with pytest.raises(ValueError, match="'a'.*load cap"):
                BenchmarkInstance("x", sinks)

    def test_nonfinite_source_rejected(self):
        sinks = [Sink("a", Point(0, 0), 1e-15)]
        with pytest.raises(ValueError, match="non-finite source"):
            BenchmarkInstance("x", sinks, source=Point(float("nan"), 0.0))

    def test_zero_area_blockage_rejected(self):
        from repro.geom.bbox import BBox

        sinks = [Sink("a", Point(0, 0), 1e-15), Sink("b", Point(100, 100), 1e-15)]
        with pytest.raises(ValueError, match="blockage #0 .*zero area"):
            BenchmarkInstance("x", sinks, blockages=[BBox(50, 50, 50, 90)])

    def test_out_of_die_blockage_rejected(self):
        from repro.geom.bbox import BBox

        sinks = [Sink("a", Point(0, 0), 1e-15), Sink("b", Point(100, 100), 1e-15)]
        with pytest.raises(ValueError, match="blockage #1 .*outside the die"):
            BenchmarkInstance(
                "x",
                sinks,
                blockages=[BBox(10, 10, 20, 20), BBox(9000, 9000, 9500, 9500)],
            )

    def test_in_die_blockage_accepted(self):
        from repro.geom.bbox import BBox

        sinks = [Sink("a", Point(0, 0), 1e-15), Sink("b", Point(100, 100), 1e-15)]
        # Partially overhanging the sink bbox is fine — routing windows
        # expand past it, so such a blockage still matters.
        inst = BenchmarkInstance(
            "x", sinks, blockages=[BBox(80, 80, 140, 140)]
        )
        assert len(inst.blockages) == 1
