"""Merge-routing edge cases: blockages, window growth, trunk routing."""

import pytest

from repro.core.maze_router import blocked_path
from repro.core.merge_routing import MergeRouter
from repro.core.options import CTSOptions
from repro.geom.bbox import BBox
from repro.geom.point import Point
from repro.geom.segment import PathPolyline
from repro.timing.analysis import LibraryTimingEngine
from repro.tree.nodes import NodeKind, make_sink
from repro.tree.validate import validate_tree


def make_router(tech, library, buffers, blockages=None, **opt_kwargs):
    options = CTSOptions(**opt_kwargs)
    engine = LibraryTimingEngine(library, tech)
    return MergeRouter(tech, library, buffers, engine, options, blockages)


class TestBlockedMerges:
    def test_merge_detours_blockage(self, tech, library, buffers):
        wall = BBox(4500, -1200, 5500, 1200)
        router = make_router(tech, library, buffers, blockages=[wall])
        root = router.merge(make_sink(Point(0, 0), 8e-15), make_sink(Point(10000, 0), 8e-15))
        validate_tree(root)
        for node in root.walk():
            assert not wall.contains(node.location, tol=-250), node

    def test_nudge_off_blockages(self, tech, library, buffers):
        wall = BBox(1000, 1000, 2000, 2000)
        router = make_router(tech, library, buffers, blockages=[wall])
        inside = Point(1500, 1400)
        moved = router._nudge_off_blockages(inside)
        assert not wall.contains(moved)
        # Projected to the nearest edge, not across the region.
        assert moved.manhattan_to(inside) <= 600
        outside = Point(0, 0)
        assert router._nudge_off_blockages(outside) == outside

    def test_trunk_routes_around_blockage(self, tech, library, buffers):
        wall = BBox(800, 2000, 5200, 3000)
        router = make_router(tech, library, buffers, blockages=[wall])
        root = router.merge(make_sink(Point(2000, 0), 8e-15), make_sink(Point(4000, 0), 8e-15))
        top, wire = router.route_trunk(root, Point(3000, 6000))
        node = top
        while node is not root:
            assert not wall.contains(node.location, tol=-250), node
            node = node.children[0]


class TestBlockedPathHelper:
    def test_direct_when_clear(self):
        path = blocked_path(Point(0, 0), Point(1000, 0), 100.0, [], 300.0)
        assert path.length == pytest.approx(1000.0, abs=150.0)

    def test_detour_length(self):
        wall = BBox(400, -150, 600, 150)
        path = blocked_path(Point(0, 0), Point(1000, 0), 50.0, [wall], 300.0)
        assert path.length > 1000.0 + 200.0
        for s in range(0, int(path.length), 25):
            assert not wall.contains(path.point_at_length(float(s)), tol=-60)

    def test_sealed_terminal_raises(self):
        ring = [
            BBox(-300, -300, 300, -100),
            BBox(-300, 100, 300, 300),
            BBox(-300, -100, -100, 100),
            BBox(100, -300, 300, 100),
        ]
        with pytest.raises((RuntimeError, ValueError)):
            blocked_path(Point(0, 0), Point(5000, 0), 50.0, ring, 200.0)


class TestRouterInternals:
    def test_delay_per_unit_plausible(self, tech, library, buffers):
        router = make_router(tech, library, buffers)
        # Buffered paths in this technology run ~0.015-0.05 ps/unit.
        assert 0.005e-12 < router._delay_per_unit < 0.1e-12

    def test_stats_accumulate(self, tech, library, buffers):
        router = make_router(tech, library, buffers)
        router.merge(make_sink(Point(0, 0), 8e-15), make_sink(Point(9000, 0), 8e-15))
        router.merge(make_sink(Point(0, 9000), 8e-15), make_sink(Point(9000, 9000), 8e-15))
        assert router.stats.n_merges == 2
        assert router.stats.n_route_buffers >= 4
        assert router.stats.binary_search_iters > 0

    def test_merge_of_snaked_roots(self, tech, library, buffers):
        """Roots that are themselves snake chains merge cleanly."""
        from repro.core.balance import snake_delay

        router = make_router(tech, library, buffers)
        a = snake_delay(
            make_sink(Point(0, 0), 8e-15), 150e-12, library, buffers,
            router.options, 8e-15,
        ).new_root
        b = snake_delay(
            make_sink(Point(5000, 0), 8e-15), 150e-12, library, buffers,
            router.options, 8e-15,
        ).new_root
        root = router.merge(a, b)
        validate_tree(root)
        # The slew clamp may override perfect balance; the residual stays
        # within a buffer-delay quantum.
        assert router.subtree_bounds(root).skew < 15e-12

    def test_disable_balance_flag(self, tech, library, buffers):
        router = make_router(tech, library, buffers, enable_balance=False)
        deep = router.merge(make_sink(Point(0, 0), 8e-15), make_sink(Point(9000, 0), 8e-15))
        shallow = make_sink(Point(2000, 9000), 8e-15)
        root = router.merge(deep, shallow)
        validate_tree(root)
        assert router.stats.n_snaked == 0
