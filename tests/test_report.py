"""The experiment-report stitcher."""

from pathlib import Path

import pytest

from repro.evalx.report import (
    SECTIONS,
    collect_sections,
    render_report,
    write_report,
)


@pytest.fixture()
def results_dir(tmp_path):
    (tmp_path / "table_5_1.txt").write_text("Table 5.1 body\nrow\n")
    (tmp_path / "fig_1_1.txt").write_text("Fig 1.1 body\n")
    return tmp_path


class TestCollect:
    def test_found_and_missing(self, results_dir):
        sections = collect_sections(results_dir)
        assert len(sections) == len(SECTIONS)
        by_key = {s.key: s for s in sections}
        assert by_key["table_5_1"].body == "Table 5.1 body\nrow"
        assert by_key["table_5_2"].body is None


class TestRender:
    def test_render_contains_bodies_and_flags(self, results_dir):
        text = render_report(results_dir=results_dir)
        assert text.startswith("# Reproduction report")
        assert "Table 5.1 body" in text
        assert "*not generated in this run*" in text
        assert f"2/{len(SECTIONS)} experiment artifacts present" in text

    def test_every_known_section_titled(self, results_dir):
        text = render_report(results_dir=results_dir)
        for __, title in SECTIONS:
            assert title in text


class TestWrite:
    def test_write_report(self, results_dir, tmp_path):
        out = write_report(path=tmp_path / "out.md", results_dir=results_dir)
        assert out.exists()
        assert "Fig 1.1 body" in out.read_text()

    def test_default_target_inside_results(self, results_dir):
        out = write_report(results_dir=results_dir)
        assert out.parent == Path(results_dir)
        assert out.name == "REPORT.md"
