"""The supervised batch runner: watchdog ladder, retry, quarantine.

The contract under test: every job of a batch runs in its own
subprocess under the parent watchdog; a crash, hang, OOM breach, or
torn checkpoint costs retries (which resume from the last valid
checkpoint, proven by resume-level counters), never the batch; jobs
that exhaust their attempts are quarantined with every attempt's
reason; and the stable projection of the JSONL event log is identical
across reruns of the same chaotic batch, with every surviving job's
tree signature bit-identical to a clean in-process run.

Budget values are chosen for CI speed: hang detection waits out the
stall threshold once per hanging attempt, so those thresholds stay in
the low seconds (far above a warm-cache level time, far below the
injected :data:`~repro.evalx.faultinject.HANG_SECONDS`).
"""

from __future__ import annotations

import json
import os

import pytest

from repro.core import AggressiveBufferedCTS, CTSOptions
from repro.evalx.faultinject import reset_plans
from repro.jobs.events import (
    RunLog,
    read_events,
    stable_view,
    summarize,
)
from repro.jobs.heartbeat import read_heartbeat, stamp_heartbeat
from repro.jobs.manifest import (
    BatchManifest,
    JobSpec,
    build_instance,
    load_manifest,
)
from repro.jobs.policy import JobPolicy
from repro.jobs.runner import BatchRunner, proc_rss_mb
from repro.tree.export import signature_digest, tree_signature
from repro.tree.nodes import peek_node_id

INSTANCE = {"kind": "random", "n_sinks": 20, "area": 20000.0, "seed": 5}

#: CI-speed budgets; every test overrides what it exercises.
FAST_POLICY = JobPolicy(
    deadline_s=180.0,
    mem_mb=0.0,
    max_retries=1,
    heartbeat_stall_s=30.0,
)


@pytest.fixture(autouse=True)
def _fresh_fault_plans():
    reset_plans()
    yield
    reset_plans()


@pytest.fixture(scope="session", autouse=True)
def _warm_library_cache(library):
    """Children load the packaged library from disk; make sure the
    session builds/loads it once before any stall clock is running."""


def clean_signature(instance: dict, options: dict | None = None) -> str:
    """The in-process reference signature a batch job must reproduce."""
    inst = build_instance(instance)
    opts = CTSOptions(
        strict=False, fault_plan="", workers=0, **(options or {})
    )
    cts = AggressiveBufferedCTS(
        options=opts, blockages=inst.blockages or None
    )
    base = peek_node_id()
    result = cts.synthesize(inst.sink_pairs(), inst.source)
    return signature_digest(tree_signature(result.tree, base))


def run_batch(tmp_path, jobs, policy=None, subdir="run"):
    manifest = BatchManifest(name="test", jobs=tuple(jobs))
    runner = BatchRunner(
        manifest, str(tmp_path / subdir), policy=policy or FAST_POLICY
    )
    return runner.run()


class TestJobPolicy:
    def test_env_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOB_DEADLINE", "42")
        monkeypatch.setenv("REPRO_JOB_MEM_MB", "512")
        monkeypatch.setenv("REPRO_JOB_RETRIES", "5")
        monkeypatch.setenv("REPRO_HEARTBEAT_STALL", "9")
        policy = JobPolicy()
        assert policy.deadline_s == 42.0
        assert policy.mem_mb == 512.0
        assert policy.max_retries == 5
        assert policy.heartbeat_stall_s == 9.0
        assert policy.max_attempts == 6

    def test_backoff_schedule_is_deterministic(self):
        policy = JobPolicy(backoff_base_s=0.5, backoff_factor=2.0)
        assert policy.backoff_before(1) == 0.0
        assert policy.backoff_before(2) == 0.5
        assert policy.backoff_before(3) == 1.0
        assert policy.backoff_before(4) == 2.0

    def test_unknown_override_rejected(self):
        with pytest.raises(ValueError, match="unknown JobPolicy keys"):
            JobPolicy().with_overrides({"deadline": 5})

    def test_negative_budget_rejected(self):
        with pytest.raises(ValueError, match="deadline_s"):
            JobPolicy(deadline_s=-1)


class TestHeartbeat:
    def test_stamp_and_read(self, tmp_path):
        path = str(tmp_path / "hb")
        assert read_heartbeat(path) is None
        stamp_heartbeat(path, "level:3")
        beat = read_heartbeat(path)
        assert beat == f"{os.getpid()}:level:3\n".encode()
        stamp_heartbeat(path, "level:4")
        assert read_heartbeat(path) != beat
        assert not [n for n in os.listdir(tmp_path) if n != "hb"]


class TestManifest:
    def _write(self, tmp_path, data):
        path = tmp_path / "m.json"
        path.write_text(json.dumps(data))
        return str(path)

    def _base(self, **job_extra):
        return {
            "jobs": [{"id": "j1", "instance": dict(INSTANCE), **job_extra}]
        }

    def test_roundtrip(self, tmp_path):
        path = self._write(
            tmp_path,
            {
                "name": "demo",
                "policy": {"deadline_s": 9},
                "jobs": [
                    {
                        "id": "j1",
                        "instance": dict(INSTANCE),
                        "options": {"seed": 2},
                        "fault_plans": ["job_hang:0:hang", ""],
                    }
                ],
            },
        )
        manifest = load_manifest(path)
        assert manifest.name == "demo"
        assert manifest.policy == {"deadline_s": 9}
        (job,) = manifest.jobs
        assert job.options == {"seed": 2}
        assert job.fault_plan_for(1) == "job_hang:0:hang"
        assert job.fault_plan_for(2) == ""
        assert job.fault_plan_for(3) == ""  # past the list: clean

    @pytest.mark.parametrize(
        "mutate, message",
        [
            (lambda d: d["jobs"].append(dict(d["jobs"][0])), "duplicate job id"),
            (lambda d: d["jobs"][0].update(id="bad id"), "must match"),
            (
                lambda d: d["jobs"][0].update(options={"nope": 1}),
                "unknown CTSOptions field",
            ),
            (
                lambda d: d["jobs"][0].update(
                    options={"checkpoint_dir": "/x"}
                ),
                "reserved",
            ),
            (
                lambda d: d["jobs"][0].update(fault_plans=["warp:0:raise"]),
                "unknown site",
            ),
            (
                lambda d: d["jobs"][0].update(instance={"kind": "warp"}),
                "unknown instance kind",
            ),
            (lambda d: d.update(jobs=[]), "non-empty 'jobs'"),
            (lambda d: d.update(extra=1), "unknown keys"),
        ],
    )
    def test_invalid_manifests_rejected(self, tmp_path, mutate, message):
        data = self._base()
        mutate(data)
        with pytest.raises(ValueError, match=message):
            load_manifest(self._write(tmp_path, data))

    def test_build_instance_kinds(self):
        inst = build_instance(INSTANCE)
        assert inst.n_sinks == 20
        inline = build_instance(
            {
                "kind": "inline",
                "sinks": [["s0", 0.0, 0.0, 5e-15], ["s1", 900.0, 0.0, 5e-15]],
                "source": [450.0, 0.0],
            }
        )
        assert inline.n_sinks == 2
        assert inline.source is not None


class TestEvents:
    def test_seq_numbering_and_torn_tail(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        log = RunLog(path)
        log.emit("batch_start", n_jobs=2)
        log.emit("job_start", job="a")
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"seq": 2, "event": "tru')  # torn tail: dropped
        events = read_events(path)
        assert [e["seq"] for e in events] == [0, 1]

    def test_corrupt_mid_file_is_fatal(self, tmp_path):
        path = str(tmp_path / "events.jsonl")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write('{"seq": 0, "event": "a"}\nnot json\n{"seq": 1}\n')
        with pytest.raises(ValueError, match="corrupt mid-file"):
            read_events(path)

    def test_stable_view_strips_volatile_keys(self):
        events = [
            {
                "seq": 0,
                "event": "job_done",
                "job": "a",
                "runtime_s": 1.23,
                "rss_peak_mb": 88.1,
                "detail": "x",
                "signature": "abc",
            }
        ]
        assert stable_view(events) == [
            {"seq": 0, "event": "job_done", "job": "a", "signature": "abc"}
        ]


class TestWatchdog:
    def test_clean_job_matches_in_process_signature(self, tmp_path):
        expected = clean_signature(INSTANCE)
        batch = run_batch(
            tmp_path, [JobSpec(job_id="clean", instance=dict(INSTANCE))]
        )
        (outcome,) = batch.outcomes
        assert outcome.ok
        assert [r.reason for r in outcome.attempts] == ["ok"]
        assert outcome.result["signature"] == expected
        assert outcome.result["resumed_from"] is None

    def test_crash_mid_level_resumes_from_checkpoint(self, tmp_path):
        """SIGKILL-equivalent death at a level boundary: the retry must
        resume (resume-level counter set), not re-run from scratch."""
        expected = clean_signature(INSTANCE)
        batch = run_batch(
            tmp_path,
            [
                JobSpec(
                    job_id="crash",
                    instance=dict(INSTANCE),
                    fault_plans=("checkpoint:1:halt",),
                )
            ],
        )
        (outcome,) = batch.outcomes
        assert outcome.ok
        assert [r.outcome for r in outcome.attempts] == ["crashed", "ok"]
        # Two checkpoints landed before the halt, so the retry resumed
        # from level 2 — the level-resume counter proves no full re-run.
        assert outcome.result["resumed_from"] == 2
        assert outcome.result["signature"] == expected

    def test_heartbeat_stall_kills_and_retry_recovers(self, tmp_path):
        expected = clean_signature(INSTANCE)
        policy = FAST_POLICY.with_overrides({"heartbeat_stall_s": 3.0})
        batch = run_batch(
            tmp_path,
            [
                JobSpec(
                    job_id="hang",
                    instance=dict(INSTANCE),
                    fault_plans=("job_hang:1:hang",),
                )
            ],
            policy=policy,
        )
        (outcome,) = batch.outcomes
        assert outcome.ok
        assert [r.reason for r in outcome.attempts] == [
            "heartbeat_stall",
            "ok",
        ]
        assert outcome.result["resumed_from"] == 2
        assert outcome.result["signature"] == expected

    def test_memory_breach_quarantines_after_max_attempts(self, tmp_path):
        policy = FAST_POLICY.with_overrides(
            {"mem_mb": 200.0, "max_retries": 1, "backoff_base_s": 0.05}
        )
        batch = run_batch(
            tmp_path,
            [
                JobSpec(
                    job_id="oom",
                    instance=dict(INSTANCE),
                    # Balloon on every attempt: a true poison instance.
                    fault_plans=("job_oom:1:balloon", "job_oom:1:balloon"),
                )
            ],
            policy=policy,
        )
        (outcome,) = batch.outcomes
        assert not outcome.ok
        assert [r.reason for r in outcome.attempts] == ["oom", "oom"]
        quarantine_path = tmp_path / "run" / "oom" / "quarantine.json"
        quarantine = json.loads(quarantine_path.read_text())
        assert quarantine["job"] == "oom"
        assert [a["reason"] for a in quarantine["attempts"]] == ["oom", "oom"]
        assert all(a["detail"] for a in quarantine["attempts"])

    def test_quarantine_does_not_abort_the_batch(self, tmp_path):
        policy = FAST_POLICY.with_overrides(
            {"max_retries": 0, "deadline_s": 180.0}
        )
        batch = run_batch(
            tmp_path,
            [
                JobSpec(
                    job_id="poison",
                    instance=dict(INSTANCE),
                    fault_plans=("checkpoint:0:halt",),
                ),
                JobSpec(job_id="healthy", instance=dict(INSTANCE)),
            ],
            policy=policy,
        )
        assert [o.job_id for o in batch.quarantined] == ["poison"]
        assert [o.job_id for o in batch.ok] == ["healthy"]
        assert batch.ok[0].result["signature"] == clean_signature(INSTANCE)

    def test_rss_probe_reads_self(self):
        rss = proc_rss_mb(os.getpid())
        assert rss is not None and rss > 1.0
        assert proc_rss_mb(2**22 + 1) is None


CHAOS_JOBS = (
    JobSpec(
        job_id="crash",
        instance=dict(INSTANCE),
        fault_plans=("checkpoint:1:halt",),
    ),
    JobSpec(
        job_id="hang",
        instance={**INSTANCE, "seed": 6},
        fault_plans=("job_hang:1:hang",),
    ),
    JobSpec(
        job_id="torn",
        instance={**INSTANCE, "seed": 7},
        fault_plans=("checkpoint_torn:1:torn,checkpoint:1:halt",),
    ),
)

CHAOS_POLICY = FAST_POLICY.with_overrides(
    {"heartbeat_stall_s": 3.0, "max_retries": 2, "backoff_base_s": 0.05}
)


class TestChaosBatchDeterminism:
    def test_chaotic_batch_is_deterministic_and_bit_identical(self, tmp_path):
        """The acceptance gate: crash + hang + torn checkpoint, twice.

        Every job must finish with the signature of a clean in-process
        run, resumes must be real (level counters), and the stable view
        of the JSONL log must not differ between reruns.
        """
        expected = {
            spec.job_id: clean_signature(spec.instance)
            for spec in CHAOS_JOBS
        }
        runs = []
        for subdir in ("run1", "run2"):
            batch = run_batch(
                tmp_path, CHAOS_JOBS, policy=CHAOS_POLICY, subdir=subdir
            )
            assert not batch.quarantined
            for outcome in batch.outcomes:
                assert outcome.result["signature"] == expected[outcome.job_id]
                # Retries resumed mid-tree, never from scratch.
                assert outcome.result["resumed_from"] >= 1
                assert len(outcome.attempts) == 2
            runs.append(
                stable_view(
                    read_events(str(tmp_path / subdir / "events.jsonl"))
                )
            )
        assert runs[0] == runs[1]
        kill_reasons = [
            e["reason"] for e in runs[0] if e["event"] == "kill"
        ]
        assert kill_reasons == ["heartbeat_stall"]
        report = summarize(
            read_events(str(tmp_path / "run1" / "events.jsonl"))
        )
        assert "resumed from level" in report
        assert "3 ok, 0 quarantined" in report

    def test_run_dir_must_be_fresh(self, tmp_path):
        run_batch(
            tmp_path,
            [JobSpec(job_id="clean", instance=dict(INSTANCE))],
            subdir="reused",
        )
        with pytest.raises(ValueError, match="not empty"):
            run_batch(
                tmp_path,
                [JobSpec(job_id="clean", instance=dict(INSTANCE))],
                subdir="reused",
            )
