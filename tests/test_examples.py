"""Smoke tests: every shipped example runs end to end (small arguments)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py", "8", "15000")
        assert "slew constraint HONORED" in out

    def test_gsrc_flow(self):
        out = run_example("gsrc_flow.py", "r1", "10")
        assert "ours (aggressive)" in out
        assert "merge-node-only" in out

    def test_obstacle_routing(self):
        out = run_example("obstacle_routing.py")
        assert "nodes inside the blockage: none" in out
        assert "#" in out  # the ASCII plot rendered the blockage

    def test_hstructure_study(self):
        out = run_example("hstructure_study.py", "f22", "10")
        assert "method 2" in out

    def test_variation_study(self):
        out = run_example("variation_study.py", "6", "2")
        assert "Monte Carlo" in out
