"""Characterization sweep machinery (small configs, real simulations)."""

import numpy as np
import pytest

from repro.charlib.build import build_library
from repro.charlib.sweep import (
    CharConfig,
    InputShaper,
    characterize_branch,
    characterize_single_wire,
)
from repro.tech import cts_buffer_library


@pytest.fixture(scope="module")
def tiny_config():
    return CharConfig(
        linput_values=(0.0, 2500.0),
        length_values=(200.0, 1500.0, 3000.0),
        branch_samples=8,
        single_degree=2,
        branch_degree=1,
    )


class TestInputShaper:
    def test_longer_linput_slower_slew(self, tech, tiny_config):
        buf = cts_buffer_library()["BUF20X"]
        shaper = InputShaper(tech, buf, tiny_config)
        __, slew_short = shaper.shaped_input(200.0, buf.input_cap(tech))
        __, slew_long = shaper.shaped_input(3500.0, buf.input_cap(tech))
        assert slew_long > slew_short + 10e-12

    def test_cache_hit_returns_same_object(self, tech, tiny_config):
        buf = cts_buffer_library()["BUF20X"]
        shaper = InputShaper(tech, buf, tiny_config)
        w1, s1 = shaper.shaped_input(1000.0, buf.input_cap(tech))
        w2, s2 = shaper.shaped_input(1000.0, buf.input_cap(tech))
        assert w1 is w2
        assert s1 == s2

    def test_waveform_is_curved_not_ramp(self, tech, tiny_config):
        """The shaped input must carry the slow RC tail (Fig. 3.1's point)."""
        buf = cts_buffer_library()["BUF20X"]
        shaper = InputShaper(tech, buf, tiny_config)
        wave, slew = shaper.shaped_input(3000.0, buf.input_cap(tech))
        t10 = wave.cross_time(0.1 * tech.vdd)
        t50 = wave.cross_time(0.5 * tech.vdd)
        t90 = wave.cross_time(0.9 * tech.vdd)
        # RC-type curves rise fast early and crawl at the top: the lower
        # half of the window is quicker than the upper half.
        assert (t50 - t10) < (t90 - t50)


class TestSweeps:
    def test_single_wire_sample_grid(self, tech, tiny_config):
        lib = cts_buffer_library()
        samples = characterize_single_wire(
            tech, lib["BUF20X"], lib["BUF10X"], tiny_config
        )
        assert len(samples) == 2 * 3  # linputs x lengths
        # Physical sanity on each record.
        for s in samples:
            assert s.buffer_delay > 0
            assert s.wire_delay >= 0
            assert s.wire_slew > 0
        # Longer wire -> larger wire delay, per input slew group.
        by_slew = {}
        for s in samples:
            by_slew.setdefault(round(s.input_slew * 1e15), []).append(s)
        for group in by_slew.values():
            group.sort(key=lambda s: s.length)
            delays = [s.wire_delay for s in group]
            assert delays == sorted(delays)

    def test_branch_samples_seeded(self, tech, tiny_config):
        lib = cts_buffer_library()
        rng1 = np.random.default_rng(5)
        rng2 = np.random.default_rng(5)
        s1 = characterize_branch(tech, lib["BUF20X"], tiny_config, rng=rng1)
        s2 = characterize_branch(tech, lib["BUF20X"], tiny_config, rng=rng2)
        assert len(s1) == tiny_config.branch_samples
        assert [a.left_length for a in s1] == [b.left_length for b in s2]
        assert [a.left_delay for a in s1] == pytest.approx(
            [b.left_delay for b in s2]
        )

    def test_build_library_small(self, tech, tiny_config):
        """A full (tiny) build produces a queryable, complete library."""
        lib = build_library(tech, cts_buffer_library(), tiny_config)
        timing = lib.single_wire("BUF20X", "BUF20X", 80e-12, 1200.0)
        assert timing.buffer_delay > 0
        branch = lib.branch_component(
            "BUF30X", 80e-12, 100.0, 900.0, 900.0, 8e-15, 8e-15
        )
        assert branch.left_delay == pytest.approx(branch.right_delay, abs=4e-12)
        assert lib.meta["config"]["branch_samples"] == 8
