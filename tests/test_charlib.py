"""The characterized delay/slew library: queries, accuracy, persistence."""

import pytest

from repro.charlib.library import (
    BRANCH_FUNCTIONS,
    SINGLE_FUNCTIONS,
    DelaySlewLibrary,
)
from repro.spice.stages import simulate_stage, single_wire_spec
from repro.charlib.sweep import CharConfig, InputShaper
from repro.tech import cts_buffer_library


class TestLibraryStructure:
    def test_all_combinations_present(self, library):
        names = library.buffer_names
        assert len(names) == 3
        for drive in names:
            for load in names:
                fits = library.single[(drive, load)]
                assert set(fits) == set(SINGLE_FUNCTIONS)
            assert set(library.branch[drive]) == set(BRANCH_FUNCTIONS)

    def test_fit_quality_is_sub_picosecond(self, library):
        """The paper's core claim for Ch. 3: the fitted functions match
        simulation closely. Training RMS must be well below 1 ps."""
        for row in library.fit_report():
            assert row["rms_error"] < 1.5e-12, row
            assert row["r_squared"] > 0.99, row

    def test_serialization_roundtrip(self, library, tmp_path):
        path = tmp_path / "lib.json"
        library.save(path)
        clone = DelaySlewLibrary.load(path)
        t1 = library.single_wire("BUF20X", "BUF10X", 70e-12, 1800.0)
        t2 = clone.single_wire("BUF20X", "BUF10X", 70e-12, 1800.0)
        assert t1.buffer_delay == pytest.approx(t2.buffer_delay, abs=1e-15)
        assert t1.wire_slew == pytest.approx(t2.wire_slew, abs=1e-15)

    def test_missing_combination_rejected(self, library):
        data = library.to_dict()
        key = next(iter(data["single"]))
        del data["single"][key]
        with pytest.raises(ValueError):
            DelaySlewLibrary.from_dict(data)


class TestQueries:
    def test_single_wire_monotone_in_length(self, library):
        prev_delay, prev_slew = -1.0, -1.0
        for length in (200.0, 1000.0, 2000.0, 3000.0):
            t = library.single_wire("BUF20X", "BUF20X", 80e-12, length)
            assert t.wire_delay >= prev_delay
            assert t.wire_slew >= prev_slew
            prev_delay, prev_slew = t.wire_delay, t.wire_slew

    def test_buffer_delay_grows_with_input_slew(self, library):
        slow = library.single_wire("BUF10X", "BUF20X", 140e-12, 1000.0)
        fast = library.single_wire("BUF10X", "BUF20X", 40e-12, 1000.0)
        assert slow.buffer_delay > fast.buffer_delay + 3e-12

    def test_total_delay_is_sum(self, library):
        t = library.single_wire("BUF20X", "BUF30X", 80e-12, 1500.0)
        assert t.total_delay == pytest.approx(t.buffer_delay + t.wire_delay)

    def test_sink_cap_mapping(self, library):
        # 10X input cap is 3.75 fF; 30X is 11.25 fF.
        assert library.load_name_for_cap(3e-15) == "BUF10X"
        assert library.load_name_for_cap(12e-15) == "BUF30X"
        small = library.single_wire_for_cap("BUF20X", 3e-15, 80e-12, 1000.0)
        direct = library.single_wire("BUF20X", "BUF10X", 80e-12, 1000.0)
        assert small.wire_delay == pytest.approx(direct.wire_delay)

    def test_branch_symmetry(self, library):
        t = library.branch_component("BUF20X", 80e-12, 200.0, 1500.0, 1500.0, 8e-15, 8e-15)
        assert t.left_delay == pytest.approx(t.right_delay, abs=2e-12)
        assert t.left_slew == pytest.approx(t.right_slew, abs=2e-12)

    def test_branch_longer_side_slower(self, library):
        t = library.branch_component("BUF20X", 80e-12, 0.0, 500.0, 2500.0, 8e-15, 8e-15)
        assert t.right_delay > t.left_delay
        assert t.right_slew > t.left_slew

    def test_branch_totals(self, library):
        t = library.branch_component("BUF30X", 70e-12, 100.0, 800.0, 900.0, 6e-15, 6e-15)
        assert t.left_total == pytest.approx(t.buffer_delay + t.left_delay)
        assert t.right_total == pytest.approx(t.buffer_delay + t.right_delay)

    def test_max_single_length_covers_synthesis_range(self, library):
        assert library.max_single_length("BUF20X", "BUF20X") >= 4000.0


class TestValidationAgainstSimulation:
    """Off-grid spot checks: fit vs fresh mini-SPICE run."""

    @pytest.mark.parametrize("drive,load", [("BUF20X", "BUF20X"), ("BUF30X", "BUF10X")])
    def test_single_wire_prediction_matches_simulation(self, library, tech, drive, load):
        buffers = cts_buffer_library()
        config = CharConfig()
        shaper = InputShaper(tech, buffers[drive], config)
        wave, slew_in = shaper.shaped_input(1500.0, buffers[drive].input_cap(tech))
        length = 1650.0  # off the training grid
        spec = single_wire_spec(buffers[drive], length, buffers[load].input_cap(tech))
        sim = simulate_stage(tech, spec, wave, dt=config.dt)
        predicted = library.single_wire(drive, load, slew_in, length)
        assert predicted.buffer_delay == pytest.approx(sim.buffer_delay(), abs=1.5e-12)
        assert predicted.wire_slew == pytest.approx(sim.slew_at(1), abs=2e-12)
        measured_wire = sim.delay_to(1) - sim.buffer_delay()
        assert predicted.wire_delay == pytest.approx(measured_wire, abs=1.5e-12)
