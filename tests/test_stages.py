"""Stage specs and stage simulation (the SPICE-replacement workhorse)."""

import pytest

from repro.spice.stages import (
    STAGE_ROOT,
    StageSpec,
    StageWire,
    branch_spec,
    simulate_stage,
    single_wire_spec,
)
from repro.spice.circuit import Circuit
from repro.spice.transient import TransientOptions, simulate
from repro.tech import cts_buffer_library, default_technology
from repro.timing.waveform import ramp_waveform


@pytest.fixture(scope="module")
def tech():
    return default_technology()


@pytest.fixture(scope="module")
def buf20():
    return cts_buffer_library()["BUF20X"]


@pytest.fixture(scope="module")
def input_wave(tech):
    return ramp_waveform(tech.vdd, 80e-12, t_start=50e-12)


class TestSpecValidation:
    def test_single_wire_spec(self, buf20):
        spec = single_wire_spec(buf20, 1000.0, 10e-15)
        spec.validate()
        assert spec.total_wire_length() == 1000.0
        assert spec.total_load_cap() == 10e-15

    def test_branch_spec_shape(self, buf20):
        spec = branch_spec(buf20, 800.0, 1200.0, 5e-15, 7e-15, stem_length=300.0)
        spec.validate()
        assert spec.total_wire_length() == 2300.0
        assert sorted(spec.node_ids()) == [0, 1, 2, 3]

    def test_orphan_parent_rejected(self, buf20):
        spec = StageSpec(buf20, wires=[StageWire(5, 6, 100.0)])
        with pytest.raises(ValueError):
            spec.validate()

    def test_double_parent_rejected(self, buf20):
        spec = StageSpec(
            buf20,
            wires=[StageWire(0, 1, 100.0), StageWire(0, 1, 50.0)],
        )
        with pytest.raises(ValueError):
            spec.validate()

    def test_load_at_unknown_node_rejected(self, buf20):
        spec = StageSpec(buf20, load_caps={9: 1e-15})
        with pytest.raises(ValueError):
            spec.validate()


class TestSingleWireMeasurements:
    def test_basic_measurements(self, tech, buf20, input_wave):
        sim = simulate_stage(tech, single_wire_spec(buf20, 2000.0, 15e-15), input_wave)
        assert sim.input_slew() == pytest.approx(80e-12, rel=0.02)
        assert sim.buffer_delay() > 10e-12
        assert sim.delay_to(1) > sim.buffer_delay()
        assert sim.slew_at(1) > 0
        assert sim.worst_slew() >= sim.slew_at(1) - 1e-15

    def test_longer_wire_slower_and_sloppier(self, tech, buf20, input_wave):
        short = simulate_stage(tech, single_wire_spec(buf20, 500.0, 15e-15), input_wave)
        long = simulate_stage(tech, single_wire_spec(buf20, 3000.0, 15e-15), input_wave)
        assert long.delay_to(1) > short.delay_to(1)
        assert long.slew_at(1) > short.slew_at(1)

    def test_intrinsic_delay_grows_with_input_slew(self, tech, buf20):
        """The effect that motivates the whole delay library (Sec. 3.1)."""
        spec = single_wire_spec(buf20, 1000.0, 15e-15)
        slow = simulate_stage(
            tech, spec, ramp_waveform(tech.vdd, 160e-12, t_start=50e-12)
        )
        fast = simulate_stage(
            tech, spec, ramp_waveform(tech.vdd, 40e-12, t_start=50e-12)
        )
        assert slow.buffer_delay() > fast.buffer_delay() + 5e-12

    def test_driverless_stage(self, tech, input_wave):
        """drive=None models the ideal clock source."""
        spec = StageSpec(None, wires=[StageWire(0, 1, 500.0)], load_caps={1: 10e-15})
        sim = simulate_stage(tech, spec, input_wave)
        assert sim.delay_to(1) > 0
        assert sim.delay_to(1) < 20e-12  # ideal driver: only wire delay


class TestBranchMeasurements:
    def test_branch_symmetry(self, tech, buf20, input_wave):
        spec = branch_spec(buf20, 1500.0, 1500.0, 8e-15, 8e-15)
        sim = simulate_stage(tech, spec, input_wave)
        assert sim.delay_to(2) == pytest.approx(sim.delay_to(3), abs=0.5e-12)
        assert sim.slew_at(2) == pytest.approx(sim.slew_at(3), rel=0.02)

    def test_longer_branch_is_slower(self, tech, buf20, input_wave):
        spec = branch_spec(buf20, 800.0, 2400.0, 8e-15, 8e-15)
        sim = simulate_stage(tech, spec, input_wave)
        assert sim.delay_to(3) > sim.delay_to(2)

    def test_branch_coupling(self, tech, buf20, input_wave):
        """Loading the right branch slows the left one (shared driver)."""
        light = branch_spec(buf20, 1500.0, 200.0, 8e-15, 4e-15)
        heavy = branch_spec(buf20, 1500.0, 3000.0, 8e-15, 22e-15)
        d_light = simulate_stage(tech, light, input_wave).delay_to(2)
        d_heavy = simulate_stage(tech, heavy, input_wave).delay_to(2)
        assert d_heavy > d_light + 2e-12


class TestStageVsFlatCircuit:
    def test_stage_matches_manual_circuit(self, tech, buf20, input_wave):
        """The stage builder must produce the same answer as hand assembly."""
        spec = single_wire_spec(buf20, 1200.0, 12e-15)
        sim = simulate_stage(tech, spec, input_wave, dt=1e-12)

        circuit = Circuit(tech)
        circuit.add_vsource("in", input_wave)
        circuit.add_buffer("in", "drv", buf20)
        circuit.add_wire("drv", "end", 1200.0)
        circuit.add_cap("end", 12e-15)
        t_stop = float(input_wave.times[-1]) + 1.5e-9
        result = simulate(
            circuit,
            TransientOptions(dt=1e-12, t_start=float(input_wave.times[0]), t_stop=t_stop),
        )
        manual = result.waveform("end").cross_time(tech.vdd / 2)
        staged = sim.waveform(1).cross_time(tech.vdd / 2)
        assert staged == pytest.approx(manual, abs=0.3e-12)

    def test_trimmed_waveform_preserves_crossings(self, tech, buf20, input_wave):
        sim = simulate_stage(tech, single_wire_spec(buf20, 1000.0, 10e-15), input_wave)
        full = sim.waveform(1)
        trimmed = sim.trimmed_waveform(1)
        assert trimmed.cross_time(tech.vdd / 2) == pytest.approx(
            full.cross_time(tech.vdd / 2), abs=0.1e-12
        )
        assert trimmed.times.size <= full.times.size
