"""Merge-node-only buffered CTS — the Table 5.1 comparison baselines."""

import pytest

from repro.baselines.merge_buffer import (
    COMPARISON_POLICIES,
    MergeBufferCTS,
    MergeBufferPolicy,
)
from repro.core import AggressiveBufferedCTS
from repro.evalx import evaluate_tree
from repro.tree.nodes import NodeKind
from repro.tree.validate import validate_tree

from tests.conftest import make_sink_pairs


class TestPolicies:
    def test_three_comparison_policies(self):
        assert set(COMPARISON_POLICIES) == {
            "chen-wong96",
            "chaturvedi-hu04",
            "rajaram-pan06",
        }

    def test_invalid_sizing_rejected(self):
        with pytest.raises(ValueError):
            MergeBufferPolicy("bad", 1.0, "psychic")


class TestSynthesis:
    @pytest.mark.parametrize("policy", sorted(COMPARISON_POLICIES))
    def test_valid_tree(self, tech, policy):
        sinks = make_sink_pairs(7, 15000.0, seed=8)
        cts = MergeBufferCTS(COMPARISON_POLICIES[policy], tech=tech)
        result = cts.synthesize(sinks)
        validate_tree(result.tree.root, expect_source_root=True)
        assert len(result.tree.sinks()) == 7

    def test_buffers_only_at_merge_nodes(self, tech):
        """The defining restriction vs the paper's flow."""
        sinks = make_sink_pairs(10, 30000.0, seed=6)
        cts = MergeBufferCTS(COMPARISON_POLICIES["chaturvedi-hu04"], tech=tech)
        result = cts.synthesize(sinks)
        for buf in result.tree.buffers():
            assert len(buf.children) == 1
            child = buf.children[0]
            assert child.kind is NodeKind.MERGE
            assert buf.location.manhattan_to(child.location) < 1e-9

    def test_eager_policy_buffers_more(self, tech):
        sinks = make_sink_pairs(10, 25000.0, seed=3)
        eager = MergeBufferCTS(COMPARISON_POLICIES["chen-wong96"], tech=tech)
        lazy = MergeBufferCTS(COMPARISON_POLICIES["chaturvedi-hu04"], tech=tech)
        n_eager = eager.synthesize(sinks).tree.buffer_count()
        n_lazy = lazy.synthesize(sinks).tree.buffer_count()
        assert n_eager >= n_lazy


class TestComparisonClaim:
    def test_baseline_violates_slew_where_ours_does_not(self, tech):
        """Table 5.1's core story under 10X-stressed parasitics."""
        sinks = make_sink_pairs(12, 50000.0, seed=11)
        ours = AggressiveBufferedCTS(tech=tech).synthesize(sinks)
        ours_metrics = evaluate_tree(ours.tree, tech, dt=2e-12)
        base = MergeBufferCTS(
            COMPARISON_POLICIES["chaturvedi-hu04"], tech=tech
        ).synthesize(sinks)
        base_metrics = evaluate_tree(base.tree, tech, dt=2e-12)
        assert ours_metrics.worst_slew <= 100e-12
        assert base_metrics.worst_slew > 100e-12
