"""Lockstep batched profile expansion: equivalence, splits, rails.

The contract of the level expansion scheduler
(:class:`repro.core.batch_expand.LevelExpansionScheduler`,
``CTSOptions.batch_expansion``):

- every builder the scheduler returns is bit-identical to a scalar
  lazily-evaluated :class:`~repro.core.segment_builder.PathBuilder`
  expansion of the same lane — same delay profiles, same run records,
  same buffer placements, same :class:`PathState` snapshots — and
  structurally identical to the retained seed
  :class:`~repro.core.segment_builder.PathBuilderReference` (property-
  tested over random pitches spanning buffer-free, insertion-heavy,
  forced-buffer-at-step-0 and infeasible cases);
- infeasible lanes raise the identical RuntimeError through both paths;
- results are invariant to how lanes are grouped into ``expand`` calls
  (the worker-pool batch split), and the pair-level SharingStats
  counters (``expansion_lanes``/``expansion_runs``/
  ``expansion_insertions``) are split-invariant sums;
- synthesis through the scheduler is byte-identical to the per-pair
  lazy expansion, serial and under the worker pool, and degrades to it
  (bit-identically) on an injected ``batch_expansion`` fault — strict
  mode re-raises instead;
- the binding-level memoization the scheduler pre-installs
  (:meth:`SegmentTables.any_feasible` / ``clamped_wire_delays``) is
  observable: re-binding to a seen load is a cache hit, never a
  recomputation;
- ``delays_view`` is a read-only no-copy view of the delay profile.
"""

import numpy as np
import pytest

from repro.core.batch_expand import LevelExpansionScheduler
from repro.core.cts import AggressiveBufferedCTS
from repro.core.grid_cache import SharingStats
from repro.core.options import CTSOptions
from repro.core.segment_builder import (
    PathBuilder,
    PathBuilderReference,
    SegmentTables,
    SegmentTablesReference,
)
from repro.evalx.faultinject import FaultInjected, reset_plans
from repro.evalx.perfstats import scaling_scenario
from repro.tree.export import tree_signature
from repro.tree.nodes import peek_node_id
from tests.conftest import random_expansion_case

N_CASES = 48

#: Pair-level SharingStats counters that must be invariant to the batch
#: split (per-call ``expansion_rounds``/``curve_rounds`` are not).
PAIR_LEVEL_COUNTERS = ("expansion_lanes", "expansion_runs", "expansion_insertions")


def _cases(library, seed=4242, n=N_CASES):
    gen = np.random.default_rng(seed)
    return [random_expansion_case(gen, library) for _ in range(n)]


def _scalar_expand(library, options, case):
    """Per-pair lazy expansion of one case on fresh tables."""
    step, n_steps, load, base_delay, target_k = case
    tables = SegmentTables(library, step, n_steps, options.target_slew)
    builder = PathBuilder(
        tables,
        base_delay,
        load,
        options.target_slew,
        library.buffer_names,
        library.buffer_names[-1],
        options.sizing_lookahead,
    )
    builder.state(target_k)
    return builder


def _reference_expand(library, options, case):
    """The seed's per-step expansion of one case."""
    step, n_steps, load, base_delay, target_k = case
    tables = SegmentTablesReference(
        library, step, n_steps, options.target_slew
    )
    builder = PathBuilderReference(
        tables,
        base_delay,
        load,
        options.target_slew,
        library.buffer_names,
        library.buffer_names[-1],
        options.sizing_lookahead,
    )
    builder.state(target_k)
    return builder


def _scheduler_expand(library, options, cases, stats=None, chunks=1):
    """Expand ``cases`` through the lockstep scheduler, optionally split
    into ``chunks`` separate ``expand`` calls (the worker-batch shape)."""
    scheduler = LevelExpansionScheduler(library, options, stats)
    requests = []
    for step, n_steps, load, base_delay, target_k in cases:
        tables = SegmentTables(library, step, n_steps, options.target_slew)
        requests.append((tables, base_delay, load, target_k))
    builders = []
    for chunk in np.array_split(np.arange(len(requests)), chunks):
        builders.extend(
            scheduler.expand([requests[i] for i in chunk.tolist()])
        )
    return builders


def _partition_cases(library, options, cases):
    """Split cases by their scalar outcome: expanded builders vs the
    RuntimeError message the infeasible ones raise."""
    feasible, infeasible = [], []
    for case in cases:
        try:
            feasible.append((case, _scalar_expand(library, options, case)))
        except RuntimeError as exc:
            infeasible.append((case, str(exc)))
    return feasible, infeasible


class TestSchedulerEquivalence:
    """Property: lockstep expansion == scalar lazy expansion == seed."""

    def test_scheduler_matches_scalar_and_reference(self, library):
        options = CTSOptions(workers=0)
        feasible, infeasible = _partition_cases(
            library, options, _cases(library)
        )
        # The generator must cover both regimes or the property is weak.
        assert len(feasible) >= N_CASES // 3
        assert infeasible, "generator never produced an infeasible pitch"
        stats = SharingStats()
        builders = _scheduler_expand(
            library, options, [case for case, _ in feasible], stats
        )
        assert stats.expansion_lanes == len(feasible)
        assert stats.expansion_runs > 0
        assert stats.expansion_insertions > 0, (
            "generator never forced an insertion"
        )
        for (case, scalar), batched in zip(feasible, builders):
            target_k = case[-1]
            # Bit-identical profile, run records and buffer placements.
            assert np.array_equal(
                batched.delays_up_to(target_k), scalar.delays_up_to(target_k)
            )
            assert batched._runs == scalar._runs
            assert batched._buffers == scalar._buffers
            for k in range(target_k + 1):
                assert batched.state(k) == scalar.state(k)
            # The seed builder agrees structurally; its delays match up
            # to summation order (reference tables use the uncontracted
            # fit evaluation).
            ref = _reference_expand(library, options, case)
            for k in (0, 1, target_k // 2, target_k):
                s, r = scalar.state(k), ref.state(k)
                assert (s.steps, s.open_steps, s.load_name) == (
                    r.steps,
                    r.open_steps,
                    r.load_name,
                )
                assert s.buffers == r.buffers
                assert s.delay == pytest.approx(r.delay, rel=1e-9, abs=1e-18)

    def test_infeasible_cases_raise_identically(self, library):
        options = CTSOptions(workers=0)
        __, infeasible = _partition_cases(library, options, _cases(library))
        assert infeasible
        for case, message in infeasible:
            with pytest.raises(RuntimeError) as err:
                _scheduler_expand(library, options, [case])
            assert str(err.value) == message
            with pytest.raises(RuntimeError) as ref_err:
                _reference_expand(library, options, case)
            assert str(ref_err.value) == message

    def test_batch_split_invariance(self, library):
        """One expand call, three, or one per lane: same builders, same
        pair-level counters."""
        options = CTSOptions(workers=0)
        feasible, __ = _partition_cases(library, options, _cases(library))
        cases = [case for case, _ in feasible]
        results, stats_list = [], []
        for chunks in (1, 3, len(cases)):
            stats = SharingStats()
            results.append(
                _scheduler_expand(library, options, cases, stats, chunks)
            )
            stats_list.append(stats)
        whole = results[0]
        for split in results[1:]:
            for a, b in zip(whole, split):
                assert np.array_equal(
                    a.delays_up_to(a._built), b.delays_up_to(b._built)
                )
                assert a._runs == b._runs
                assert a._buffers == b._buffers
        for stats in stats_list[1:]:
            for key in PAIR_LEVEL_COUNTERS:
                assert getattr(stats, key) == getattr(
                    stats_list[0], key
                ), key


class TestBindingMemoization:
    """Satellite contract: binding-level lookups memoize, observably."""

    def test_rebind_is_a_cache_hit(self, library):
        options = CTSOptions()
        tables = SegmentTables(library, 300.0, 60, options.target_slew)
        names = library.buffer_names
        tables.any_feasible(names, "BUF20X", options.target_slew)
        tables.clamped_wire_delays(names[-1], "BUF20X")
        assert (tables.binding_evals, tables.binding_hits) == (2, 0)
        # Same binding again: pure dict lookups, nothing recomputed.
        ok = tables.any_feasible(names, "BUF20X", options.target_slew)
        vd = tables.clamped_wire_delays(names[-1], "BUF20X")
        assert (tables.binding_evals, tables.binding_hits) == (2, 2)
        assert ok is tables.any_feasible(names, "BUF20X", options.target_slew)
        assert vd is tables.clamped_wire_delays(names[-1], "BUF20X")

    def test_scheduler_preinstall_feeds_bind_load(self, library):
        """After a scheduler round, constructing a fresh PathBuilder on
        the same (tables, load) binds entirely from cache."""
        options = CTSOptions(workers=0)
        case = (300.0, 60, "BUF20X", 0.0, 40)
        scheduler = LevelExpansionScheduler(library, options)
        tables = SegmentTables(library, 300.0, 60, options.target_slew)
        [builder] = scheduler.expand([(tables, 0.0, "BUF20X", 40)])
        assert builder._built == 40
        evals = tables.binding_evals
        hits = tables.binding_hits
        assert evals > 0
        lazy = _scalar_expand(library, options, case)
        assert np.array_equal(
            lazy.delays_up_to(40), builder.delays_up_to(40)
        )
        # The fresh builder on the primed tables never re-evaluated.
        PathBuilder(
            tables,
            0.0,
            "BUF20X",
            options.target_slew,
            library.buffer_names,
            library.buffer_names[-1],
            options.sizing_lookahead,
        )
        assert tables.binding_evals == evals
        assert tables.binding_hits == hits + 2


class TestDelaysView:
    def test_view_is_read_only_and_no_copy(self, library):
        options = CTSOptions()
        case = (300.0, 60, "BUF20X", 0.0, 50)
        builder = _scalar_expand(library, options, case)
        view = builder.delays_view(50)
        assert view.shape == (51,)
        assert not view.flags.writeable
        assert view.base is builder._delays
        assert np.array_equal(view, builder.delays_up_to(50))
        with pytest.raises(ValueError):
            view[0] = 0.0
        # The underlying buffer stays writeable for run extension.
        builder.state(55)
        assert np.array_equal(builder.delays_view(55)[:51], view)


@pytest.fixture(autouse=True)
def _fresh_fault_plans():
    reset_plans()
    yield
    reset_plans()


def synthesize_signature(sinks, source, blockages, **option_kwargs):
    option_kwargs.setdefault("fault_plan", "")
    option_kwargs.setdefault("strict", False)
    cts = AggressiveBufferedCTS(
        options=CTSOptions(**option_kwargs),
        blockages=blockages or None,
    )
    base = peek_node_id()
    result = cts.synthesize(sinks, source)
    return tree_signature(result.tree, base), result


class TestEndToEnd:
    def test_blockage_scenario_serial(self):
        sinks, source, blockages = scaling_scenario(120, True)
        batched_sig, batched = synthesize_signature(
            sinks, source, blockages, workers=0, batch_expansion=True
        )
        per_pair_sig, per_pair = synthesize_signature(
            sinks, source, blockages, workers=0, batch_expansion=False
        )
        assert batched_sig == per_pair_sig
        assert batched.merge_stats == per_pair.merge_stats
        assert batched.levels == per_pair.levels
        # The scheduler actually engaged (and the fallback did not).
        assert batched.route_sharing["expansion_lanes"] > 0
        assert batched.route_sharing["expansion_runs"] > 0
        assert batched.route_sharing["curve_points"] > 0
        assert per_pair.route_sharing["expansion_lanes"] == 0
        assert per_pair.route_sharing["curve_points"] == 0
        # Both sides routed the same pairs through the same windows.
        for key in ("pairs_routed", "windows_served"):
            assert batched.route_sharing[key] == per_pair.route_sharing[key]

    def test_blockage_scenario_pooled(self):
        """Lockstep expansion under the worker pool: each worker batch
        runs its own scheduler, stats ship back and sum — identical to
        serial batched and to the serial per-pair fallback."""
        sinks, source, blockages = scaling_scenario(120, True)
        pooled_sig, pooled = synthesize_signature(
            sinks, source, blockages, workers=2, batch_expansion=True
        )
        serial_sig, serial = synthesize_signature(
            sinks, source, blockages, workers=0, batch_expansion=True
        )
        per_pair_sig, per_pair = synthesize_signature(
            sinks, source, blockages, workers=0, batch_expansion=False
        )
        assert pooled_sig == serial_sig == per_pair_sig
        assert pooled.merge_stats == per_pair.merge_stats
        assert pooled.levels == per_pair.levels
        # Pair-level counters are batch-split invariant: the pooled sum
        # equals the serial whole-level scheduler's exactly.
        for key in PAIR_LEVEL_COUNTERS + ("curve_points",):
            assert pooled.route_sharing[key] == serial.route_sharing[key], key

    def test_fault_degrades_to_per_pair(self):
        sinks, source, blockages = scaling_scenario(60, True)
        clean_sig, clean = synthesize_signature(
            sinks, source, blockages, workers=0, batch_expansion=True
        )
        assert clean.degradations == []
        reset_plans()
        faulted_sig, faulted = synthesize_signature(
            sinks,
            source,
            blockages,
            workers=0,
            batch_expansion=True,
            fault_plan="batch_expansion:0:raise",
            strict=False,
        )
        assert faulted_sig == clean_sig
        assert faulted.merge_stats == clean.merge_stats
        assert [d.component for d in faulted.degradations] == [
            "batch_expansion"
        ]

    def test_strict_mode_reraises(self):
        sinks, source, blockages = scaling_scenario(60, True)
        with pytest.raises(FaultInjected):
            synthesize_signature(
                sinks,
                source,
                blockages,
                workers=0,
                batch_expansion=True,
                fault_plan="batch_expansion:0:raise",
                strict=True,
            )
