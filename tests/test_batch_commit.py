"""Lockstep batched commit equals the scalar fallback, bit for bit.

The contract under test: with ``batch_commit=True`` every topology
level's merge commits advance in lockstep through the vectorized query
engine, yet the synthesized tree — topology, geometry, wire lengths,
buffer types, and (after the serial renumbering pass) auto-generated
node names — is identical to the scalar fallback's, and the merge
diagnostics (including the floating-point snake-delay sum) compare
equal. Also unit-covers the batched query APIs against their scalar
counterparts and the binary-search iteration accounting.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AggressiveBufferedCTS, CTSOptions
from repro.core.binary_search import MergeSearchState, binary_search_merge
from repro.geom.bbox import BBox
from repro.geom.point import Point
from repro.timing.analysis import SLEW_QUANTUM, LibraryTimingEngine
from repro.tree.export import tree_signature
from repro.tree.nodes import NodeKind, make_buffer, make_sink, peek_node_id

from tests.conftest import make_sink_pairs


def synth(sinks, batch_commit, blockages=None, **option_overrides):
    """One synthesis run plus the rebased signature of its tree."""
    options = CTSOptions(
        workers=option_overrides.pop("workers", 0),
        batch_commit=batch_commit,
        batch_commit_min_pairs=1,
        **option_overrides,
    )
    cts = AggressiveBufferedCTS(options=options, blockages=blockages)
    base = peek_node_id()
    result = cts.synthesize(sinks)
    return tree_signature(result.tree, base), result


class TestBatchedMatchesScalar:
    def _assert_identical(self, sinks, blockages=None, **overrides):
        scalar_sig, scalar = synth(sinks, False, blockages, **overrides)
        batched_sig, batched = synth(sinks, True, blockages, **overrides)
        assert scalar_sig == batched_sig
        assert scalar.merge_stats == batched.merge_stats
        assert scalar.levels == batched.levels
        assert scalar.n_flippings == batched.n_flippings
        return scalar, batched

    def test_plain_instance(self):
        self._assert_identical(make_sink_pairs(24, 30000.0, seed=21))

    def test_odd_level_sizes_promote_seed(self):
        self._assert_identical(make_sink_pairs(13, 30000.0, seed=22))

    def test_with_blockages_maze_router(self):
        blockages = [
            BBox(8000.0, 8000.0, 16000.0, 16000.0),
            BBox(20000.0, 2000.0, 26000.0, 12000.0),
        ]
        clear = [bbox.expanded(1200.0) for bbox in blockages]
        sinks = [
            (p, c)
            for p, c in make_sink_pairs(30, 30000.0, seed=13)
            if not any(region.contains(p) for region in clear)
        ]
        assert len(sinks) >= 16
        self._assert_identical(sinks, blockages=blockages)

    def test_with_hstructure_correction(self):
        self._assert_identical(
            make_sink_pairs(16, 26000.0, seed=14), hstructure="correct"
        )

    def test_with_hstructure_reestimation(self):
        self._assert_identical(
            make_sink_pairs(16, 26000.0, seed=15), hstructure="reestimate"
        )

    def test_snaking_scenario(self):
        """An off-cluster outlier forces balance/commit snaking rounds."""
        sinks = make_sink_pairs(20, 12000.0, seed=23)
        sinks.append((Point(60000.0, 60000.0), 8e-15))
        scalar, __ = self._assert_identical(sinks)
        assert scalar.merge_stats.n_snaked > 0  # the scenario did snake

    def test_with_worker_pool(self):
        """Pool-routed levels commit batched and still match scalar serial."""
        sinks = make_sink_pairs(18, 30000.0, seed=24)
        scalar_sig, scalar = synth(sinks, False)
        pooled_sig, pooled = synth(
            sinks, True, workers=2, parallel_min_level_size=1
        )
        assert scalar_sig == pooled_sig
        assert scalar.merge_stats == pooled.merge_stats

    def test_small_levels_fall_back_to_scalar(self):
        """Below ``batch_commit_min_pairs`` no lockstep round is spent."""
        sinks = make_sink_pairs(10, 20000.0, seed=25)
        options = CTSOptions(workers=0, batch_commit=True, batch_commit_min_pairs=64)
        cts = AggressiveBufferedCTS(options=options)
        result = cts.synthesize(sinks)
        assert result.commit_queries["batched_rounds"] == 0
        assert len(result.tree.sinks()) == len(sinks)

    def test_batched_rounds_engage_on_large_levels(self):
        sinks = make_sink_pairs(40, 34000.0, seed=26)
        __, result = synth(sinks, True)
        assert result.commit_queries["batched_rounds"] > 0
        assert result.commit_queries["batched_rows"] > 0


class TestBatchedQueryAPIs:
    @pytest.fixture()
    def branch_rows(self, rng):
        n = 40
        return np.column_stack(
            [
                rng.uniform(20e-12, 120e-12, n),
                np.zeros(n),
                rng.uniform(-100.0, 9000.0, n),
                rng.uniform(-100.0, 9000.0, n),
                rng.uniform(1e-15, 80e-15, n),
                rng.uniform(1e-15, 80e-15, n),
            ]
        )

    def test_branch_component_many_bit_identical(self, library, branch_rows):
        drive = library.buffer_names[-1]
        batch = library.branch_component_many(
            drive,
            branch_rows[:, 0],
            0.0,
            branch_rows[:, 2],
            branch_rows[:, 3],
            branch_rows[:, 4],
            branch_rows[:, 5],
            include_buffer_delay=True,
        )
        for k, row in enumerate(branch_rows):
            timing = library.branch_component(drive, row[0], 0.0, *row[2:])
            assert batch.left_delay[k] == timing.left_delay
            assert batch.right_delay[k] == timing.right_delay
            assert batch.left_slew[k] == timing.left_slew
            assert batch.right_slew[k] == timing.right_slew
            assert batch.buffer_delay[k] == timing.buffer_delay

    def test_branch_slews_many_bit_identical(self, library, branch_rows):
        drive = library.buffer_names[0]
        left, right = library.branch_slews_many(
            drive,
            80e-12,
            0.0,
            branch_rows[:, 2],
            branch_rows[:, 3],
            branch_rows[:, 4],
            branch_rows[:, 5],
        )
        for k, row in enumerate(branch_rows):
            scalar = library.branch_slews(drive, 80e-12, 0.0, *row[2:])
            assert (left[k], right[k]) == scalar

    def test_predict_many_bit_identical_to_predict(self, library, rng):
        drive = library.buffer_names[-1]
        fit = library.single[(drive, drive)]["wire_slew"]
        queries = np.column_stack(
            [rng.uniform(0.0, 200e-12, 64), rng.uniform(-10.0, 20000.0, 64)]
        )
        vector = fit.predict_many(queries)
        scalar = np.array([fit.predict(*q) for q in queries])
        assert np.array_equal(vector, scalar)

    def test_subtree_bounds_many_matches_scalar(self, library, tech, buffers):
        from repro.core.merge_routing import MergeRouter

        engine = LibraryTimingEngine(library, tech)
        router = MergeRouter(tech, library, buffers, engine, CTSOptions())
        root = router.merge(
            router.merge(make_sink(Point(0, 0), 8e-15), make_sink(Point(7000, 0), 8e-15)),
            make_sink(Point(3000, 9000), 6e-15),
        )
        probe = LibraryTimingEngine(library, tech)
        items = [
            (node, 80e-12 + 0.37e-12 * i)
            for i, node in enumerate(root.walk())
        ]
        batched = probe.subtree_bounds_many(items)
        fresh = LibraryTimingEngine(library, tech)
        scalar = [fresh.subtree_bounds(node, slew) for node, slew in items]
        assert batched == scalar
        # A second batched call is all hits: no new misses counted.
        misses = probe.bounds_cache_misses
        again = probe.subtree_bounds_many(items)
        assert again == batched
        assert probe.bounds_cache_misses == misses

    def test_cap_memo_and_remap(self, library, tech, buffers):
        from repro.core.merge_routing import MergeRouter

        engine = LibraryTimingEngine(library, tech)
        router = MergeRouter(tech, library, buffers, engine, CTSOptions())
        root = router.merge(
            make_sink(Point(0, 0), 8e-15), make_sink(Point(5000, 0), 8e-15)
        )
        merge = next(n for n in root.walk() if n.kind is NodeKind.MERGE)
        cap = engine._load_cap_of(merge)
        assert engine._cap_cache[merge.id] == cap
        new_id = merge.id + 10_000_000
        engine.remap_node_ids({merge.id: new_id})
        assert new_id in engine._cap_cache
        assert merge.id not in engine._cap_cache
        engine.clear_cache()
        assert not engine._cap_cache and not engine._vbounds_cache


class TestIterationAccounting:
    """The post-clamp re-evaluation counts (the seed undercounted it)."""

    def drive(self, state, diff_fn, slews_fn):
        probes = 0
        while not state.done:
            requests = state.requests()
            probes += len(requests)
            results = []
            for request in requests:
                if request.kind == "diff":
                    d = diff_fn(request.ratio)
                    results.append((d, *slews_fn(request.ratio)))
                else:
                    results.append(slews_fn(request.ratio))
            state.advance(results)
        return probes

    def test_clamped_search_counts_final_reevaluation(self):
        target = 80e-12
        state = MergeSearchState(
            1000.0, max_iters=24, tolerance=0.0, slew_target=target
        )
        # Monotone difference nulling at r=0.7; left slew violated above
        # r=0.4, so the clamp window search and the final re-evaluation
        # at the moved ratio run for real.
        probes = self.drive(
            state,
            lambda r: (r - 0.7) * 1e-12,
            lambda r: (100e-12 if r > 0.4 else 70e-12, 50e-12),
        )
        # 2 bracket + 24 bisect + 1 clamp check + 16 window + 1 final.
        assert state.iterations == 2 + 24 + 1 + 16 + 1
        # The clamp check reused the last evaluation's slews; the window
        # and the moved-ratio re-evaluation genuinely probed.
        assert probes == 2 + 24 + 16 + 1
        assert state.ratio < 0.7  # clamped toward the feasible window

    def test_unclamped_search_reuses_final_reevaluation(self):
        state = MergeSearchState(
            1000.0, max_iters=24, tolerance=0.0, slew_target=80e-12
        )
        probes = self.drive(
            state, lambda r: (r - 0.5) * 1e-12, lambda r: (50e-12, 50e-12)
        )
        # Clamp check and final re-evaluation count but need no probes.
        assert state.iterations == 2 + 24 + 1 + 1
        assert probes == 2 + 24

    def test_binary_search_merge_accounts_clamp(self, engine, buffers):
        buf = buffers["BUF20X"]
        v1 = make_buffer(Point(0, 0), buf)
        v1.attach(make_sink(Point(-1000, 0), 8e-15))
        v2 = make_buffer(Point(4000, 0), buf)
        v2.attach(make_sink(Point(5000, 0), 8e-15))
        from repro.geom.segment import PathPolyline

        span = PathPolyline([Point(0, 0), Point(4000, 0)])
        free = binary_search_merge(
            engine, "BUF30X", 80e-12, v1, v2, span, slew_target=None
        )
        clamped = binary_search_merge(
            engine, "BUF30X", 80e-12, v1, v2, span, slew_target=80e-12
        )
        # Same bisection; the clamp path adds the feasibility check and
        # the (possibly reused) re-evaluation to the count.
        assert clamped.iterations == free.iterations + 2


class TestDeterministicBounds:
    def test_bucket_values_are_order_independent(self, library, tech, buffers):
        buf = buffers["BUF20X"]
        a = make_buffer(Point(0, 0), buf)
        a.attach(make_sink(Point(1500, 0), 8e-15))
        slews = [78.3e-12, 81.9e-12, 80.1e-12]
        first = LibraryTimingEngine(library, tech)
        forward = [first.buffer_subtree_bounds(a, s) for s in slews]
        second = LibraryTimingEngine(library, tech)
        backward = [
            second.buffer_subtree_bounds(a, s) for s in reversed(slews)
        ]
        assert forward == list(reversed(backward))

    def test_interpolation_tracks_bucket_endpoints(self, engine, buffers):
        buf = buffers["BUF20X"]
        node = make_buffer(Point(0, 0), buf)
        node.attach(make_sink(Point(1200, 0), 8e-15))
        lo = engine.buffer_subtree_bounds(node, 80e-12)
        hi = engine.buffer_subtree_bounds(node, 80e-12 + SLEW_QUANTUM)
        mid = engine.buffer_subtree_bounds(node, 80e-12 + 0.5 * SLEW_QUANTUM)
        assert min(lo.max_delay, hi.max_delay) <= mid.max_delay <= max(
            lo.max_delay, hi.max_delay
        )
