"""Smoke tests of the table drivers at tiny scale (structure, not values)."""

import pytest

from repro.evalx.harness import (
    render_table_5_1,
    render_table_5_2,
    render_table_5_3,
    table_5_2_rows,
)


class TestTableRows:
    def test_table_5_2_rows_structure(self):
        rows = table_5_2_rows(full=False, scale=8)
        assert len(rows) == 7  # all ISPD benchmarks
        for row in rows:
            assert row["sinks"] == 8
            assert row["worst_slew_ps"] <= 100.0
            assert "paper_latency_ns" in row
            assert row["skew_over_latency_pct"] >= 0.0

    def test_renderers_accept_rows(self):
        rows = [
            {
                "bench": "x@8",
                "sinks": 8,
                "worst_slew_ps": 80.0,
                "skew_ps": 10.0,
                "latency_ns": 1.0,
                "paper_worst_slew_ps": 89.0,
                "paper_skew_ps": 60.0,
                "paper_latency_ns": 1.3,
            }
        ]
        text = render_table_5_1(rows)
        assert "Table 5.1" in text and "x@8" in text
        rows[0]["skew_over_latency_pct"] = 1.0
        assert "Table 5.2" in render_table_5_2(rows)
        rows53 = [
            {
                "bench": "x@8",
                "orig_skew_ps": 20.0,
                "reestimate_skew_ps": 18.0,
                "correct_skew_ps": 15.0,
                "reestimate_ratio_pct": -10.0,
                "correct_ratio_pct": -25.0,
                "flippings": 2,
            }
        ]
        assert "Table 5.3" in render_table_5_3(rows53)
