"""Bounded-skew DME: the wirelength-vs-budget trade-off (ref [4])."""

import pytest

from repro.baselines.bst import BoundedSkewDME
from repro.baselines.dme import DMESynthesizer
from repro.tree.validate import validate_tree

from tests.conftest import make_sink_pairs
from tests.test_baseline_dme import elmore_sink_delays


class TestBoundedSkew:
    def test_valid_tree(self, tech):
        sinks = make_sink_pairs(9, 15000.0, seed=41)
        result = BoundedSkewDME(tech, 20e-12).synthesize(sinks)
        validate_tree(result.tree.root, expect_source_root=True)
        assert len(result.tree.sinks()) == 9

    @pytest.mark.parametrize("bound_ps", [0.0, 10.0, 40.0])
    def test_elmore_skew_within_budget(self, tech, bound_ps):
        sinks = make_sink_pairs(12, 20000.0, seed=43)
        result = BoundedSkewDME(tech, bound_ps * 1e-12).synthesize(sinks)
        delays = elmore_sink_delays(result.tree, tech)
        spread = max(delays) - min(delays)
        # Allowance for the lumped-vs-distributed wire approximation.
        assert spread <= bound_ps * 1e-12 + 0.03 * max(delays) + 1e-15

    def test_wirelength_monotone_in_budget(self, tech):
        """The defining BST property: more budget, less wire."""
        sinks = make_sink_pairs(14, 25000.0, seed=47)
        wl = {}
        for bound_ps in (0.0, 20.0, 60.0, 200.0):
            result = BoundedSkewDME(tech, bound_ps * 1e-12).synthesize(sinks)
            wl[bound_ps] = result.tree.total_wirelength()
        assert wl[20.0] <= wl[0.0] + 1e-6
        assert wl[60.0] <= wl[20.0] + 1e-6
        assert wl[200.0] <= wl[60.0] + 1e-6
        assert wl[200.0] < wl[0.0]  # strictly cheaper somewhere

    def test_zero_budget_close_to_zero_skew_dme(self, tech):
        """B = 0 degenerates to (approximately) the zero-skew tree."""
        sinks = make_sink_pairs(8, 12000.0, seed=53)
        bst = BoundedSkewDME(tech, 0.0).synthesize(sinks)
        zst_tree = DMESynthesizer(tech).synthesize(sinks)
        bst_delays = elmore_sink_delays(bst.tree, tech)
        spread = max(bst_delays) - min(bst_delays)
        assert spread < 0.05 * max(bst_delays) + 1e-15
        assert bst.tree.total_wirelength() == pytest.approx(
            zst_tree.total_wirelength(), rel=0.25
        )

    def test_negative_budget_rejected(self, tech):
        with pytest.raises(ValueError):
            BoundedSkewDME(tech, -1.0)
