"""Nearest-neighbor topology generation and the greedy matching."""

import pytest

from repro.core.options import CTSOptions
from repro.core.topology import EdgeCost, SubTree, greedy_matching, select_seed
from repro.geom.point import Point
from repro.timing.analysis import SubtreeBounds
from repro.tree.nodes import make_sink


def sub(x, y, delay=0.0):
    node = make_sink(Point(x, y), 5e-15)
    return SubTree(node, SubtreeBounds(delay, delay, 0.0))


@pytest.fixture()
def cost():
    return EdgeCost(CTSOptions(), delay_per_unit=0.02e-12)


class TestEdgeCost:
    def test_distance_term(self, cost):
        assert cost(sub(0, 0), sub(100, 0)) == pytest.approx(100.0)

    def test_delay_term_converted_to_units(self, cost):
        a, b = sub(0, 0, delay=0.0), sub(0, 0, delay=2e-12)
        # 2 ps at 0.02 ps/unit == 100 units of equivalent cost.
        assert cost(a, b) == pytest.approx(100.0)

    def test_alpha_beta_weights(self):
        options = CTSOptions(cost_alpha=2.0, cost_beta=0.0)
        cost = EdgeCost(options, delay_per_unit=0.02e-12)
        assert cost(sub(0, 0), sub(100, 0, delay=1e-9)) == pytest.approx(200.0)

    def test_symmetry(self, cost):
        a, b = sub(3, 7, 1e-12), sub(40, 2, 5e-12)
        assert cost(a, b) == cost(b, a)


class TestSeedSelection:
    def test_max_latency_selected(self):
        nodes = [sub(0, 0, 1e-12), sub(1, 1, 9e-12), sub(2, 2, 3e-12)]
        assert select_seed(nodes) is nodes[1]


class TestGreedyMatching:
    def test_even_count_full_matching(self, cost):
        nodes = [sub(0, 0), sub(10, 0), sub(0, 1000), sub(10, 1000)]
        pairs, seed = greedy_matching(nodes, Point(5, 500), cost)
        assert seed is None
        assert len(pairs) == 2
        matched = {id(s) for pair in pairs for s in pair}
        assert len(matched) == 4

    def test_odd_count_promotes_max_latency_seed(self, cost):
        nodes = [sub(0, 0, 1e-12), sub(10, 0, 2e-12), sub(20, 0, 9e-12)]
        pairs, seed = greedy_matching(nodes, Point(10, 0), cost)
        assert seed is not None
        assert seed.max_delay == 9e-12
        assert len(pairs) == 1

    def test_close_pairs_matched_together(self, cost):
        """Two tight clusters: matching must not cross them."""
        nodes = [sub(0, 0), sub(50, 0), sub(10000, 0), sub(10050, 0)]
        pairs, __ = greedy_matching(nodes, Point(5000, 0), cost)
        for a, b in pairs:
            assert a.point.manhattan_to(b.point) < 100

    def test_delay_difference_discourages_pairing(self):
        """With a huge beta, matching pairs by delay, not distance."""
        options = CTSOptions(cost_beta=1000.0)
        cost = EdgeCost(options, delay_per_unit=0.02e-12)
        nodes = [
            sub(0, 0, 0.0),
            sub(10, 0, 100e-12),
            sub(5000, 0, 0.0),
            sub(5010, 0, 100e-12),
        ]
        pairs, __ = greedy_matching(nodes, Point(2500, 0), cost)
        for a, b in pairs:
            assert a.max_delay == b.max_delay  # equal-delay pairs chosen

    def test_farthest_from_centroid_anchors_first(self, cost):
        outlier = sub(100000, 100000)
        nodes = [sub(0, 0), sub(10, 0), sub(20, 0), outlier]
        pairs, __ = greedy_matching(nodes, Point(10, 0), cost)
        # The outlier is the first anchor, paired with its nearest neighbor.
        assert any(outlier in pair for pair in pairs)

    def test_single_node_rejected_gracefully(self, cost):
        pairs, seed = greedy_matching([sub(0, 0)], Point(0, 0), cost)
        assert pairs == []
        assert seed is not None

    def test_empty_raises(self, cost):
        with pytest.raises(ValueError):
            greedy_matching([], Point(0, 0), cost)
