"""H-structure re-estimation and correction (Sec. 4.1.2)."""

import pytest

from repro.core import AggressiveBufferedCTS, CTSOptions
from repro.core.hstructure import PAIRINGS, correct_pairing, reestimate_pairing
from repro.core.merge_routing import MergeRouter
from repro.core.topology import EdgeCost, SubTree
from repro.evalx import evaluate_tree
from repro.geom import Point
from repro.timing.analysis import LibraryTimingEngine
from repro.tree.nodes import make_sink
from repro.tree.validate import validate_tree

from tests.conftest import make_sink_pairs


@pytest.fixture()
def router(tech, library, buffers):
    engine = LibraryTimingEngine(library, tech)
    return MergeRouter(tech, library, buffers, engine, CTSOptions())


def interleaved_quad(router):
    """Four sinks where the 'wrong' pairing is the interleaved one.

    A = (0,0), B = (4000,0), C = (300,0), D = (4300, 0): the natural
    pairing is (A,C)(B,D); we force the H-prone original (A,B)(C,D).
    """
    a = make_sink(Point(0, 0), 8e-15, "A")
    b = make_sink(Point(4000, 0), 8e-15, "B")
    c = make_sink(Point(300, 0), 8e-15, "C")
    d = make_sink(Point(4300, 0), 8e-15, "D")
    p = router.merge(a, b)
    q = router.merge(c, d)
    p_sub = SubTree(p, router.subtree_bounds(p), parts=(a, b))
    q_sub = SubTree(q, router.subtree_bounds(q), parts=(c, d))
    return p_sub, q_sub, (a, b, c, d)


class TestPairings:
    def test_three_pairings_cover_all(self):
        assert len(PAIRINGS) == 3
        for (i, j), (k, l) in PAIRINGS:
            assert sorted([i, j, k, l]) == [0, 1, 2, 3]


class TestReestimate:
    def test_flips_interleaved_pairing(self, router):
        p_sub, q_sub, __ = interleaved_quad(router)
        cost = EdgeCost(CTSOptions(), router._delay_per_unit)
        outcome = reestimate_pairing(router, cost, p_sub, q_sub)
        assert outcome.flipped
        validate_tree(outcome.left_root)
        validate_tree(outcome.right_root)
        # The chosen pairing has much shorter wirelength.
        wl = (
            outcome.left_root.downstream_wirelength()
            + outcome.right_root.downstream_wirelength()
        )
        assert wl < 4000

    def test_keeps_good_pairing(self, router):
        a = make_sink(Point(0, 0), 8e-15)
        b = make_sink(Point(300, 0), 8e-15)
        c = make_sink(Point(4000, 0), 8e-15)
        d = make_sink(Point(4300, 0), 8e-15)
        p = router.merge(a, b)
        q = router.merge(c, d)
        p_sub = SubTree(p, router.subtree_bounds(p), parts=(a, b))
        q_sub = SubTree(q, router.subtree_bounds(q), parts=(c, d))
        cost = EdgeCost(CTSOptions(), router._delay_per_unit)
        outcome = reestimate_pairing(router, cost, p_sub, q_sub)
        assert not outcome.flipped


class TestCorrect:
    def test_correction_chooses_low_skew_pairing(self, router):
        p_sub, q_sub, parts = interleaved_quad(router)
        outcome = correct_pairing(router, p_sub, q_sub)
        assert outcome.flipped
        validate_tree(outcome.left_root)
        validate_tree(outcome.right_root)
        # All four grandchildren survive, each in exactly one tree.
        names = set()
        for root in (outcome.left_root, outcome.right_root):
            names.update(
                n.name for n in root.walk() if n.name in ("A", "B", "C", "D")
            )
        assert names == {"A", "B", "C", "D"}

    def test_correction_skew_not_worse(self, router):
        p_sub, q_sub, __ = interleaved_quad(router)
        orig_worse = max(p_sub.bounds.skew, q_sub.bounds.skew)
        outcome = correct_pairing(router, p_sub, q_sub)
        new_worse = max(
            router.subtree_bounds(outcome.left_root).skew,
            router.subtree_bounds(outcome.right_root).skew,
        )
        assert new_worse <= orig_worse + 1e-12


class TestFlowIntegration:
    @pytest.mark.parametrize("mode", ["reestimate", "correct"])
    def test_full_flow_with_hstructure(self, tech, mode):
        sinks = make_sink_pairs(12, 30000.0, seed=17)
        cts = AggressiveBufferedCTS(options=CTSOptions(hstructure=mode))
        result = cts.synthesize(sinks)
        validate_tree(result.tree.root, expect_source_root=True)
        assert result.n_flippings >= 0
        metrics = evaluate_tree(result.tree, tech)
        assert metrics.worst_slew <= cts.options.slew_limit
        assert metrics.n_sinks == 12

    def test_flippings_counted(self, tech):
        """A sink layout engineered to provoke at least one flip."""
        sinks = make_sink_pairs(16, 50000.0, seed=5)
        cts = AggressiveBufferedCTS(options=CTSOptions(hstructure="correct"))
        result = cts.synthesize(sinks)
        assert isinstance(result.n_flippings, int)
