"""Parallel merge routing equals the serial flow, bit for bit.

The contract under test: with ``workers >= 2`` the route phase of every
topology level runs on a process pool, yet the synthesized tree —
topology, geometry, wire lengths, buffer types, and (after the serial
renumbering pass) even auto-generated node names — is identical to the
serial flow's, and the merge diagnostics aggregate to the same totals.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core import AggressiveBufferedCTS, CTSOptions, MergeStats
from repro.core.parallel_merge import (
    ParallelMergeExecutor,
    serial_id_mapping,
)
from repro.core.topology import SubTree, greedy_matching, select_seed
from repro.geom.bbox import BBox
from repro.geom.point import Point
from repro.timing.analysis import SubtreeBounds
from repro.tree.export import tree_signature
from repro.tree.nodes import make_sink, peek_node_id

from tests.conftest import make_sink_pairs


def synth(sinks, workers, blockages=None, **option_overrides):
    """One synthesis run plus the rebased signature of its tree."""
    options = CTSOptions(
        workers=workers,
        parallel_min_level_size=1,
        merge_batch_size=2,
        **option_overrides,
    )
    cts = AggressiveBufferedCTS(options=options, blockages=blockages)
    base = peek_node_id()
    result = cts.synthesize(sinks)
    return tree_signature(result.tree, base), result


class TestParallelMatchesSerial:
    def _assert_identical(self, sinks, blockages=None, **overrides):
        serial_sig, serial = synth(sinks, 0, blockages, **overrides)
        parallel_sig, parallel = synth(sinks, 2, blockages, **overrides)
        assert serial_sig == parallel_sig
        assert serial.merge_stats == parallel.merge_stats
        assert serial.levels == parallel.levels
        assert serial.n_flippings == parallel.n_flippings

    def test_even_level_sizes(self):
        self._assert_identical(make_sink_pairs(16, 30000.0, seed=11))

    def test_odd_level_sizes_promote_seed(self):
        self._assert_identical(make_sink_pairs(9, 30000.0, seed=12))

    def test_with_blockages_maze_router(self):
        blockages = [
            BBox(8000.0, 8000.0, 16000.0, 16000.0),
            BBox(20000.0, 2000.0, 26000.0, 12000.0),
        ]
        clear = [bbox.expanded(1200.0) for bbox in blockages]
        sinks = [
            (p, c)
            for p, c in make_sink_pairs(18, 30000.0, seed=13)
            if not any(region.contains(p) for region in clear)
        ]
        assert len(sinks) >= 10
        self._assert_identical(sinks, blockages=blockages)

    def test_with_hstructure_correction(self):
        self._assert_identical(
            make_sink_pairs(8, 26000.0, seed=14), hstructure="correct"
        )

    def test_with_hstructure_reestimation(self):
        self._assert_identical(
            make_sink_pairs(12, 26000.0, seed=15), hstructure="reestimate"
        )

    def test_small_levels_fall_back_to_serial(self):
        """Below ``parallel_min_level_size`` no pool is ever spawned."""
        sinks = make_sink_pairs(6, 20000.0, seed=16)
        options = CTSOptions(workers=2, parallel_min_level_size=64)
        cts = AggressiveBufferedCTS(options=options)
        result = cts.synthesize(sinks)
        assert len(result.tree.sinks()) == len(sinks)


class TestExecutor:
    def test_rejects_single_worker(self, library):
        cts = AggressiveBufferedCTS(options=CTSOptions())
        with pytest.raises(ValueError):
            ParallelMergeExecutor(cts.router, workers=1)

    def test_context_pickles_before_pool_spawn(self):
        """Construction validates picklability without starting workers."""
        cts = AggressiveBufferedCTS(options=CTSOptions())
        executor = ParallelMergeExecutor(cts.router, workers=2)
        assert executor._pool is None
        executor.close()

    def test_pool_spawn_failure_routes_in_process(self, monkeypatch):
        """A host that cannot fork still finishes with identical results."""
        import repro.core.parallel_merge as pm

        def refuse(*args, **kwargs):
            raise OSError("Resource temporarily unavailable")

        sinks = make_sink_pairs(10, 24000.0, seed=17)
        serial_sig, _ = synth(sinks, 0)
        monkeypatch.setattr(pm, "ProcessPoolExecutor", refuse)
        options = CTSOptions(workers=2, parallel_min_level_size=1)
        cts = AggressiveBufferedCTS(options=options)
        base = peek_node_id()
        result = cts.synthesize(sinks)
        assert tree_signature(result.tree, base) == serial_sig
        assert "OSError" in cts.parallel_fallback_reason

    def test_unpicklable_context_falls_back_to_serial(self):
        cts = AggressiveBufferedCTS(
            options=CTSOptions(workers=2, parallel_min_level_size=1)
        )
        cts.router.blockages = [lambda: None]  # poison: unpicklable
        assert cts._make_executor() is None
        assert "PicklingError" in cts.parallel_fallback_reason or "Error" in (
            cts.parallel_fallback_reason or ""
        )

    def test_library_pickle_round_trip_is_exact(self, library):
        clone = pickle.loads(pickle.dumps(library))
        name = library.buffer_names[0]
        fit = library.single[(name, name)]["wire_slew"]
        fit_clone = clone.single[(name, name)]["wire_slew"]
        probe = (60.0e-12, 1500.0)
        assert fit.predict(*probe) == fit_clone.predict(*probe)
        assert (fit.coeffs == fit_clone.coeffs).all()


class TestSerialIdMapping:
    def test_reorders_phase_blocks_into_pair_order(self):
        # Pair 0 consumed [10,12) in prepare and [16,19) in commit; pair 1
        # consumed [12,16) and [19,20). Serial order interleaves per pair.
        spans = [[(10, 12), (16, 19)], [(12, 16), (19, 20)]]
        mapping = serial_id_mapping(10, spans)
        assert mapping == {16: 12, 17: 13, 18: 14, 12: 15, 13: 16, 14: 17, 15: 18}

    def test_identity_when_already_serial(self):
        spans = [[(5, 7), (7, 9)], [(9, 10), (10, 12)]]
        assert serial_id_mapping(5, spans) == {}


class TestMergeStats:
    def test_combine_sums_every_field(self):
        a = MergeStats(1, 2, 3.0, 4, 5, 6, 7)
        b = MergeStats(10, 20, 30.0, 40, 50, 60, 70)
        assert a.combine(b) == MergeStats(11, 22, 33.0, 44, 55, 66, 77)

    def test_combine_with_zero_is_identity(self):
        a = MergeStats(1, 2, 3.0, 4, 5, 6, 7)
        assert a.combine(MergeStats()) == a


class TestTieBreaks:
    def _subtree(self, x, y, delay):
        node = make_sink(Point(x, y), 5e-15)
        return SubTree(node, SubtreeBounds(delay, delay, 0.0))

    def test_select_seed_ties_resolve_to_first(self):
        tied = [self._subtree(0, 0, 5e-12) for _ in range(3)]
        assert select_seed(tied) is tied[0]

    def test_seed_removed_by_identity(self):
        """Equal-comparing sub-trees must not shadow the promoted seed."""
        shared = make_sink(Point(0.0, 0.0), 5e-15)
        bounds = SubtreeBounds(9e-12, 9e-12, 0.0)
        dup_a = SubTree(shared, bounds)
        dup_b = SubTree(shared, bounds)
        other = self._subtree(4000.0, 0.0, 1e-12)
        assert dup_a == dup_b  # precondition: ==-equal, distinct objects

        class Cost:
            alpha = 1.0

            def __call__(self, a, b):
                return a.point.manhattan_to(b.point)

        pairs, seed = greedy_matching([dup_a, dup_b, other], Point(0, 0), Cost())
        assert seed is dup_a  # first max-delay occurrence promoted
        matched = {id(s) for pair in pairs for s in pair}
        assert id(dup_b) in matched and id(dup_a) not in matched
