"""The symmetric H-tree baseline."""

import pytest

from repro.baselines.htree import HTreeSynthesizer
from repro.core import AggressiveBufferedCTS
from repro.evalx import evaluate_tree
from repro.geom import Point
from repro.tree.nodes import NodeKind
from repro.tree.validate import validate_tree

from tests.conftest import make_sink_pairs


class TestHTreeStructure:
    def test_valid_tree_all_sinks(self, tech):
        sinks = make_sink_pairs(10, 20000.0, seed=23)
        result = HTreeSynthesizer(tech=tech).synthesize(sinks)
        validate_tree(result.tree.root, expect_source_root=True)
        assert len(result.tree.sinks()) == 10

    def test_symmetric_grid_for_symmetric_sinks(self, tech):
        """Four sinks at H-leaf positions: near-perfect symmetry."""
        sinks = [
            (Point(2500, 2500), 8e-15),
            (Point(7500, 2500), 8e-15),
            (Point(2500, 7500), 8e-15),
            (Point(7500, 7500), 8e-15),
        ]
        result = HTreeSynthesizer(tech=tech).synthesize(sinks)
        metrics = evaluate_tree(result.tree, tech, dt=2e-12)
        assert metrics.skew < 3e-12

    def test_slew_bounded(self, tech):
        sinks = make_sink_pairs(12, 40000.0, seed=29)
        synth = HTreeSynthesizer(tech=tech)
        result = synth.synthesize(sinks)
        metrics = evaluate_tree(result.tree, tech, dt=2e-12)
        assert metrics.worst_slew <= synth.options.slew_limit

    def test_unused_branches_pruned(self, tech):
        """A corner-clustered instance must not keep far-side H branches."""
        sinks = [(Point(100 + 10 * i, 100 + 7 * i), 8e-15) for i in range(4)]
        result = HTreeSynthesizer(tech=tech).synthesize(sinks)
        for node in result.tree.nodes():
            if node.kind in (NodeKind.STEINER, NodeKind.BUFFER):
                assert node.children, f"unpruned dead branch {node.name}"

    def test_empty_rejected(self, tech):
        with pytest.raises(ValueError):
            HTreeSynthesizer(tech=tech).synthesize([])


class TestHTreeVsAggressive:
    def test_htree_spends_more_wire_on_scattered_sinks(self, tech):
        """The topology trade-off: the regular H covers the die regardless
        of the sink placement; the paper's flow routes to the sinks."""
        sinks = make_sink_pairs(14, 45000.0, seed=31)
        h = HTreeSynthesizer(tech=tech).synthesize(sinks)
        ours = AggressiveBufferedCTS(tech=tech).synthesize(sinks)
        h_metrics = evaluate_tree(h.tree, tech, dt=2e-12)
        our_metrics = evaluate_tree(ours.tree, tech, dt=2e-12)
        assert h_metrics.worst_slew <= 100e-12
        assert our_metrics.worst_slew <= 100e-12
        # Both control slew; the aggressive flow should not lose on skew
        # by a large factor while typically using less wire on clustered
        # real instances (asserted loosely: same order).
        assert our_metrics.skew < max(4 * h_metrics.skew, 80e-12)
