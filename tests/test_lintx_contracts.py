"""Contract cross-checker tests: self-check + mutation checks.

Two layers:

- **self-check** — the contract tables declared in
  ``repro.lintx.contracts`` must match the *shipped* tree: every
  env-backed ``CTSOptions`` knob declared, every degradation guard,
  fault site, CI leg, digest entry and CLI flag found where the table
  says it is, and ``repro lint src/`` clean at zero findings;
- **mutation checks** — a copy of the live tree with one safety rail
  removed (fault site, consult call, digest entry, CI leg, guard, CLI
  flag, or a reintroduced ``time.time()``) must produce a non-zero
  exit naming the expected rule at the expected file.

The mutated copies double as the "fixture trees with a knob missing
its rails" required by the analyzer's spec: each starts from a real,
passing tree, so a rule that fires does so for exactly the injected
reason.
"""

from __future__ import annotations

import re
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.lintx import contracts as C
from repro.lintx.core import SourceFile, run_lint

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src"
CI_YML = REPO_ROOT / ".github" / "workflows" / "ci.yml"


def copy_tree(target: Path) -> Path:
    """A minimal live-tree copy: every .py under src plus ci.yml."""
    for py in sorted(SRC.rglob("*.py")):
        dest = target / py.relative_to(REPO_ROOT)
        dest.parent.mkdir(parents=True, exist_ok=True)
        shutil.copy(py, dest)
    ci = target / ".github" / "workflows" / "ci.yml"
    ci.parent.mkdir(parents=True, exist_ok=True)
    shutil.copy(CI_YML, ci)
    return target


@pytest.fixture()
def tree(tmp_path):
    return copy_tree(tmp_path / "tree")


def edit(tree: Path, rel: str, old: str, new: str, count: int = 0) -> None:
    path = tree / rel
    text = path.read_text()
    assert old in text, f"{rel}: fixture drifted, {old!r} not found"
    path.write_text(text.replace(old, new) if count == 0 else text.replace(old, new, count))


def lint(tree: Path):
    return run_lint([str(tree / "src")])


def findings_for(result, rule: str):
    return [f for f in result.findings if f.rule == rule]


# ---------------------------------------------------------------------
# Self-check: the declared tables match the shipped kernels
# ---------------------------------------------------------------------


class TestSelfCheck:
    def test_shipped_tree_is_clean(self):
        result = run_lint([str(SRC)])
        assert result.findings == [], "\n".join(
            f.render() for f in result.findings
        )
        assert result.exit_code("warning") == 0

    def test_every_env_knob_is_contracted(self):
        options = SourceFile.load(str(SRC / "repro" / "core" / "options.py"))
        knobs, fields, _ = C.extract_env_knobs(options)
        declared = {c.knob for c in C.KERNEL_CONTRACTS} | {
            c.knob for c in C.FLOW_CONTRACTS
        }
        assert set(knobs) == declared
        for contract in C.KERNEL_CONTRACTS:
            assert knobs[contract.knob].env == contract.env
        for contract in C.FLOW_CONTRACTS:
            assert knobs[contract.knob].env == contract.env
        # every contracted knob really is a CTSOptions field
        assert declared <= set(fields)

    def test_every_job_policy_knob_is_contracted(self):
        policy = SourceFile.load(str(SRC / "repro" / "jobs" / "policy.py"))
        knobs, fields, _ = C.extract_env_knobs(policy, class_name="JobPolicy")
        declared = {c.knob for c in C.JOB_CONTRACTS}
        assert set(knobs) == declared
        for contract in C.JOB_CONTRACTS:
            assert knobs[contract.knob].env == contract.env
        assert declared <= set(fields)

    def test_every_job_contract_flag_is_documented(self):
        cli = SourceFile.load(str(SRC / "repro" / "cli.py"))
        flags = C.cli_flags(cli)
        for contract in C.JOB_CONTRACTS:
            assert flags.get(contract.cli_flag), (
                f"{contract.cli_flag} missing or undocumented in cli.py"
            )

    def test_every_guard_component_is_in_its_module(self):
        for contract in C.KERNEL_CONTRACTS:
            module = SourceFile.load(str(SRC / "repro" / contract.module))
            assert contract.component in C.guarded_components(module), (
                f"{contract.module} lost the {contract.component!r} guard"
            )

    def test_fault_sites_registered_and_consulted(self):
        fault = SourceFile.load(
            str(SRC / "repro" / "evalx" / "faultinject.py")
        )
        sites, _ = C.extract_string_tuple(fault, "SITES")
        files = [
            SourceFile.load(str(p)) for p in sorted(SRC.rglob("*.py"))
        ]
        from repro.lintx.core import Project

        consulted = C.consulted_sites(Project(files=files, paths=[]))
        for contract in C.KERNEL_CONTRACTS:
            assert contract.fault_site in sites
            assert contract.fault_site in consulted
        # completeness the other way: no dead registry entries
        assert set(sites) == consulted

    def test_ci_matrix_covers_both_sides_of_every_kernel_knob(self):
        workflow = C.parse_ci_workflow(str(CI_YML), CI_YML.read_text())
        assert workflow.legs, "matrix include block not parsed"
        for contract in C.KERNEL_CONTRACTS:
            values = [
                C.leg_env_value(workflow, leg, contract.env)
                for leg in workflow.legs
            ]
            fast = [C.is_fast(v, contract.fast_when) for v in values]
            assert any(fast), f"{contract.knob}: fast path never on in CI"
            assert not all(fast), f"{contract.knob}: fallback never on in CI"

    def test_digest_partition_matches_live_options(self):
        from dataclasses import fields as dc_fields

        from repro.core.checkpoint import _EXECUTION_FIELDS, _RESULT_FIELDS
        from repro.core.options import CTSOptions

        names = {f.name for f in dc_fields(CTSOptions)}
        assert set(_RESULT_FIELDS) | set(_EXECUTION_FIELDS) == names
        assert not set(_RESULT_FIELDS) & set(_EXECUTION_FIELDS)

    def test_options_digest_refuses_incomplete_partition(self, monkeypatch):
        from repro.core import checkpoint
        from repro.core.options import CTSOptions

        monkeypatch.setattr(
            checkpoint, "_RESULT_FIELDS", checkpoint._RESULT_FIELDS[:-1]
        )
        with pytest.raises(ValueError, match="seed"):
            checkpoint.options_digest(CTSOptions())


# ---------------------------------------------------------------------
# Mutation checks: each removed rail fires its rule at the right spot
# ---------------------------------------------------------------------


class TestMutations:
    def test_clean_copy_passes(self, tree):
        result = lint(tree)
        assert result.findings == [], "\n".join(
            f.render() for f in result.findings
        )

    def test_deleting_route_finish_fault_site_fires_con303(self, tree):
        edit(
            tree,
            "src/repro/evalx/faultinject.py",
            '    "route_finish",\n',
            "",
        )
        (finding,) = findings_for(lint(tree), "CON303")
        assert finding.path.endswith("faultinject.py")
        assert "route_finish" in finding.message
        assert "batch_route_finish" in finding.message

    def test_deleting_the_consult_call_fires_con303(self, tree):
        edit(
            tree,
            "src/repro/core/grid_cache.py",
            'plan.consult("route_finish")',
            "pass",
        )
        findings = findings_for(lint(tree), "CON303")
        assert findings and all(
            "route_finish" in f.message for f in findings
        )

    def test_dropping_a_digest_field_fires_con305(self, tree):
        edit(
            tree,
            "src/repro/core/checkpoint.py",
            '    "seed",\n',
            "",
            count=1,
        )
        (finding,) = findings_for(lint(tree), "CON305")
        assert finding.path.endswith("checkpoint.py")
        assert "CTSOptions.seed" in finding.message

    def test_reintroducing_time_time_in_cts_fires_det101(self, tree):
        edit(
            tree,
            "src/repro/core/cts.py",
            "time.perf_counter()",
            "time.time()",
            count=1,
        )
        findings = findings_for(lint(tree), "DET101")
        assert findings and findings[0].path.endswith("cts.py")

    def test_deleting_a_fallback_ci_leg_fires_con304(self, tree):
        ci = tree / ".github" / "workflows" / "ci.yml"
        text = re.sub(
            r"          - name: scalar-commit\n(?:            .*\n)*",
            "",
            ci.read_text(),
        )
        ci.write_text(text)
        (finding,) = findings_for(lint(tree), "CON304")
        assert finding.path.endswith("ci.yml")
        assert "batch_commit" in finding.message

    def test_deleting_a_degradation_guard_fires_con302(self, tree):
        edit(
            tree,
            "src/repro/core/grid_cache.py",
            'resilience.note("batch_route_finish", exc)',
            "pass",
        )
        (finding,) = findings_for(lint(tree), "CON302")
        assert finding.path.endswith("grid_cache.py")
        assert "batch_route_finish" in finding.message

    def test_deleting_a_cli_flag_fires_con306(self, tree):
        edit(
            tree,
            "src/repro/cli.py",
            '"--no-batch-commit"',
            '"--no-batch-commit-x"',
        )
        findings = findings_for(lint(tree), "CON306")
        assert findings and findings[0].path.endswith("cli.py")
        assert any("batch_commit" in f.message for f in findings)

    def test_new_env_knob_without_contract_fires_con301(self, tree):
        edit(
            tree,
            "src/repro/core/options.py",
            "def _default_strict()",
            (
                'def _default_batch_profile() -> bool:\n'
                '    """Honor ``REPRO_BATCH_PROFILE``."""\n'
                '    return os.environ.get("REPRO_BATCH_PROFILE", "1") != "0"\n'
                "\n\n"
                "def _default_strict()"
            ),
        )
        edit(
            tree,
            "src/repro/core/options.py",
            "    strict: bool = field(default_factory=_default_strict)",
            "    batch_profile: bool = field(default_factory=_default_batch_profile)\n"
            "    strict: bool = field(default_factory=_default_strict)",
        )
        result = lint(tree)
        con301 = findings_for(result, "CON301")
        assert con301 and "batch_profile" in con301[0].message
        assert con301[0].path.endswith("options.py")
        # ... and the unclassified field also trips the digest rule
        con305 = findings_for(result, "CON305")
        assert con305 and "batch_profile" in con305[0].message

    def test_new_job_policy_knob_without_contract_fires_con308(self, tree):
        edit(
            tree,
            "src/repro/jobs/policy.py",
            "def _default_deadline_s()",
            (
                'def _default_cpu_budget() -> float:\n'
                '    """Honor ``REPRO_JOB_CPU``."""\n'
                '    return float(os.environ.get("REPRO_JOB_CPU", "0") or 0.0)\n'
                "\n\n"
                "def _default_deadline_s()"
            ),
        )
        edit(
            tree,
            "src/repro/jobs/policy.py",
            "    deadline_s: float = field(default_factory=_default_deadline_s)",
            "    cpu_budget_s: float = field(default_factory=_default_cpu_budget)\n"
            "    deadline_s: float = field(default_factory=_default_deadline_s)",
        )
        con308 = findings_for(lint(tree), "CON308")
        assert con308 and "cpu_budget_s" in con308[0].message
        assert con308[0].path.endswith("policy.py")

    def test_renaming_a_run_batch_flag_fires_con308(self, tree):
        edit(
            tree,
            "src/repro/cli.py",
            '"--job-deadline"',
            '"--job-deadline-x"',
        )
        findings = findings_for(lint(tree), "CON308")
        assert findings and findings[0].path.endswith("cli.py")
        assert any("--job-deadline" in f.message for f in findings)

    def test_removing_the_lint_step_fires_con307(self, tree):
        ci = tree / ".github" / "workflows" / "ci.yml"
        ci.write_text(
            ci.read_text()
            .replace("python -m repro.lintx src --fail-on warning", "true")
            .replace(
                "python -m repro.lintx tests benchmarks"
                " --no-contracts --fail-on never",
                "true",
            )
        )
        (finding,) = findings_for(lint(tree), "CON307")
        assert finding.path.endswith("ci.yml")


# ---------------------------------------------------------------------
# CLI entry points: exit codes on the real and mutated trees
# ---------------------------------------------------------------------


def run_cli(args, cwd):
    return subprocess.run(
        [sys.executable, "-m", "repro.lintx", *args],
        cwd=cwd,
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
    )


class TestCLI:
    def test_module_entry_clean_tree_exits_zero(self):
        proc = run_cli(["src"], cwd=REPO_ROOT)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 errors" in proc.stdout

    def test_module_entry_mutated_tree_exits_nonzero_naming_rule(
        self, tree
    ):
        edit(
            tree,
            "src/repro/core/cts.py",
            "time.perf_counter()",
            "time.time()",
            count=1,
        )
        proc = run_cli(["src"], cwd=tree)
        assert proc.returncode == 1
        assert "DET101" in proc.stdout
        assert "cts.py" in proc.stdout

    def test_repro_lint_subcommand_and_json(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "lint", "src", "--json"],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            env={"PYTHONPATH": str(SRC), "PATH": "/usr/bin:/bin"},
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        import json

        payload = json.loads(proc.stdout)
        assert payload["findings"] == []

    def test_fail_on_never_reports_without_failing(self, tree):
        edit(
            tree,
            "src/repro/core/cts.py",
            "time.perf_counter()",
            "time.time()",
            count=1,
        )
        proc = run_cli(["src", "--fail-on", "never"], cwd=tree)
        assert proc.returncode == 0
        assert "DET101" in proc.stdout

    def test_list_rules(self):
        proc = run_cli(["--list-rules"], cwd=REPO_ROOT)
        assert proc.returncode == 0
        for rule_id in ("DET101", "PIK201", "CON301", "CON305"):
            assert rule_id in proc.stdout
