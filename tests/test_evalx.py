"""Evaluation metrics, tables and experiment drivers."""

import pytest

from repro.evalx import (
    engine_metrics,
    evaluate_tree,
    fig_1_1_rows,
    fig_3_2_experiment,
    format_table,
    paper_data,
)
from repro.evalx.harness import run_aggressive, run_merge_buffer, scale_instance
from repro.benchio import random_instance
from repro.geom import Point
from repro.tech import cts_buffer_library
from repro.tree.clocktree import ClockTree
from repro.tree.nodes import make_buffer, make_merge, make_sink


@pytest.fixture()
def tiny_tree():
    buf = cts_buffer_library()["BUF20X"]
    s_a = make_sink(Point(0, 0), 8e-15, "sA")
    s_b = make_sink(Point(3000, 0), 8e-15, "sB")
    merge = make_merge(Point(1500, 0))
    merge.attach(s_a)
    merge.attach(s_b)
    root = make_buffer(Point(1500, 100), buf)
    root.attach(merge)
    return ClockTree.from_network(Point(1500, 120), root)


class TestEvaluateTree:
    def test_fields_consistent(self, tiny_tree, tech):
        metrics = evaluate_tree(tiny_tree, tech)
        assert metrics.n_sinks == 2
        assert set(metrics.sink_arrivals) == {"sA", "sB"}
        assert metrics.latency >= metrics.min_latency
        assert metrics.skew == pytest.approx(
            metrics.latency - metrics.min_latency, abs=1e-15
        )
        assert metrics.worst_slew > 0
        assert metrics.method == "spice"

    def test_row_scaling(self, tiny_tree, tech):
        metrics = evaluate_tree(tiny_tree, tech)
        row = metrics.row()
        assert row["worst_slew_ps"] == pytest.approx(metrics.worst_slew * 1e12)
        assert row["latency_ns"] == pytest.approx(metrics.latency * 1e9)

    def test_engine_and_spice_agree(self, tiny_tree, tech, engine):
        spice = evaluate_tree(tiny_tree, tech)
        est = engine_metrics(tiny_tree, engine)
        assert est.method == "engine"
        assert est.skew == pytest.approx(spice.skew, abs=2e-12)
        assert est.latency == pytest.approx(spice.latency, rel=0.08)

    def test_rejects_non_source_root(self, tech):
        node = make_sink(Point(0, 0), 1e-15)
        with pytest.raises(ValueError):
            evaluate_tree(node, tech)

    def test_source_slew_affects_latency(self, tiny_tree, tech):
        fast = evaluate_tree(tiny_tree, tech, source_slew=30e-12)
        slow = evaluate_tree(tiny_tree, tech, source_slew=140e-12)
        assert slow.latency > fast.latency


class TestHarness:
    def test_run_aggressive_row(self, tech):
        inst = random_instance(8, 15000.0, seed=31)
        run = run_aggressive(inst, tech=tech, eval_dt=2e-12)
        row = run.row()
        assert row["sinks"] == 8
        assert row["worst_slew_ps"] <= paper_data.SLEW_LIMIT_PS
        assert row["buffers"] > 0

    def test_run_merge_buffer(self, tech):
        inst = random_instance(6, 12000.0, seed=32)
        metrics = run_merge_buffer(inst, "rajaram-pan06", tech=tech)
        assert metrics.n_sinks == 6

    def test_scale_instance(self):
        inst = random_instance(100, 1000.0, seed=1)
        scaled = scale_instance(inst, full=False, scale=10)
        assert scaled.n_sinks == 10
        assert scale_instance(inst, full=True).n_sinks == 100


class TestExperimentDrivers:
    def test_fig_1_1_shape(self, tech):
        rows = fig_1_1_rows(lengths=(500.0, 2000.0, 6000.0), dt=2e-12)
        assert len(rows) == 3
        slews = [r["slew_buf20x_ps"] for r in rows]
        assert slews[0] < slews[1] < slews[2]
        # 30X is better but same order.
        assert rows[2]["slew_buf30x_ps"] < rows[2]["slew_buf20x_ps"]

    def test_fig_3_2_shift_order_of_paper(self, tech):
        result = fig_3_2_experiment(dt=1e-12)
        assert 10e-12 < result.output_shift < 90e-12
        assert result.input_slew == pytest.approx(150e-12, rel=0.05)


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"],
            [["a", 1.25], ["long-name", 100.0]],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 5  # title, header, separator, 2 rows
        assert all(len(l) == len(lines[1]) for l in lines[1:])

    def test_paper_data_complete(self):
        assert set(paper_data.TABLE_5_1) == {"r1", "r2", "r3", "r4", "r5"}
        assert len(paper_data.TABLE_5_2) == 7
        assert len(paper_data.TABLE_5_3) == 12
        # The quoted averages match the per-row data.
        import numpy as np

        mean_re = np.mean(
            [row["reestimate_ratio"] for row in paper_data.TABLE_5_3.values()]
        )
        assert mean_re == pytest.approx(
            paper_data.TABLE_5_3_AVERAGES["reestimate"], abs=0.05
        )
