"""Evaluation metrics, tables and experiment drivers."""

import pytest

from repro.evalx import (
    engine_metrics,
    evaluate_tree,
    fig_1_1_rows,
    fig_3_2_experiment,
    format_table,
    paper_data,
)
from repro.evalx.harness import run_aggressive, run_merge_buffer, scale_instance
from repro.benchio import random_instance
from repro.geom import Point
from repro.tech import cts_buffer_library
from repro.tree.clocktree import ClockTree
from repro.tree.nodes import make_buffer, make_merge, make_sink


@pytest.fixture()
def tiny_tree():
    buf = cts_buffer_library()["BUF20X"]
    s_a = make_sink(Point(0, 0), 8e-15, "sA")
    s_b = make_sink(Point(3000, 0), 8e-15, "sB")
    merge = make_merge(Point(1500, 0))
    merge.attach(s_a)
    merge.attach(s_b)
    root = make_buffer(Point(1500, 100), buf)
    root.attach(merge)
    return ClockTree.from_network(Point(1500, 120), root)


class TestSaturatingWaveformGuard:
    """A sink whose waveform never crosses the logic threshold is skipped
    and reported instead of aborting the evaluation (the ``bench --table
    5.1 --scale 30`` regression: a merge-buffer baseline tree saturates
    below threshold at that scale)."""

    @pytest.fixture()
    def flat_tree(self):
        s_a = make_sink(Point(0, 0), 8e-15, "sA")
        s_b = make_sink(Point(3000, 0), 8e-15, "sB")
        merge = make_merge(Point(1500, 0))
        merge.attach(s_a)
        merge.attach(s_b)
        return ClockTree.from_network(Point(1500, 120), merge)

    def _stub_sim(self, monkeypatch, tree, tech, saturating):
        """Replace the stage simulation with synthetic waveforms: sinks in
        ``saturating`` settle at 0.3 Vdd (never crossing the 0.5 Vdd
        threshold), the rest ramp cleanly to the rail."""
        import repro.evalx.metrics as metrics_mod
        from repro.timing.waveform import Waveform
        from repro.tree.stages_map import stage_spec_for

        __, id_map = stage_spec_for(tree.root, tech)
        vdd = tech.vdd
        times = [0.0, 100e-12, 200e-12]

        def wave_for(node_id):
            node = id_map[node_id]
            if node.name in saturating:
                return Waveform(times, [0.0, 0.3 * vdd, 0.3 * vdd])
            return Waveform(times, [0.0, vdd, vdd])

        class FakeSim:
            def waveform(self, node_id):
                return wave_for(node_id)

            def worst_slew(self):
                return 40e-12

        monkeypatch.setattr(
            metrics_mod, "simulate_stage", lambda *a, **k: FakeSim()
        )

    def test_saturating_sink_skipped_and_reported(
        self, flat_tree, tech, monkeypatch
    ):
        self._stub_sim(monkeypatch, flat_tree, tech, saturating={"sB"})
        with pytest.warns(RuntimeWarning, match="sB.*saturates"):
            metrics = evaluate_tree(flat_tree, tech)
        assert metrics.skipped_sinks == ["sB"]
        assert set(metrics.sink_arrivals) == {"sA"}
        assert metrics.row()["skipped_sinks"] == 1
        # skew/latency computed over the measured sink alone
        assert metrics.skew == 0.0
        assert metrics.latency == metrics.sink_arrivals["sA"]

    def test_all_sinks_saturating_raises(self, flat_tree, tech, monkeypatch):
        self._stub_sim(monkeypatch, flat_tree, tech, saturating={"sA", "sB"})
        with pytest.warns(RuntimeWarning):
            with pytest.raises(RuntimeError, match="electrically dead"):
                evaluate_tree(flat_tree, tech)


class TestEvaluateTree:
    def test_fields_consistent(self, tiny_tree, tech):
        metrics = evaluate_tree(tiny_tree, tech)
        assert metrics.n_sinks == 2
        assert set(metrics.sink_arrivals) == {"sA", "sB"}
        assert metrics.latency >= metrics.min_latency
        assert metrics.skew == pytest.approx(
            metrics.latency - metrics.min_latency, abs=1e-15
        )
        assert metrics.worst_slew > 0
        assert metrics.method == "spice"

    def test_row_scaling(self, tiny_tree, tech):
        metrics = evaluate_tree(tiny_tree, tech)
        row = metrics.row()
        assert row["worst_slew_ps"] == pytest.approx(metrics.worst_slew * 1e12)
        assert row["latency_ns"] == pytest.approx(metrics.latency * 1e9)

    def test_engine_and_spice_agree(self, tiny_tree, tech, engine):
        spice = evaluate_tree(tiny_tree, tech)
        est = engine_metrics(tiny_tree, engine)
        assert est.method == "engine"
        assert est.skew == pytest.approx(spice.skew, abs=2e-12)
        assert est.latency == pytest.approx(spice.latency, rel=0.08)

    def test_rejects_non_source_root(self, tech):
        node = make_sink(Point(0, 0), 1e-15)
        with pytest.raises(ValueError):
            evaluate_tree(node, tech)

    def test_source_slew_affects_latency(self, tiny_tree, tech):
        fast = evaluate_tree(tiny_tree, tech, source_slew=30e-12)
        slow = evaluate_tree(tiny_tree, tech, source_slew=140e-12)
        assert slow.latency > fast.latency


class TestHarness:
    def test_run_aggressive_row(self, tech):
        inst = random_instance(8, 15000.0, seed=31)
        run = run_aggressive(inst, tech=tech, eval_dt=2e-12)
        row = run.row()
        assert row["sinks"] == 8
        assert row["worst_slew_ps"] <= paper_data.SLEW_LIMIT_PS
        assert row["buffers"] > 0

    def test_run_merge_buffer(self, tech):
        inst = random_instance(6, 12000.0, seed=32)
        metrics = run_merge_buffer(inst, "rajaram-pan06", tech=tech)
        assert metrics.n_sinks == 6

    def test_scale_instance(self):
        inst = random_instance(100, 1000.0, seed=1)
        scaled = scale_instance(inst, full=False, scale=10)
        assert scaled.n_sinks == 10
        assert scale_instance(inst, full=True).n_sinks == 100


class TestExperimentDrivers:
    def test_fig_1_1_shape(self, tech):
        rows = fig_1_1_rows(lengths=(500.0, 2000.0, 6000.0), dt=2e-12)
        assert len(rows) == 3
        slews = [r["slew_buf20x_ps"] for r in rows]
        assert slews[0] < slews[1] < slews[2]
        # 30X is better but same order.
        assert rows[2]["slew_buf30x_ps"] < rows[2]["slew_buf20x_ps"]

    def test_fig_3_2_shift_order_of_paper(self, tech):
        result = fig_3_2_experiment(dt=1e-12)
        assert 10e-12 < result.output_shift < 90e-12
        assert result.input_slew == pytest.approx(150e-12, rel=0.05)


class TestTables:
    def test_format_table_alignment(self):
        text = format_table(
            ["name", "value"],
            [["a", 1.25], ["long-name", 100.0]],
            title="T",
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert len(lines) == 5  # title, header, separator, 2 rows
        assert all(len(l) == len(lines[1]) for l in lines[1:])

    def test_paper_data_complete(self):
        assert set(paper_data.TABLE_5_1) == {"r1", "r2", "r3", "r4", "r5"}
        assert len(paper_data.TABLE_5_2) == 7
        assert len(paper_data.TABLE_5_3) == 12
        # The quoted averages match the per-row data.
        import numpy as np

        mean_re = np.mean(
            [row["reestimate_ratio"] for row in paper_data.TABLE_5_3.values()]
        )
        assert mean_re == pytest.approx(
            paper_data.TABLE_5_3_AVERAGES["reestimate"], abs=0.05
        )
