"""Per-rule unit tests for repro-lint (inline code fixtures).

Each determinism/picklability rule is exercised on minimal snippets:
one that must fire (with the expected location) and near-miss variants
that must stay silent — the rules are only useful if `repro lint src/`
can be kept at zero findings without drowning real code in
suppressions. The framework itself (suppressions, severities, exit
codes, reporters) is tested at the bottom.
"""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.lintx.core import (
    NEVER,
    Project,
    SourceFile,
    all_rules,
    run_lint,
)
from repro.lintx.report import render_json


def file_findings(code: str, path: str = "probe.py"):
    source = SourceFile.parse(path, textwrap.dedent(code))
    assert source.syntax_error is None, source.syntax_error
    found = []
    for rule in all_rules():
        found.extend(rule.check_file(source))
    return found


def rules_fired(code: str) -> set[str]:
    return {f.rule for f in file_findings(code)}


def only(code: str, rule_id: str):
    matches = [f for f in file_findings(code) if f.rule == rule_id]
    assert matches, f"{rule_id} did not fire"
    return matches


# ---------------------------------------------------------------------
# DET101 — wall clock
# ---------------------------------------------------------------------


class TestWallClock:
    def test_fires_on_time_time(self):
        (finding,) = only(
            """
            import time
            def f():
                return time.time()
            """,
            "DET101",
        )
        assert finding.line == 4
        assert "perf_counter" in finding.message

    def test_fires_through_from_import_alias(self):
        assert "DET101" in rules_fired(
            """
            from time import time as now
            def f():
                return now()
            """
        )

    def test_silent_on_perf_counter_and_sleep(self):
        assert "DET101" not in rules_fired(
            """
            import time
            def f():
                t0 = time.perf_counter()
                time.sleep(0.1)
                return time.perf_counter() - t0
            """
        )


# ---------------------------------------------------------------------
# DET102 — unseeded RNG
# ---------------------------------------------------------------------


class TestUnseededRandom:
    def test_fires_on_stdlib_global_draws(self):
        assert len(only(
            """
            import random
            def f(items):
                random.shuffle(items)
                return random.random()
            """,
            "DET102",
        )) == 2

    def test_fires_on_numpy_global_draws(self):
        for snippet in (
            "import numpy as np\nx = np.random.rand(3)",
            "import numpy\nx = numpy.random.normal()",
            "from numpy import random as npr\nx = npr.uniform()",
        ):
            assert "DET102" in rules_fired(snippet), snippet

    def test_silent_on_seeded_generators(self):
        assert "DET102" not in rules_fired(
            """
            import random
            import numpy as np
            def f(seed):
                rng = np.random.default_rng(seed)
                r = random.Random(seed)
                return rng.normal() + r.random()
            """
        )


# ---------------------------------------------------------------------
# DET103 — hash-ordered set consumption
# ---------------------------------------------------------------------


class TestSetIteration:
    def test_fires_on_for_loop_over_set_name(self):
        (finding,) = only(
            """
            def f(out):
                pending = {"a", "b"}
                for name in pending:
                    out.append(name)
            """,
            "DET103",
        )
        assert finding.line == 4

    def test_fires_on_set_call_and_set_ops(self):
        assert "DET103" in rules_fired(
            """
            def f(xs, ys, out):
                for x in set(xs) - set(ys):
                    out.append(x)
            """
        )

    def test_fires_on_materialization_and_fstring(self):
        code = """
            def f(xs):
                s = set(xs)
                a = list(s)
                b = sum(s)
                return f"missing: {s}", a, b
            """
        assert len(only(code, "DET103")) == 3

    def test_silent_when_sorted_or_order_insensitive(self):
        assert "DET103" not in rules_fired(
            """
            def f(xs, ys):
                s = set(xs)
                for x in sorted(s):
                    ys.append(x)
                n = len(s)
                top = max(s)
                hit = 3 in s
                both = {x for x in s}
                msg = f"missing: {sorted(s)}"
                return n, top, hit, both, msg
            """
        )

    def test_silent_on_rebound_nonset_name(self):
        # A name assigned a set in one branch and a list in another is
        # unknown: the rule must under-report, not guess.
        assert "DET103" not in rules_fired(
            """
            def f(xs, flag, out):
                items = set(xs)
                if flag:
                    items = sorted(xs)
                for x in items:
                    out.append(x)
            """
        )


# ---------------------------------------------------------------------
# DET104 — filesystem enumeration order
# ---------------------------------------------------------------------


class TestDirScan:
    def test_fires_on_listdir_glob_pathlib(self):
        code = """
            import os, glob
            from pathlib import Path
            def f(d):
                a = os.listdir(d)
                b = glob.glob("*.ckpt")
                c = Path(d).iterdir()
                e = Path(d).glob("*.txt")
                return a, b, c, e
            """
        assert len(only(code, "DET104")) == 4

    def test_silent_when_wrapped_sorted_or_len(self):
        assert "DET104" not in rules_fired(
            """
            import os, glob
            def f(d):
                a = sorted(os.listdir(d))
                b = sorted(n for n in os.listdir(d) if n.endswith(".ckpt"))
                c = len(glob.glob("*.txt"))
                return a, b, c
            """
        )


# ---------------------------------------------------------------------
# DET105 — completion-ordered gathers
# ---------------------------------------------------------------------


class TestGatherOrder:
    def test_fires_on_as_completed_and_imap_unordered(self):
        assert "DET105" in rules_fired(
            """
            from concurrent.futures import as_completed
            def f(futures):
                return [fut.result() for fut in as_completed(futures)]
            """
        )
        assert "DET105" in rules_fired(
            """
            def f(pool, xs):
                return list(pool.imap_unordered(str, xs))
            """
        )

    def test_silent_on_submission_order_gather(self):
        assert "DET105" not in rules_fired(
            """
            def f(futures):
                return [fut.result() for fut in futures]
            """
        )


# ---------------------------------------------------------------------
# DET106 — arbitrary-element removal
# ---------------------------------------------------------------------


class TestArbitraryRemoval:
    def test_fires_on_set_pop_popitem_next_iter(self):
        assert "DET106" in rules_fired(
            "def f(xs):\n    s = set(xs)\n    return s.pop()\n"
        )
        assert "DET106" in rules_fired(
            "def f(d):\n    return d.popitem()\n"
        )
        assert "DET106" in rules_fired(
            "def f(xs):\n    s = set(xs)\n    return next(iter(s))\n"
        )

    def test_fires_on_value_based_remove_of_computed_key(self):
        (finding,) = only(
            """
            def f(costs):
                queue = list(costs)
                queue.remove(min(queue))
                return queue
            """,
            "DET106",
        )
        assert "identity" in finding.message

    def test_silent_on_keyed_and_identity_patterns(self):
        assert "DET106" not in rules_fired(
            """
            def f(d, key, items, chosen):
                a = d.pop(key)
                b = items.pop()          # receiver type unknown: no guess
                lst = list(items)
                lst.remove(chosen)       # removing a bound name, not a computed value
                return a, b
            """
        )


# ---------------------------------------------------------------------
# PIK201 — pool picklability
# ---------------------------------------------------------------------


def project_findings(code: str):
    source = SourceFile.parse("probe.py", textwrap.dedent(code))
    project = Project(files=[source], paths=["probe.py"])
    found = []
    for rule in all_rules():
        found.extend(rule.check_project(project))
    return found


class TestPicklability:
    def test_fires_on_reachable_lambda_handle_local_fn_and_capture(self):
        found = [
            f
            for f in project_findings(
                """
                from dataclasses import dataclass

                _REGISTRY = {}

                @dataclass
                class WorkerContext:
                    payload: "Payload"

                class Payload:
                    def __init__(self):
                        self.cb = lambda x: x
                        self.fh = open("log.txt")
                        self.shared = _REGISTRY
                        def helper():
                            return 1
                        self.helper = helper
                """
            )
            if f.rule == "PIK201"
        ]
        assert len(found) == 4
        assert all("Payload" in f.message for f in found)

    def test_getstate_exempts_and_unreachable_ignored(self):
        assert not project_findings(
            """
            from dataclasses import dataclass

            @dataclass
            class WorkerContext:
                fit: "CompiledFit"

            class CompiledFit:
                def __init__(self):
                    self._eval = lambda x: x  # re-derived on unpickle
                def __getstate__(self):
                    return {}

            class NeverPooled:
                def __init__(self):
                    self.cb = lambda x: x
            """
        )

    def test_route_pair_annotations_seed_reachability(self):
        found = project_findings(
            """
            from dataclasses import dataclass

            @dataclass
            class WorkerContext:
                n: int

            class RouteResult:
                def __init__(self):
                    self.on_commit = lambda t: t

            def route_pair(a, b) -> "RouteResult":
                return RouteResult()
            """
        )
        assert [f.rule for f in found] == ["PIK201"]

    def test_no_pool_boundary_no_findings(self):
        assert not project_findings(
            """
            class Anything:
                def __init__(self):
                    self.cb = lambda x: x
            """
        )


# ---------------------------------------------------------------------
# Framework: suppressions, severities, reporters
# ---------------------------------------------------------------------


def lint_file(tmp_path, code: str, **kwargs):
    path = tmp_path / "mod.py"
    path.write_text(textwrap.dedent(code))
    return run_lint([str(path)], **kwargs)


class TestSuppressions:
    def test_line_suppression_with_reason(self, tmp_path):
        result = lint_file(
            tmp_path,
            """
            import time
            STARTED_AT = time.time()  # repro-lint: ignore[DET101] report header wants wall-clock
            """,
        )
        assert not result.findings
        assert result.suppressed == 1

    def test_file_suppression(self, tmp_path):
        result = lint_file(
            tmp_path,
            """
            # repro-lint: ignore-file[DET104] enumerates a tmpdir this test fully controls
            import os
            def f(d):
                return os.listdir(d), os.listdir(d)
            """,
        )
        assert not result.findings
        assert result.suppressed == 2

    def test_missing_reason_is_lnt001(self, tmp_path):
        result = lint_file(
            tmp_path,
            """
            import time
            t = time.time()  # repro-lint: ignore[DET101]
            """,
        )
        rules = {f.rule for f in result.findings}
        assert "LNT001" in rules
        assert "DET101" in rules  # the malformed comment suppressed nothing

    def test_unused_suppression_is_lnt002(self, tmp_path):
        result = lint_file(
            tmp_path,
            """
            x = 1  # repro-lint: ignore[DET101] nothing here actually uses a clock
            """,
        )
        assert [f.rule for f in result.findings] == ["LNT002"]

    def test_docstring_example_is_not_a_suppression(self, tmp_path):
        result = lint_file(
            tmp_path,
            '''
            """Example: x = time.time()  # repro-lint: ignore-file[DET101] doc example"""
            import time
            t = time.time()
            ''',
        )
        assert [f.rule for f in result.findings] == ["DET101"]

    def test_syntax_error_is_lnt003(self, tmp_path):
        result = lint_file(tmp_path, "def broken(:\n    pass\n")
        assert [f.rule for f in result.findings] == ["LNT003"]


class TestExitCodesAndReport:
    def test_fail_on_thresholds(self, tmp_path):
        result = lint_file(tmp_path, "import time\nt = time.time()\n")
        assert result.exit_code("error") == 1
        assert result.exit_code("warning") == 1
        assert result.exit_code(NEVER) == 0
        clean = lint_file(tmp_path, "x = 1\n")
        assert clean.exit_code("info") == 0

    def test_json_report_schema(self, tmp_path):
        result = lint_file(tmp_path, "import time\nt = time.time()\n")
        payload = json.loads(render_json(result))
        assert payload["version"] == 1
        assert payload["counts"]["error"] == 1
        (entry,) = payload["findings"]
        assert entry["rule"] == "DET101"
        assert entry["path"].endswith("mod.py")
        assert entry["line"] == 2

    def test_findings_sorted_and_rule_registry_unique(self, tmp_path):
        rules = all_rules()
        assert len({r.id for r in rules}) == len(rules)
        assert all(r.summary for r in rules)
        result = lint_file(
            tmp_path,
            """
            import time, os
            def f(d):
                return time.time(), os.listdir(d)
            """,
        )
        keys = [(f.path, f.line, f.col, f.rule) for f in result.findings]
        assert keys == sorted(keys)
