"""Balance stage (wire snaking) and binary search stage."""

import pytest

from repro.core.balance import snake_delay
from repro.core.binary_search import binary_search_merge, evaluate_split
from repro.core.options import CTSOptions
from repro.geom.point import Point
from repro.geom.segment import PathPolyline
from repro.tech import cts_buffer_library
from repro.tree.nodes import NodeKind, make_buffer, make_sink
from repro.tree.validate import validate_tree


@pytest.fixture(scope="module")
def options():
    return CTSOptions()


@pytest.fixture(scope="module")
def buffers():
    return cts_buffer_library()


class TestSnakeDelay:
    def test_zero_target_is_noop(self, library, buffers, options):
        sink = make_sink(Point(0, 0), 8e-15)
        result = snake_delay(sink, 0.0, library, buffers, options, 8e-15)
        assert result.new_root is sink
        assert result.n_buffers == 0

    @pytest.mark.parametrize("target_ps", [60.0, 150.0, 400.0])
    def test_adds_requested_delay(self, library, buffers, options, engine, target_ps):
        sink = make_sink(Point(0, 0), 8e-15)
        target = target_ps * 1e-12
        result = snake_delay(sink, target, library, buffers, options, 8e-15)
        assert result.n_buffers >= 1
        # The builder's own accounting lands near the target...
        assert result.added_delay == pytest.approx(target, rel=0.35)
        # ...and the timing engine agrees with the accounting.
        bounds = engine.subtree_bounds(result.new_root, options.target_slew)
        assert bounds.max_delay == pytest.approx(result.added_delay, rel=0.15)

    def test_tiny_target_skipped(self, library, buffers, options):
        """Delay below half a minimum buffer increment is left alone."""
        sink = make_sink(Point(0, 0), 8e-15)
        result = snake_delay(sink, 1e-12, library, buffers, options, 8e-15)
        assert result.n_buffers == 0

    def test_chain_is_structurally_valid(self, library, buffers, options):
        sink = make_sink(Point(0, 0), 8e-15)
        result = snake_delay(sink, 300e-12, library, buffers, options, 8e-15)
        validate_tree(result.new_root)
        # Snake wires fold in place: nodes share the root's location.
        for node in result.new_root.walk():
            assert node.location == sink.location

    def test_snake_respects_slew_target(self, library, buffers, options, engine):
        sink = make_sink(Point(0, 0), 8e-15)
        result = snake_delay(sink, 500e-12, library, buffers, options, 8e-15)
        bounds = engine.subtree_bounds(result.new_root, options.target_slew)
        assert bounds.worst_slew <= options.target_slew * 1.05


class TestBinarySearch:
    def make_sides(self, buffers, left_delay_wire=1000.0, right_delay_wire=1000.0):
        buf = buffers["BUF20X"]
        v1 = make_buffer(Point(0, 0), buf)
        v1.attach(make_sink(Point(-left_delay_wire, 0), 8e-15))
        v2 = make_buffer(Point(4000, 0), buf)
        v2.attach(make_sink(Point(4000 + right_delay_wire, 0), 8e-15))
        span = PathPolyline([Point(0, 0), Point(4000, 0)])
        return v1, v2, span

    def test_balanced_sides_meet_in_middle(self, engine, buffers, options):
        v1, v2, span = self.make_sides(buffers)
        pos = binary_search_merge(
            engine, "BUF30X", options.target_slew, v1, v2, span,
            slew_target=options.target_slew,
        )
        assert pos.ratio == pytest.approx(0.5, abs=0.1)
        assert abs(pos.delay_difference) < 1e-12

    def test_unbalanced_shifts_toward_slow_side(self, engine, buffers, options):
        # Pure delay balance (no slew clamp): the difference must null.
        v1, v2, span = self.make_sides(buffers, left_delay_wire=2500.0, right_delay_wire=300.0)
        pos = binary_search_merge(
            engine, "BUF30X", options.target_slew, v1, v2, span,
            slew_target=None,
        )
        assert pos.ratio < 0.45  # left is slower: M moves toward v1
        assert abs(pos.delay_difference) < 2e-12

    def test_lengths_sum_to_span(self, engine, buffers, options):
        v1, v2, span = self.make_sides(buffers)
        pos = binary_search_merge(
            engine, "BUF30X", options.target_slew, v1, v2, span
        )
        assert pos.left_length + pos.right_length == pytest.approx(span.length)
        assert pos.location == span.point_at_length(pos.left_length)

    def test_disabled_uses_midpoint(self, engine, buffers, options):
        v1, v2, span = self.make_sides(buffers, 2500.0, 300.0)
        pos = binary_search_merge(
            engine, "BUF30X", options.target_slew, v1, v2, span, enabled=False
        )
        assert pos.ratio == 0.5

    def test_extreme_case_clamps_to_endpoint(self, engine, buffers, options):
        """A hopeless imbalance (balance stage's job) pins M at one end."""
        buf = buffers["BUF20X"]
        v1 = make_buffer(Point(0, 0), buf)
        chain = v1
        # Big sub-tree below v1: several buffered stages of delay.
        for i in range(4):
            nxt = make_buffer(Point(0, -(i + 1) * 1500), buf)
            chain.attach(nxt)
            chain = nxt
        chain.attach(make_sink(Point(0, -9000), 8e-15))
        v2 = make_buffer(Point(1000, 0), buf)
        v2.attach(make_sink(Point(1200, 0), 8e-15))
        span = PathPolyline([Point(0, 0), Point(1000, 0)])
        pos = binary_search_merge(
            engine, "BUF30X", options.target_slew, v1, v2, span
        )
        assert pos.ratio == 0.0  # all wire to the fast side
        assert pos.delay_difference > 0

    def test_evaluate_split_slews_bounded_reporting(self, engine, buffers, options):
        v1, v2, span = self.make_sides(buffers)
        left, right, timing = evaluate_split(
            engine, "BUF30X", options.target_slew, v1, v2, 2000.0, 2000.0
        )
        assert left.max_delay > 0 and right.max_delay > 0
        assert timing.left_slew > 0 and timing.right_slew > 0

    def test_slew_clamp_improves_violated_side(self, engine, buffers, options):
        """The balanced r leaves the right wire slew-infeasible; with the
        clamp enabled the chosen position must reduce that violation
        (full feasibility may be impossible for long spans — corrective
        insertion in merge-routing handles the remainder)."""
        buf = buffers["BUF20X"]
        v1 = make_buffer(Point(0, 0), buf)
        mid = make_buffer(Point(0, -2000), buf)  # slow left side
        v1.attach(mid)
        mid.attach(make_sink(Point(0, -4500), 8e-15))
        v2 = make_buffer(Point(6000, 0), buf)
        v2.attach(make_sink(Point(6300, 0), 8e-15))
        span = PathPolyline([Point(0, 0), Point(6000, 0)])
        free = binary_search_merge(
            engine, "BUF30X", options.target_slew, v1, v2, span,
            slew_target=None,
        )
        clamped = binary_search_merge(
            engine, "BUF30X", options.target_slew, v1, v2, span,
            slew_target=options.target_slew,
        )

        def right_slew(pos):
            __, __, timing = evaluate_split(
                engine, "BUF30X", options.target_slew, v1, v2,
                pos.left_length, pos.right_length,
            )
            return timing.right_slew

        if right_slew(free) > options.target_slew:
            assert right_slew(clamped) < right_slew(free)
            assert clamped.ratio > free.ratio  # right wire shortened
