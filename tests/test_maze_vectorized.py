"""Equivalence of the vectorized routing engine vs the seed references.

The contract of the vectorized rewrite (maze BFS, blocking, matching):

- ``block`` marks exactly the same cells as the cell-by-cell reference;
- every strategy of the consolidated BFS engine (closed-form, sparse
  breadth-first + depth reconstruction, frontier-dilation wave) produces
  distance fields bit-identical to the queue reference;
- descent paths are distance-consistent shortest paths (each step
  adjacent and one BFS level closer), identical for every strategy
  because they are a pure function of the distance field;
- ``route_maze`` picks the identical merge cell (it depends only on the
  distance fields) with identical per-side step counts;
- the bucketed ``greedy_matching`` returns the exact same pairs and seed
  as the O(n^2) reference, including tie resolution.
"""

import numpy as np
import pytest

from repro.core.maze_router import BFS_ENGINE, MazeGrid, route_maze
from repro.core.options import CTSOptions
from repro.core.routing_common import RouteTerminal, slew_limited_length
from repro.core.topology import (
    EdgeCost,
    SubTree,
    greedy_matching,
    greedy_matching_reference,
)
from repro.geom.bbox import BBox
from repro.geom.point import Point
from repro.timing.analysis import SubtreeBounds
from repro.tree.nodes import make_sink


def random_grid(rng, max_dim=50, n_blocks=(0, 5)):
    nx = int(rng.integers(4, max_dim))
    ny = int(rng.integers(4, max_dim))
    grid = MazeGrid(BBox(0, 0, nx * 100.0, ny * 100.0), pitch=100.0)
    for _ in range(int(rng.integers(*n_blocks))):
        x0, y0 = rng.uniform(0, nx * 100.0), rng.uniform(0, ny * 100.0)
        grid.block(
            BBox(x0, y0, x0 + rng.uniform(100, 2000), y0 + rng.uniform(100, 2000))
        )
    return grid


def free_cell(grid, rng):
    free = np.argwhere(~grid.blocked)
    return tuple(free[rng.integers(len(free))])


class TestBlockEquivalence:
    def test_masked_block_matches_reference(self, rng):
        for _ in range(10):
            bbox = BBox(0, 0, float(rng.uniform(500, 6000)), float(rng.uniform(500, 6000)))
            pitch = float(rng.uniform(37.0, 240.0))
            vec, ref = MazeGrid(bbox, pitch), MazeGrid(bbox, pitch)
            for _ in range(int(rng.integers(1, 6))):
                x0, y0 = rng.uniform(-500, 6000, 2)
                region = BBox(
                    x0, y0, x0 + rng.uniform(50, 2500), y0 + rng.uniform(50, 2500)
                )
                vec.block(region)
                ref.block_reference(region)
            assert np.array_equal(vec.blocked, ref.blocked)


class TestBfsEquivalence:
    def test_distance_fields_identical(self, rng):
        for _ in range(12):
            grid = random_grid(rng)
            start = free_cell(grid, rng)
            dist_ref = grid.bfs_reference(start)
            assert np.array_equal(BFS_ENGINE.sparse(grid, start), dist_ref)
            assert np.array_equal(BFS_ENGINE.wave(grid, start), dist_ref)
            assert np.array_equal(grid.bfs(start), dist_ref)
            if not grid._any_blocked:
                assert np.array_equal(
                    BFS_ENGINE.closed_form(grid, start), dist_ref
                )

    def test_descent_paths_distance_consistent(self, rng):
        for _ in range(6):
            grid = random_grid(rng)
            start = free_cell(grid, rng)
            dist_ref = grid.bfs_reference(start)
            for strategy in (BFS_ENGINE.sparse, BFS_ENGINE.wave):
                dist = strategy(grid, start)
                reached = np.argwhere(dist >= 0)
                for cell in map(tuple, reached[:: max(1, len(reached) // 40)]):
                    path = grid.descend(dist, cell)
                    assert path[0] == start
                    assert path[-1] == cell
                    # shortest: length equals the reference distance
                    assert len(path) == dist_ref[cell] + 1
                    for (i1, j1), (i2, j2) in zip(path, path[1:]):
                        assert abs(i1 - i2) + abs(j1 - j2) == 1
                        assert not grid.blocked[i2, j2]
                    # the descent is a function of the field alone, so
                    # equal fields give byte-equal paths across strategies
                    assert path == grid.descend(dist_ref, cell)

    def test_blocked_start_raises_everywhere(self):
        grid = MazeGrid(BBox(0, 0, 1000, 1000), pitch=100.0)
        grid.block(BBox(-50, -50, 50, 50))
        for fn in (grid.bfs, grid.bfs_reference):
            with pytest.raises(ValueError):
                fn((0, 0))
        with pytest.raises(ValueError):
            grid.bfs_many([(5, 5), (0, 0)])


class TestRouteEquivalence:
    def term(self, x, y, delay=0.0):
        node = make_sink(Point(x, y), 8e-15)
        return RouteTerminal(node, Point(x, y), delay, delay, "BUF20X")

    def test_identical_merge_cell_and_step_counts(self, library, monkeypatch):
        """The merge point depends only on the distance fields, so the
        reference BFS and the vectorized BFS must choose the same cell."""
        options = CTSOptions()
        stage_length = slew_limited_length(library, options.target_slew)
        wall = [BBox(4500, -1500, 5200, 900), BBox(2000, 2000, 2600, 5200)]
        t1, t2 = self.term(0, 0, delay=30e-12), self.term(9000, 4000)
        fast = route_maze(t1, t2, library, options, stage_length, wall)
        monkeypatch.setattr(MazeGrid, "bfs", MazeGrid.bfs_reference)
        monkeypatch.setattr(
            MazeGrid, "bfs_many", lambda self, starts: [self.bfs(s) for s in starts]
        )
        ref = route_maze(t1, t2, library, options, stage_length, wall)
        assert fast.meeting_point == ref.meeting_point
        assert fast.est_left_delay == ref.est_left_delay
        assert fast.est_right_delay == ref.est_right_delay
        # Identical distance fields + deterministic descent = identical
        # geometry, not merely equal-length shortest paths.
        assert fast.left.polyline.points == ref.left.polyline.points
        assert fast.right.polyline.points == ref.right.polyline.points
        assert fast.left.state == ref.left.state
        assert fast.right.state == ref.right.state


def subtree(x, y, delay=0.0):
    node = make_sink(Point(x, y), 5e-15)
    return SubTree(node, SubtreeBounds(delay, delay, 0.0))


class TestMatchingEquivalence:
    @pytest.mark.parametrize("beta", [0.0, 1.0, 1000.0])
    def test_identical_pairs_up_to_n300(self, rng, beta):
        cost = EdgeCost(CTSOptions(cost_beta=beta), delay_per_unit=0.02e-12)
        for trial in range(12):
            n = int(rng.integers(1, 301))
            if trial % 3 == 0:  # clustered levels (register banks)
                centers = rng.uniform(0, 10000, (5, 2))
                pts = centers[rng.integers(0, 5, n)] + rng.normal(0, 250, (n, 2))
            else:
                pts = rng.uniform(0, 30000, (n, 2))
            delays = rng.uniform(0, 150e-12, n)
            if n > 3:  # exercise exact ties: duplicated locations + delays
                pts[1] = pts[0]
                delays[1] = delays[0]
            nodes = [
                subtree(float(x), float(y), float(d))
                for (x, y), d in zip(pts, delays)
            ]
            centroid = Point(float(pts[:, 0].mean()), float(pts[:, 1].mean()))
            pairs, seed = greedy_matching(list(nodes), centroid, cost)
            ref_pairs, ref_seed = greedy_matching_reference(
                list(nodes), centroid, cost
            )
            assert seed is ref_seed
            assert len(pairs) == len(ref_pairs)
            for (a, b), (ra, rb) in zip(pairs, ref_pairs):
                assert a is ra and b is rb

    def test_empty_raises_like_reference(self):
        cost = EdgeCost(CTSOptions(), delay_per_unit=0.02e-12)
        with pytest.raises(ValueError):
            greedy_matching([], Point(0, 0), cost)
        with pytest.raises(ValueError):
            greedy_matching_reference([], Point(0, 0), cost)
