"""Tree export (JSON/DOT) and the command-line interface."""

import json

import pytest

from repro.cli import main as cli_main
from repro.core import AggressiveBufferedCTS
from repro.evalx import evaluate_tree
from repro.tech import cts_buffer_library
from repro.tree.export import (
    load_tree_json,
    save_tree_json,
    tree_from_dict,
    tree_to_dict,
    tree_to_dot,
)
from repro.tree.validate import validate_tree

from tests.conftest import make_sink_pairs


@pytest.fixture()
def synthesized(tech):
    sinks = make_sink_pairs(6, 15000.0, seed=19)
    return AggressiveBufferedCTS(tech=tech).synthesize(sinks)


class TestJsonExport:
    def test_roundtrip_structure(self, synthesized):
        data = tree_to_dict(synthesized.tree)
        rebuilt = tree_from_dict(data, cts_buffer_library())
        validate_tree(rebuilt, expect_source_root=True)
        assert len(rebuilt.sinks()) == len(synthesized.tree.sinks())
        assert len(rebuilt.buffers()) == len(synthesized.tree.buffers())

    def test_roundtrip_preserves_timing(self, synthesized, tech):
        data = tree_to_dict(synthesized.tree)
        rebuilt = tree_from_dict(data, cts_buffer_library())
        from repro.tree.clocktree import ClockTree

        original = evaluate_tree(synthesized.tree, tech, dt=2e-12)
        clone = evaluate_tree(ClockTree(rebuilt), tech, dt=2e-12)
        assert clone.latency == pytest.approx(original.latency, abs=1e-12)
        assert clone.skew == pytest.approx(original.skew, abs=1e-12)

    def test_file_roundtrip(self, synthesized, tmp_path):
        path = tmp_path / "tree.json"
        save_tree_json(synthesized.tree, path)
        rebuilt = load_tree_json(path, cts_buffer_library())
        assert len(rebuilt.sinks()) == len(synthesized.tree.sinks())
        # The file is valid JSON with the expected shape.
        raw = json.loads(path.read_text())
        assert raw["kind"] == "source"

    def test_wire_lengths_preserved(self, synthesized):
        data = tree_to_dict(synthesized.tree)
        rebuilt = tree_from_dict(data, cts_buffer_library())
        original_wl = synthesized.tree.total_wirelength()
        rebuilt_wl = sum(n.wire_to_parent for n in rebuilt.walk())
        assert rebuilt_wl == pytest.approx(original_wl)


class TestDotExport:
    def test_dot_contains_all_nodes(self, synthesized):
        dot = tree_to_dot(synthesized.tree)
        assert dot.startswith("digraph")
        for node in synthesized.tree.nodes():
            assert f'"{node.name}"' in dot

    def test_dot_edge_count(self, synthesized):
        dot = tree_to_dot(synthesized.tree)
        n_edges = dot.count("->")
        assert n_edges == len(synthesized.tree.nodes()) - 1


class TestCLI:
    def test_synthesize_random(self, capsys, tmp_path):
        json_path = tmp_path / "t.json"
        code = cli_main(
            [
                "synthesize", "--random", "6", "--area", "15000",
                "--eval-dt", "2", "--json", str(json_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "worst slew" in out
        assert json_path.exists()

    def test_synthesize_gsrc_scaled(self, capsys):
        code = cli_main(
            ["synthesize", "--gsrc", "r1", "--sinks", "6", "--no-eval"]
        )
        assert code == 0
        assert "clock tree" in capsys.readouterr().out

    def test_synthesize_spice_export(self, capsys, tmp_path):
        spice_path = tmp_path / "tree.sp"
        code = cli_main(
            [
                "synthesize", "--random", "4", "--area", "8000",
                "--no-eval", "--spice", str(spice_path),
            ]
        )
        assert code == 0
        text = spice_path.read_text()
        assert ".END" in text

    def test_bench_table_52(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_FULL", "")
        code = cli_main(["bench", "--table", "5.2", "--scale", "8"])
        assert code == 0
        assert "Table 5.2" in capsys.readouterr().out

    def test_unknown_command_exits(self):
        with pytest.raises(SystemExit):
            cli_main(["frobnicate"])
