"""Bounding-box algebra."""

import pytest

from repro.geom.bbox import BBox
from repro.geom.point import Point


class TestConstruction:
    def test_of_points(self):
        box = BBox.of_points([Point(1, 5), Point(-2, 3), Point(4, 4)])
        assert (box.xmin, box.ymin, box.xmax, box.ymax) == (-2, 3, 4, 5)

    def test_of_points_empty_raises(self):
        with pytest.raises(ValueError):
            BBox.of_points([])

    def test_inverted_raises(self):
        with pytest.raises(ValueError):
            BBox(5, 0, 0, 5)

    def test_degenerate_allowed(self):
        box = BBox(1, 1, 1, 1)
        assert box.width == 0
        assert box.height == 0


class TestQueries:
    def test_dimensions_and_center(self):
        box = BBox(0, 0, 10, 4)
        assert box.width == 10
        assert box.height == 4
        assert box.half_perimeter == 14
        assert box.center == Point(5, 2)

    def test_contains_boundary(self):
        box = BBox(0, 0, 10, 10)
        assert box.contains(Point(0, 0))
        assert box.contains(Point(10, 10))
        assert not box.contains(Point(10.01, 5))
        assert box.contains(Point(10.01, 5), tol=0.02)

    def test_expanded(self):
        box = BBox(0, 0, 2, 2).expanded(1)
        assert (box.xmin, box.ymin, box.xmax, box.ymax) == (-1, -1, 3, 3)

    def test_union(self):
        u = BBox(0, 0, 1, 1).union(BBox(5, -2, 6, 0))
        assert (u.xmin, u.ymin, u.xmax, u.ymax) == (0, -2, 6, 1)

    def test_intersects(self):
        a = BBox(0, 0, 5, 5)
        assert a.intersects(BBox(4, 4, 8, 8))
        assert not a.intersects(BBox(6, 6, 8, 8))
        assert a.intersects(BBox(5, 0, 7, 2))  # touching counts

    def test_clamp(self):
        box = BBox(0, 0, 10, 10)
        assert box.clamp(Point(-5, 5)) == Point(0, 5)
        assert box.clamp(Point(3, 4)) == Point(3, 4)
        assert box.clamp(Point(20, 30)) == Point(10, 10)
