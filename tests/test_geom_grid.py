"""Routing grids."""

import pytest

from repro.geom.bbox import BBox
from repro.geom.grid import RoutingGrid
from repro.geom.point import Point


class TestForRoute:
    def test_default_resolution(self):
        grid = RoutingGrid.for_route(Point(0, 0), Point(10000, 10000))
        assert grid.cols == 45
        assert grid.rows == 45

    def test_margin_expands_beyond_terminals(self):
        grid = RoutingGrid.for_route(Point(0, 0), Point(1000, 1000))
        assert grid.bbox.xmin < 0
        assert grid.bbox.xmax > 1000

    def test_dynamic_growth_for_long_nets(self):
        grid = RoutingGrid.for_route(
            Point(0, 0), Point(100000, 100000), min_pitch=500.0
        )
        assert grid.cols > 45
        assert grid.pitch_x <= 500.0 * 1.01

    def test_growth_capped(self):
        grid = RoutingGrid.for_route(
            Point(0, 0), Point(1e6, 1e6), min_pitch=10.0, max_cells_per_dim=100
        )
        assert grid.cols == 100

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            RoutingGrid(BBox(0, 0, 10, 10), 1, 5)


class TestCellOps:
    def grid(self):
        return RoutingGrid(BBox(0, 0, 100, 100), 11, 11)

    def test_cell_center_corners(self):
        g = self.grid()
        assert g.cell_center(0, 0) == Point(0, 0)
        assert g.cell_center(10, 10) == Point(100, 100)
        assert g.cell_center(5, 0) == Point(50, 0)

    def test_nearest_cell_roundtrip(self):
        g = self.grid()
        assert g.nearest_cell(Point(52, 48)) == (5, 5)
        assert g.nearest_cell(Point(-100, 50)) == (0, 5)

    def test_neighbors_interior(self):
        g = self.grid()
        neighbors = list(g.neighbors(5, 5))
        assert len(neighbors) == 4
        assert all(step == pytest.approx(10.0) for *_ , step in neighbors)

    def test_neighbors_corner(self):
        g = self.grid()
        assert len(list(g.neighbors(0, 0))) == 2

    def test_blockage(self):
        g = self.grid()
        g.block_region(BBox(45, 45, 65, 65))
        assert g.is_blocked(5, 5)
        assert not g.is_blocked(0, 0)
        neighbors = [(c, r) for c, r, __ in g.neighbors(5, 4)]
        assert (5, 5) not in neighbors

    def test_cell_count(self):
        assert self.grid().cell_count() == 121
