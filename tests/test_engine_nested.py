"""Engine accuracy on awkward stage shapes (nested merges, deep stems).

The characterized library covers single-wire and two-branch components;
anything deeper is composed recursively with virtual drivers. These tests
pin the composition's accuracy against mini-SPICE ground truth — the
cases are rare in synthesized trees (the stage-cap rule bounds them) but
must not be wildly wrong when they occur.
"""

import pytest

from repro.evalx import engine_metrics, evaluate_tree
from repro.geom import Point
from repro.tech import cts_buffer_library
from repro.tree.clocktree import ClockTree
from repro.tree.nodes import make_buffer, make_merge, make_sink, make_steiner


@pytest.fixture()
def buf20():
    return cts_buffer_library()["BUF20X"]


def wrap(root_buf, at):
    return ClockTree.from_network(at, root_buf)


class TestNestedStages:
    def test_two_level_unbuffered_merge(self, engine, tech, buf20):
        """driver -> merge -> (sink, merge -> (sink, sink)): depth-2 stage."""
        inner = make_merge(Point(1200, 0))
        inner.attach(make_sink(Point(1200, 500), 6e-15, "sA"))
        inner.attach(make_sink(Point(1700, 0), 6e-15, "sB"))
        outer = make_merge(Point(600, 0))
        outer.attach(make_sink(Point(600, -700), 6e-15, "sC"))
        outer.attach(inner)
        root = make_buffer(Point(0, 0), buf20)
        root.attach(outer)
        tree = wrap(root, Point(0, -10))

        spice = evaluate_tree(tree, tech)
        est = engine_metrics(tree, engine)
        # Composition is approximate; demand same-order accuracy.
        assert est.latency == pytest.approx(spice.latency, rel=0.2)
        assert est.skew == pytest.approx(spice.skew, abs=15e-12)
        # Arrival ordering is preserved unless the true arrivals are a
        # near-tie (composition may swap ties of a few ps).
        s_order = sorted(spice.sink_arrivals, key=spice.sink_arrivals.get)
        e_order = sorted(est.sink_arrivals, key=est.sink_arrivals.get)
        if s_order[-1] != e_order[-1]:
            gap = spice.sink_arrivals[s_order[-1]] - spice.sink_arrivals[e_order[-1]]
            assert gap < 10e-12

    def test_steiner_multiway_tap(self, engine, tech, buf20):
        """A 3-way Steiner tap inside one stage (recursive pairing path)."""
        tap = make_steiner(Point(800, 0))
        tap.attach(make_sink(Point(800, 600), 6e-15, "sA"))
        tap.attach(make_sink(Point(800, -600), 6e-15, "sB"))
        tap.attach(make_sink(Point(1600, 0), 6e-15, "sC"))
        root = make_buffer(Point(0, 0), buf20)
        root.attach(tap)
        tree = wrap(root, Point(0, -10))
        spice = evaluate_tree(tree, tech)
        est = engine_metrics(tree, engine)
        assert est.latency == pytest.approx(spice.latency, rel=0.25)
        assert len(est.sink_arrivals) == 3

    def test_long_stem_branch(self, engine, tech, buf20):
        """Stem near the characterized maximum, asymmetric branches."""
        merge = make_merge(Point(1900, 0))
        merge.attach(make_sink(Point(1900, 900), 8e-15, "sA"))
        merge.attach(make_sink(Point(4100, 0), 8e-15, "sB"))
        root = make_buffer(Point(0, 0), buf20)
        root.attach(merge)
        tree = wrap(root, Point(0, -10))
        spice = evaluate_tree(tree, tech)
        est = engine_metrics(tree, engine)
        assert est.latency == pytest.approx(spice.latency, rel=0.08)
        assert est.skew == pytest.approx(spice.skew, abs=6e-12)

    def test_buffer_chain_no_wires(self, engine, tech, buf20):
        """Back-to-back buffers (zero-length wires, as snaking produces)."""
        b1 = make_buffer(Point(0, 0), buf20)
        b2 = make_buffer(Point(0, 0), buf20)
        b1.attach(b2, 0.0)
        b2.attach(make_sink(Point(900, 0), 8e-15, "sA"))
        tree = wrap(b1, Point(0, 0))
        spice = evaluate_tree(tree, tech)
        est = engine_metrics(tree, engine)
        assert est.latency == pytest.approx(spice.latency, rel=0.15)
        assert spice.worst_slew <= 100e-12
