"""Slew-driven buffer insertion along 1-D paths (Fig. 4.4 logic)."""

import numpy as np
import pytest

from repro.core.options import CTSOptions
from repro.core.routing_common import slew_limited_length
from repro.core.segment_builder import PathBuilder, SegmentTables


@pytest.fixture(scope="module")
def options():
    return CTSOptions()


@pytest.fixture(scope="module")
def tables(library, options):
    return SegmentTables(library, step=300.0, n_steps=120, input_slew=options.target_slew)


def make_builder(tables, library, options, load="BUF20X", base_delay=0.0):
    return PathBuilder(
        tables,
        base_delay,
        load,
        options.target_slew,
        library.buffer_names,
        library.buffer_names[-1],
        options.sizing_lookahead,
    )


class TestSegmentTables:
    def test_tables_match_scalar_lookups(self, tables, library, options):
        for k in (1, 5, 10):
            direct = library.single_wire(
                "BUF20X", "BUF10X", options.target_slew, k * 300.0
            )
            assert tables.wire_slew("BUF20X", "BUF10X", k) == pytest.approx(
                direct.wire_slew, abs=1e-15
            )
            assert tables.wire_delay("BUF20X", "BUF10X", k) == pytest.approx(
                direct.wire_delay, abs=1e-15
            )

    def test_max_feasible_steps_consistent(self, tables, options):
        k_max = tables.max_feasible_steps("BUF30X", "BUF20X", options.target_slew)
        assert tables.wire_slew("BUF30X", "BUF20X", k_max) <= options.target_slew
        if k_max < tables.n_steps:
            assert (
                tables.wire_slew("BUF30X", "BUF20X", k_max + 1) > options.target_slew
            )

    def test_invalid_step_rejected(self, library, options):
        with pytest.raises(ValueError):
            SegmentTables(library, 0.0, 10, options.target_slew)


class TestPathBuilder:
    def test_no_open_segment_violates_target(self, tables, library, options):
        """The core slew guarantee: every open segment, at every step,
        admits at least one buffer type within the target."""
        builder = make_builder(tables, library, options)
        for k in range(1, 100):
            state = builder.state(k)
            feasible = any(
                tables.wire_slew(name, state.load_name, state.open_steps)
                <= options.target_slew
                for name in library.buffer_names
            )
            assert feasible, f"step {k}: open segment violates slew target"

    def test_completed_segments_within_target(self, tables, library, options):
        builder = make_builder(tables, library, options)
        state = builder.state(100)
        positions = [0] + [b.steps for b in state.buffers]
        loads = ["BUF20X"] + [b.type_name for b in state.buffers]
        for i in range(1, len(positions)):
            seg = positions[i] - positions[i - 1]
            drive = state.buffers[i - 1].type_name
            load = loads[i - 1]
            slew = tables.wire_slew(drive, load, seg)
            assert slew <= options.target_slew * 1.0001

    def test_buffers_inserted_on_long_paths(self, tables, library, options):
        builder = make_builder(tables, library, options)
        state = builder.state(100)  # 30000 units >> one stage
        assert state.n_stages >= 5

    def test_buffer_positions_increasing(self, tables, library, options):
        builder = make_builder(tables, library, options)
        state = builder.state(90)
        positions = [b.steps for b in state.buffers]
        assert positions == sorted(positions)
        assert all(0 <= p <= 90 for p in positions)

    def test_delay_monotone_in_distance(self, tables, library, options):
        builder = make_builder(tables, library, options)
        delays = builder.delays_up_to(100)
        # Small local dips can occur when the open-segment estimate is
        # replaced by a committed stage, but the cumulative trend must hold.
        assert delays[-1] > delays[0]
        assert np.all(np.diff(delays) > -2e-12)

    def test_base_delay_offsets_profile(self, tables, library, options):
        b0 = make_builder(tables, library, options, base_delay=0.0)
        b1 = make_builder(tables, library, options, base_delay=100e-12)
        assert b1.state(20).delay == pytest.approx(
            b0.state(20).delay + 100e-12, abs=1e-15
        )

    def test_states_are_stable_snapshots(self, tables, library, options):
        builder = make_builder(tables, library, options)
        s10_first = builder.state(10)
        builder.state(80)  # extend far beyond
        s10_again = builder.state(10)
        assert s10_first.delay == s10_again.delay
        assert s10_first.buffers == s10_again.buffers

    def test_intelligent_sizing_prefers_fuller_segments(self, tables, library, options):
        """The chosen insertion should push segment slew close to the
        target — within the coarsest candidate spacing of it."""
        builder = make_builder(tables, library, options)
        state = builder.state(110)
        assert state.n_stages >= 6
        positions = [0] + [b.steps for b in state.buffers]
        loads = ["BUF20X"] + [b.type_name for b in state.buffers]
        utilizations = []
        for i in range(1, len(state.buffers) + 1):
            seg = positions[i] - positions[i - 1]
            slew = tables.wire_slew(
                state.buffers[i - 1].type_name, loads[i - 1], seg
            )
            utilizations.append(slew / options.target_slew)
        # Average utilization should be high (slews near the target).
        assert np.mean(utilizations) > 0.7


class TestSlewLimitedLength:
    def test_positive_and_plausible(self, library, options):
        length = slew_limited_length(library, options.target_slew)
        assert 1000.0 < length < 6000.0

    def test_tighter_target_shortens_stages(self, library):
        loose = slew_limited_length(library, 90e-12)
        tight = slew_limited_length(library, 50e-12)
        assert tight < loose

    def test_impossible_target_raises(self, library):
        with pytest.raises(ValueError):
            slew_limited_length(library, 1e-15)
