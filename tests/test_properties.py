"""Property-based tests (hypothesis) on core data structures/invariants."""

import math

import numpy as np
import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.charlib.fitting import PolynomialFit
from repro.geom.manhattan_arc import ManhattanArc, merge_arc
from repro.geom.point import Point
from repro.geom.segment import PathPolyline
from repro.timing.elmore import elmore_delays
from repro.timing.moments import rc_tree_moments
from repro.timing.rctree import RCTree
from repro.timing.waveform import Waveform, ramp_waveform

coords = st.floats(-1e5, 1e5, allow_nan=False, allow_infinity=False)
points = st.builds(Point, coords, coords)


class TestPointProperties:
    @given(points, points)
    def test_manhattan_symmetry(self, a, b):
        assert a.manhattan_to(b) == pytest.approx(b.manhattan_to(a))

    @given(points, points, points)
    def test_triangle_inequality(self, a, b, c):
        assert a.manhattan_to(c) <= a.manhattan_to(b) + b.manhattan_to(c) + 1e-6

    @given(points)
    def test_rotation_roundtrip(self, p):
        r = p.to_rotated()
        back = Point.from_rotated(r.x, r.y)
        assert back.x == pytest.approx(p.x, abs=1e-6)
        assert back.y == pytest.approx(p.y, abs=1e-6)

    @given(points, points)
    def test_rotation_is_isometry_l1_to_linf(self, a, b):
        ra, rb = a.to_rotated(), b.to_rotated()
        cheb = max(abs(ra.x - rb.x), abs(ra.y - rb.y))
        assert cheb == pytest.approx(a.manhattan_to(b), rel=1e-9, abs=1e-6)

    @given(points, points, st.floats(0, 1))
    def test_lerp_additivity(self, a, b, t):
        mid = a.lerp(b, t)
        d = a.manhattan_to(mid) + mid.manhattan_to(b)
        assert d == pytest.approx(a.manhattan_to(b), rel=1e-9, abs=1e-6)


class TestMergeArcProperties:
    @given(points, points, st.floats(0.01, 0.99))
    def test_merge_point_distances(self, a, b, x):
        dist = a.manhattan_to(b)
        assume(dist > 1.0)
        arc = merge_arc(
            ManhattanArc.point(a), ManhattanArc.point(b), x * dist, (1 - x) * dist
        )
        for t in (0.0, 0.5, 1.0):
            p = arc.sample(t)
            assert p.manhattan_to(a) == pytest.approx(x * dist, abs=1e-5)
            assert p.manhattan_to(b) == pytest.approx((1 - x) * dist, abs=1e-5)


class TestPolylineProperties:
    @given(st.lists(points, min_size=2, max_size=8))
    def test_length_is_sum_of_legs(self, pts):
        path = PathPolyline(pts)
        total = sum(p.manhattan_to(q) for p, q in zip(pts, pts[1:]))
        assert path.length == pytest.approx(total, rel=1e-9, abs=1e-6)

    @given(st.lists(points, min_size=2, max_size=6), st.floats(0, 1), st.floats(0, 1))
    def test_subpath_length(self, pts, f0, f1):
        path = PathPolyline(pts)
        assume(path.length > 1.0)
        s0, s1 = sorted((f0 * path.length, f1 * path.length))
        sub = path.subpath(s0, s1)
        assert sub.length == pytest.approx(s1 - s0, rel=1e-6, abs=1e-5)

    @given(st.lists(points, min_size=2, max_size=6), st.floats(0, 1))
    def test_point_at_length_on_path(self, pts, frac):
        path = PathPolyline(pts)
        assume(path.length > 1.0)
        s = frac * path.length
        p = path.point_at_length(s)
        # The point must sit between the endpoints along the path: its
        # distance to the start along the path equals s by construction.
        assert path.subpath(0, s).length == pytest.approx(s, rel=1e-6, abs=1e-5)


class TestWaveformProperties:
    slews = st.floats(5e-12, 500e-12)

    @given(slews)
    def test_ramp_measured_slew(self, slew):
        wave = ramp_waveform(1.0, slew)
        assert wave.slew(1.0) == pytest.approx(slew, rel=1e-3)

    @given(slews, st.floats(-1e-9, 1e-9))
    def test_shift_invariance_of_slew(self, slew, dt):
        wave = ramp_waveform(1.0, slew)
        assert wave.shifted(dt).slew(1.0) == pytest.approx(
            wave.slew(1.0), rel=1e-9
        )

    @given(st.lists(st.floats(0.0, 1.0), min_size=3, max_size=30))
    def test_crossing_is_sorted_with_threshold(self, values):
        """For a monotone waveform, crossing time is monotone in threshold."""
        values = sorted(values)
        assume(values[-1] > values[0] + 0.1)
        times = np.linspace(0, 1e-9, len(values))
        wave = Waveform(times, np.array(values))
        lo_t = wave.cross_time(values[0] + 0.05 * (values[-1] - values[0]))
        hi_t = wave.cross_time(values[0] + 0.95 * (values[-1] - values[0]))
        assert lo_t <= hi_t


class TestRCTreeProperties:
    @staticmethod
    def random_tree(data):
        tree = RCTree("root", driver_resistance=data.draw(st.floats(0, 1e3)))
        names = ["root"]
        n = data.draw(st.integers(1, 12))
        for i in range(n):
            parent = data.draw(st.sampled_from(names))
            name = f"n{i}"
            tree.add_node(
                name,
                parent,
                data.draw(st.floats(1.0, 1e3)),
                data.draw(st.floats(0, 50e-15)),
            )
            names.append(name)
        return tree

    @given(st.data())
    @settings(max_examples=40)
    def test_elmore_monotone_along_paths(self, data):
        """Delay never decreases walking away from the driver."""
        tree = self.random_tree(data)
        delays = elmore_delays(tree)
        for node in tree.nodes():
            if node.parent is not None:
                assert delays[node.name] >= delays[node.parent.name] - 1e-18

    @given(st.data())
    @settings(max_examples=40)
    def test_first_moment_is_negative_elmore(self, data):
        tree = self.random_tree(data)
        delays = elmore_delays(tree)
        moments = rc_tree_moments(tree, order=1)
        for name, delay in delays.items():
            assert -moments[name][0] == pytest.approx(delay, rel=1e-9, abs=1e-20)

    @given(st.data())
    @settings(max_examples=40)
    def test_subtree_caps_partition(self, data):
        tree = self.random_tree(data)
        caps = tree.subtree_caps()
        assert caps["root"] == pytest.approx(tree.total_cap())
        for node in tree.nodes():
            if node.children:
                children_sum = sum(caps[c.name] for c in node.children)
                assert caps[node.name] == pytest.approx(
                    node.cap + children_sum, rel=1e-12, abs=1e-22
                )


class TestPolynomialFitProperties:
    @given(
        st.lists(
            st.tuples(st.floats(-10, 10), st.floats(-10, 10)),
            min_size=12,
            max_size=40,
            unique_by=lambda t: t[0],
        )
    )
    @settings(max_examples=30)
    def test_linear_recovery(self, pairs):
        xs = np.array([p[0] for p in pairs])
        assume(np.ptp(xs) > 1.0)
        slope, intercept = 2.5, -1.0
        ys = slope * xs + intercept
        fit = PolynomialFit.fit(xs, ys, degree=1)
        assert fit.quality.rms_error < 1e-6
        mid = float(np.median(xs))
        assert fit.predict(mid) == pytest.approx(slope * mid + intercept, abs=1e-6)

    @given(st.floats(-100, 100))
    def test_clamping_bounds_output(self, query):
        xs = np.linspace(0, 1, 10)
        fit = PolynomialFit.fit(xs, xs, degree=1)
        assert 0.0 - 1e-9 <= fit.predict(query) <= 1.0 + 1e-9
