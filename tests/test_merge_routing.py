"""Merge-routing end to end: balance -> route -> search -> commit."""

import pytest

from repro.core.merge_routing import MergeRouter
from repro.core.options import CTSOptions
from repro.geom.point import Point
from repro.tech import cts_buffer_library, default_technology
from repro.timing.analysis import LibraryTimingEngine
from repro.tree.nodes import NodeKind, make_sink
from repro.tree.validate import validate_tree


@pytest.fixture()
def router(tech, library, buffers):
    options = CTSOptions()
    engine = LibraryTimingEngine(library, tech)
    return MergeRouter(tech, library, buffers, engine, options)


def sink(x, y, cap=8e-15):
    return make_sink(Point(x, y), cap)


class TestBasicMerges:
    def test_two_sinks_short(self, router):
        root = router.merge(sink(0, 0), sink(800, 0))
        validate_tree(root)
        bounds = router.subtree_bounds(root)
        assert bounds.skew < 3e-12
        assert bounds.worst_slew <= router.options.target_slew * 1.05

    def test_two_sinks_long_inserts_buffers(self, router):
        root = router.merge(sink(0, 0), sink(14000, 0))
        validate_tree(root)
        buffers = [n for n in root.walk() if n.kind is NodeKind.BUFFER]
        assert len(buffers) >= 2
        bounds = router.subtree_bounds(root)
        assert bounds.skew < 3e-12
        assert bounds.worst_slew <= router.options.target_slew * 1.05

    def test_non_merge_buffer_positions(self, router):
        """The point of the paper: buffers NOT at merge nodes."""
        root = router.merge(sink(0, 0), sink(14000, 0))
        merge = next(n for n in root.walk() if n.kind is NodeKind.MERGE)
        off_merge = [
            b
            for b in root.walk()
            if b.kind is NodeKind.BUFFER
            and b.location.manhattan_to(merge.location) > 500
        ]
        assert off_merge, "expected buffers along the routing paths"

    def test_coincident_roots(self, router):
        root = router.merge(sink(100, 100), sink(100, 100))
        validate_tree(root)
        assert router.subtree_bounds(root).skew < 0.5e-12

    def test_sink_caps_respected(self, router):
        heavy = sink(0, 0, cap=14e-15)
        light = sink(3000, 0, cap=4e-15)
        root = router.merge(heavy, light)
        assert router.subtree_bounds(root).skew < 3e-12


class TestUnbalancedMerges:
    def test_deep_vs_shallow(self, router):
        deep = router.merge(sink(0, 0), sink(9000, 0))
        shallow = sink(2000, 12000)
        root = router.merge(deep, shallow)
        validate_tree(root)
        bounds = router.subtree_bounds(root)
        assert bounds.skew < 6e-12
        assert bounds.worst_slew <= router.options.target_slew * 1.05

    def test_snaking_triggers_on_hopeless_imbalance(self, router, library, buffers):
        from repro.core.balance import snake_delay

        slow = snake_delay(
            sink(0, 0), 600e-12, library, buffers, router.options, 8e-15
        ).new_root
        fast = sink(1500, 0)
        before = router.stats.n_snaked
        root = router.merge(slow, fast)
        assert router.stats.n_snaked > before
        assert router.subtree_bounds(root).skew < 10e-12

    def test_multilevel_skew_stays_bounded(self, router):
        m1 = router.merge(sink(0, 0), sink(6000, 0))
        m2 = router.merge(sink(0, 8000), sink(6000, 8000))
        m3 = router.merge(sink(14000, 0), sink(14000, 8000))
        top = router.merge(router.merge(m1, m2), m3)
        validate_tree(top)
        bounds = router.subtree_bounds(top)
        assert bounds.skew < 12e-12
        assert bounds.worst_slew <= router.options.target_slew * 1.08


class TestStageShapeControl:
    def test_forced_buffer_keeps_stage_caps_bounded(self, router):
        root = router.merge(sink(0, 0), sink(5000, 0))
        # Whatever the shape, the collapsed cap at the returned root must
        # be library-representable.
        cap = router.root_stage_cap(root)
        assert cap <= router.max_stage_cap * 1.001 or root.kind is NodeKind.BUFFER

    def test_trunk_routing(self, router):
        root = router.merge(sink(0, 0), sink(4000, 0))
        top, wire = router.route_trunk(root, Point(2000, 20000))
        assert wire <= router.stage_length * 1.2
        chain_buffers = 0
        node = top
        while node is not root and node.children:
            if node.kind is NodeKind.BUFFER:
                chain_buffers += 1
            node = node.children[0]
        assert chain_buffers >= 3  # ~18k units of trunk needs several stages

    def test_trunk_noop_when_source_at_root(self, router):
        root = router.merge(sink(0, 0), sink(4000, 0))
        top, wire = router.route_trunk(root, root.location)
        assert top is root
        assert wire == 0.0
