"""Stage decomposition of clock trees and its electrical equivalence."""

import pytest

from repro.geom import Point
from repro.spice.stages import simulate_stage
from repro.tech import cts_buffer_library
from repro.tree.nodes import (
    make_buffer,
    make_merge,
    make_sink,
    make_source,
    make_steiner,
)
from repro.tree.netlist_export import tree_circuit
from repro.tree.stages_map import stage_spec_for, stage_structure, tree_stages
from repro.spice.transient import TransientOptions, simulate
from repro.timing.waveform import ramp_waveform


@pytest.fixture()
def buf20():
    return cts_buffer_library()["BUF20X"]


class TestStageStructure:
    def test_single_wire_stage(self, buf20):
        root = make_buffer(Point(0, 0), buf20)
        root.attach(make_sink(Point(1000, 0), 5e-15))
        structure = stage_structure(root)
        assert structure.is_load
        assert structure.length == 1000
        assert structure.max_branch_depth() == 0

    def test_steiner_bends_absorbed(self, buf20):
        root = make_buffer(Point(0, 0), buf20)
        bend1 = make_steiner(Point(400, 0))
        bend2 = make_steiner(Point(400, 300))
        root.attach(bend1)
        bend1.attach(bend2)
        bend2.attach(make_sink(Point(600, 300), 5e-15))
        structure = stage_structure(root)
        assert structure.is_load
        assert structure.length == pytest.approx(400 + 300 + 200)

    def test_branch_stage(self, buf20):
        root = make_buffer(Point(0, 0), buf20)
        merge = make_merge(Point(500, 0))
        root.attach(merge)
        merge.attach(make_sink(Point(500, 400), 5e-15))
        merge.attach(make_buffer(Point(900, 0), buf20))
        merge.children[-1].attach(make_sink(Point(1200, 0), 4e-15))
        structure = stage_structure(root)
        assert not structure.is_load
        assert structure.length == 500
        assert len(structure.branches) == 2
        assert structure.max_branch_depth() == 1
        # The stage stops at the buffer: the sink behind it is not included.
        ends = {b.end.kind.value for b in structure.branches}
        assert ends == {"sink", "buffer"}

    def test_nested_merges(self, buf20):
        root = make_buffer(Point(0, 0), buf20)
        m1 = make_merge(Point(300, 0))
        m2 = make_merge(Point(600, 0))
        root.attach(m1)
        m1.attach(m2)
        m1.attach(make_sink(Point(300, 300), 5e-15))
        m2.attach(make_sink(Point(600, 300), 5e-15))
        m2.attach(make_sink(Point(900, 0), 5e-15))
        structure = stage_structure(root)
        assert structure.max_branch_depth() == 2

    def test_dangling_buffer_returns_none(self, buf20):
        assert stage_structure(make_buffer(Point(0, 0), buf20)) is None

    def test_non_stage_root_rejected(self):
        with pytest.raises(ValueError):
            stage_structure(make_merge(Point(0, 0)))


class TestStageSpec:
    def test_spec_loads_and_map(self, buf20, tech):
        root = make_buffer(Point(0, 0), buf20)
        merge = make_merge(Point(500, 0))
        root.attach(merge)
        sink = make_sink(Point(500, 400), 5e-15)
        load_buf = make_buffer(Point(900, 0), buf20)
        merge.attach(sink)
        merge.attach(load_buf)
        load_buf.attach(make_sink(Point(1000, 0), 4e-15))
        spec, id_map = stage_spec_for(root, tech)
        spec.validate()
        mapped = {node.name for node in id_map.values()}
        assert sink.name in mapped
        assert load_buf.name in mapped
        caps = sorted(spec.load_caps.values())
        assert caps == sorted([5e-15, buf20.input_cap(tech)])

    def test_tree_stages_topological(self, buf20):
        root_buf = make_buffer(Point(0, 0), buf20)
        mid_buf = make_buffer(Point(500, 0), buf20)
        root_buf.attach(mid_buf)
        mid_buf.attach(make_sink(Point(900, 0), 4e-15))
        source = make_source(Point(0, 0))
        source.attach(root_buf, 0.0)
        stages = tree_stages(source)
        names = [s.name for s in stages]
        assert names.index(source.name) < names.index(root_buf.name)
        assert names.index(root_buf.name) < names.index(mid_buf.name)


class TestStageVsFlatTreeSimulation:
    def test_stage_decomposition_matches_flat_sim(self, buf20, tech):
        """Stage-by-stage composition == flat whole-tree simulation.

        This is the exactness claim evaluate_tree relies on.
        """
        sink_a = make_sink(Point(0, 0), 5e-15, "sA")
        sink_b = make_sink(Point(2400, 0), 6e-15, "sB")
        buf_b = make_buffer(Point(1800, 0), buf20)
        buf_b.attach(sink_b)
        merge = make_merge(Point(1200, 0))
        merge.attach(sink_a)
        merge.attach(buf_b)
        root_buf = make_buffer(Point(1200, 200), buf20)
        root_buf.attach(merge)
        source = make_source(Point(1200, 220))
        source.attach(root_buf)

        wave = ramp_waveform(tech.vdd, 60e-12, t_start=50e-12)
        # Flat: the whole tree in one circuit.
        circuit = tree_circuit(source, tech, source_wave=wave)
        flat = simulate(circuit, TransientOptions(dt=0.5e-12))
        flat_a = flat.waveform("n_sA").cross_time(tech.vdd / 2)
        flat_b = flat.waveform("n_sB").cross_time(tech.vdd / 2)

        # Staged: source stage then root_buf stage then buf_b stage.
        spec0, map0 = stage_spec_for(source, tech)
        sim0 = simulate_stage(tech, spec0, wave, dt=0.5e-12)
        (rb_id,) = [i for i, n in map0.items() if n is root_buf]
        spec1, map1 = stage_spec_for(root_buf, tech)
        sim1 = simulate_stage(tech, spec1, sim0.trimmed_waveform(rb_id), dt=0.5e-12)
        a_id = [i for i, n in map1.items() if n is sink_a][0]
        bb_id = [i for i, n in map1.items() if n is buf_b][0]
        spec2, map2 = stage_spec_for(buf_b, tech)
        sim2 = simulate_stage(tech, spec2, sim1.trimmed_waveform(bb_id), dt=0.5e-12)
        b_id = [i for i, n in map2.items() if n is sink_b][0]

        staged_a = sim1.waveform(a_id).cross_time(tech.vdd / 2)
        staged_b = sim2.waveform(b_id).cross_time(tech.vdd / 2)
        assert staged_a == pytest.approx(flat_a, abs=1.0e-12)
        assert staged_b == pytest.approx(flat_b, abs=1.0e-12)
