"""Shared fixtures: one technology / library / engine per session."""

from __future__ import annotations

import numpy as np
import pytest

from repro.charlib import load_default_library
from repro.geom import Point
from repro.tech import cts_buffer_library, default_technology
from repro.timing.analysis import LibraryTimingEngine


@pytest.fixture(scope="session")
def tech():
    return default_technology()


@pytest.fixture(scope="session")
def buffers():
    return cts_buffer_library()


@pytest.fixture(scope="session")
def library(tech):
    """The packaged (prebuilt) delay/slew library."""
    return load_default_library(tech)


@pytest.fixture(scope="session")
def engine(library, tech):
    return LibraryTimingEngine(library, tech)


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)


def make_sink_pairs(n: int, area: float, seed: int = 0) -> list[tuple[Point, float]]:
    """Deterministic random sink sets for synthesis tests."""
    gen = np.random.default_rng(seed)
    return [
        (Point(float(x), float(y)), float(c))
        for x, y, c in zip(
            gen.uniform(0, area, n),
            gen.uniform(0, area, n),
            gen.uniform(4e-15, 12e-15, n),
        )
    ]


@pytest.fixture()
def small_sinks():
    return make_sink_pairs(8, 18000.0, seed=3)
