"""Shared fixtures: one technology / library / engine per session."""

from __future__ import annotations

import numpy as np
import pytest

from repro.charlib import load_default_library
from repro.geom import Point
from repro.tech import cts_buffer_library, default_technology
from repro.timing.analysis import LibraryTimingEngine


@pytest.fixture(scope="session")
def tech():
    return default_technology()


@pytest.fixture(scope="session")
def buffers():
    return cts_buffer_library()


@pytest.fixture(scope="session")
def library(tech):
    """The packaged (prebuilt) delay/slew library."""
    return load_default_library(tech)


@pytest.fixture(scope="session")
def engine(library, tech):
    return LibraryTimingEngine(library, tech)


@pytest.fixture()
def rng():
    return np.random.default_rng(12345)


def make_sink_pairs(n: int, area: float, seed: int = 0) -> list[tuple[Point, float]]:
    """Deterministic random sink sets for synthesis tests."""
    gen = np.random.default_rng(seed)
    return [
        (Point(float(x), float(y)), float(c))
        for x, y, c in zip(
            gen.uniform(0, area, n),
            gen.uniform(0, area, n),
            gen.uniform(4e-15, 12e-15, n),
        )
    ]


@pytest.fixture()
def small_sinks():
    return make_sink_pairs(8, 18000.0, seed=3)


# ----------------------------------------------------------------------
# Property-test generators (hypothesis-style: seeded random case streams
# with the adversarial structure — ties, degenerate windows — built in).
# ----------------------------------------------------------------------


def random_blocked_grid(gen, max_dim: int = 12, max_blockages: int = 3):
    """A small random routing grid with random blockages.

    Dimensions span the degenerate cases on purpose (down to a single
    row/column); blockages are random boxes that may clip the window,
    cover nothing, or wall off regions. At least one cell is always left
    free.
    """
    from repro.core.maze_router import MazeGrid
    from repro.geom.bbox import BBox

    pitch = 100.0
    nx = int(gen.integers(1, max_dim + 1))
    ny = int(gen.integers(1, max_dim + 1))
    grid = MazeGrid(BBox(0, 0, (nx - 1) * pitch, (ny - 1) * pitch), pitch)
    assert (grid.nx, grid.ny) == (nx, ny)
    for _ in range(int(gen.integers(0, max_blockages + 1))):
        x0, y0 = gen.uniform(-pitch, nx * pitch), gen.uniform(-pitch, ny * pitch)
        w, h = gen.uniform(0, nx * pitch / 2), gen.uniform(0, ny * pitch / 2)
        grid.block(BBox(x0, y0, x0 + w, y0 + h))
        if grid.blocked.all():
            # Re-open a random cell so the grid stays usable.
            free = (int(gen.integers(0, nx)), int(gen.integers(0, ny)))
            grid.blocked[free] = False
    return grid


def random_ranking_case(gen, tie_levels: int = 3):
    """One random merge-ranking case: two BFS fields + tie-rich profiles.

    Returns ``(dist1, dist2, both, prof1, prof2)`` for a random blocked
    grid whose two sources reach a common region. The profile delays are
    drawn from ``tie_levels`` quantized values, so exact minimum-skew and
    minimum-total ties are common — the adversarial structure the
    documented tie order (min rounded skew, then total, then hops, then
    earliest flat index) must resolve identically in the scalar loop and
    the level-batched ranking pass.
    """
    while True:
        grid = random_blocked_grid(gen)
        free = np.argwhere(~grid.blocked)
        if len(free) < 2:
            continue
        picks = gen.integers(0, len(free), 2)
        c1 = tuple(int(v) for v in free[picks[0]])
        c2 = tuple(int(v) for v in free[picks[1]])
        dist1, dist2 = grid.bfs(c1), grid.bfs(c2)
        both = (dist1 != -1) & (dist2 != -1)
        if not both.any():
            continue
        max_k = int(max(dist1[both].max(), dist2[both].max()))
        prof1 = gen.integers(0, tie_levels, max_k + 1) * 1e-12
        prof2 = gen.integers(0, tie_levels, max_k + 1) * 1e-12
        return dist1, dist2, both, prof1, prof2


def random_expansion_case(gen, library):
    """One random profile-expansion lane: table geometry + a target step.

    Returns ``(step, n_steps, load, base_delay, target_k)`` with
    ``1 <= target_k <= n_steps - 1``. The pitch is drawn log-uniformly
    across a deliberately wide range: small pitches yield long
    buffer-free runs, large ones insertion-heavy expansions with forced
    buffers at step 0, and the extreme tail reaches pitches where even
    one step after an insertion violates the slew target — the per-pair
    lazy expansion and the lockstep scheduler must agree on all of
    them, including raising the identical RuntimeError on the
    infeasible ones.
    """
    step = float(np.exp(gen.uniform(np.log(90.0), np.log(7000.0))))
    n_steps = int(gen.integers(4, 90))
    names = library.buffer_names
    load = names[int(gen.integers(0, len(names)))]
    base_delay = float(gen.uniform(0.0, 5e-10))
    target_k = int(gen.integers(1, n_steps))
    return step, n_steps, load, base_delay, target_k


def random_descent_case(gen):
    """One random descent case: a BFS field plus a reached target cell.

    Returns ``(grid, dist, cell)`` with ``dist[cell] >= 0``; the start
    may equal the target (zero-length descent).
    """
    while True:
        grid = random_blocked_grid(gen)
        free = np.argwhere(~grid.blocked)
        start = tuple(int(v) for v in free[int(gen.integers(0, len(free)))])
        dist = grid.bfs(start)
        reached = np.argwhere(dist >= 0)
        cell = tuple(int(v) for v in reached[int(gen.integers(0, len(reached)))])
        return grid, dist, cell
