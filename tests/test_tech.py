"""Technology, wire model, and buffer library."""

import pytest

from repro.tech import (
    BufferLibrary,
    BufferType,
    Technology,
    cts_buffer_library,
    default_technology,
    sizing_sweep_library,
)
from repro.tech.presets import GSRC_UNIT_CAPACITANCE, GSRC_UNIT_RESISTANCE


class TestWireModel:
    def test_paper_10x_scaling(self):
        tech = default_technology()
        assert tech.wire.resistance_per_unit == pytest.approx(
            10 * GSRC_UNIT_RESISTANCE
        )
        assert tech.wire.capacitance_per_unit == pytest.approx(
            10 * GSRC_UNIT_CAPACITANCE
        )

    def test_totals_scale_linearly(self):
        wire = default_technology().wire
        assert wire.total_r(2000) == pytest.approx(2 * wire.total_r(1000))
        assert wire.total_c(2000) == pytest.approx(2 * wire.total_c(1000))

    def test_rc_delay_quadratic_in_length(self):
        wire = default_technology().wire
        d1 = wire.rc_delay(1000)
        d2 = wire.rc_delay(2000)
        assert d2 == pytest.approx(4 * d1)

    def test_custom_wire_scale(self):
        t1 = default_technology(wire_scale=1.0)
        t10 = default_technology(wire_scale=10.0)
        assert t10.wire.resistance_per_unit == pytest.approx(
            10 * t1.wire.resistance_per_unit
        )

    def test_with_wire_scaling(self):
        tech = default_technology()
        scaled = tech.with_wire_scaling(2.0)
        assert scaled.wire.resistance_per_unit == pytest.approx(
            2 * tech.wire.resistance_per_unit
        )
        assert scaled.vdd == tech.vdd


class TestBufferType:
    def test_input_cap_smaller_than_output_drive(self, tech):
        buf = BufferType("B20", 20.0, stage_ratio=4.0)
        assert buf.input_size == 5.0
        assert buf.input_cap(tech) == pytest.approx(5.0 * tech.gate_cap_per_x)

    def test_drive_resistance_decreases_with_size(self, tech):
        small = BufferType("S", 10.0)
        large = BufferType("L", 30.0)
        assert large.drive_resistance(tech) < small.drive_resistance(tech)

    def test_calibration_regime(self, tech):
        """The preset calibration: Reff(20X) ~ 100 Ohm (see presets.py)."""
        buf = BufferType("B", 20.0)
        assert 50.0 < buf.drive_resistance(tech) < 200.0

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            BufferType("bad", -1.0)
        with pytest.raises(ValueError):
            BufferType("bad", 10.0, stage_ratio=0.5)


class TestBufferLibrary:
    def test_sorted_smallest_to_largest(self):
        lib = cts_buffer_library()
        sizes = [b.size for b in lib]
        assert sizes == sorted(sizes)
        assert lib.smallest.size == 10.0
        assert lib.largest.size == 30.0

    def test_paper_library_has_three_buffers(self):
        assert len(cts_buffer_library()) == 3

    def test_lookup_and_contains(self):
        lib = cts_buffer_library()
        assert "BUF20X" in lib
        assert lib["BUF20X"].size == 20.0
        with pytest.raises(KeyError):
            lib["BUF99X"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            BufferLibrary([BufferType("A", 1), BufferType("A", 2)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            BufferLibrary([])

    def test_closest_by_input_cap(self, tech):
        lib = cts_buffer_library()
        tiny = lib.closest_by_input_cap(1e-15, tech)
        assert tiny.name == "BUF10X"
        huge = lib.closest_by_input_cap(1e-12, tech)
        assert huge.name == "BUF30X"

    def test_subset(self):
        lib = sizing_sweep_library().subset(["BUF10X", "BUF30X"])
        assert lib.names == ["BUF10X", "BUF30X"]


class TestTechnologyThresholds:
    def test_threshold_voltages(self):
        tech = default_technology()
        assert tech.logic_threshold_voltage() == pytest.approx(0.5 * tech.vdd)
        lo, hi = tech.slew_window_voltages()
        assert lo == pytest.approx(0.1 * tech.vdd)
        assert hi == pytest.approx(0.9 * tech.vdd)
