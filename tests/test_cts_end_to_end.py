"""Full synthesis flow, verified with the mini-SPICE substrate."""

import pytest

from repro.core import AggressiveBufferedCTS, CTSOptions, synthesize_clock_tree
from repro.evalx import evaluate_tree
from repro.geom import Point
from repro.geom.bbox import BBox
from repro.tree.nodes import NodeKind
from repro.tree.validate import validate_tree

from tests.conftest import make_sink_pairs


class TestSmallSynthesis:
    def test_tree_structure(self, small_sinks):
        cts = AggressiveBufferedCTS(options=CTSOptions(validate_every_merge=True))
        result = cts.synthesize(small_sinks)
        validate_tree(result.tree.root, expect_source_root=True)
        assert len(result.tree.sinks()) == len(small_sinks)
        # All sink locations preserved.
        built = {(s.location.x, s.location.y) for s in result.tree.sinks()}
        given = {(p.x, p.y) for p, __ in small_sinks}
        assert built == given

    def test_slew_constraint_honored_by_simulation(self, small_sinks, tech):
        """The paper's headline: worst SPICE slew <= the 100 ps limit."""
        cts = AggressiveBufferedCTS()
        result = cts.synthesize(small_sinks)
        metrics = evaluate_tree(result.tree, tech)
        assert metrics.worst_slew <= cts.options.slew_limit

    def test_skew_is_small_fraction_of_latency(self, small_sinks, tech):
        cts = AggressiveBufferedCTS()
        result = cts.synthesize(small_sinks)
        metrics = evaluate_tree(result.tree, tech)
        assert metrics.skew < 0.12 * metrics.latency

    def test_single_sink(self, tech):
        cts = AggressiveBufferedCTS()
        result = cts.synthesize([(Point(1000, 1000), 8e-15)])
        assert len(result.tree.sinks()) == 1
        metrics = evaluate_tree(result.tree, tech)
        assert metrics.skew == 0.0

    def test_two_sinks(self, tech):
        cts = AggressiveBufferedCTS()
        result = cts.synthesize([(Point(0, 0), 8e-15), (Point(9000, 0), 8e-15)])
        metrics = evaluate_tree(result.tree, tech)
        assert metrics.worst_slew <= cts.options.slew_limit
        assert metrics.skew < 10e-12

    def test_source_location_respected(self, small_sinks):
        source = Point(0.0, 0.0)
        cts = AggressiveBufferedCTS()
        result = cts.synthesize(small_sinks, source_location=source)
        assert result.tree.root.location == source
        assert result.tree.root.kind is NodeKind.SOURCE

    def test_convenience_wrapper(self, small_sinks):
        result = synthesize_clock_tree(small_sinks)
        assert result.tree.stats()["n_sinks"] == len(small_sinks)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            AggressiveBufferedCTS().synthesize([])


class TestAggressivenessProperties:
    def test_buffers_off_merge_nodes_exist(self):
        """The defining feature vs [6,8,16]: buffers along routing paths."""
        sinks = make_sink_pairs(10, 40000.0, seed=9)
        cts = AggressiveBufferedCTS()
        result = cts.synthesize(sinks)
        merges = [
            n for n in result.tree.root.walk() if n.kind is NodeKind.MERGE
        ]
        off_merge = 0
        for buf in result.tree.buffers():
            if all(buf.location.manhattan_to(m.location) > 300 for m in merges):
                off_merge += 1
        assert off_merge >= len(merges) * 0.3

    def test_levels_count_consistent(self, small_sinks):
        import math

        cts = AggressiveBufferedCTS()
        result = cts.synthesize(small_sinks)
        assert result.levels >= math.ceil(math.log2(len(small_sinks)))

    def test_deterministic_given_same_input(self, small_sinks):
        r1 = AggressiveBufferedCTS().synthesize(small_sinks)
        r2 = AggressiveBufferedCTS().synthesize(small_sinks)
        assert r1.tree.total_wirelength() == pytest.approx(
            r2.tree.total_wirelength()
        )
        assert r1.tree.buffer_count() == r2.tree.buffer_count()


class TestOptionsVariants:
    def test_binary_search_off_worsens_skew(self, tech):
        sinks = make_sink_pairs(8, 25000.0, seed=21)
        on = AggressiveBufferedCTS(options=CTSOptions()).synthesize(sinks)
        off = AggressiveBufferedCTS(
            options=CTSOptions(enable_binary_search=False)
        ).synthesize(sinks)
        m_on = evaluate_tree(on.tree, tech)
        m_off = evaluate_tree(off.tree, tech)
        assert m_on.skew <= m_off.skew * 1.2  # usually much better

    def test_maze_router_mode(self, tech, small_sinks):
        cts = AggressiveBufferedCTS(options=CTSOptions(router="maze"))
        result = cts.synthesize(small_sinks)
        metrics = evaluate_tree(result.tree, tech)
        assert metrics.worst_slew <= cts.options.slew_limit

    def test_synthesis_with_blockage(self, tech):
        sinks = [(Point(0, 0), 8e-15), (Point(10000, 0), 8e-15)]
        blockages = [BBox(4500, -800, 5500, 800)]
        cts = AggressiveBufferedCTS(blockages=blockages)
        result = cts.synthesize(sinks)
        metrics = evaluate_tree(result.tree, tech)
        assert metrics.worst_slew <= cts.options.slew_limit
        for node in result.tree.nodes():
            if node.kind is not NodeKind.SOURCE:
                assert not blockages[0].contains(node.location, tol=-400)

    def test_invalid_options_rejected(self):
        with pytest.raises(ValueError):
            CTSOptions(router="teleport")
        with pytest.raises(ValueError):
            CTSOptions(slew_margin=0.0)
        with pytest.raises(ValueError):
            CTSOptions(hstructure="magic")
