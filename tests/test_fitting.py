"""Polynomial response-surface fitting."""

import numpy as np
import pytest

from repro.charlib.fitting import PolynomialFit, _multi_indices


class TestMultiIndices:
    def test_counts(self):
        assert len(_multi_indices(1, 3)) == 4
        assert len(_multi_indices(2, 2)) == 6  # 1, x, y, x2, xy, y2
        assert len(_multi_indices(2, 4)) == 15
        assert len(_multi_indices(6, 2)) == 28

    def test_degree_bound(self):
        for exps in _multi_indices(3, 2):
            assert sum(exps) <= 2


class TestExactRecovery:
    def test_recovers_quadratic_surface(self, rng):
        def f(x, y):
            return 2.0 + 3.0 * x - 1.5 * y + 0.5 * x * y + x * x

        pts = rng.uniform(-2, 2, size=(60, 2))
        values = np.array([f(x, y) for x, y in pts])
        fit = PolynomialFit.fit(pts, values, degree=2)
        assert fit.quality.rms_error < 1e-9
        assert fit.quality.r_squared > 1.0 - 1e-12
        # Query strictly inside the training hull (outside it, predictions
        # are clamped by design).
        for x, y in rng.uniform(-1.5, 1.5, size=(10, 2)):
            assert fit.predict(x, y) == pytest.approx(f(x, y), abs=1e-8)

    def test_recovers_1d_cubic(self, rng):
        xs = np.linspace(0, 5, 30)
        ys = 1 + xs - 0.2 * xs**3
        fit = PolynomialFit.fit(xs, ys, degree=3)
        assert fit.predict(2.5) == pytest.approx(1 + 2.5 - 0.2 * 2.5**3, abs=1e-9)

    def test_underdetermined_rejected(self):
        with pytest.raises(ValueError):
            PolynomialFit.fit(np.zeros((3, 2)), np.zeros(3), degree=2)

    def test_noisy_fit_reports_residuals(self, rng):
        xs = rng.uniform(0, 1, size=(200, 2))
        ys = xs[:, 0] + rng.normal(0, 0.01, 200)
        fit = PolynomialFit.fit(xs, ys, degree=1)
        assert 0.005 < fit.quality.rms_error < 0.02
        assert fit.quality.max_error >= fit.quality.rms_error


class TestClampingAndVectorization:
    def test_prediction_clamped_to_training_range(self, rng):
        xs = np.linspace(0, 1, 20)
        fit = PolynomialFit.fit(xs, xs**2, degree=2)
        # Outside the range, the polynomial is NOT extrapolated.
        assert fit.predict(5.0) == pytest.approx(fit.predict(1.0))
        assert fit.predict(-3.0) == pytest.approx(fit.predict(0.0))

    def test_scalar_vector_agreement(self, rng):
        pts = rng.uniform(0, 10, size=(80, 3))
        values = pts[:, 0] * pts[:, 1] - pts[:, 2] ** 2
        fit = PolynomialFit.fit(pts, values, degree=2)
        queries = rng.uniform(0, 10, size=(25, 3))
        vector = fit.predict_many(queries)
        scalar = [fit.predict(*q) for q in queries]
        assert np.allclose(vector, scalar)

    def test_predict_wrong_arity_raises(self):
        fit = PolynomialFit.fit(np.linspace(0, 1, 10), np.zeros(10), degree=1)
        with pytest.raises(ValueError):
            fit.predict(1.0, 2.0)
        with pytest.raises(ValueError):
            fit.predict_many(np.zeros((5, 2)))


class TestSerialization:
    def test_roundtrip(self, rng):
        pts = rng.uniform(0, 1, size=(50, 2))
        values = pts[:, 0] + 2 * pts[:, 1]
        fit = PolynomialFit.fit(pts, values, degree=2, var_names=["a", "b"])
        clone = PolynomialFit.from_dict(fit.to_dict())
        assert clone.var_names == ["a", "b"]
        for q in rng.uniform(0, 1, size=(10, 2)):
            assert clone.predict(*q) == pytest.approx(fit.predict(*q), abs=1e-12)
        assert clone.quality.rms_error == pytest.approx(fit.quality.rms_error)
