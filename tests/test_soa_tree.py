"""Structure-of-arrays tree mirror: round-trip, kernels, faults.

The mirror (:mod:`repro.core.soa_tree`) echoes every node creation /
attach / detach into flat numpy columns and answers the commit phase's
bounds-bucket prefill, forced-stage-buffer decisions and checkpoint
frames from them. Its contract is bit-identity with the object walks it
replaces, so every test here reduces to exact equality — signatures,
cache values, rows — never approx.
"""

import numpy as np
import pytest

from repro.core.checkpoint import _iter_preorder
from repro.core.cts import AggressiveBufferedCTS
from repro.core.options import CTSOptions
from repro.core.soa_tree import SoaTree
from repro.evalx.faultinject import reset_plans
from repro.evalx.perfstats import (
    checkpoint_resume_equivalence,
    soa_commit_equivalence,
)
from repro.geom.bbox import BBox
from repro.geom.point import Point
from repro.tech import cts_buffer_library
from repro.timing.analysis import SLEW_QUANTUM
from repro.tree.export import tree_signature
from repro.tree.nodes import (
    NodeKind,
    make_buffer,
    make_merge,
    make_sink,
    make_source,
    peek_node_id,
    set_tree_recorder,
)

from tests.conftest import make_sink_pairs

BLOCKAGES = [BBox(8000.0, 8000.0, 16000.0, 16000.0)]


@pytest.fixture(autouse=True)
def _fresh_fault_plans():
    reset_plans()
    yield
    reset_plans()


def synth(sinks, blockages=None, **option_overrides):
    """One synthesis run plus the rebased signature of its tree."""
    option_overrides.setdefault("fault_plan", "")
    option_overrides.setdefault("strict", False)
    option_overrides.setdefault("workers", 0)
    options = CTSOptions(**option_overrides)
    cts = AggressiveBufferedCTS(options=options, blockages=blockages)
    base = peek_node_id()
    result = cts.synthesize(sinks)
    return tree_signature(result.tree, base), result, cts


def blocked_sinks(n, seed):
    clear = [bbox.expanded(1200.0) for bbox in BLOCKAGES]
    sinks = [
        (p, c)
        for p, c in make_sink_pairs(n, 30000.0, seed=seed)
        if not any(region.contains(p) for region in clear)
    ]
    assert len(sinks) >= 10
    return sinks


@pytest.fixture()
def recorded():
    """A fresh mirror installed as the tree recorder for one test."""
    soa = SoaTree()
    previous = set_tree_recorder(soa)
    try:
        yield soa
    finally:
        set_tree_recorder(previous)


def object_checkpoint_rows(root):
    """The object-walk rows of ``checkpoint._encode_subtree``."""
    return [
        (
            node.id,
            node.kind.value,
            node.name,
            node.location.x,
            node.location.y,
            node.wire_to_parent,
            node.cap,
            node.buffer.name if node.buffer is not None else None,
            node.parent.id if node.parent is not None else None,
        )
        for node in _iter_preorder(root)
    ]


class TestMirrorRoundTrip:
    """Random surgery round-trips through the columns bit-exactly."""

    def _random_forest(self, rng, buffers):
        names = list(buffers.names)
        roots = [
            make_sink(
                Point(float(rng.uniform(0, 9000)), float(rng.uniform(0, 9000))),
                float(rng.uniform(4e-15, 12e-15)),
            )
            for __ in range(12)
        ]
        for __ in range(60):
            op = rng.integers(0, 4)
            if op == 0 or len(roots) < 2:
                roots.append(
                    make_sink(
                        Point(
                            float(rng.uniform(0, 9000)),
                            float(rng.uniform(0, 9000)),
                        ),
                        float(rng.uniform(4e-15, 12e-15)),
                    )
                )
            elif op == 1:
                # Merge two roots under a new MERGE node.
                a = roots.pop(int(rng.integers(0, len(roots))))
                b = roots.pop(int(rng.integers(0, len(roots))))
                m = make_merge(
                    Point(
                        (a.location.x + b.location.x) / 2,
                        (a.location.y + b.location.y) / 2,
                    )
                )
                m.attach(a)
                m.attach(b)
                roots.append(m)
            elif op == 2:
                # Drive a root with a new BUFFER.
                child = roots.pop(int(rng.integers(0, len(roots))))
                buf = make_buffer(
                    Point(child.location.x + 10.0, child.location.y),
                    buffers[names[int(rng.integers(0, len(names)))]],
                )
                buf.attach(child)
                roots.append(buf)
            else:
                # Detach a random child somewhere and re-root it.
                root = roots[int(rng.integers(0, len(roots)))]
                nodes = [n for n in root.walk() if n.parent is not None]
                if nodes:
                    picked = nodes[int(rng.integers(0, len(nodes)))]
                    roots.append(picked.detach())
        return roots

    def test_random_surgery_mirrors_and_round_trips(self, recorded):
        rng = np.random.default_rng(17)
        buffers = cts_buffer_library()
        roots = self._random_forest(rng, buffers)
        for root in roots:
            recorded.assert_mirrors(root)
        # Round-trip: the checkpoint rows encoded from the columns are
        # the object walk's rows, and rebuilding from them reproduces
        # the tree signature exactly.
        root = max(roots, key=lambda r: len(list(r.walk())))
        rows = recorded.checkpoint_rows(root)
        assert rows == object_checkpoint_rows(root)
        rebuilt = self._rebuild(rows, buffers)
        base = min(r[0] for r in rows)
        assert tree_signature(rebuilt, base) == tree_signature(root, base)

    def _rebuild(self, rows, buffers):
        from repro.tree.nodes import TreeNode

        by_id = {}
        root = None
        for node_id, kind, name, x, y, wire, cap, buf_name, parent_id in rows:
            node = TreeNode(
                kind=NodeKind(kind),
                location=Point(x, y),
                name=name,
                cap=cap,
                buffer=buffers[buf_name] if buf_name is not None else None,
                id=node_id,
            )
            by_id[node_id] = node
            if parent_id is None:
                root = node
            else:
                by_id[parent_id].attach(node, wire)
        return root

    def test_source_seeding_and_detach(self, recorded, buf_lib=None):
        buffers = cts_buffer_library()
        sink = make_sink(Point(100.0, 0.0), 5e-15, "s0")
        buf = make_buffer(Point(50.0, 0.0), buffers["BUF20X"])
        buf.attach(sink)
        src = make_source(Point(0.0, 0.0))
        src.attach(buf)
        recorded.assert_mirrors(src)
        buf.detach()
        recorded.assert_mirrors(src)
        recorded.assert_mirrors(buf)


class TestKernelEquality:
    """Kernel outputs equal the object walks they shadow, bit for bit."""

    def test_prefill_fills_object_cache_superset(self):
        sinks = blocked_sinks(18, seed=22)
        base_soa = peek_node_id()
        __, __r, cts_soa = synth(sinks, blockages=BLOCKAGES, soa_commit=True)
        base_obj = peek_node_id()
        __, __r, cts_obj = synth(sinks, blockages=BLOCKAGES, soa_commit=False)

        def rebase(cache, base):
            return {(key[0] - base, *key[1:]): val for key, val in cache.items()}

        soa_bounds = rebase(cts_soa.engine._bounds_cache, base_soa)
        obj_bounds = rebase(cts_obj.engine._bounds_cache, base_obj)
        # The mirror may prefetch extra buckets (pure functions of the
        # key); everything the object walk computed must be present and
        # bit-identical.
        assert set(obj_bounds) <= set(soa_bounds)
        assert all(soa_bounds[k] == v for k, v in obj_bounds.items())
        soa_v = rebase(cts_soa.engine._vbounds_cache, base_soa)
        obj_v = rebase(cts_obj.engine._vbounds_cache, base_obj)
        assert set(obj_v) <= set(soa_v)
        assert all(soa_v[k] == v for k, v in obj_v.items())

    def test_collapsed_cap_bit_exact(self, recorded, engine):
        buffers = cts_buffer_library()
        rng = np.random.default_rng(5)
        sinks = [
            make_sink(
                Point(float(rng.uniform(0, 4000)), float(rng.uniform(0, 4000))),
                float(rng.uniform(4e-15, 12e-15)),
            )
            for __ in range(6)
        ]
        b0 = make_buffer(Point(10.0, 10.0), buffers["BUF10X"])
        b0.attach(sinks[0])
        m0 = make_merge(Point(500.0, 500.0))
        m0.attach(b0)
        m0.attach(sinks[1])
        b1 = make_buffer(Point(900.0, 900.0), buffers["BUF30X"])
        b1.attach(m0)
        m1 = make_merge(Point(1500.0, 1500.0))
        m1.attach(b1)
        m1.attach(sinks[2])
        m2 = make_merge(Point(2500.0, 2500.0))
        m2.attach(m1)
        m2.attach(sinks[3])
        for node in (m0, m1, m2):
            engine._cap_cache.pop(node.id, None)
            fast = recorded.load_cap(engine, node)
            engine._cap_cache.pop(node.id, None)
            slow = engine._load_cap_of(node)
            assert fast == slow

    def test_checkpoint_rows_after_surgery(self, recorded):
        buffers = cts_buffer_library()
        rng = np.random.default_rng(23)
        roots = TestMirrorRoundTrip()._random_forest(rng, buffers)
        for root in roots:
            assert recorded.checkpoint_rows(root) == object_checkpoint_rows(
                root
            )


class TestQuantumBoundary:
    """Slews exactly on SLEW_QUANTUM multiples: the two adjacent
    buckets answer identically, so bucket choice cannot matter."""

    def _buffer_nodes(self):
        sinks = blocked_sinks(14, seed=31)
        __, result, cts = synth(sinks, blockages=BLOCKAGES, soa_commit=False)
        nodes = [
            n
            for n in result.tree.root.walk()
            if n.kind is NodeKind.BUFFER
        ]
        assert nodes
        return nodes, cts.engine

    def test_exact_multiple_slews_bucket_invariant(self):
        nodes, engine = self._buffer_nodes()
        rng = np.random.default_rng(41)
        for node in nodes[:8]:
            for k in sorted(set(rng.integers(0, 24, size=6).tolist())):
                slew = k * SLEW_QUANTUM
                # The quantizer lands exactly on the bucket: no
                # interpolation fraction survives the float round-trip.
                kk, frac = engine._buckets_of(slew)
                assert (kk, frac) == (k, 0.0)
                # Element-wise twin used by the SoA prefill kernel.
                q = np.asarray([slew]) / SLEW_QUANTUM
                ks = q.astype(np.int64)
                assert (int(ks[0]), float((q - ks)[0])) == (k, 0.0)
                lo = engine._buffer_bucket_bounds(node, k)
                hi = engine._buffer_bucket_bounds(node, k + 1)
                # frac == 0 collapses the lerp onto the low bucket
                # exactly; the full query returns that very value.
                assert engine._lerp_bounds(lo, hi, 0.0) == lo
                assert engine.buffer_subtree_bounds(node, slew) == lo


class TestEndToEnd:
    """SoA on/off/pooled/resumed: identical trees, stats and queries."""

    def test_serial_identical(self):
        eq = soa_commit_equivalence(n_sinks=80, with_blockages=True, seed=7)
        assert eq["soa_tree"] == eq["object_tree"]
        assert eq["soa_stats"] == eq["object_stats"]
        assert eq["soa_levels"] == eq["object_levels"]
        assert eq["soa_queries"] == eq["object_queries"]

    def test_pooled_identical(self):
        # workers=2 renumbers node ids level by level; the mirror must
        # follow the remap and still answer bit-identically.
        eq = soa_commit_equivalence(
            n_sinks=60, with_blockages=True, workers=2, seed=9
        )
        assert eq["soa_tree"] == eq["object_tree"]
        assert eq["soa_stats"] == eq["object_stats"]
        assert eq["soa_levels"] == eq["object_levels"]

    def test_resumed_identical(self):
        # Checkpoint frames are encoded from the columns (SoA default
        # on); a halt + resume must land on the clean run's tree.
        eq = checkpoint_resume_equivalence(
            n_sinks=60, with_blockages=True, seed=11, halt_after=2
        )
        assert eq["checkpoints_written"] >= 1
        assert eq["resumed_tree"] == eq["clean_tree"]
        assert eq["resumed_stats"] == eq["clean_stats"]
        assert eq["resumed_levels"] == eq["clean_levels"]


class TestFaults:
    """CON3xx rails: degrade once and fall back bit-identically;
    MemoryError always surfaces."""

    def test_raise_fault_degrades_once_bit_identical(self):
        sinks = blocked_sinks(18, seed=22)
        clean_sig, __, __ = synth(
            sinks, blockages=BLOCKAGES, soa_commit=True
        )
        reset_plans()
        sig, result, __ = synth(
            sinks,
            blockages=BLOCKAGES,
            soa_commit=True,
            fault_plan="soa_commit:0:raise",
        )
        assert sig == clean_sig
        assert [d.component for d in result.degradations] == ["soa_commit"]

    def test_oom_mode_propagates_memoryerror(self):
        # MemoryError must never be swallowed into a degradation, even
        # outside strict mode: the jobs watchdog owns OOM handling.
        sinks = blocked_sinks(18, seed=22)
        with pytest.raises(MemoryError):
            synth(
                sinks,
                blockages=BLOCKAGES,
                soa_commit=True,
                fault_plan="soa_commit:0:oom",
            )
