"""The library timing engine vs mini-SPICE ground truth."""

import pytest

from repro.evalx import engine_metrics, evaluate_tree
from repro.geom import Point
from repro.tech import cts_buffer_library
from repro.timing.analysis import LibraryTimingEngine
from repro.tree.clocktree import ClockTree
from repro.tree.nodes import make_buffer, make_merge, make_sink


@pytest.fixture()
def buf20():
    return cts_buffer_library()["BUF20X"]


def balanced_tree(buf20, span=6000.0):
    s_a = make_sink(Point(0, 0), 8e-15, "sA")
    s_b = make_sink(Point(span, 0), 8e-15, "sB")
    b_a = make_buffer(Point(span * 0.25, 100), buf20)
    b_a.attach(s_a)
    b_b = make_buffer(Point(span * 0.75, 100), buf20)
    b_b.attach(s_b)
    merge = make_merge(Point(span / 2, 100))
    merge.attach(b_a)
    merge.attach(b_b)
    root = make_buffer(Point(span / 2, 300), buf20)
    root.attach(merge)
    return ClockTree.from_network(Point(span / 2, 320), root)


class TestAccuracy:
    def test_skew_matches_simulation_closely(self, engine, tech, buf20):
        tree = balanced_tree(buf20)
        spice = evaluate_tree(tree, tech)
        est = engine_metrics(tree, engine)
        assert est.skew == pytest.approx(spice.skew, abs=2e-12)
        assert est.latency == pytest.approx(spice.latency, rel=0.05)
        assert est.worst_slew == pytest.approx(spice.worst_slew, rel=0.08)

    def test_asymmetric_skew_tracked(self, engine, tech, buf20):
        s_a = make_sink(Point(0, 0), 8e-15, "sA")
        s_b = make_sink(Point(2500, 0), 8e-15, "sB")
        merge = make_merge(Point(800, 0))  # deliberately off-center
        merge.attach(s_a)
        merge.attach(s_b)
        root = make_buffer(Point(800, 50), buf20)
        root.attach(merge)
        tree = ClockTree.from_network(Point(800, 60), root)
        spice = evaluate_tree(tree, tech)
        est = engine_metrics(tree, engine)
        assert spice.skew > 5e-12  # genuinely unbalanced
        assert est.skew == pytest.approx(spice.skew, abs=3e-12)

    def test_arrival_ordering_preserved(self, engine, tech, buf20):
        s_a = make_sink(Point(0, 0), 8e-15, "sA")
        s_b = make_sink(Point(4000, 0), 8e-15, "sB")
        merge = make_merge(Point(1000, 0))
        merge.attach(s_a)
        merge.attach(s_b)
        root = make_buffer(Point(1000, 50), buf20)
        root.attach(merge)
        tree = ClockTree.from_network(Point(1000, 60), root)
        spice = evaluate_tree(tree, tech)
        est = engine_metrics(tree, engine)
        assert (spice.sink_arrivals["sA"] < spice.sink_arrivals["sB"]) == (
            est.sink_arrivals["sA"] < est.sink_arrivals["sB"]
        )


class TestSubtreeBounds:
    def test_sink_bounds_are_zero(self, engine):
        sink = make_sink(Point(0, 0), 5e-15)
        bounds = engine.subtree_bounds(sink, 80e-12)
        assert bounds.min_delay == 0.0
        assert bounds.max_delay == 0.0

    def test_buffer_bounds_include_intrinsic_delay(self, engine, buf20):
        buf = make_buffer(Point(0, 0), buf20)
        buf.attach(make_sink(Point(1000, 0), 8e-15))
        bounds = engine.buffer_subtree_bounds(buf, 80e-12)
        assert bounds.max_delay > 30e-12  # buffer delay + wire delay
        assert bounds.skew == pytest.approx(0.0, abs=1e-15)

    def test_merge_bounds_span_children(self, engine, buf20):
        merge = make_merge(Point(0, 0))
        merge.attach(make_sink(Point(200, 0), 8e-15))
        merge.attach(make_sink(Point(1500, 0), 8e-15))
        bounds = engine.subtree_bounds(merge, 80e-12)
        assert bounds.min_delay < bounds.max_delay
        assert bounds.skew > 1e-12

    def test_memoization_hit(self, engine, buf20):
        buf = make_buffer(Point(0, 0), buf20)
        buf.attach(make_sink(Point(1000, 0), 8e-15))
        engine.clear_cache()
        b1 = engine.buffer_subtree_bounds(buf, 80e-12)
        # Queries between the same two buckets add no cache entries and
        # interpolate deterministically (exact function of the raw slew).
        b2 = engine.buffer_subtree_bounds(buf, 80e-12 + 0.01e-12)
        n_entries = len(engine._bounds_cache)
        b3 = engine.buffer_subtree_bounds(buf, 80e-12 + 0.01e-12)
        assert len(engine._bounds_cache) == n_entries
        assert b2 == b3
        assert abs(b2.max_delay - b1.max_delay) <= 0.25e-12

    def test_memoization_respects_slew_bins(self, engine, buf20):
        buf = make_buffer(Point(0, 0), buf20)
        buf.attach(make_sink(Point(1000, 0), 8e-15))
        engine.clear_cache()
        b1 = engine.buffer_subtree_bounds(buf, 40e-12)
        b2 = engine.buffer_subtree_bounds(buf, 120e-12)
        assert b1.max_delay < b2.max_delay  # slower input -> slower buffer


class TestSlewPropagation:
    def test_slews_damped_after_buffer(self, engine, buf20):
        """Input slew strongly affects the first stage, weakly the second -
        the buffer regenerates the edge (why memoization cuts off)."""
        buf1 = make_buffer(Point(0, 0), buf20)
        buf2 = make_buffer(Point(1200, 0), buf20)
        buf1.attach(buf2)
        buf2.attach(make_sink(Point(2400, 0), 8e-15))
        t1 = engine.stage_timing(buf1, 40e-12)
        t2 = engine.stage_timing(buf1, 120e-12)
        slew_out_1 = t1.loads[0][2]
        slew_out_2 = t2.loads[0][2]
        assert abs(slew_out_2 - slew_out_1) < 0.5 * (120e-12 - 40e-12)
