"""Point arithmetic and the rotated-frame mapping."""

import math

import pytest

from repro.geom.point import Point, centroid, manhattan


class TestManhattanDistance:
    def test_axis_aligned(self):
        assert Point(0, 0).manhattan_to(Point(5, 0)) == 5
        assert Point(0, 0).manhattan_to(Point(0, -7)) == 7

    def test_diagonal(self):
        assert Point(1, 2).manhattan_to(Point(4, 6)) == 7

    def test_symmetry(self):
        a, b = Point(3.5, -2), Point(-1, 9)
        assert a.manhattan_to(b) == b.manhattan_to(a)

    def test_triangle_inequality(self):
        a, b, c = Point(0, 0), Point(10, 3), Point(4, 8)
        assert a.manhattan_to(c) <= a.manhattan_to(b) + b.manhattan_to(c)

    def test_module_level_helper(self):
        assert manhattan(Point(0, 0), Point(2, 2)) == 4

    def test_euclidean_le_manhattan(self):
        a, b = Point(0, 0), Point(3, 4)
        assert a.euclidean_to(b) == pytest.approx(5.0)
        assert a.euclidean_to(b) <= a.manhattan_to(b)


class TestRotatedFrame:
    def test_roundtrip(self):
        p = Point(3.25, -7.5)
        r = p.to_rotated()
        back = Point.from_rotated(r.x, r.y)
        assert back == p

    def test_manhattan_becomes_chebyshev(self):
        a, b = Point(1, 2), Point(5, -3)
        ra, rb = a.to_rotated(), b.to_rotated()
        cheb = max(abs(ra.x - rb.x), abs(ra.y - rb.y))
        assert cheb == pytest.approx(a.manhattan_to(b))


class TestPointOps:
    def test_add_sub(self):
        assert Point(1, 2) + Point(3, 4) == Point(4, 6)
        assert Point(1, 2) - Point(3, 4) == Point(-2, -2)

    def test_lerp_endpoints(self):
        a, b = Point(0, 0), Point(10, 20)
        assert a.lerp(b, 0.0) == a
        assert a.lerp(b, 1.0) == b
        assert a.lerp(b, 0.5) == Point(5, 10)

    def test_lerp_is_linear_in_manhattan(self):
        a, b = Point(0, 0), Point(10, 4)
        mid = a.lerp(b, 0.3)
        assert a.manhattan_to(mid) == pytest.approx(0.3 * a.manhattan_to(b))

    def test_snapped(self):
        assert Point(12.4, 7.6).snapped(5.0) == Point(10.0, 10.0)

    def test_snapped_rejects_nonpositive_pitch(self):
        with pytest.raises(ValueError):
            Point(1, 1).snapped(0.0)

    def test_scaled(self):
        assert Point(2, -3).scaled(2.0) == Point(4, -6)

    def test_centroid(self):
        pts = [Point(0, 0), Point(2, 0), Point(1, 3)]
        assert centroid(pts) == Point(1.0, 1.0)

    def test_centroid_empty_raises(self):
        with pytest.raises(ValueError):
            centroid([])

    def test_as_tuple(self):
        assert Point(1.5, 2.5).as_tuple() == (1.5, 2.5)

    def test_hashable_and_frozen(self):
        p = Point(1, 2)
        assert p in {Point(1, 2)}
        with pytest.raises(Exception):
            p.x = 3
