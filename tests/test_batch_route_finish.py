"""Level-batched route finishing: equivalence, properties, descent.

The contract of the route-finishing kernel
(:func:`repro.core.grid_cache._finish_level`,
``CTSOptions.batch_route_finish``):

- synthesis through the level-batched kernel (one structure-of-arrays
  ranking pass per level + lockstep batched descent) is byte-identical —
  tree signature and merge stats — to the per-pair finish, on blockage,
  H-structure and snaking scenarios, serial and under the worker pool;
- results are invariant to how a level is split into batches;
- the batched ranking picks the same argmin cell as the scalar loop
  under ties (property-tested over random tie-rich cases);
- :func:`repro.core.maze_router.descend_many` walks every distance
  field exactly like scalar :meth:`MazeGrid.descend` (the documented
  +x/-x/+y/-y priority), including degenerate windows;
- route-phase counters (:class:`repro.core.grid_cache.SharingStats`)
  are order-independent under the worker pool — batch stats are summed
  on gather — so stats equality is asserted here instead of skipped.
"""

import numpy as np
import pytest

from repro.core.cts import AggressiveBufferedCTS
from repro.core.grid_cache import GridCache, route_level
from repro.core.maze_router import MazeGrid, descend_many, rank_candidates
from repro.core.options import CTSOptions
from repro.core.routing_common import (
    RouteTerminal,
    rank_level_cells,
    slew_limited_length,
)
from repro.evalx.perfstats import scaling_scenario
from repro.geom.bbox import BBox
from repro.geom.point import Point
from repro.tree.export import tree_signature
from repro.tree.nodes import peek_node_id
from tests.conftest import (
    random_blocked_grid,
    random_descent_case,
    random_ranking_case,
)

#: The pair-level SharingStats counters that are invariant to the batch
#: split (sums over pairs), and hence must agree between the serial flow
#: and the worker pool's summed batch stats.
PAIR_LEVEL_COUNTERS = (
    "pairs_routed",
    "windows_served",
    "cells_ranked",
    "descent_sides",
    "descent_cells",
    "curve_points",
)


def synthesize_signature(sinks, source, blockages, **option_kwargs):
    cts = AggressiveBufferedCTS(
        options=CTSOptions(**option_kwargs),
        blockages=blockages or None,
    )
    base = peek_node_id()
    result = cts.synthesize(sinks, source)
    return tree_signature(result.tree, base), result


def snaking_scenario():
    """A tight cluster plus one far-flung sink: the top merge's delay
    imbalance exceeds what routing absorbs, forcing balance snaking."""
    gen = np.random.default_rng(7)
    sinks = [
        (Point(float(x), float(y)), 8e-15)
        for x, y in gen.uniform(0, 3000, (24, 2))
    ]
    sinks.append((Point(42000.0, 38000.0), 8e-15))
    blockages = [BBox(15000, 5000, 22000, 30000)]
    return sinks, Point(2000.0, 2000.0), blockages


class TestBatchedEqualsPerPair:
    def test_blockage_scenario_serial(self):
        sinks, source, blockages = scaling_scenario(120, True)
        batched_sig, batched = synthesize_signature(
            sinks, source, blockages, workers=0, batch_route_finish=True
        )
        per_pair_sig, per_pair = synthesize_signature(
            sinks, source, blockages, workers=0, batch_route_finish=False
        )
        assert batched_sig == per_pair_sig
        assert batched.merge_stats == per_pair.merge_stats
        assert batched.levels == per_pair.levels
        # the kernel actually engaged (and the fallback did not)
        assert batched.route_sharing["finish_batches"] > 0
        assert batched.route_sharing["cells_ranked"] > 0
        assert batched.route_sharing["descent_sides"] > 0
        assert per_pair.route_sharing["finish_batches"] == 0
        # both sides routed the same pairs through the same windows
        for key in ("pairs_routed", "windows_served", "curve_points"):
            assert batched.route_sharing[key] == per_pair.route_sharing[key]

    def test_blockage_scenario_pooled(self):
        """Batched finishing under the PR 2 worker pool: worker batches
        run the same kernel over batch-local caches, still identical to
        the serial per-pair finish — and the route-phase counters are
        shipped back and summed, so stats are asserted, not skipped."""
        sinks, source, blockages = scaling_scenario(120, True)
        pooled_sig, pooled = synthesize_signature(
            sinks, source, blockages, workers=2, batch_route_finish=True
        )
        per_pair_sig, per_pair = synthesize_signature(
            sinks, source, blockages, workers=0, batch_route_finish=False
        )
        serial_sig, serial = synthesize_signature(
            sinks, source, blockages, workers=0, batch_route_finish=True
        )
        assert pooled_sig == per_pair_sig == serial_sig
        assert pooled.merge_stats == per_pair.merge_stats
        assert pooled.levels == per_pair.levels
        # Pooled counters are the sum of the worker batches' stats: the
        # pair-level counters equal the serial flow's exactly.
        assert pooled.route_sharing["finish_batches"] > 0
        for key in PAIR_LEVEL_COUNTERS:
            assert pooled.route_sharing[key] == serial.route_sharing[key], key
        # And pooled runs are deterministic end to end (summing batch
        # stats on gather is order-independent).
        again_sig, again = synthesize_signature(
            sinks, source, blockages, workers=2, batch_route_finish=True
        )
        assert again_sig == pooled_sig
        assert again.route_sharing == pooled.route_sharing

    def test_hstructure_scenario(self):
        """H-structure correction interleaves per-pair re-routing with
        swept levels — both finishing paths must agree through it."""
        sinks, source, blockages = scaling_scenario(60, True)
        batched_sig, batched = synthesize_signature(
            sinks,
            source,
            blockages,
            workers=0,
            batch_route_finish=True,
            hstructure="correct",
        )
        per_pair_sig, per_pair = synthesize_signature(
            sinks,
            source,
            blockages,
            workers=0,
            batch_route_finish=False,
            hstructure="correct",
        )
        assert batched_sig == per_pair_sig
        assert batched.merge_stats == per_pair.merge_stats
        assert batched.route_sharing["finish_batches"] > 0

    def test_snaking_scenario(self):
        sinks, source, blockages = snaking_scenario()
        batched_sig, batched = synthesize_signature(
            sinks, source, blockages, workers=0, batch_route_finish=True
        )
        per_pair_sig, per_pair = synthesize_signature(
            sinks, source, blockages, workers=0, batch_route_finish=False
        )
        assert batched.merge_stats.n_snaked > 0, "scenario must exercise snaking"
        assert batched_sig == per_pair_sig
        assert batched.merge_stats == per_pair.merge_stats


class TestBatchSplitInvariance:
    """Batched finishing does not depend on how pairs are grouped."""

    @pytest.fixture(scope="class")
    def routed(self, library):
        options = CTSOptions(router="maze", batch_route_finish=True)
        stage_length = slew_limited_length(library, options.target_slew)
        blockages = [
            BBox(4000, -2000, 5000, 1200),
            BBox(9000, 2000, 10500, 9000),
        ]
        gen = np.random.default_rng(11)

        def free_point():
            while True:
                x, y = gen.uniform(0, 14000, 2)
                p = Point(float(x), float(y))
                if not any(r.contains(p) for r in blockages):
                    return p

        pairs = []
        for k in range(8):
            t1 = RouteTerminal(None, free_point(), float(k) * 5e-12, 0.0, "BUF20X")
            t2 = RouteTerminal(None, free_point(), 0.0, 0.0, "BUF20X")
            pairs.append((t1, t2))
        return pairs, library, options, stage_length, blockages

    @staticmethod
    def _route(pairs, library, options, stage_length, blockages):
        return route_level(
            pairs,
            library,
            options,
            stage_length,
            blockages,
            cache=GridCache(blockages),
        )

    def test_one_batch_equals_split_batches_equals_per_pair(self, routed):
        pairs, library, options, stage_length, blockages = routed
        whole = self._route(pairs, library, options, stage_length, blockages)
        split = []
        for chunk in (pairs[:3], pairs[3:5], pairs[5:]):
            split.extend(
                self._route(chunk, library, options, stage_length, blockages)
            )
        from repro.core.merge_routing import route_pair

        single = [
            route_pair(t1, t2, library, options, stage_length, blockages)
            for t1, t2 in pairs
        ]
        for a, b, c in zip(whole, split, single):
            for other in (b, c):
                assert a.meeting_point == other.meeting_point
                assert a.est_left_delay == other.est_left_delay
                assert a.est_right_delay == other.est_right_delay
                assert a.left.polyline.points == other.left.polyline.points
                assert a.right.polyline.points == other.right.polyline.points
                assert a.left.state == other.left.state
                assert a.right.state == other.right.state


class TestRankingProperty:
    """Property: the segmented level ranking picks exactly the scalar
    loop's argmin cell — including under ties (the generator quantizes
    profile delays so exact skew/total ties are common)."""

    N_CASES = 60

    def _cases(self):
        gen = np.random.default_rng(2024)
        return [random_ranking_case(gen) for _ in range(self.N_CASES)]

    def test_batched_ranking_matches_scalar_under_ties(self):
        cases = self._cases()
        scalar_picks = []
        counts, rounded_all, total_all, hops_all = [], [], [], []
        tied_cases = 0
        for dist1, dist2, both, prof1, prof2 in cases:
            cand, k1, k2, d1, d2, pick = rank_candidates(
                dist1, dist2, both, prof1, prof2
            )
            scalar_picks.append(pick)
            skew = np.abs(d1 - d2)
            rounded = np.round(skew, 15)
            if (rounded == rounded.min()).sum() > 1:
                tied_cases += 1
            counts.append(cand.size)
            rounded_all.append(rounded)
            total_all.append(np.maximum(d1, d2))
            hops_all.append(k1 + k2)
        # The generator must actually exercise the tie order, or this
        # test proves nothing about tie-breaking.
        assert tied_cases > self.N_CASES // 4, "tie generator too weak"
        counts = np.array(counts)
        winners = rank_level_cells(
            counts,
            np.concatenate(rounded_all),
            np.concatenate(total_all),
            np.concatenate(hops_all),
        )
        starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        assert winners.shape == (len(cases),)
        for i, pick in enumerate(scalar_picks):
            assert int(winners[i] - starts[i]) == pick, f"case {i}"

    def test_single_segment_and_single_candidate(self):
        # One pair, one candidate row: the winner is that row.
        assert rank_level_cells(
            np.array([1]), np.zeros(1), np.zeros(1), np.zeros(1)
        ).tolist() == [0]
        # Empty level: no winners.
        assert rank_level_cells(
            np.array([], dtype=int), np.zeros(0), np.zeros(0), np.zeros(0)
        ).size == 0
        with pytest.raises(ValueError):
            rank_level_cells(np.array([0]), np.zeros(0), np.zeros(0), np.zeros(0))


class TestDescend:
    """Direct unit coverage of the distance-field descent — scalar and
    batched — previously covered only through router tests."""

    def test_single_cell_window(self):
        grid = MazeGrid(BBox(0, 0, 0, 0), pitch=100.0)
        assert (grid.nx, grid.ny) == (1, 1)
        dist = grid.bfs((0, 0))
        assert grid.descend(dist, (0, 0)) == [(0, 0)]
        [(ci, cj)] = descend_many([(dist, (0, 0))])
        assert ci.tolist() == [0] and cj.tolist() == [0]

    def test_target_on_window_border(self):
        grid = MazeGrid(BBox(0, 0, 500, 400), pitch=100.0)
        grid.block(BBox(150, 50, 250, 350))
        dist = grid.bfs((0, 0))
        cell = (grid.nx - 1, grid.ny - 1)
        path = grid.descend(dist, cell)
        assert path[0] == (0, 0) and path[-1] == cell
        assert len(path) == dist[cell] + 1
        # Every step is one BFS level and never enters a blocked cell.
        for t, (i, j) in enumerate(path):
            assert dist[i, j] == t
            assert not grid.blocked[i, j]
        [(ci, cj)] = descend_many([(dist, cell)])
        assert list(zip(ci.tolist(), cj.tolist())) == path

    def test_fully_blocked_detour(self):
        """A U-shaped wall: the descent must walk the detour, not the
        straight line."""
        grid = MazeGrid(BBox(0, 0, 600, 600), pitch=100.0)
        # A wall with one open end, between start (0, 3) and target (6, 3).
        grid.block(BBox(250, -50, 350, 450))
        start, cell = (0, 3), (6, 3)
        dist = grid.bfs(start)
        path = grid.descend(dist, cell)
        assert path[0] == start and path[-1] == cell
        assert len(path) == dist[cell] + 1
        manhattan = abs(cell[0] - start[0]) + abs(cell[1] - start[1])
        assert dist[cell] > manhattan  # the wall forced a real detour
        assert not any(grid.blocked[i, j] for i, j in path)
        [(ci, cj)] = descend_many([(dist, cell)])
        assert list(zip(ci.tolist(), cj.tolist())) == path

    def test_unreached_cell_raises(self):
        grid = MazeGrid(BBox(0, 0, 400, 400), pitch=100.0)
        grid.block(BBox(150, -50, 250, 450))  # full wall: right half unreached
        dist = grid.bfs((0, 0))
        assert dist[4, 0] == -1
        with pytest.raises(ValueError):
            grid.descend(dist, (4, 0))
        with pytest.raises(ValueError):
            descend_many([(dist, (4, 0))])

    def test_property_batched_matches_scalar_with_priority(self):
        """Random fields: descend_many equals per-field descend (any
        chunking), and every scalar step takes the *first* qualifying
        neighbor in the documented +x/-x/+y/-y priority."""
        gen = np.random.default_rng(77)
        cases = [random_descent_case(gen) for _ in range(40)]
        scalar_paths = []
        for grid, dist, cell in cases:
            path = grid.descend(dist, cell)
            # Priority property: walking back from the target, the
            # predecessor is the first direction whose neighbor sits one
            # BFS level lower.
            for t in range(len(path) - 1, 0, -1):
                i, j = path[t]
                for di, dj in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                    ni, nj = i + di, j + dj
                    if (
                        0 <= ni < grid.nx
                        and 0 <= nj < grid.ny
                        and dist[ni, nj] == t - 1
                    ):
                        assert path[t - 1] == (ni, nj)
                        break
            scalar_paths.append(path)
        sides = [(dist, cell) for _, dist, cell in cases]
        for budget in (10**9, 1):  # one big chunk, then one side per chunk
            batched = descend_many(sides, cell_budget=budget)
            for path, (ci, cj) in zip(scalar_paths, batched):
                assert list(zip(ci.tolist(), cj.tolist())) == path
