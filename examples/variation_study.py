#!/usr/bin/env python
"""Process-variation robustness of a synthesized clock tree.

Synthesizes one tree, then Monte Carlo-samples within-die and die-to-die
process variation on the mini-SPICE substrate to show where the skew
budget goes in a real flow — the concern behind the variation-aware CTS
literature the paper cites ([13]-[16]).

Usage::

    python examples/variation_study.py [n_sinks] [n_samples]
"""

import sys

from repro.benchio import random_instance
from repro.core import AggressiveBufferedCTS
from repro.evalx import format_table, tree_power
from repro.evalx.variation import VariationModel, monte_carlo_skew


def main() -> None:
    n_sinks = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    n_samples = int(sys.argv[2]) if len(sys.argv) > 2 else 8

    inst = random_instance(n_sinks, 35000.0, seed=77)
    cts = AggressiveBufferedCTS()
    result = cts.synthesize(inst.sink_pairs(), inst.source)
    print(result.report())

    power = tree_power(result.tree, cts.tech, frequency=1e9)
    print(
        f"switched cap {power.total_cap * 1e12:.1f} pF"
        f" -> {power.dynamic_power * 1e3:.2f} mW at 1 GHz"
        f" (wire {power.wire_cap * 1e12:.1f} /"
        f" buffers {power.buffer_cap * 1e12:.1f} /"
        f" sinks {power.sink_cap * 1e12:.2f} pF)"
    )

    models = {
        "local 3%": VariationModel(0.03, 0.03, 0.02, 0.0, seed=5),
        "local 7%": VariationModel(0.07, 0.06, 0.04, 0.0, seed=5),
        "local 7% + global 10%": VariationModel(0.07, 0.06, 0.04, 0.10, seed=5),
    }
    rows = []
    for name, model in models.items():
        mc = monte_carlo_skew(result.tree, cts.tech, model, n_samples=n_samples)
        rows.append(
            [
                name,
                mc.nominal_skew * 1e12,
                mc.mean_skew * 1e12,
                mc.p95_skew * 1e12,
                mc.sigma_latency * 1e12,
            ]
        )
    print()
    print(
        format_table(
            ["model", "nominal skew [ps]", "mean [ps]", "p95 [ps]", "sigma(lat) [ps]"],
            rows,
            title=f"Monte Carlo over {n_samples} samples",
        )
    )
    print(
        "\nlocal variation widens skew; global variation moves latency"
        " — margin your skew budget accordingly."
    )


if __name__ == "__main__":
    main()
