#!/usr/bin/env python
"""H-structure correction study (the paper's Sec. 5.2 in miniature).

Synthesizes one benchmark three times — original flow, Method 1
(re-estimation) and Method 2 (correction) — and compares simulated skew
and the number of corrected pairings, like a row of Table 5.3.

Usage::

    python examples/hstructure_study.py [benchmark] [n_sinks]
"""

import sys

from repro.benchio import gsrc_instance, ispd_instance
from repro.core import AggressiveBufferedCTS, CTSOptions
from repro.evalx import evaluate_tree, format_table
from repro.evalx.paper_data import TABLE_5_3
from repro.tech import default_technology


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "f22"
    n_sinks = int(sys.argv[2]) if len(sys.argv) > 2 else 40

    tech = default_technology()
    instance = (
        gsrc_instance(name) if name.startswith("r") else ispd_instance(name)
    )
    if n_sinks:
        instance = instance.scaled_down(n_sinks, seed=1)
    print(f"instance: {instance}")

    rows = []
    skews = {}
    for mode, label in ((None, "original"), ("reestimate", "method 1"),
                        ("correct", "method 2")):
        cts = AggressiveBufferedCTS(tech=tech, options=CTSOptions(hstructure=mode))
        result = cts.synthesize(instance.sink_pairs(), instance.source)
        metrics = evaluate_tree(result.tree, tech, dt=2e-12)
        skews[mode] = metrics.skew
        rows.append(
            [
                label,
                metrics.skew * 1e12,
                metrics.worst_slew * 1e12,
                result.n_flippings,
                round(result.runtime, 2),
            ]
        )

    for row, mode in zip(rows, (None, "reestimate", "correct")):
        base = skews[None]
        ratio = 0.0 if base == 0 else 100.0 * (skews[mode] - base) / base
        row.insert(2, round(ratio, 1))

    print()
    print(
        format_table(
            ["flow", "skew [ps]", "ratio [%]", "slew [ps]", "flippings", "time [s]"],
            rows,
            title=f"H-structure study on {name} ({instance.n_sinks} sinks)",
        )
    )
    paper = TABLE_5_3.get(name)
    if paper:
        print(
            f"\npaper ({name}, full size): re-estimation ratio"
            f" {paper['reestimate_ratio']}%, correction ratio"
            f" {paper['correct_ratio']}%, {paper['flippings']} flippings"
        )


if __name__ == "__main__":
    main()
