#!/usr/bin/env python
"""Maze routing around blockages — the general router in action.

Places two groups of sinks on either side of a macro blockage and runs
the synthesis with the bidirectional maze router. The routed tree detours
around the macro while keeping slew bounded, and an ASCII plot of the
tree geometry is printed.

Usage::

    python examples/obstacle_routing.py
"""

from repro.core import AggressiveBufferedCTS, CTSOptions
from repro.evalx import evaluate_tree
from repro.geom import BBox, Point
from repro.tree.nodes import NodeKind


def ascii_plot(tree, blockage, width=72, height=26):
    """Crude character plot of node locations and the blockage."""
    nodes = tree.nodes()
    xs = [n.location.x for n in nodes]
    ys = [n.location.y for n in nodes]
    xmin, xmax = min(xs), max(xs)
    ymin, ymax = min(ys), max(ys)
    span_x = max(xmax - xmin, 1.0)
    span_y = max(ymax - ymin, 1.0)
    grid = [[" "] * width for _ in range(height)]

    def cell(p):
        col = int((p.x - xmin) / span_x * (width - 1))
        row = int((p.y - ymin) / span_y * (height - 1))
        return (height - 1 - row, col)

    for r in range(height):
        for c in range(width):
            x = xmin + c / (width - 1) * span_x
            y = ymin + (height - 1 - r) / (height - 1) * span_y
            if blockage.contains(Point(x, y)):
                grid[r][c] = "#"
    marks = {
        NodeKind.SINK: "S",
        NodeKind.BUFFER: "B",
        NodeKind.MERGE: "+",
        NodeKind.SOURCE: "@",
    }
    for node in nodes:
        mark = marks.get(node.kind)
        if mark:
            r, c = cell(node.location)
            grid[r][c] = mark
    return "\n".join("".join(row) for row in grid)


def main() -> None:
    blockage = BBox(9000, 2000, 13000, 16000)  # a macro in the middle
    sinks = [
        (Point(2000, 4000), 8e-15),
        (Point(3000, 12000), 7e-15),
        (Point(5000, 8000), 9e-15),
        (Point(17000, 5000), 8e-15),
        (Point(19000, 13000), 7e-15),
        (Point(16500, 9500), 6e-15),
    ]
    cts = AggressiveBufferedCTS(
        options=CTSOptions(router="maze"), blockages=[blockage]
    )
    result = cts.synthesize(sinks, source_location=Point(11000, 18500))
    print(result.report())

    metrics = evaluate_tree(result.tree, cts.tech)
    print(
        f"\nworst slew {metrics.worst_slew * 1e12:.1f} ps"
        f" (limit {cts.options.slew_limit * 1e12:.0f}),"
        f" skew {metrics.skew * 1e12:.1f} ps,"
        f" latency {metrics.latency * 1e9:.2f} ns"
    )

    inside = [
        n.name
        for n in result.tree.nodes()
        if n.kind in (NodeKind.BUFFER, NodeKind.MERGE)
        and blockage.contains(n.location, tol=-200)
    ]
    print(f"nodes inside the blockage: {inside or 'none'}")

    print("\nS=sink B=buffer +=merge @=source #=blockage")
    print(ascii_plot(result.tree, blockage))


if __name__ == "__main__":
    main()
