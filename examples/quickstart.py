#!/usr/bin/env python
"""Quickstart: synthesize and verify a small buffered clock tree.

Runs the whole pipeline on a 30-sink random instance:

1. load the packaged SPICE-characterized delay/slew library;
2. synthesize with the paper's flow (levelized topology, merge-routing
   with buffer insertion anywhere along paths, binary-search balancing);
3. verify the result by simulating the netlist with the bundled
   mini-SPICE engine and report worst slew / skew / latency.

Usage::

    python examples/quickstart.py [n_sinks] [area]
"""

import sys

from repro import AggressiveBufferedCTS, evaluate_tree
from repro.benchio import random_instance


def main() -> None:
    n_sinks = int(sys.argv[1]) if len(sys.argv) > 1 else 30
    area = float(sys.argv[2]) if len(sys.argv) > 2 else 40000.0

    instance = random_instance(n_sinks=n_sinks, area=area, seed=42)
    print(f"instance: {instance}")

    cts = AggressiveBufferedCTS()
    print(
        f"slew limit {cts.options.slew_limit * 1e12:.0f} ps"
        f" (synthesis target {cts.options.target_slew * 1e12:.0f} ps)"
    )

    result = cts.synthesize(instance.sink_pairs(), instance.source)
    print()
    print(result.report())

    print()
    print("verifying with the mini-SPICE substrate ...")
    metrics = evaluate_tree(result.tree, cts.tech)
    print(f"  worst slew : {metrics.worst_slew * 1e12:7.1f} ps"
          f"  (limit {cts.options.slew_limit * 1e12:.0f} ps)")
    print(f"  skew       : {metrics.skew * 1e12:7.1f} ps")
    print(f"  latency    : {metrics.latency * 1e9:7.2f} ns")
    print(f"  skew/latency: {100 * metrics.skew / metrics.latency:5.1f} %")
    ok = metrics.worst_slew <= cts.options.slew_limit
    print(f"  slew constraint {'HONORED' if ok else 'VIOLATED'}")


if __name__ == "__main__":
    main()
