#!/usr/bin/env python
"""GSRC-style benchmark flow: ours vs a merge-node-only baseline.

Reproduces one row of the paper's Table 5.1 on a (scaled) GSRC stand-in:
the aggressive-buffered flow honors the 100 ps slew limit while the
merge-node-only baseline — the restriction of earlier work [6, 8, 16] —
blows through it under the paper's 10X-stressed wire parasitics.

Usage::

    python examples/gsrc_flow.py [benchmark] [n_sinks]

``benchmark`` is one of r1..r5 (default r1); ``n_sinks`` scales the
instance down (default 50; pass 0 for the full published size — slow).
"""

import sys

from repro.baselines import COMPARISON_POLICIES, MergeBufferCTS
from repro.benchio import gsrc_instance
from repro.core import AggressiveBufferedCTS
from repro.evalx import evaluate_tree, format_table
from repro.evalx.paper_data import TABLE_5_1
from repro.tech import default_technology


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "r1"
    n_sinks = int(sys.argv[2]) if len(sys.argv) > 2 else 50

    tech = default_technology()
    instance = gsrc_instance(name)
    if n_sinks:
        instance = instance.scaled_down(n_sinks, seed=1)
    print(f"instance: {instance}")

    rows = []

    cts = AggressiveBufferedCTS(tech=tech)
    ours = cts.synthesize(instance.sink_pairs(), instance.source)
    ours_metrics = evaluate_tree(ours.tree, tech, dt=2e-12)
    rows.append(
        [
            "ours (aggressive)",
            ours_metrics.worst_slew * 1e12,
            ours_metrics.skew * 1e12,
            ours_metrics.latency * 1e9,
            ours_metrics.n_buffers,
        ]
    )

    baseline = MergeBufferCTS(COMPARISON_POLICIES["chaturvedi-hu04"], tech=tech)
    base = baseline.synthesize(instance.sink_pairs())
    base_metrics = evaluate_tree(base.tree, tech, dt=2e-12)
    rows.append(
        [
            "merge-node-only [8]-like",
            base_metrics.worst_slew * 1e12,
            base_metrics.skew * 1e12,
            base_metrics.latency * 1e9,
            base_metrics.n_buffers,
        ]
    )

    print()
    print(
        format_table(
            ["flow", "worst slew [ps]", "skew [ps]", "latency [ns]", "buffers"],
            rows,
            title=f"{name} ({instance.n_sinks} sinks), slew limit 100 ps",
        )
    )
    paper = TABLE_5_1[name]
    print()
    print(
        f"paper ({name}, {paper['sinks']} sinks): worst slew"
        f" {paper['worst_slew']} ps, skew {paper['skew']} ps,"
        f" latency {paper['latency_ns']} ns"
    )
    if ours_metrics.worst_slew <= 100e-12 < base_metrics.worst_slew:
        print(
            "\n=> the aggressive flow honors the slew limit;"
            " merge-node-only buffering does not (the paper's Fig. 1.2 point)."
        )


if __name__ == "__main__":
    main()
