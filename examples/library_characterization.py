#!/usr/bin/env python
"""Build the delay/slew library from scratch and inspect the fits.

Runs the Chapter-3 characterization on the mini-SPICE substrate with a
reduced sweep (so it finishes in ~15 s), prints the fit-quality report,
and spot-checks one fitted surface against fresh simulations — the
reproduction of "matches SPICE simulation results closely".

Usage::

    python examples/library_characterization.py
"""

import time

from repro.charlib import CharConfig, build_library
from repro.charlib.sweep import InputShaper
from repro.evalx import format_table
from repro.spice.stages import simulate_stage, single_wire_spec
from repro.tech import cts_buffer_library, default_technology


def main() -> None:
    tech = default_technology()
    buffers = cts_buffer_library()
    config = CharConfig(
        linput_values=(0.0, 1200.0, 3000.0),
        length_values=(100.0, 800.0, 1800.0, 2800.0, 4000.0, 5000.0),
        branch_samples=60,
        single_degree=3,
    )
    print("characterizing (reduced sweep) ...")
    t0 = time.time()
    library = build_library(tech, buffers, config, verbose=True)
    print(f"built in {time.time() - t0:.1f} s")

    rows = [
        [
            r["component"], r["drive"], r["load"], r["function"],
            r["rms_error"] * 1e12, r["max_error"] * 1e12, round(r["r_squared"], 5),
        ]
        for r in library.fit_report()
    ]
    print()
    print(
        format_table(
            ["component", "drive", "load", "function", "rms [ps]", "max [ps]", "R^2"],
            rows,
            title="fit quality (training residuals)",
        )
    )

    # Spot check: fitted surface vs fresh simulation, off the sweep grid.
    print("\nspot check: 20X->20X wire slew, off-grid points")
    shaper = InputShaper(tech, buffers["BUF20X"], config)
    check_rows = []
    for linput, length in ((600.0, 1500.0), (2100.0, 3300.0)):
        wave, slew_in = shaper.shaped_input(linput, buffers["BUF20X"].input_cap(tech))
        spec = single_wire_spec(buffers["BUF20X"], length, buffers["BUF20X"].input_cap(tech))
        sim = simulate_stage(tech, spec, wave, dt=config.dt)
        fit = library.single_wire("BUF20X", "BUF20X", slew_in, length)
        check_rows.append(
            [
                round(slew_in * 1e12, 1), length,
                sim.slew_at(1) * 1e12, fit.wire_slew * 1e12,
                abs(sim.slew_at(1) - fit.wire_slew) * 1e12,
            ]
        )
    print(
        format_table(
            ["slew_in [ps]", "L", "simulated [ps]", "fitted [ps]", "error [ps]"],
            check_rows,
        )
    )


if __name__ == "__main__":
    main()
