"""Manhattan arcs: the loci used as DME merge segments.

A *Manhattan arc* is a (possibly degenerate) segment of slope +1 or -1.
The set of points at fixed L1 distance ``d1`` from one point and ``d2``
from another (with ``d1 + d2 == dist``) is such an arc; DME's bottom-up
phase manipulates these as "merge segments".

Arithmetic is done in the 45-degree rotated frame ``(u, v) = (x+y, x-y)``
where L1 distance becomes Chebyshev distance and arcs become axis-aligned
segments, making intersections and distance computations rectangle algebra.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geom.point import Point


@dataclass(frozen=True)
class _Rect:
    """Axis-aligned rectangle in the rotated (u, v) frame."""

    umin: float
    umax: float
    vmin: float
    vmax: float

    def is_empty(self, tol: float = 1e-9) -> bool:
        return self.umax < self.umin - tol or self.vmax < self.vmin - tol

    def intersect(self, other: "_Rect") -> "_Rect":
        return _Rect(
            max(self.umin, other.umin),
            min(self.umax, other.umax),
            max(self.vmin, other.vmin),
            min(self.vmax, other.vmax),
        )

    def chebyshev_distance(self, other: "_Rect") -> float:
        du = max(0.0, max(self.umin, other.umin) - min(self.umax, other.umax))
        dv = max(0.0, max(self.vmin, other.vmin) - min(self.vmax, other.vmax))
        return max(du, dv)


class ManhattanArc:
    """A Manhattan arc (or a single point as the degenerate case).

    Stored as its two endpoints in the original frame. All arcs produced by
    DME merges satisfy the +/-1-slope property; tilted rectangles that arise
    transiently in merge-region computations are handled by
    :func:`tilted_rect_region` instead.
    """

    __slots__ = ("p", "q")

    def __init__(self, p: Point, q: Point):
        rp, rq = p.to_rotated(), q.to_rotated()
        # A legal Manhattan arc is axis-aligned in the rotated frame.
        if abs(rp.x - rq.x) > 1e-6 and abs(rp.y - rq.y) > 1e-6:
            raise ValueError(f"not a Manhattan arc: {p} -- {q}")
        self.p = p
        self.q = q

    @staticmethod
    def point(p: Point) -> "ManhattanArc":
        """Degenerate arc consisting of the single point ``p``."""
        return ManhattanArc(p, p)

    def __repr__(self) -> str:
        return f"ManhattanArc({self.p!r}, {self.q!r})"

    @property
    def is_point(self) -> bool:
        return self.p == self.q

    @property
    def length(self) -> float:
        """Manhattan length of the arc (0 for a degenerate point arc)."""
        return self.p.manhattan_to(self.q)

    def _rect(self) -> _Rect:
        rp, rq = self.p.to_rotated(), self.q.to_rotated()
        return _Rect(
            min(rp.x, rq.x), max(rp.x, rq.x), min(rp.y, rq.y), max(rp.y, rq.y)
        )

    def distance_to(self, other: "ManhattanArc") -> float:
        """Minimum L1 distance between the two arcs."""
        return self._rect().chebyshev_distance(other._rect())

    def distance_to_point(self, p: Point) -> float:
        return self.distance_to(ManhattanArc.point(p))

    def closest_point_to(self, target: Point) -> Point:
        """The point of this arc nearest to ``target`` in L1."""
        rect = self._rect()
        rt = target.to_rotated()
        u = min(max(rt.x, rect.umin), rect.umax)
        v = min(max(rt.y, rect.vmin), rect.vmax)
        return Point.from_rotated(u, v)

    def sample(self, t: float) -> Point:
        """Point at parameter ``t`` in [0, 1] along the arc."""
        return self.p.lerp(self.q, t)

    def intersection(self, other: "ManhattanArc") -> "ManhattanArc | None":
        """Intersection with another arc, or None when disjoint.

        Only meaningful for arcs of the same orientation (the common DME
        case); crossing arcs of opposite slope intersect in a point, which
        is returned as a degenerate arc.
        """
        inter = self._rect().intersect(other._rect())
        if inter.is_empty():
            return None
        a = Point.from_rotated(inter.umin, inter.vmin)
        b = Point.from_rotated(inter.umax, inter.vmax)
        try:
            return ManhattanArc(a, b)
        except ValueError:
            # The rectangles overlap in a 2-D region (shouldn't happen for
            # true arcs); collapse to the region's center point.
            c = Point.from_rotated(
                (inter.umin + inter.umax) / 2.0, (inter.vmin + inter.vmax) / 2.0
            )
            return ManhattanArc.point(c)


def merge_arc(arc_a: ManhattanArc, arc_b: ManhattanArc, d_a: float, d_b: float) -> ManhattanArc:
    """Merge segment of two arcs at distances ``d_a``/``d_b`` (DME bottom-up).

    Returns the locus of points at L1 distance ``d_a`` from ``arc_a`` and
    ``d_b`` from ``arc_b``, assuming ``d_a + d_b`` equals the arc distance
    (no detour). Computed as the intersection of the two tilted-rectangle
    expansions in the rotated frame.
    """
    dist = arc_a.distance_to(arc_b)
    if d_a < -1e-9 or d_b < -1e-9:
        raise ValueError("negative merge distances")
    if d_a + d_b < dist - 1e-6:
        raise ValueError(
            f"d_a + d_b = {d_a + d_b} cannot bridge arc distance {dist}"
        )
    ra = arc_a._rect()
    rb = arc_b._rect()
    ea = _Rect(ra.umin - d_a, ra.umax + d_a, ra.vmin - d_a, ra.vmax + d_a)
    eb = _Rect(rb.umin - d_b, rb.umax + d_b, rb.vmin - d_b, rb.vmax + d_b)
    inter = ea.intersect(eb)
    if inter.is_empty():
        raise ValueError("expansion rectangles do not intersect")
    # The intersection is a rectangle; the true merge locus is its boundary
    # portion equidistant as required. For exact-bridging distances the
    # rectangle degenerates to a segment. For slack we keep the center line
    # along the longer dimension, which preserves the classic DME behaviour.
    du = inter.umax - inter.umin
    dv = inter.vmax - inter.vmin
    if du <= dv:
        u = (inter.umin + inter.umax) / 2.0
        a = Point.from_rotated(u, inter.vmin)
        b = Point.from_rotated(u, inter.vmax)
    else:
        v = (inter.vmin + inter.vmax) / 2.0
        a = Point.from_rotated(inter.umin, v)
        b = Point.from_rotated(inter.umax, v)
    return ManhattanArc(a, b)


def tilted_rect_region(center: Point, radius: float) -> list[Point]:
    """Corner points of the L1 ball (tilted square) of ``radius`` at ``center``.

    Useful for visualization and for tests of merge-segment geometry.
    """
    return [
        Point(center.x + radius, center.y),
        Point(center.x, center.y + radius),
        Point(center.x - radius, center.y),
        Point(center.x, center.y - radius),
    ]
