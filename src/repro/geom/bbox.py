"""Axis-aligned bounding boxes."""

from __future__ import annotations

from dataclasses import dataclass

from repro.geom.point import Point


@dataclass(frozen=True, slots=True)
class BBox:
    """An axis-aligned rectangle, possibly degenerate (zero width/height)."""

    xmin: float
    ymin: float
    xmax: float
    ymax: float

    def __post_init__(self) -> None:
        if self.xmin > self.xmax or self.ymin > self.ymax:
            raise ValueError(f"inverted bbox: {self}")

    @staticmethod
    def of_points(points: list[Point]) -> "BBox":
        """Smallest bbox containing all ``points``."""
        if not points:
            raise ValueError("bbox of empty point list")
        xs = [p.x for p in points]
        ys = [p.y for p in points]
        return BBox(min(xs), min(ys), max(xs), max(ys))

    @property
    def width(self) -> float:
        return self.xmax - self.xmin

    @property
    def height(self) -> float:
        return self.ymax - self.ymin

    @property
    def center(self) -> Point:
        return Point((self.xmin + self.xmax) / 2.0, (self.ymin + self.ymax) / 2.0)

    @property
    def half_perimeter(self) -> float:
        return self.width + self.height

    def contains(self, p: Point, tol: float = 0.0) -> bool:
        """Whether ``p`` lies inside (or within ``tol`` of) the box."""
        return (
            self.xmin - tol <= p.x <= self.xmax + tol
            and self.ymin - tol <= p.y <= self.ymax + tol
        )

    def expanded(self, margin: float) -> "BBox":
        """Box grown by ``margin`` on every side."""
        return BBox(
            self.xmin - margin,
            self.ymin - margin,
            self.xmax + margin,
            self.ymax + margin,
        )

    def union(self, other: "BBox") -> "BBox":
        return BBox(
            min(self.xmin, other.xmin),
            min(self.ymin, other.ymin),
            max(self.xmax, other.xmax),
            max(self.ymax, other.ymax),
        )

    def intersects(self, other: "BBox") -> bool:
        return not (
            self.xmax < other.xmin
            or other.xmax < self.xmin
            or self.ymax < other.ymin
            or other.ymax < self.ymin
        )

    def clamp(self, p: Point) -> Point:
        """Closest point of the box to ``p``."""
        return Point(
            min(max(p.x, self.xmin), self.xmax),
            min(max(p.y, self.ymin), self.ymax),
        )
