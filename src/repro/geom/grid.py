"""Uniform routing grids for maze routing.

The routing stage partitions the region between two merge candidates into a
grid of R x R cells (Sec. 4.2.2 of the paper; default R = 45 per dimension,
grown dynamically for long nets so that enough candidate buffer locations
exist along any path).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geom.bbox import BBox
from repro.geom.point import Point


@dataclass
class RoutingGrid:
    """A uniform grid over a bounding box.

    Cells are indexed by integer ``(col, row)`` with cell centers used as
    routing graph vertices. Blockages are stored as a set of blocked cells.
    """

    bbox: BBox
    cols: int
    rows: int
    blocked: set[tuple[int, int]] = field(default_factory=set)

    DEFAULT_RESOLUTION = 45

    def __post_init__(self) -> None:
        if self.cols < 2 or self.rows < 2:
            raise ValueError("grid needs at least 2x2 cells")

    @staticmethod
    def for_route(
        a: Point,
        b: Point,
        resolution: int = DEFAULT_RESOLUTION,
        min_pitch: float | None = None,
        max_cells_per_dim: int = 400,
        margin_ratio: float = 0.15,
    ) -> "RoutingGrid":
        """Build the routing grid between two terminals.

        The grid covers the bounding box of ``a`` and ``b`` expanded by
        ``margin_ratio`` (so detours around the box are possible), with
        ``resolution`` cells per dimension by default. When ``min_pitch``
        is given (typically a fraction of the slew-limited wire length),
        the cell count grows for long nets so the pitch never exceeds it:
        this is the paper's "dynamically adjust the routing grid size"
        feature that guarantees enough candidate buffer locations.
        """
        box = BBox.of_points([a, b])
        margin = max(box.half_perimeter * margin_ratio, 1.0)
        box = box.expanded(margin)
        cols = rows = max(2, resolution)
        if min_pitch is not None and min_pitch > 0:
            cols = max(cols, int(box.width / min_pitch) + 1)
            rows = max(rows, int(box.height / min_pitch) + 1)
        cols = min(cols, max_cells_per_dim)
        rows = min(rows, max_cells_per_dim)
        return RoutingGrid(box, cols, rows)

    @property
    def pitch_x(self) -> float:
        return self.bbox.width / (self.cols - 1)

    @property
    def pitch_y(self) -> float:
        return self.bbox.height / (self.rows - 1)

    def cell_center(self, col: int, row: int) -> Point:
        """Center coordinate of the cell ``(col, row)``."""
        return Point(
            self.bbox.xmin + col * self.pitch_x,
            self.bbox.ymin + row * self.pitch_y,
        )

    def nearest_cell(self, p: Point) -> tuple[int, int]:
        """Grid cell whose center is nearest to ``p`` (clamped to bounds)."""
        col = round((p.x - self.bbox.xmin) / self.pitch_x) if self.pitch_x > 0 else 0
        row = round((p.y - self.bbox.ymin) / self.pitch_y) if self.pitch_y > 0 else 0
        return (min(max(col, 0), self.cols - 1), min(max(row, 0), self.rows - 1))

    def in_bounds(self, col: int, row: int) -> bool:
        return 0 <= col < self.cols and 0 <= row < self.rows

    def is_blocked(self, col: int, row: int) -> bool:
        return (col, row) in self.blocked

    def block_region(self, region: BBox) -> None:
        """Mark every cell whose center falls inside ``region`` as blocked."""
        for col in range(self.cols):
            for row in range(self.rows):
                if region.contains(self.cell_center(col, row)):
                    self.blocked.add((col, row))

    def neighbors(self, col: int, row: int):
        """Yield 4-connected unblocked neighbor cells with step lengths."""
        for dc, dr, step in (
            (1, 0, self.pitch_x),
            (-1, 0, self.pitch_x),
            (0, 1, self.pitch_y),
            (0, -1, self.pitch_y),
        ):
            nc, nr = col + dc, row + dr
            if self.in_bounds(nc, nr) and not self.is_blocked(nc, nr):
                yield nc, nr, step

    def cell_count(self) -> int:
        return self.cols * self.rows
