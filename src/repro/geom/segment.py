"""Line segments and rectilinear polylines (routing paths)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.geom.point import Point


@dataclass(frozen=True, slots=True)
class Segment:
    """A straight segment between two points (any slope)."""

    a: Point
    b: Point

    @property
    def manhattan_length(self) -> float:
        return self.a.manhattan_to(self.b)

    @property
    def euclidean_length(self) -> float:
        return self.a.euclidean_to(self.b)

    def point_at(self, t: float) -> Point:
        """Point at parameter ``t`` in [0, 1] (a at 0, b at 1)."""
        return self.a.lerp(self.b, t)

    def midpoint(self) -> Point:
        return self.point_at(0.5)

    def reversed(self) -> "Segment":
        return Segment(self.b, self.a)


class PathPolyline:
    """A polyline through a list of points, measured in Manhattan length.

    Used to represent a routing path: consecutive vertices are connected by
    wires whose electrical length is the Manhattan distance between them
    (the detailed rectilinear staircase between the vertices does not change
    wire length in the L1 metric, so it need not be materialized).
    """

    def __init__(self, points: list[Point]):
        if len(points) < 1:
            raise ValueError("polyline needs at least one point")
        self._points = list(points)
        self._cumlen = [0.0]
        for prev, cur in zip(self._points, self._points[1:]):
            self._cumlen.append(self._cumlen[-1] + prev.manhattan_to(cur))

    @property
    def points(self) -> list[Point]:
        return list(self._points)

    @property
    def length(self) -> float:
        return self._cumlen[-1]

    def __len__(self) -> int:
        return len(self._points)

    def point_at_length(self, s: float) -> Point:
        """Point at arc length ``s`` from the start (clamped to the ends)."""
        if s <= 0:
            return self._points[0]
        if s >= self.length:
            return self._points[-1]
        # Find the hosting edge by scanning; paths are short (few dozen pts).
        for i in range(1, len(self._points)):
            if s <= self._cumlen[i]:
                seg_len = self._cumlen[i] - self._cumlen[i - 1]
                if seg_len == 0:
                    return self._points[i]
                t = (s - self._cumlen[i - 1]) / seg_len
                return self._points[i - 1].lerp(self._points[i], t)
        return self._points[-1]

    def prefix_length(self, index: int) -> float:
        """Arc length from the start to vertex ``index``."""
        return self._cumlen[index]

    def reversed(self) -> "PathPolyline":
        return PathPolyline(list(reversed(self._points)))

    def subpath(self, s0: float, s1: float) -> "PathPolyline":
        """Sub-polyline between arc lengths ``s0 <= s1`` (clamped)."""
        s0 = max(0.0, min(s0, self.length))
        s1 = max(s0, min(s1, self.length))
        points = [self.point_at_length(s0)]
        for idx, cum in enumerate(self._cumlen):
            if s0 < cum < s1:
                points.append(self._points[idx])
        end = self.point_at_length(s1)
        if points[-1] != end or len(points) == 1:
            points.append(end)
        return PathPolyline(points)

    def concat(self, other: "PathPolyline") -> "PathPolyline":
        """Join two polylines; the seam point is kept once."""
        pts = self._points + (
            other._points[1:]
            if self._points[-1] == other._points[0]
            else other._points
        )
        return PathPolyline(pts)
