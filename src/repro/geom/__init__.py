"""Geometric primitives for Manhattan-metric clock tree routing.

Clock tree synthesis works in the rectilinear (Manhattan, L1) plane: wire
length between two points equals their L1 distance, merge segments are
Manhattan arcs (segments of slope +/-1), and maze routing runs on a uniform
grid. This package provides those primitives.
"""

from repro.geom.point import Point, manhattan
from repro.geom.bbox import BBox
from repro.geom.segment import Segment, PathPolyline
from repro.geom.manhattan_arc import ManhattanArc, tilted_rect_region
from repro.geom.grid import RoutingGrid

__all__ = [
    "Point",
    "manhattan",
    "BBox",
    "Segment",
    "PathPolyline",
    "ManhattanArc",
    "tilted_rect_region",
    "RoutingGrid",
]
