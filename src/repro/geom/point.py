"""2-D points in the Manhattan plane."""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class Point:
    """An immutable 2-D point.

    Coordinates are floats in abstract layout "units"; the technology object
    assigns electrical meaning (ohm/unit, farad/unit) to unit length.
    """

    x: float
    y: float

    def manhattan_to(self, other: "Point") -> float:
        """L1 (Manhattan) distance to ``other``."""
        return abs(self.x - other.x) + abs(self.y - other.y)

    def euclidean_to(self, other: "Point") -> float:
        """L2 (Euclidean) distance to ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def __add__(self, other: "Point") -> "Point":
        return Point(self.x + other.x, self.y + other.y)

    def __sub__(self, other: "Point") -> "Point":
        return Point(self.x - other.x, self.y - other.y)

    def scaled(self, k: float) -> "Point":
        """Return this point scaled by ``k`` about the origin."""
        return Point(self.x * k, self.y * k)

    def lerp(self, other: "Point", t: float) -> "Point":
        """Linear interpolation: ``self`` at t=0, ``other`` at t=1."""
        return Point(
            self.x + (other.x - self.x) * t,
            self.y + (other.y - self.y) * t,
        )

    def snapped(self, pitch: float) -> "Point":
        """Return the point snapped to a grid of the given pitch."""
        if pitch <= 0:
            raise ValueError("pitch must be positive")
        return Point(round(self.x / pitch) * pitch, round(self.y / pitch) * pitch)

    def to_rotated(self) -> "Point":
        """Map to the 45-degree rotated frame (u, v) = (x + y, x - y).

        In the rotated frame, Manhattan distance becomes the Chebyshev
        (L-infinity) distance, which turns Manhattan arcs into axis-aligned
        segments and simplifies their intersection arithmetic.
        """
        return Point(self.x + self.y, self.x - self.y)

    @staticmethod
    def from_rotated(u: float, v: float) -> "Point":
        """Inverse of :meth:`to_rotated`."""
        return Point((u + v) / 2.0, (u - v) / 2.0)

    def as_tuple(self) -> tuple[float, float]:
        return (self.x, self.y)


def manhattan(a: Point, b: Point) -> float:
    """Module-level convenience for :meth:`Point.manhattan_to`."""
    return a.manhattan_to(b)


def centroid(points: list[Point]) -> Point:
    """Arithmetic centroid of a non-empty list of points."""
    if not points:
        raise ValueError("centroid of empty point list")
    sx = sum(p.x for p in points)
    sy = sum(p.y for p in points)
    n = float(len(points))
    return Point(sx / n, sy / n)
