"""Structure-of-arrays mirror of the in-flight clock tree.

The commit phase is Python-bookkeeping-bound, not fit-bound
(PERFORMANCE.md): the probe math was batched in PR 3, and what remains
is object-graph traversal — ``stage_structure`` walks re-tracing the
same frozen stage paths for every new bounds bucket, ``_load_cap_of``
re-walking collapsed stages, and ``_maybe_force_stage_buffer`` choosing
stage drivers one scalar ``branch_slews`` call at a time.

This module keeps a flat mirror of every :class:`~repro.tree.nodes.TreeNode`
in numpy columns — kind/position/cap/wire plus first-child/last-child/
sibling topology links — updated by the recorder hooks ``TreeNode``
exposes (:func:`repro.tree.nodes.set_tree_recorder`). On top of the
mirror it caches *flat stage* rows: once a node's bounds are first
queried, the stage below it is frozen (the bottom-up flow only builds
above existing roots — the same invariant the engine's bounds/cap dict
caches already rely on), so its traced shape (single load path or
two-branch split), stem lengths, end ids and end caps are written into
columns once and every later bounds-bucket evaluation becomes a numpy
gather + one batched fit round + a vectorized accumulate.

Three commit-phase kernels read the mirror:

- :meth:`SoaTree.prefill_bounds` — the level-wide bounds-bucket prefill
  (replaces the object walk in ``subtree_bounds_many``'s miss path);
- :meth:`SoaTree.stage_drivers` — batched forced-stage-buffer decisions
  for a whole scheduler round (collapsed caps folded from per-node
  buffer-code byte sequences, drivers chosen by lockstep
  ``branch_slews_many`` rounds over the still-unresolved merges);
- :meth:`SoaTree.checkpoint_rows` — per-level checkpoint frames encoded
  straight from the columns in the exact preorder row format of
  :mod:`repro.core.checkpoint`.

Bit-identity with the object-walk fallback rests on the established
facts: ``predict_many``/``branch_component_many``/``branch_slews_many``
perform the scalar evaluators' float ops element-wise; memoized bounds
and caps are exact functions of their cache key, so fill *order* is
irrelevant; min/max folds are exact under regrouping; and the collapsed
cap fold replays the object walk's buffer-code sequence in its exact
order (cached per node as ``bytes`` — DFS-last-child-first sequences
compose by concatenation), so the float sum is the object walk's sum.

Every kernel is a CON3xx-guarded fast path: any exception (including a
recorder hook having previously failed) degrades this mirror
permanently for the run — ``resilience.note("soa_commit", exc)`` — and
the caller falls back to the bit-identical object walk. ``MemoryError``
is re-raised, never swallowed: an OOM must surface to the jobs
watchdog, not morph into a silent fallback retry.
"""

from __future__ import annotations

import numpy as np

from repro.timing.analysis import SLEW_QUANTUM, SubtreeBounds
from repro.tree.nodes import NodeKind

#: Stable small-int codes for node kinds (column dtype int8).
_KINDS = (
    NodeKind.SOURCE,
    NodeKind.SINK,
    NodeKind.MERGE,
    NodeKind.BUFFER,
    NodeKind.STEINER,
)
_CODE_OF = {kind: code for code, kind in enumerate(_KINDS)}
_KIND_VALUE = tuple(kind.value for kind in _KINDS)
_KIND_CHAR = tuple(kind.value[0] for kind in _KINDS)
_SOURCE, _SINK, _MERGE, _BUFFER, _STEINER = range(5)

#: Flat-stage classification of the structure below a node.
_FS_UNKNOWN = 0  # not traced yet
_FS_EMPTY = 1  # no children (dangling driver / empty virtual root)
_FS_SINGLE = 2  # one load path: stem length + one end
_FS_BRANCH = 3  # two-branch split, both branches plain load paths
_FS_DEEP = 4  # nested merges / >2-way splits — evaluate via objects

#: Columns of the mirror: (attribute, dtype, fill value). Reference
#: columns hold node *ids* (-1 = none) and are value-remapped on
#: renumbering; the rest are plain per-row payload.
_COLUMNS = (
    ("kind", np.int8, -1),
    ("parent", np.int64, -1),
    ("first_child", np.int64, -1),
    ("last_child", np.int64, -1),
    ("next_sib", np.int64, -1),
    ("prev_sib", np.int64, -1),
    ("n_children", np.int32, 0),
    ("x", np.float64, 0.0),
    ("y", np.float64, 0.0),
    ("wire", np.float64, 0.0),
    ("cap", np.float64, 0.0),
    ("buf_code", np.int16, -1),
    ("fs_state", np.int8, _FS_UNKNOWN),
    ("fs_stem", np.float64, 0.0),
    ("fs_llen", np.float64, 0.0),
    ("fs_rlen", np.float64, 0.0),
    ("fs_lend", np.int64, -1),
    ("fs_rend", np.int64, -1),
    ("fs_lkind", np.int8, -1),
    ("fs_rkind", np.int8, -1),
    ("fs_lcap", np.float64, 0.0),
    ("fs_rcap", np.float64, 0.0),
    ("fs_lload", np.int32, -1),
)

#: Columns holding node ids that must follow a renumbering.
_REF_COLUMNS = (
    "parent",
    "first_child",
    "last_child",
    "next_sib",
    "prev_sib",
    "fs_lend",
    "fs_rend",
)

#: Below this many unresolved merges a stage-driver round answers with
#: the scalar ``branch_slews`` evaluator — numpy dispatch on tiny
#: batches costs more (results are bit-identical either way).
_SCALAR_DRIVER_ROWS = 4

#: Bucket-window prefetch of the prefill kernel: a job requesting
#: buckets [k, k+1] evaluates [k - BELOW, k+1 + ABOVE] in the same
#: batch. Bucket values are pure functions of their key, so the extra
#: stores are the values later rounds would compute anyway — the window
#: just trades a few more fit rows for far fewer scheduler-round misses
#: (smaller groups are where the python overhead lives).
_PREFETCH_BELOW = 1
_PREFETCH_ABOVE = 1


class SoaTree:
    """Flat-array mirror of the in-flight tree plus its commit kernels.

    Install with :func:`repro.tree.nodes.set_tree_recorder` for the
    duration of one synthesis run; the recorder hooks echo every node
    creation / attach / detach into the columns. Hook failures never
    raise into tree surgery — they taint the mirror and the next kernel
    boundary records one ``soa_commit`` degradation and falls back.
    """

    def __init__(self, resilience=None, fault_plan: str = "") -> None:
        self.resilience = resilience
        self.degraded = False
        self._hook_error: Exception | None = None
        self._plan = None
        if fault_plan:
            from repro.evalx.faultinject import active_plan

            self._plan = active_plan(fault_plan)
        self._base: int | None = None
        self._capacity = 0
        self._used = 0
        #: id -> live TreeNode (identity-checked before any fast read).
        self.nodes: list = []
        #: id -> current node name (kept in sync for checkpoint rows).
        self.names: list = []
        #: Buffer-type interning: code <-> (name, BufferType).
        self._buffer_names: list[str] = []
        self._buffer_types: list = []
        self._buffer_code_of: dict[str, int] = {}
        self._buffer_caps: list[float] = []
        #: Load-name interning for single-path group keys.
        self._load_names: list[str] = []
        self._load_code_of: dict[str, int] = {}
        #: id -> ordered buffer-code byte sequence of the subtree
        #: (DFS-last-child-first, i.e. ``TreeNode.walk`` order).
        self._bufseq: dict[int, bytes] = {}

    # ------------------------------------------------------------------
    # Storage
    # ------------------------------------------------------------------

    def _alloc(self, capacity: int) -> None:
        for name, dtype, fill in _COLUMNS:
            col = np.empty(capacity, dtype=dtype)
            col.fill(fill)
            setattr(self, name, col)
        self.nodes = [None] * capacity
        self.names = [None] * capacity
        self._capacity = capacity

    def _grow_back(self, need: int) -> None:
        new_cap = max(need, 2 * self._capacity)
        for name, dtype, fill in _COLUMNS:
            col = np.empty(new_cap, dtype=dtype)
            col.fill(fill)
            col[: self._capacity] = getattr(self, name)
            setattr(self, name, col)
        self.nodes.extend([None] * (new_cap - self._capacity))
        self.names.extend([None] * (new_cap - self._capacity))
        self._capacity = new_cap

    def _grow_front(self, shortfall: int) -> None:
        # Checkpoint decode creates nodes with explicit (low) ids, so the
        # base adapts downward; front growth is a one-off per resume.
        shift = max(shortfall, self._capacity)
        shift = min(shift, self._base)
        if shift < shortfall:
            shift = shortfall  # cannot go below id 0 anyway
        new_cap = self._capacity + shift
        for name, dtype, fill in _COLUMNS:
            col = np.empty(new_cap, dtype=dtype)
            col.fill(fill)
            col[shift:] = getattr(self, name)
            setattr(self, name, col)
        self.nodes = [None] * shift + self.nodes
        self.names = [None] * shift + self.names
        self._capacity = new_cap
        self._base -= shift
        self._used += shift

    def _ensure(self, node_id: int) -> int:
        if self._base is None:
            self._base = node_id
            self._alloc(1024)
        i = node_id - self._base
        if i < 0:
            self._grow_front(-i)
            i = node_id - self._base
        elif i >= self._capacity:
            self._grow_back(i + 1)
        if i >= self._used:
            self._used = i + 1
        return i

    def _index_of(self, node) -> int:
        """Row of a live node, or -1 when the mirror cannot vouch for it."""
        base = self._base
        if base is None:
            return -1
        i = node.id - base
        if 0 <= i < self._used and self.nodes[i] is node:
            return i
        return -1

    def _buffer_code(self, buffer) -> int:
        code = self._buffer_code_of.get(buffer.name)
        if code is None:
            code = len(self._buffer_names)
            if code > 255:
                raise OverflowError("buffer library too large for byte codes")
            self._buffer_code_of[buffer.name] = code
            self._buffer_names.append(buffer.name)
            self._buffer_types.append(buffer)
        return code

    def _load_code(self, name: str) -> int:
        code = self._load_code_of.get(name)
        if code is None:
            code = self._load_code_of[name] = len(self._load_names)
            self._load_names.append(name)
        return code

    # ------------------------------------------------------------------
    # Recorder hooks (must never raise into tree surgery)
    # ------------------------------------------------------------------

    def on_create(self, node) -> None:
        if self._hook_error is not None:
            return
        try:
            i = self._ensure(node.id)
            self.kind[i] = _CODE_OF[node.kind]
            loc = node.location
            self.x[i] = loc.x
            self.y[i] = loc.y
            self.cap[i] = node.cap
            if node.buffer is not None:
                self.buf_code[i] = self._buffer_code(node.buffer)
            self.names[i] = node.name
            self.nodes[i] = node
        except MemoryError:
            raise
        except Exception as exc:
            self._hook_error = exc

    def on_attach(self, parent, child) -> None:
        if self._hook_error is not None:
            return
        try:
            base = self._base
            pi = parent.id - base
            ci = child.id - base
            if not (
                0 <= pi < self._used
                and 0 <= ci < self._used
                and self.nodes[pi] is parent
                and self.nodes[ci] is child
            ):
                raise RuntimeError("attach of a node the mirror never saw")
            self.parent[ci] = parent.id
            self.wire[ci] = child.wire_to_parent
            last = int(self.last_child[pi])
            if last < 0:
                self.first_child[pi] = child.id
            else:
                self.next_sib[last - base] = child.id
                self.prev_sib[ci] = last
            self.last_child[pi] = child.id
            self.n_children[pi] += 1
        except MemoryError:
            raise
        except Exception as exc:
            self._hook_error = exc

    def on_detach(self, parent, child) -> None:
        if self._hook_error is not None:
            return
        try:
            base = self._base
            pi = parent.id - base
            ci = child.id - base
            if not (
                0 <= pi < self._used
                and 0 <= ci < self._used
                and self.nodes[pi] is parent
                and self.nodes[ci] is child
            ):
                raise RuntimeError("detach of a node the mirror never saw")
            prev = int(self.prev_sib[ci])
            nxt = int(self.next_sib[ci])
            if prev < 0:
                self.first_child[pi] = nxt
            else:
                self.next_sib[prev - base] = nxt
            if nxt < 0:
                self.last_child[pi] = prev
            else:
                self.prev_sib[nxt - base] = prev
            self.parent[ci] = -1
            self.prev_sib[ci] = -1
            self.next_sib[ci] = -1
            self.wire[ci] = 0.0
            self.n_children[pi] -= 1
        except MemoryError:
            raise
        except Exception as exc:
            self._hook_error = exc

    def seed(self, nodes) -> None:
        """Mirror nodes that already existed before the recorder install
        (the instance's source/sink nodes)."""
        for node in nodes:
            self.on_create(node)

    # ------------------------------------------------------------------
    # Kernel guard
    # ------------------------------------------------------------------

    def _enter_kernel(self) -> None:
        """Raise inside a kernel's guarded scope if the mirror is unfit."""
        if self._hook_error is not None:
            raise self._hook_error
        if self._plan is not None:
            self._plan.consult("soa_commit")

    # ------------------------------------------------------------------
    # Renumbering
    # ------------------------------------------------------------------

    def remap_ids(self, mapping: dict[int, int]) -> None:
        """Follow a serial-order renumbering (see ``parallel_merge``).

        The mapping is an identity-dropped permutation over the level's
        consumed id spans (keys set == values set), so scattering every
        mapped row to its target covers exactly the moved positions.
        Garbage (unreachable) nodes are scattered too — their objects
        keep the old id, so any later lookup fails the identity check
        and falls back, which is correct because they are never queried.
        """
        if self.degraded or not mapping or self._base is None:
            return
        try:
            self._remap(mapping)
        except MemoryError:
            raise
        except Exception as exc:
            self.degraded = True
            if self.resilience is not None:
                self.resilience.note("soa_commit", exc)

    def _remap(self, mapping: dict[int, int]) -> None:
        base = self._base
        used = self._used
        n = len(mapping)
        old = np.fromiter(mapping.keys(), dtype=np.int64, count=n)
        new = np.fromiter(mapping.values(), dtype=np.int64, count=n)
        if (
            int(old.min()) < base
            or int(old.max()) >= base + used
            or int(new.min()) < base
            or int(new.max()) >= base + used
        ):
            raise RuntimeError("renumbering outside the mirrored id range")
        perm = np.arange(base, base + used, dtype=np.int64)
        perm[old - base] = new
        for name in _REF_COLUMNS:
            col = getattr(self, name)
            view = col[:used]
            mask = view >= 0
            view[mask] = perm[view[mask] - base]
        oi = old - base
        ni = new - base
        old_rows = oi.tolist()
        new_rows = ni.tolist()
        moved_kind = self.kind[oi].tolist()
        moved_names = [self.names[i] for i in old_rows]
        moved_nodes = [self.nodes[i] for i in old_rows]
        for name, __, __f in _COLUMNS:
            col = getattr(self, name)
            col[ni] = col[oi]
        for k, row in enumerate(new_rows):
            node_name = moved_names[k]
            code = moved_kind[k]
            old_id = old_rows[k] + base
            if node_name == f"{_KIND_CHAR[code]}{old_id}":
                node_name = f"{_KIND_CHAR[code]}{row + base}"
            self.names[row] = node_name
            self.nodes[row] = moved_nodes[k]
        seq = self._bufseq
        moved = [node_id for node_id in seq if node_id in mapping]
        entries = [(node_id, seq.pop(node_id)) for node_id in moved]
        for node_id, codes in entries:
            seq[mapping[node_id]] = codes

    # ------------------------------------------------------------------
    # Flat stage tracing
    # ------------------------------------------------------------------

    def _trace(self, node, length: float):
        """Iterative twin of ``stages_map._trace_path``.

        Returns ``(length, end_node, branch_children)`` where
        ``branch_children`` is None for a plain load path and the branch
        node's child list for a split (the caller traces each child).
        """
        while True:
            kind = node.kind
            if kind is NodeKind.BUFFER or kind is NodeKind.SINK:
                return length, node, None
            if kind is NodeKind.MERGE or kind is NodeKind.STEINER:
                kids = node.children
                if not kids:
                    return length, node, None
                if len(kids) == 1:
                    only = kids[0]
                    length += only.wire_to_parent
                    node = only
                    continue
                return length, node, kids
            raise ValueError(f"unexpected {kind} inside a stage")

    def _build_flat(self, i: int, engine) -> int:
        """Trace and cache the flat stage below row ``i``; returns state."""
        node = self.nodes[i]
        children = node.children
        try:
            if not children:
                state = _FS_EMPTY
            else:
                if len(children) == 1:
                    child = children[0]
                    length, end, split = self._trace(
                        child, child.wire_to_parent
                    )
                else:
                    length, end, split = 0.0, node, children
                if split is None:
                    cap = engine._load_cap_of(end)
                    self.fs_stem[i] = length
                    self.fs_lend[i] = end.id
                    self.fs_lkind[i] = _CODE_OF[end.kind]
                    self.fs_lcap[i] = cap
                    self.fs_lload[i] = self._load_code(
                        engine.library.load_name_for_cap(cap)
                    )
                    state = _FS_SINGLE
                elif len(split) == 2:
                    l_len, l_end, l_split = self._trace(
                        split[0], split[0].wire_to_parent
                    )
                    r_len, r_end, r_split = self._trace(
                        split[1], split[1].wire_to_parent
                    )
                    if l_split is None and r_split is None:
                        self.fs_stem[i] = length
                        self.fs_llen[i] = l_len
                        self.fs_rlen[i] = r_len
                        self.fs_lend[i] = l_end.id
                        self.fs_rend[i] = r_end.id
                        self.fs_lkind[i] = _CODE_OF[l_end.kind]
                        self.fs_rkind[i] = _CODE_OF[r_end.kind]
                        self.fs_lcap[i] = engine._load_cap_of(l_end)
                        self.fs_rcap[i] = engine._load_cap_of(r_end)
                        state = _FS_BRANCH
                    else:
                        state = _FS_DEEP
                else:
                    state = _FS_DEEP
        except ValueError:
            # Malformed stage (e.g. a SOURCE inside): the object path
            # raises the same error at evaluation time; classify deep so
            # both paths surface it identically.
            state = _FS_DEEP
        self.fs_state[i] = state
        return state

    # ------------------------------------------------------------------
    # Kernel 1: level-wide bounds-bucket prefill
    # ------------------------------------------------------------------

    def prefill_bounds(self, engine, jobs) -> bool:
        """Fill missing bounds buckets from the columns; False = fall back.

        Drop-in for the miss path of ``subtree_bounds_many``: same jobs,
        same caches, bit-identical stored values. Jobs whose stage shape
        is not mirrored or not flat are delegated to the object walk, so
        a True return always means *every* requested bucket is cached.
        """
        if self.degraded:
            return False
        try:
            self._enter_kernel()
            self._prefill(engine, jobs)
            return True
        except MemoryError:
            raise
        except Exception as exc:
            self.degraded = True
            if self.resilience is not None:
                self.resilience.note("soa_commit", exc)
            return False

    def _prefill(self, engine, jobs) -> None:
        # Iterative wavefront: each pass groups and fit-evaluates one
        # depth of jobs, and rows ending in buffers enqueue their
        # children's missing buckets as the next pass (strictly deeper,
        # so bounded by tree depth). Accumulation and stores then unwind
        # deepest pass first — exactly the order the recursive flow
        # through the engine wrapper produced — so every interpolation
        # reads caches its deeper pass already filled.
        pending = jobs
        passes: list[list[tuple]] = []
        while pending:
            evaluated = self._evaluate_jobs(engine, pending)
            passes.append(evaluated)
            wavefront: dict[int, set[int]] = {}
            for entry in evaluated:
                self._scan_wavefront(engine, wavefront, entry[6])
                self._scan_wavefront(engine, wavefront, entry[7])
            nodes = self.nodes
            base = self._base
            pending = [
                ("b", nodes[node_id - base], sorted(buckets), None)
                for node_id, buckets in wavefront.items()
            ]
        for evaluated in reversed(passes):
            self._finalize_pass(engine, evaluated)

    def _evaluate_jobs(self, engine, jobs) -> list[tuple]:
        bounds_cache = engine._bounds_cache
        vbounds_cache = engine._vbounds_cache
        fs_state = self.fs_state
        slow: list = []
        # group key -> [row indices, buckets, node ids]
        singles: dict[tuple, list] = {}
        branches: dict[tuple, list] = {}
        for job in jobs:
            job_kind, node, buckets, vdrive = job
            i = self._index_of(node)
            if i < 0:
                slow.append(job)
                continue
            state = int(fs_state[i])
            if state == _FS_UNKNOWN:
                state = self._build_flat(i, engine)
            if state == _FS_DEEP:
                slow.append(job)
                continue
            include = job_kind == "b"
            if state == _FS_EMPTY:
                cache = bounds_cache if include else vbounds_cache
                for bucket in buckets:
                    key = (
                        (node.id, bucket)
                        if include
                        else (node.id, bucket, vdrive)
                    )
                    if key not in cache:
                        cache[key] = SubtreeBounds(0.0, 0.0, 0.0)
                continue
            drive = (
                self._buffer_names[int(self.buf_code[i])]
                if include
                else vdrive
            )
            if state == _FS_SINGLE:
                group = singles.setdefault(
                    (drive, int(self.fs_lload[i]), include), ([], [], [])
                )
            else:
                group = branches.setdefault((drive, include), ([], [], []))
            rows_i, rows_b, rows_id = group
            # Prefetch a contiguous bucket window around the requested
            # pair: bisection slews drift a few buckets per node over the
            # rounds, and every bucket value is a pure function of its
            # key, so widening a job only moves future misses into this
            # batch (fewer rounds, fewer groups) without changing any
            # stored value. Requested buckets are cache-missing by
            # construction; extras are filtered against the cache.
            node_id = node.id
            lo_b = buckets[0] - _PREFETCH_BELOW
            if lo_b < 0:
                lo_b = 0
            hi_b = buckets[-1] + _PREFETCH_ABOVE
            cache = bounds_cache if include else vbounds_cache
            requested = set(buckets)
            for bucket in range(lo_b, hi_b + 1):
                if bucket not in requested:
                    key = (
                        (node_id, bucket)
                        if include
                        else (node_id, bucket, vdrive)
                    )
                    if key in cache:
                        continue
                rows_i.append(i)
                rows_b.append(bucket)
                rows_id.append(node_id)
        if slow:
            engine._prefill_bucket_jobs_object(slow)
        evaluated: list[tuple] = []
        for (drive, load_code, include), (rows_i, rows_b, rows_id) in (
            singles.items()
        ):
            idx = np.asarray(rows_i, dtype=np.intp)
            fits = engine.library.single[(drive, self._load_names[load_code])]
            lengths = self.fs_stem[idx]
            n = len(rows_b)
            if n < engine._SCALAR_GROUP_ROWS:
                f_delay = fits["wire_delay"].predict
                f_slew = fits["wire_slew"].predict
                f_buf = fits["buffer_delay"].predict if include else None
                lengths_l = lengths.tolist()
                delays = np.empty(n)
                slews = np.empty(n)
                for k in range(n):
                    rep = rows_b[k] * SLEW_QUANTUM
                    length = lengths_l[k]
                    delay = max(0.0, f_delay(rep, length))
                    if include:
                        delay = delay + max(0.0, f_buf(rep, length))
                    delays[k] = delay
                    slews[k] = max(1e-15, f_slew(rep, length))
            else:
                x = np.empty((n, 2))
                x[:, 0] = np.asarray(rows_b, dtype=np.float64) * SLEW_QUANTUM
                x[:, 1] = lengths
                delays = np.maximum(0.0, fits["wire_delay"].predict_many(x))
                if include:
                    delays = delays + np.maximum(
                        0.0, fits["buffer_delay"].predict_many(x)
                    )
                slews = np.maximum(1e-15, fits["wire_slew"].predict_many(x))
            evaluated.append(
                (
                    include,
                    drive,
                    rows_id,
                    rows_b,
                    (self.fs_lend[idx], self.fs_lkind[idx], delays, slews),
                    None,
                )
            )
        for (drive, include), (rows_i, rows_b, rows_id) in branches.items():
            idx = np.asarray(rows_i, dtype=np.intp)
            fits = engine.library.branch[drive]
            stems = self.fs_stem[idx]
            l_lens = self.fs_llen[idx]
            r_lens = self.fs_rlen[idx]
            l_caps = self.fs_lcap[idx]
            r_caps = self.fs_rcap[idx]
            n = len(rows_b)
            if n < engine._SCALAR_GROUP_ROWS:
                stems_l = stems.tolist()
                ll_l = l_lens.tolist()
                rl_l = r_lens.tolist()
                lc_l = l_caps.tolist()
                rc_l = r_caps.tolist()
                l_delays = np.empty(n)
                l_slews = np.empty(n)
                r_delays = np.empty(n)
                r_slews = np.empty(n)
                for k in range(n):
                    args = (
                        rows_b[k] * SLEW_QUANTUM,
                        stems_l[k],
                        ll_l[k],
                        rl_l[k],
                        lc_l[k],
                        rc_l[k],
                    )
                    base = (
                        max(0.0, fits["buffer_delay"].predict(*args))
                        if include
                        else 0.0
                    )
                    l_delays[k] = base + max(
                        0.0, fits["left_delay"].predict(*args)
                    )
                    l_slews[k] = max(1e-15, fits["left_slew"].predict(*args))
                    r_delays[k] = base + max(
                        0.0, fits["right_delay"].predict(*args)
                    )
                    r_slews[k] = max(1e-15, fits["right_slew"].predict(*args))
            else:
                reps = np.asarray(rows_b, dtype=np.float64) * SLEW_QUANTUM
                batch = engine.library.branch_component_many(
                    drive,
                    reps,
                    stems,
                    l_lens,
                    r_lens,
                    l_caps,
                    r_caps,
                    include_buffer_delay=include,
                )
                if include:
                    l_delays = batch.buffer_delay + batch.left_delay
                    r_delays = batch.buffer_delay + batch.right_delay
                else:
                    l_delays = batch.left_delay
                    r_delays = batch.right_delay
                l_slews = batch.left_slew
                r_slews = batch.right_slew
            evaluated.append(
                (
                    include,
                    drive,
                    rows_id,
                    rows_b,
                    (self.fs_lend[idx], self.fs_lkind[idx], l_delays, l_slews),
                    (self.fs_rend[idx], self.fs_rkind[idx], r_delays, r_slews),
                )
            )
        # Bucket math (q, truncation, frac) for each side's buffer ends
        # is computed once here; the driver scans it for the next pass's
        # wavefront and _finalize_pass interpolates from it on unwind.
        out: list[tuple] = []
        for include, drive, rows_id, rows_b, left, right in evaluated:
            l_buckets = self._side_buckets(left[0], left[1], left[3])
            r_buckets = (
                None
                if right is None
                else self._side_buckets(right[0], right[1], right[3])
            )
            out.append(
                (
                    include,
                    drive,
                    rows_id,
                    rows_b,
                    left,
                    right,
                    l_buckets,
                    r_buckets,
                )
            )
        return out

    def _finalize_pass(self, engine, evaluated) -> None:
        bounds_cache = engine._bounds_cache
        vbounds_cache = engine._vbounds_cache
        for (
            include,
            drive,
            rows_id,
            rows_b,
            left,
            right,
            l_buckets,
            r_buckets,
        ) in evaluated:
            __, __k, l_delays, l_slews = left
            l_bmin, l_bmax, l_bworst = self._below_bounds(
                engine, len(rows_b), l_buckets
            )
            if right is None:
                lo = l_delays + l_bmin
                hi = l_delays + l_bmax
                worst = np.maximum(0.0, np.maximum(l_slews, l_bworst))
            else:
                __, __k, r_delays, r_slews = right
                r_bmin, r_bmax, r_bworst = self._below_bounds(
                    engine, len(rows_b), r_buckets
                )
                lo = np.minimum(l_delays + l_bmin, r_delays + r_bmin)
                hi = np.maximum(l_delays + l_bmax, r_delays + r_bmax)
                worst = np.maximum(
                    0.0,
                    np.maximum(
                        np.maximum(l_slews, l_bworst),
                        np.maximum(r_slews, r_bworst),
                    ),
                )
            # Bulk insert: every bucket value is a pure function of its
            # key, so a duplicate row carries a bit-identical value and
            # last-write-wins is indistinguishable from first-write-wins.
            bounds = map(SubtreeBounds, lo.tolist(), hi.tolist(), worst.tolist())
            if include:
                bounds_cache.update(zip(zip(rows_id, rows_b), bounds))
            else:
                vbounds_cache.update(
                    zip(
                        ((node_id, bucket, drive)
                         for node_id, bucket in zip(rows_id, rows_b)),
                        bounds,
                    )
                )

    def _side_buckets(self, ends, kinds, slews):
        """Bucket rows of one evaluated side's buffer ends.

        Returns ``(rows, end ids, k, frac, slews)`` — compacted to the
        buffer rows — or None when the side has none. ``slew /
        SLEW_QUANTUM``, ``int`` truncation and ``q - k`` are evaluated
        element-wise with the scalar bucket math's float ops (positive
        slews, so ``astype`` truncation equals ``int()``).
        """
        rows = np.nonzero(kinds == _BUFFER)[0]
        if not rows.size:
            return None
        picked = slews[rows]
        q = picked / SLEW_QUANTUM
        ks = q.astype(np.int64)
        frac = q - ks
        return (
            rows,
            ends[rows].tolist(),
            ks.tolist(),
            frac.tolist(),
            picked.tolist(),
        )

    def _scan_wavefront(self, engine, wavefront, buckets):
        if buckets is None:
            return
        cache = engine._bounds_cache
        __, ids, ks, fracs, __s = buckets
        for end_id, k, frac in zip(ids, ks, fracs):
            if (end_id, k) not in cache:
                wavefront.setdefault(end_id, set()).add(k)
            if frac != 0.0 and (end_id, k + 1) not in cache:
                wavefront.setdefault(end_id, set()).add(k + 1)

    def _below_bounds(self, engine, n, buckets):
        """Interpolated sub-bounds for buffer ends (zeros elsewhere).

        Per-row float ops are the inlined interpolation of
        ``buffer_subtree_bounds``; a missing bucket (wavefront raced or
        scalar-only child) falls back to that very method.
        """
        b_min = np.zeros(n)
        b_max = np.zeros(n)
        b_worst = np.zeros(n)
        if buckets is not None:
            rows, ids, ks, fracs, slews = buckets
            cache = engine._bounds_cache
            base = self._base
            nodes = self.nodes
            mins: list[float] = []
            maxes: list[float] = []
            worsts: list[float] = []
            for end_id, k, frac, slew in zip(ids, ks, fracs, slews):
                lo = cache.get((end_id, k))
                if lo is None:
                    below = engine.buffer_subtree_bounds(
                        nodes[end_id - base], slew
                    )
                elif frac == 0.0:
                    below = lo
                else:
                    hi = cache.get((end_id, k + 1))
                    if hi is None:
                        below = engine.buffer_subtree_bounds(
                            nodes[end_id - base], slew
                        )
                    else:
                        below = (
                            lo[0] + (hi[0] - lo[0]) * frac,
                            lo[1] + (hi[1] - lo[1]) * frac,
                            lo[2] + (hi[2] - lo[2]) * frac,
                        )
                mins.append(below[0])
                maxes.append(below[1])
                worsts.append(below[2])
            b_min[rows] = mins
            b_max[rows] = maxes
            b_worst[rows] = worsts
        return b_min, b_max, b_worst

    # ------------------------------------------------------------------
    # Kernel 2: batched forced-stage-buffer decisions
    # ------------------------------------------------------------------

    def stage_drivers(self, router, merges) -> list | None:
        """Choose the stage driver (or None) for each finished merge.

        Batched twin of the decision half of
        ``MergeRouter._maybe_force_stage_buffer`` +
        ``_choose_stage_driver`` for every pair that reached the stage
        phase in the same scheduler round: collapsed caps fold from the
        byte-cached buffer-code sequences, drivers resolve in lockstep
        ``branch_slews_many`` rounds — one per buffer name over the
        still-unresolved merges, which evaluates exactly the (name,
        merge) pairs the scalar loop would. Returns None to make the
        caller fall back to the scalar method per merge.
        """
        if self.degraded:
            return None
        try:
            self._enter_kernel()
            return self._stage_drivers(router, merges)
        except MemoryError:
            raise
        except Exception as exc:
            self.degraded = True
            if self.resilience is not None:
                self.resilience.note("soa_commit", exc)
            return None

    def _stage_drivers(self, router, merges) -> list:
        engine = router.engine
        cap_cache = engine._cap_cache
        max_cap = router.max_stage_cap
        drivers: list = [None] * len(merges)
        need: list[int] = []
        for k, merge in enumerate(merges):
            cap = cap_cache.get(merge.id)
            if cap is None:
                cap = self._collapsed_cap(merge, engine)
                cap_cache[merge.id] = cap
            if cap > max_cap:
                need.append(k)
        if not need:
            return drivers
        if len(need) < _SCALAR_DRIVER_ROWS:
            for k in need:
                drivers[k] = router._choose_stage_driver(merges[k])
            return drivers
        target = router.options.target_slew
        n = len(need)
        l_lens = np.empty(n)
        r_lens = np.empty(n)
        l_caps = np.empty(n)
        r_caps = np.empty(n)
        for j, k in enumerate(need):
            left, right = merges[k].children
            l_lens[j] = left.wire_to_parent
            r_lens[j] = right.wire_to_parent
            l_caps[j] = engine._load_cap_of(left)
            r_caps[j] = engine._load_cap_of(right)
        names = router.library.buffer_names
        remaining = np.arange(n)
        for name in names:
            if not remaining.size:
                break
            if remaining.size < _SCALAR_DRIVER_ROWS * 4:
                # Tail subsets (merges the earlier names rejected) are a
                # handful of rows; the compiled scalar fits beat numpy
                # dispatch there with bit-identical values.
                ok_rows = []
                for j in remaining.tolist():
                    l_slew, r_slew = router.library.branch_slews(
                        name, target, 0.0,
                        l_lens[j], r_lens[j], l_caps[j], r_caps[j],
                    )
                    ok_rows.append(l_slew <= target and r_slew <= target)
                ok = np.asarray(ok_rows, dtype=bool)
            else:
                l_slews, r_slews = router.library.branch_slews_many(
                    name,
                    target,
                    0.0,
                    l_lens[remaining],
                    r_lens[remaining],
                    l_caps[remaining],
                    r_caps[remaining],
                )
                ok = (l_slews <= target) & (r_slews <= target)
            for j in remaining[ok].tolist():
                drivers[need[j]] = router.buffers[name]
            remaining = remaining[~ok]
        fallback = router.buffers[names[-1]]
        for j in remaining.tolist():
            drivers[need[j]] = fallback
        return drivers

    def _buffer_codes_below(self, node) -> bytes:
        """Ordered buffer-code sequence of ``node.walk()`` below ``node``.

        ``walk`` is DFS last-child-first, so a node's sequence is (own
        code if buffer) ++ seq(last child) ++ ... ++ seq(first child):
        sequences compose by concatenation and cache bottom-up. Valid
        under the frozen-below invariant — surgery only ever happens
        above nodes whose collapsed cap was already cached.
        """
        seq = self._bufseq
        cached = seq.get(node.id)
        if cached is not None:
            return cached
        stack = [(node, False)]
        while stack:
            current, ready = stack.pop()
            if current.id in seq:
                continue
            if not ready:
                stack.append((current, True))
                for child in current.children:
                    if child.id not in seq:
                        stack.append((child, False))
            else:
                parts = []
                if current.kind is NodeKind.BUFFER:
                    parts.append(
                        bytes((self._buffer_code(current.buffer),))
                    )
                for child in reversed(current.children):
                    parts.append(seq[child.id])
                seq[current.id] = b"".join(parts)
        return seq[node.id]

    def _collapsed_cap(self, node, engine) -> float:
        """Bit-exact twin of the ``_load_cap_of`` miss path for a
        MERGE/STEINER root: the shallow unbuffered region walks objects
        (it stops at buffer inputs), then the buffer input caps fold in
        the exact ``walk()`` order replayed from the byte sequence."""
        total = node.unbuffered_cap(engine.tech.wire.capacitance_per_unit)
        codes = self._buffer_codes_below(node)
        if codes:
            caps = self._buffer_caps
            if len(caps) != len(self._buffer_names):
                caps = [
                    engine._buffer_input_cap(name, buf)
                    for name, buf in zip(
                        self._buffer_names, self._buffer_types
                    )
                ]
                self._buffer_caps = caps
            for code in codes:
                total += caps[code]
        return total

    def load_cap(self, engine, node) -> float | None:
        """Collapsed load cap of a MERGE/STEINER root, or None.

        Fast twin of the ``LibraryTimingEngine._load_cap_of`` miss path
        used by the binary-search probe evaluators: the buffer input
        caps below ``node`` fold from the byte-cached code sequence in
        the exact object ``walk()`` order, so the float sum is
        bit-identical. Returns None (BUFFER/SINK roots, or after
        degradation) to make the caller take the object path.
        """
        if self.degraded:
            return None
        try:
            self._enter_kernel()
            kind = node.kind
            if kind is NodeKind.BUFFER or kind is NodeKind.SINK:
                return None  # trivial on objects; nothing to skip
            cached = engine._cap_cache.get(node.id)
            if cached is not None:
                return cached
            cap = self._collapsed_cap(node, engine)
            engine._cap_cache[node.id] = cap
            return cap
        except MemoryError:
            raise
        except Exception as exc:
            self.degraded = True
            if self.resilience is not None:
                self.resilience.note("soa_commit", exc)
            return None

    # ------------------------------------------------------------------
    # Kernel 3: checkpoint frame rows
    # ------------------------------------------------------------------

    def checkpoint_rows(self, root) -> list | None:
        """Preorder node rows of ``root``'s subtree for a checkpoint
        frame, identical to ``checkpoint._encode_subtree``'s rows; None
        to make the caller encode from the objects."""
        if self.degraded:
            return None
        try:
            self._enter_kernel()
            return self._checkpoint_rows(root)
        except MemoryError:
            raise
        except Exception as exc:
            self.degraded = True
            if self.resilience is not None:
                self.resilience.note("soa_commit", exc)
            return None

    def _checkpoint_rows(self, root) -> list:
        if self._index_of(root) < 0:
            raise RuntimeError("checkpoint root is not mirrored")
        base = self._base
        kind = self.kind
        parent = self.parent
        first_child = self.first_child
        next_sib = self.next_sib
        x = self.x
        y = self.y
        wire = self.wire
        cap = self.cap
        buf_code = self.buf_code
        names = self.names
        buffer_names = self._buffer_names
        rows: list = []
        stack = [root.id]
        while stack:
            node_id = stack.pop()
            i = node_id - base
            code = int(kind[i])
            if code < 0:
                raise RuntimeError("unmirrored node in checkpoint subtree")
            parent_id = int(parent[i])
            buffer_code = int(buf_code[i])
            rows.append(
                (
                    node_id,
                    _KIND_VALUE[code],
                    names[i],
                    x[i].item(),
                    y[i].item(),
                    wire[i].item(),
                    cap[i].item(),
                    buffer_names[buffer_code] if buffer_code >= 0 else None,
                    parent_id if parent_id >= 0 else None,
                )
            )
            # Push children reversed so they pop first-child-first — the
            # exact ``_iter_preorder`` order.
            child = int(first_child[i])
            children = []
            while child >= 0:
                children.append(child)
                child = int(next_sib[child - base])
            stack.extend(reversed(children))
        return rows

    # ------------------------------------------------------------------
    # Diagnostics (tests)
    # ------------------------------------------------------------------

    def assert_mirrors(self, root) -> None:
        """Walk ``root``'s subtree and verify the mirror agrees row by
        row (topology links, payload and names). Test helper."""
        base = self._base
        for node in root.walk():
            i = node.id - base
            assert 0 <= i < self._used and self.nodes[i] is node, node
            assert int(self.kind[i]) == _CODE_OF[node.kind], node
            assert self.x[i] == node.location.x, node
            assert self.y[i] == node.location.y, node
            assert self.cap[i] == node.cap, node
            assert self.wire[i] == node.wire_to_parent, node
            assert self.names[i] == node.name, node
            expected_parent = node.parent.id if node.parent is not None else -1
            assert int(self.parent[i]) == expected_parent, node
            assert int(self.n_children[i]) == len(node.children), node
            child_ids = []
            child = int(self.first_child[i])
            while child >= 0:
                child_ids.append(child)
                child = int(self.next_sib[child - base])
            assert child_ids == [c.id for c in node.children], node
            back_ids = []
            child = int(self.last_child[i])
            while child >= 0:
                back_ids.append(child)
                child = int(self.prev_sib[child - base])
            assert back_ids == [c.id for c in reversed(node.children)], node
