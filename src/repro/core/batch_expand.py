"""Lockstep batched profile expansion for one routed topology level.

The route-phase twin of :class:`repro.core.batch_commit.PairCommitState`:
after the shared-window searches meet, every merge pair still has to
expand two delay profiles (:class:`~repro.core.segment_builder.PathBuilder`
run extension + buffer insertion) before the level can be finished. Done
pair by pair, each expansion lazily evaluates its own fit-curve tables —
thousands of small Horner evaluations and feasibility scans, the last
per-pair Python loop in the hot route flow.

:class:`LevelExpansionScheduler` advances all lanes (two per pair, a
structure of per-lane cursors over shared per-load arrays) in lockstep
rounds instead:

1. **table sub-round** — every lane's pending (drive, load, fn) curve
   requests are gathered level-wide, grouped by contracted curve (the
   ``predict_many_grouped`` pattern: one fit evaluation over the
   concatenation of all requesting pairs' length prefixes), and primed
   into each pair's :class:`SegmentTables`;
2. **run sub-round** — each lane extends its profile run-at-a-time
   against the precomputed next-infeasible index map of its current
   load binding (one array lookup per run, run records appended as
   numpy slices);
3. **insertion sub-round** — lanes whose next step violates every
   buffer type resolve their insertions as a masked sub-round: choose
   (``PathBuilder._choose_buffer``) for every such lane, group-prime
   the chosen types' stage tables and new load bindings, then commit
   (``PathBuilder._commit_buffer``) — the same two halves the scalar
   path runs back to back.

Bit-identity with the per-pair fallback: a primed table is byte-equal
to a lazily built one (clip + Horner are element-wise; see
:meth:`SegmentTables.prime`), and every decision/mutation runs through
the *same* ``PathBuilder`` methods over those tables — the scheduler
only regroups the evaluations, so profiles, buffer placements and run
records are identical, and results are invariant to how a level is
split into worker batches.

Degradation: ``route_level`` guards the scheduler; on an unexpected
exception the partially primed tables are harmless (identical values)
and the level replays through the retained per-pair lazy expansion.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.charlib.library import DelaySlewLibrary
from repro.core.options import CTSOptions
from repro.core.segment_builder import PathBuilder, SegmentTables


@dataclass
class _Binding:
    """Batched per-(tables, load) lookups shared by every lane bound to
    that load."""

    ok: np.ndarray  # bool per step: any buffer type keeps the slew target
    nf: np.ndarray  # nf[j] = first index >= j with ~ok[j] (ok.size if none)
    vd: np.ndarray  # clamped virtual-drive open-segment wire delays


@dataclass
class _Lane:
    """One pair side advancing through the lockstep rounds."""

    builder: PathBuilder
    binding: _Binding
    target: int  # expand the profile through this step index


class LevelExpansionScheduler:
    """Advance many ``PathBuilder`` expansions through shared rounds.

    One scheduler serves one ``route_level`` call (serial: the whole
    level; pooled: one worker batch — stats merge commutatively). Lanes
    are registered via :meth:`expand`, which returns the fully expanded
    builders in request order.
    """

    def __init__(
        self,
        library: DelaySlewLibrary,
        options: CTSOptions,
        stats=None,
    ):
        self.library = library
        self.options = options
        self.stats = stats
        self.buffer_names = library.buffer_names
        self.virtual = options.virtual_drive or library.buffer_names[-1]
        self.target_slew = options.target_slew
        self._bindings: dict[tuple[int, str], _Binding] = {}

    # -- grouped table rounds ------------------------------------------

    @staticmethod
    def _counts_below(
        bound: float, steps: np.ndarray, sizes: np.ndarray, inclusive: bool
    ) -> np.ndarray:
        """Per table, how many of its lengths ``j * step`` (j < size)
        fall below ``bound`` — vectorized ``np.searchsorted(lengths,
        bound, side='left'|'right')``, without materializing any length
        array. ``j * step`` here is the same IEEE double product the
        length arrays hold, so the counts are exactly searchsorted's.
        """
        counts = np.clip((bound / steps).astype(np.int64), 0, sizes)
        # The float division can be a few ulps off the product scan;
        # nudge the counts until they satisfy the exact definition
        # (monotone in j, so each mask converges in at most a few steps).
        while True:
            low = (counts < sizes) & (
                (counts * steps <= bound)
                if inclusive
                else (counts * steps < bound)
            )
            if not low.any():
                break
            counts[low] += 1
        while True:
            high = (counts > 0) & (
                ((counts - 1) * steps > bound)
                if inclusive
                else ((counts - 1) * steps >= bound)
            )
            if not high.any():
                break
            counts[high] -= 1
        return counts

    def _prime_tables(
        self, fn_requests: list[tuple[SegmentTables, str, str, str]]
    ) -> None:
        """One vectorized curve round over the pending table requests.

        Groups by (triple, input slew) — every table in a group shares
        one contracted curve — and evaluates each group's curve once
        over the concatenation of all requesting pairs' length
        prefixes, exactly the slices :meth:`SegmentTables._table` would
        compute privately; prefix sizes (``eval_count``) and the
        out-of-range slew boundary are resolved for the whole group in
        a handful of array ops. Already-cached tables are skipped, so
        repeated bindings cost nothing.
        """
        requests: dict[
            tuple[tuple[str, str, str], float], list[SegmentTables]
        ] = {}
        seen: set[tuple[int, str, str, str]] = set()
        for tables, drive, load, fn in fn_requests:
            dedup = (id(tables), drive, load, fn)
            if dedup in seen or (drive, load, fn) in tables._cache:
                continue
            seen.add(dedup)
            requests.setdefault(((drive, load, fn), tables.input_slew), []).append(
                tables
            )
        if not requests:
            return
        if self.stats is not None:
            self.stats.curve_rounds += 1
        for ((drive, load, fn), input_slew), reqs in requests.items():
            fit = self.library.single[(drive, load)][fn]
            curve = fit.partial_curve(input_slew)
            steps = np.array([tables.step for tables in reqs])
            sizes = np.array(
                [tables._lengths.size for tables in reqs], dtype=np.int64
            )
            hi = float(fit.hi[1])
            # eval_count: in-range prefix plus one clamped point.
            n_eval = np.minimum(
                self._counts_below(hi, steps, sizes, inclusive=False) + 1,
                sizes,
            ).tolist()
            if fn == "wire_slew":
                # First index with length > hi * 1.001 — from there on
                # the fit would clamp (silently optimistic), so those
                # entries are masked infeasible, as in ``_assemble``.
                beyond = self._counts_below(
                    hi * 1.001, steps, sizes, inclusive=True
                ).tolist()
            else:
                beyond = sizes.tolist()
            prefixes = [
                tables._lengths[:n] for tables, n in zip(reqs, n_eval)
            ]
            values = curve(np.concatenate(prefixes))
            if self.stats is not None:
                self.stats.curves_evaluated += 1
                self.stats.curve_points += values.size
            offset = 0
            key = (drive, load, fn)
            for tables, n, b, size in zip(
                reqs, n_eval, beyond, sizes.tolist()
            ):
                # Equivalent to tables.prime(...): tail-fill the prefix
                # with its last (clamped) value, mask the out-of-range
                # slews — by slice writes instead of concatenate/where.
                table = np.empty(size)
                table[:n] = values[offset : offset + n]
                if n < size:
                    table[n:] = table[n - 1]
                if b < size:
                    table[b:] = np.inf
                tables._cache[key] = table
                offset += n

    def _prime_bindings(
        self, pairs: list[tuple[SegmentTables, str]]
    ) -> None:
        """Install the per-load batched lookups for new (tables, load)
        bindings: the feasibility frontier, its next-infeasible map, and
        the virtual-drive delay profile — everything ``_bind_load`` and
        the run sub-round read."""
        fresh: list[tuple[tuple[int, str], SegmentTables, str]] = []
        for tables, load in pairs:
            key = (id(tables), load)
            if key not in self._bindings:
                self._bindings[key] = None  # claim; filled below
                fresh.append((key, tables, load))
        if not fresh:
            return
        fn_requests: list[tuple[SegmentTables, str, str, str]] = []
        for _, tables, load in fresh:
            for drive in self.buffer_names:
                fn_requests.append((tables, drive, load, "wire_slew"))
            fn_requests.append((tables, self.virtual, load, "wire_delay"))
        self._prime_tables(fn_requests)
        drives = tuple(self.buffer_names)
        for key, tables, load in fresh:
            # Install the binding-level caches directly from the primed
            # tables — the same vstack/compare/clamp any_feasible and
            # clamped_wire_delays would run lazily, minus the per-drive
            # dispatch (their memoization then serves _bind_load).
            matrix = np.vstack(
                [tables._cache[(d, load, "wire_slew")] for d in drives]
            )
            tables._matrix_cache[(drives, load)] = matrix
            ok = (matrix <= self.target_slew).any(axis=0)
            tables._feasible_cache[(drives, load, self.target_slew)] = ok
            tables.binding_evals += 1
            vd = np.maximum(
                tables._cache[(self.virtual, load, "wire_delay")], 0.0
            )
            tables._delay_cache[(self.virtual, load)] = vd
            tables.binding_evals += 1
            steps = np.arange(ok.size)
            nf = np.minimum.accumulate(np.where(ok, ok.size, steps)[::-1])[::-1]
            self._bindings[key] = _Binding(ok, nf, vd)

    def _binding(self, tables: SegmentTables, load: str) -> _Binding:
        return self._bindings[(id(tables), load)]

    # -- lockstep advancement ------------------------------------------

    def _extend_lane(self, lane: _Lane) -> bool:
        """Run sub-round for one lane: extend runs until the target step
        or an insertion is needed (returns True for the latter).

        Replicates ``PathBuilder._ensure`` exactly — same slices of the
        same cached arrays, same run records — with the feasibility scan
        answered by the binding's precomputed next-infeasible map.
        """
        builder = lane.builder
        nf, vd = lane.binding.nf, lane.binding.vd
        target = lane.target
        runs = 0
        while builder._built < target:
            o0 = builder._open
            nxt = o0 + 1
            if nxt >= nf.size:
                raise IndexError("path extended beyond the segment tables")
            run_len = min(int(nf[nxt]) - nxt, target - builder._built)
            if run_len <= 0:
                break
            seg = vd[nxt : o0 + run_len + 1] + builder._completed_delay
            builder._append_delays(seg)
            builder._runs.append(
                (builder._built + 1, o0, builder._load, tuple(builder._buffers))
            )
            builder._open = o0 + run_len
            builder._built += run_len
            runs += 1
        if self.stats is not None:
            self.stats.expansion_runs += runs
        return builder._built < target

    def _insertion_subround(self, lanes: list[_Lane]) -> None:
        """Resolve every pending insertion: choose for all lanes, prime
        the chosen types' tables in one grouped round, then commit."""
        chosen: list[tuple[_Lane, int, str]] = []
        fn_requests: list[tuple[SegmentTables, str, str, str]] = []
        bindings: list[tuple[SegmentTables, str]] = []
        for lane in lanes:
            builder = lane.builder
            position, type_name = builder._choose_buffer(builder._built)
            chosen.append((lane, position, type_name))
            fn_requests.append((builder.tables, type_name, builder._load, "buffer_delay"))
            fn_requests.append((builder.tables, type_name, builder._load, "wire_delay"))
            bindings.append((builder.tables, type_name))
        self._prime_tables(fn_requests)
        self._prime_bindings(bindings)
        for lane, position, type_name in chosen:
            builder = lane.builder
            builder._commit_buffer(builder._built, position, type_name)
            lane.binding = self._binding(builder.tables, builder._load)
            if not builder._ok_any[builder._open + 1]:
                raise RuntimeError(
                    "grid pitch too coarse for the slew target: one step"
                    " already violates slew after buffer insertion"
                )
            if self.stats is not None:
                self.stats.expansion_insertions += 1

    def expand(
        self, requests: list[tuple[SegmentTables, float, str, int]]
    ) -> list[PathBuilder]:
        """Expand one lane per (tables, base_delay, load, target) request.

        Returns the builders in request order, each with its delay
        profile built through its target step — ready for
        ``delays_view``/``state`` snapshots without further expansion.
        """
        self._prime_bindings(
            [(tables, load) for tables, _, load, _ in requests]
        )
        lanes: list[_Lane] = []
        for tables, base_delay, load, target in requests:
            builder = PathBuilder(
                tables,
                base_delay,
                load,
                self.target_slew,
                self.buffer_names,
                self.virtual,
                self.options.sizing_lookahead,
            )
            lanes.append(_Lane(builder, self._binding(tables, load), target))
        if self.stats is not None:
            self.stats.expansion_lanes += len(lanes)
        active = [lane for lane in lanes if lane.builder._built < lane.target]
        while active:
            if self.stats is not None:
                self.stats.expansion_rounds += 1
            pending = [lane for lane in active if self._extend_lane(lane)]
            if not pending:
                break
            self._insertion_subround(pending)
            active = pending
        return [lane.builder for lane in lanes]


def expand_level(primed, library, options, stats) -> list[list[PathBuilder]]:
    """Expand every pair's two delay profiles in lockstep.

    ``primed`` is ``route_level``'s (search job, tables) list; returns
    one ``[builder1, builder2]`` per entry, expanded through the
    tables' top step — what ``_finish_level`` (or the per-pair
    ``finish_maze_route``) would otherwise build and expand itself.
    """
    requests: list[tuple[SegmentTables, float, str, int]] = []
    for job, tables in primed:
        target = tables.n_steps - 1
        for term in (job.term1, job.term2):
            requests.append((tables, term.base_delay, term.load_name, target))
    scheduler = LevelExpansionScheduler(library, options, stats)
    builders = scheduler.expand(requests)
    return [
        [builders[2 * i], builders[2 * i + 1]] for i in range(len(primed))
    ]
