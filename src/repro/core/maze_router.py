"""Bidirectional maze routing over an explicit grid (Fig. 4.3).

The general router: two BFS wavefronts expand simultaneously from the two
sub-tree roots across a uniform-pitch routing grid (with optional blocked
cells); every cell reachable by both fronts carries propagation delay
information to both sides, and the cell with minimum delay difference is
picked as the tentative merge location. Buffer insertion along the
expansion follows the same :class:`~repro.core.segment_builder.PathBuilder`
logic as the profile router.

With no blockages this reduces exactly to the profile router (delay is a
function of step distance only); with blockages the BFS distances and the
backtracked detour paths differ, which is the case this router exists for.

The grid operations are vectorized: ``block`` is a coordinate-mask
computation and ``bfs`` runs at C speed — through a directly-assembled
CSR adjacency and :func:`scipy.sparse.csgraph.dijkstra` (unweighted =
plain BFS) when scipy is available, and otherwise through a numpy
frontier-dilation wave (one windowed boolean step per BFS level, parents
reconstructed from per-direction step offsets). The original cell-by-cell
implementations are retained as ``block_reference`` / ``bfs_reference`` —
they define the semantics, the equivalence tests compare against them,
and the perf harness times them as the seed baseline.
"""

from __future__ import annotations

from collections import deque

import numpy as np

try:  # scipy ships with the toolchain; the wave BFS covers its absence.
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import dijkstra as _sparse_bfs
except ImportError:  # pragma: no cover - exercised only without scipy
    csr_matrix = None
    _sparse_bfs = None

from repro.charlib.library import DelaySlewLibrary
from repro.core.options import CTSOptions
from repro.core.routing_common import (
    MazeSearch,
    RoutedPath,
    RouteResult,
    RouteTerminal,
    choose_pitch,
    run_maze_search,
)
from repro.core.segment_builder import PathBuilder, SegmentTables
from repro.geom.bbox import BBox
from repro.geom.point import Point
from repro.geom.segment import PathPolyline

_UNREACHED = -1

#: 4-connected neighborhood; the order is the parent priority when a cell
#: is reached by several frontier cells in the same wave.
_DIRECTIONS = ((1, 0), (-1, 0), (0, 1), (0, -1))


class MazeGrid:
    """A square-pitch routing grid with blocked cells."""

    def __init__(self, bbox: BBox, pitch: float):
        self.bbox = bbox
        self.pitch = pitch
        self.nx = int(np.ceil(bbox.width / pitch)) + 1
        self.ny = int(np.ceil(bbox.height / pitch)) + 1
        self.blocked = np.zeros((self.nx, self.ny), dtype=bool)
        self._adj = None  # cached CSR adjacency; invalidated by block()
        self._xs = None  # cached cell-center coordinate axes
        self._ys = None
        self._any_blocked = False

    def block(self, region: BBox) -> None:
        """Block every cell whose center lies inside ``region``."""
        if self._xs is None:
            self._xs = self.bbox.xmin + np.arange(self.nx) * self.pitch
            self._ys = self.bbox.ymin + np.arange(self.ny) * self.pitch
        in_x = (self._xs >= region.xmin) & (self._xs <= region.xmax)
        in_y = (self._ys >= region.ymin) & (self._ys <= region.ymax)
        if in_x.any() and in_y.any():
            self.blocked |= in_x[:, None] & in_y[None, :]
            self._any_blocked = True
        self._adj = None

    def block_reference(self, region: BBox) -> None:
        """Cell-by-cell reference implementation of :meth:`block`."""
        for i in range(self.nx):
            for j in range(self.ny):
                if region.contains(self.center(i, j)):
                    self.blocked[i, j] = True
                    self._any_blocked = True
        self._adj = None

    def center(self, i: int, j: int) -> Point:
        return Point(self.bbox.xmin + i * self.pitch, self.bbox.ymin + j * self.pitch)

    def nearest(self, p: Point) -> tuple[int, int]:
        i = int(round((p.x - self.bbox.xmin) / self.pitch))
        j = int(round((p.y - self.bbox.ymin) / self.pitch))
        return (min(max(i, 0), self.nx - 1), min(max(j, 0), self.ny - 1))

    def nearest_free(self, cell: tuple[int, int]) -> tuple[int, int]:
        """Closest unblocked cell to ``cell`` (Manhattan; ties row-major)."""
        if not self.blocked[cell]:
            return cell
        ii, jj = np.nonzero(~self.blocked)
        if ii.size == 0:
            raise ValueError("grid is fully blocked")
        k = int(np.argmin(np.abs(ii - cell[0]) + np.abs(jj - cell[1])))
        return (int(ii[k]), int(jj[k]))

    def bfs(self, start: tuple[int, int]) -> tuple[np.ndarray, np.ndarray]:
        """Step distances and parent indices from ``start`` (4-connected).

        Dispatches to the sparse-graph BFS when scipy is available and to
        the numpy frontier-dilation wave otherwise. Both return the same
        distance field as :meth:`bfs_reference`; parent *choices* may
        differ between implementations (any parent one step closer to the
        start is valid), so backtracked paths are equal-length shortest
        paths, not necessarily identical cell sequences.
        """
        if not self._any_blocked:
            return self.bfs_unblocked(start)
        if _sparse_bfs is not None:
            return self.bfs_sparse(start)
        return self.bfs_wave(start)

    def bfs_many(
        self, starts: list[tuple[int, int]]
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """BFS from several starts; batched when the sparse path is up."""
        if not self._any_blocked:
            return [self.bfs_unblocked(s) for s in starts]
        if _sparse_bfs is not None:
            return self.bfs_multi(starts)
        return [self.bfs(s) for s in starts]

    def bfs_unblocked(self, start: tuple[int, int]) -> tuple[np.ndarray, np.ndarray]:
        """Closed-form BFS for a grid with no blocked cells.

        Distances are plain Manhattan step counts (exactly what any BFS
        returns on an obstacle-free grid); parents encode an x-then-y
        staircase toward the start, a valid shortest-path tree.
        """
        i0, j0 = start
        di = np.arange(self.nx) - i0
        dj = np.arange(self.ny) - j0
        dist = np.abs(di)[:, None] + np.abs(dj)[None, :]
        codes = np.arange(self.nx * self.ny).reshape(self.nx, self.ny)
        step_i = np.sign(di) * self.ny  # one step along x toward the start
        parent = np.where(
            di[:, None] != 0,
            codes - step_i[:, None],
            codes - np.sign(dj)[None, :],
        )
        parent[start] = -1
        return dist, parent

    def _adjacency(self):
        """CSR adjacency of the free cells, assembled without a COO sort.

        For each cell the (up to 4) free neighbors are emitted in
        column-ascending order (-ny, -1, +1, +ny), so the data/indices/
        indptr triple is already canonical CSR.
        """
        if self._adj is not None:
            return self._adj
        nx, ny, n = self.nx, self.ny, self.nx * self.ny
        free = ~self.blocked
        codes = np.arange(n, dtype=np.int32).reshape(nx, ny)
        m = np.zeros((nx, ny, 4), dtype=bool)
        m[1:, :, 0] = free[1:, :] & free[:-1, :]  # neighbor (i-1, j)
        m[:, 1:, 1] = free[:, 1:] & free[:, :-1]  # neighbor (i, j-1)
        m[:, :-1, 2] = free[:, :-1] & free[:, 1:]  # neighbor (i, j+1)
        m[:-1, :, 3] = free[:-1, :] & free[1:, :]  # neighbor (i+1, j)
        offsets = np.array([-ny, -1, 1, ny], dtype=np.int32)
        cols4 = codes[:, :, None] + offsets[None, None, :]
        mflat = m.reshape(n, 4)
        indptr = np.zeros(n + 1, dtype=np.int32)
        np.cumsum(mflat.sum(axis=1, dtype=np.int32), out=indptr[1:])
        cols = cols4.reshape(n, 4)[mflat]
        data = np.ones(cols.size, dtype=np.int8)
        self._adj = csr_matrix((data, cols, indptr), shape=(n, n))
        return self._adj

    def bfs_sparse(self, start: tuple[int, int]) -> tuple[np.ndarray, np.ndarray]:
        """BFS via :func:`scipy.sparse.csgraph.dijkstra` (unweighted)."""
        return self.bfs_multi([start])[0]

    def bfs_multi(
        self, starts: list[tuple[int, int]]
    ) -> list[tuple[np.ndarray, np.ndarray]]:
        """One sparse BFS per start, batched into a single csgraph call
        (amortizes the scipy validation/setup overhead, which dominates on
        the small grids of low-level merges)."""
        for start in starts:
            if self.blocked[start]:
                raise ValueError(f"start cell {start} is blocked")
        flat = [i * self.ny + j for i, j in starts]
        hops, pred = _sparse_bfs(
            self._adjacency(),
            indices=flat,
            unweighted=True,
            return_predecessors=True,
        )
        hops = np.atleast_2d(hops)
        pred = np.atleast_2d(pred)
        # One fused conversion for all sources; scipy marks "no
        # predecessor" with a different negative sentinel, and
        # backtrack() only tests sign, so pred is reshaped as-is.
        dists = np.where(np.isinf(hops), float(_UNREACHED), hops).astype(int)
        return [
            (
                dists[row].reshape(self.nx, self.ny),
                pred[row].reshape(self.nx, self.ny),
            )
            for row in range(len(starts))
        ]

    def bfs_wave(self, start: tuple[int, int]) -> tuple[np.ndarray, np.ndarray]:
        """Numpy frontier-dilation BFS (the scipy-free vectorized path).

        Each wave shifts the current frontier mask one cell in every
        direction and claims the still-unreached free cells; parents are
        the encoded coordinates one step back along the claiming
        direction. The work per wave is confined to the bounding window
        of the frontier, so compact waves stay cheap on big grids.
        """
        if self.blocked[start]:
            raise ValueError(f"start cell {start} is blocked")
        nx, ny = self.nx, self.ny
        dist = np.full((nx, ny), _UNREACHED, dtype=int)
        parent = np.full((nx, ny), -1, dtype=int)
        codes = np.arange(nx * ny, dtype=int).reshape(nx, ny)
        unreached = ~self.blocked
        frontier = np.zeros((nx, ny), dtype=bool)
        frontier[start] = True
        unreached[start] = False
        dist[start] = 0
        ilo, ihi = start[0], start[0] + 1
        jlo, jhi = start[1], start[1] + 1
        d = 0
        while True:
            # Every neighbor of the frontier lies inside the window grown
            # by one cell (clipped to the grid).
            ilo, ihi = max(ilo - 1, 0), min(ihi + 1, nx)
            jlo, jhi = max(jlo - 1, 0), min(jhi + 1, ny)
            fwin = frontier[ilo:ihi, jlo:jhi]
            uwin = unreached[ilo:ihi, jlo:jhi]
            new = np.zeros_like(fwin)
            for di, dj in _DIRECTIONS:
                cand = _shift(fwin, di, dj)
                cand &= uwin
                cand &= ~new
                if cand.any():
                    pwin = parent[ilo:ihi, jlo:jhi]
                    pwin[cand] = codes[ilo:ihi, jlo:jhi][cand] - di * ny - dj
                    new |= cand
            if not new.any():
                return dist, parent
            d += 1
            dist[ilo:ihi, jlo:jhi][new] = d
            uwin &= ~new
            frontier[ilo:ihi, jlo:jhi] = new
            # Shrink the window to the new frontier's bounding box.
            rows = np.flatnonzero(new.any(axis=1))
            cols = np.flatnonzero(new.any(axis=0))
            ilo, ihi = ilo + rows[0], ilo + rows[-1] + 1
            jlo, jhi = jlo + cols[0], jlo + cols[-1] + 1

    def bfs_reference(self, start: tuple[int, int]) -> tuple[np.ndarray, np.ndarray]:
        """Queue-based reference implementation of :meth:`bfs`."""
        dist = np.full((self.nx, self.ny), _UNREACHED, dtype=int)
        parent = np.full((self.nx, self.ny), -1, dtype=int)
        if self.blocked[start]:
            raise ValueError(f"start cell {start} is blocked")
        dist[start] = 0
        queue = deque([start])
        while queue:
            i, j = queue.popleft()
            d = dist[i, j]
            for di, dj in _DIRECTIONS:
                ni, nj = i + di, j + dj
                if 0 <= ni < self.nx and 0 <= nj < self.ny:
                    if not self.blocked[ni, nj] and dist[ni, nj] == _UNREACHED:
                        dist[ni, nj] = d + 1
                        parent[ni, nj] = i * self.ny + j
                        queue.append((ni, nj))
        return dist, parent

    def staircase_arrays(
        self, start: tuple[int, int], cell: tuple[int, int]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Cell coordinates of the unblocked shortest path, as arrays.

        Produces exactly the sequence ``backtrack`` recovers from the
        :meth:`bfs_unblocked` parent tree (a y-run from the start followed
        by an x-run), without walking parent pointers.
        """
        i0, j0 = start
        i1, j1 = cell
        js = np.arange(j0, j1, 1 if j1 >= j0 else -1)
        xs = np.arange(i0, i1, 1 if i1 >= i0 else -1)
        ci = np.concatenate([np.full(js.size, i0), xs, [i1]])
        cj = np.concatenate([js, np.full(xs.size + 1, j1)])
        return ci, cj

    def backtrack(
        self, parent: np.ndarray, cell: tuple[int, int]
    ) -> list[tuple[int, int]]:
        """Cell sequence from the BFS start to ``cell`` (inclusive)."""
        path = [cell]
        i, j = cell
        while parent[i, j] >= 0:
            enc = parent[i, j]
            i, j = divmod(int(enc), self.ny)
            path.append((i, j))
        path.reverse()
        return path


def _shift(mask: np.ndarray, di: int, dj: int) -> np.ndarray:
    """Mask of cells one ``(di, dj)`` step downstream of ``mask``."""
    out = np.zeros_like(mask)
    if di == 1:
        out[1:, :] = mask[:-1, :]
    elif di == -1:
        out[:-1, :] = mask[1:, :]
    elif dj == 1:
        out[:, 1:] = mask[:, :-1]
    else:
        out[:, :-1] = mask[:, 1:]
    return out


def blocked_path(
    a: Point,
    b: Point,
    pitch: float,
    blockages: list[BBox],
    margin: float,
) -> PathPolyline:
    """Shortest rectilinear path from ``a`` to ``b`` avoiding blockages.

    Used for point-to-point connections outside the merge flow (e.g. the
    source trunk). The window grows around intersecting blockages the
    same way :func:`route_maze` does.
    """
    bbox = BBox.of_points([a, b]).expanded(margin)

    def target_reached(search: MazeSearch) -> bool:
        return search.dists[0][search.cells[1]] != _UNREACHED

    search = run_maze_search(
        [a, b],
        bbox,
        pitch,
        blockages,
        margin,
        target_reached,
        what="trunk terminal",
        n_sources=1,
    )
    grid = search.grid
    cells = grid.backtrack(search.parents[0], search.cells[1])
    points = [a] + [grid.center(i, j) for i, j in cells[1:-1]] + [b]
    return PathPolyline(_compress_polyline(points))


def _cells_polyline(
    grid: MazeGrid, first: Point, ci: np.ndarray, cj: np.ndarray
) -> list[Point]:
    """``[first] + centers(cells)`` with collinear runs compressed.

    Vectorized equivalent of building every cell-center Point and calling
    :func:`_compress_polyline`: coordinates are computed with the exact
    same expression as :meth:`MazeGrid.center`, and only the bend vertices
    are materialized as Points.
    """
    if ci.size == 0:
        return [first]
    xs = np.concatenate(([first.x], grid.bbox.xmin + ci * grid.pitch))
    ys = np.concatenate(([first.y], grid.bbox.ymin + cj * grid.pitch))
    n = xs.size
    if n <= 2:
        return [first] + [Point(float(x), float(y)) for x, y in zip(xs[1:], ys[1:])]
    same_x = (xs[:-2] == xs[1:-1]) & (xs[1:-1] == xs[2:])
    same_y = (ys[:-2] == ys[1:-1]) & (ys[1:-1] == ys[2:])
    keep = np.flatnonzero(~(same_x | same_y)) + 1
    points = [first]
    points.extend(Point(float(xs[i]), float(ys[i])) for i in keep)
    points.append(Point(float(xs[-1]), float(ys[-1])))
    return points


def _compress_polyline(points: list[Point]) -> list[Point]:
    """Drop interior points of collinear (axis-aligned) runs."""
    if len(points) <= 2:
        return points
    out = [points[0]]
    for prev, cur, nxt in zip(points, points[1:], points[2:]):
        same_x = prev.x == cur.x == nxt.x
        same_y = prev.y == cur.y == nxt.y
        if not (same_x or same_y):
            out.append(cur)
    out.append(points[-1])
    return out


def route_maze(
    term1: RouteTerminal,
    term2: RouteTerminal,
    library: DelaySlewLibrary,
    options: CTSOptions,
    stage_length: float,
    blockages: list[BBox] | None = None,
) -> RouteResult:
    """Route one merge with bidirectional maze expansion."""
    p1, p2 = term1.point, term2.point
    dist = p1.manhattan_to(p2)
    if dist <= 0:
        raise ValueError("terminals are coincident; no routing needed")
    span = max(abs(p1.x - p2.x), abs(p1.y - p2.y), dist / 2.0)
    pitch, n_cells = choose_pitch(span, options, stage_length)
    margin = max(1.0, n_cells * options.routing_margin_ratio) * pitch
    bbox = BBox.of_points([p1, p2]).expanded(margin)

    def both_reached(search: MazeSearch) -> bool:
        return bool(
            ((search.dists[0] != _UNREACHED) & (search.dists[1] != _UNREACHED)).any()
        )

    search = run_maze_search(
        [p1, p2], bbox, pitch, blockages or [], margin, both_reached
    )
    grid, pitch = search.grid, search.pitch
    dist1, dist2 = search.dists
    parent1, parent2 = search.parents
    both = (dist1 != _UNREACHED) & (dist2 != _UNREACHED)

    max_k = int(max(dist1[both].max(), dist2[both].max()))
    tables = SegmentTables(library, pitch, max_k + 1, options.target_slew)
    builders = []
    for term in (term1, term2):
        builders.append(
            PathBuilder(
                tables,
                term.base_delay,
                term.load_name,
                options.target_slew,
                library.buffer_names,
                options.virtual_drive or library.buffer_names[-1],
                options.sizing_lookahead,
            )
        )
    prof1 = builders[0].delays_up_to(max_k)
    prof2 = builders[1].delays_up_to(max_k)

    # Rank only the co-reached cells (lexsort ties break on the earliest
    # flat index, which the subset preserves, so the winner is identical
    # to ranking the full grid with inf sentinels).
    cand = np.flatnonzero(both.ravel())
    k1 = dist1.ravel()[cand]
    k2 = dist2.ravel()[cand]
    d1 = prof1[k1]
    d2 = prof2[k2]
    skew = np.abs(d1 - d2)
    total = np.maximum(d1, d2)
    hops = k1 + k2
    # Successive argmin refinement: only the top-ranked cell is needed,
    # and lexsort's stable tie order is the ascending flat index, which
    # each refinement preserves.
    rounded_skew = np.round(skew, 15)
    sel = np.flatnonzero(rounded_skew == rounded_skew.min())
    sel = sel[total[sel] == total[sel].min()]
    sel = sel[hops[sel] == hops[sel].min()]
    pick = int(sel[0])
    best = int(cand[pick])
    bi, bj = np.unravel_index(best, both.shape)
    meeting = grid.center(int(bi), int(bj))
    kk1, kk2 = int(k1[pick]), int(k2[pick])

    def materialize(term, parent, start_cell, builder, k):
        cell = (int(bi), int(bj))
        if not grid._any_blocked:
            # Obstacle-free window: the parent tree is the analytic
            # staircase, so skip the pointer walk entirely.
            ci, cj = grid.staircase_arrays(start_cell, cell)
            ci, cj = ci[1:], cj[1:]
        else:
            cells = grid.backtrack(parent, cell)[1:]
            ci = np.fromiter((c[0] for c in cells), dtype=float, count=len(cells))
            cj = np.fromiter((c[1] for c in cells), dtype=float, count=len(cells))
        points = _cells_polyline(grid, term.point, ci, cj)
        if len(points) == 1:
            points.append(meeting)
        return RoutedPath(
            term,
            PathPolyline(points),
            builder.state(k),
            pitch,
        )

    c1, c2 = search.cells[0], search.cells[1]
    left = materialize(term1, parent1, c1, builders[0], kk1)
    right = materialize(term2, parent2, c2, builders[1], kk2)
    return RouteResult(
        meeting_point=meeting,
        left=left,
        right=right,
        est_left_delay=float(d1[pick]),
        est_right_delay=float(d2[pick]),
        grid_cells=max(grid.nx, grid.ny),
    )
