"""Bidirectional maze routing over an explicit grid (Fig. 4.3).

The general router: two BFS wavefronts expand simultaneously from the two
sub-tree roots across a uniform-pitch routing grid (with optional blocked
cells); every cell reachable by both fronts carries propagation delay
information to both sides, and the cell with minimum delay difference is
picked as the tentative merge location. Buffer insertion along the
expansion follows the same :class:`~repro.core.segment_builder.PathBuilder`
logic as the profile router.

With no blockages this reduces exactly to the profile router (delay is a
function of step distance only); with blockages the BFS distances and the
backtracked detour paths differ, which is the case this router exists for.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.charlib.library import DelaySlewLibrary
from repro.core.options import CTSOptions
from repro.core.routing_common import (
    RoutedPath,
    RouteResult,
    RouteTerminal,
    choose_pitch,
)
from repro.core.segment_builder import PathBuilder, SegmentTables
from repro.geom.bbox import BBox
from repro.geom.point import Point
from repro.geom.segment import PathPolyline

_UNREACHED = -1


class MazeGrid:
    """A square-pitch routing grid with blocked cells."""

    def __init__(self, bbox: BBox, pitch: float):
        self.bbox = bbox
        self.pitch = pitch
        self.nx = int(np.ceil(bbox.width / pitch)) + 1
        self.ny = int(np.ceil(bbox.height / pitch)) + 1
        self.blocked = np.zeros((self.nx, self.ny), dtype=bool)

    def block(self, region: BBox) -> None:
        """Block every cell whose center lies inside ``region``."""
        for i in range(self.nx):
            for j in range(self.ny):
                if region.contains(self.center(i, j)):
                    self.blocked[i, j] = True

    def center(self, i: int, j: int) -> Point:
        return Point(self.bbox.xmin + i * self.pitch, self.bbox.ymin + j * self.pitch)

    def nearest(self, p: Point) -> tuple[int, int]:
        i = int(round((p.x - self.bbox.xmin) / self.pitch))
        j = int(round((p.y - self.bbox.ymin) / self.pitch))
        return (min(max(i, 0), self.nx - 1), min(max(j, 0), self.ny - 1))

    def bfs(self, start: tuple[int, int]) -> tuple[np.ndarray, np.ndarray]:
        """Step distances and parent indices from ``start`` (4-connected)."""
        dist = np.full((self.nx, self.ny), _UNREACHED, dtype=int)
        parent = np.full((self.nx, self.ny), -1, dtype=int)
        if self.blocked[start]:
            raise ValueError(f"start cell {start} is blocked")
        dist[start] = 0
        queue = deque([start])
        while queue:
            i, j = queue.popleft()
            d = dist[i, j]
            for di, dj in ((1, 0), (-1, 0), (0, 1), (0, -1)):
                ni, nj = i + di, j + dj
                if 0 <= ni < self.nx and 0 <= nj < self.ny:
                    if not self.blocked[ni, nj] and dist[ni, nj] == _UNREACHED:
                        dist[ni, nj] = d + 1
                        parent[ni, nj] = i * self.ny + j
                        queue.append((ni, nj))
        return dist, parent

    def backtrack(
        self, parent: np.ndarray, cell: tuple[int, int]
    ) -> list[tuple[int, int]]:
        """Cell sequence from the BFS start to ``cell`` (inclusive)."""
        path = [cell]
        i, j = cell
        while parent[i, j] >= 0:
            enc = parent[i, j]
            i, j = divmod(int(enc), self.ny)
            path.append((i, j))
        path.reverse()
        return path


def blocked_path(
    a: Point,
    b: Point,
    pitch: float,
    blockages: list[BBox],
    margin: float,
) -> PathPolyline:
    """Shortest rectilinear path from ``a`` to ``b`` avoiding blockages.

    Used for point-to-point connections outside the merge flow (e.g. the
    source trunk). The window grows around intersecting blockages the
    same way :func:`route_maze` does.
    """
    bbox = BBox.of_points([a, b]).expanded(margin)
    for _ in range(4):
        grid = MazeGrid(bbox, pitch)
        while grid.nx * grid.ny > 80_000:
            pitch *= 1.5
            grid = MazeGrid(bbox, pitch)
        for region in blockages:
            grid.block(region)
        ca, cb = grid.nearest(a), grid.nearest(b)
        if grid.blocked[ca] or grid.blocked[cb]:
            raise ValueError("a trunk terminal lies inside a blockage")
        dist, parent = grid.bfs(ca)
        if dist[cb] != _UNREACHED:
            cells = grid.backtrack(parent, cb)
            points = [a] + [grid.center(i, j) for i, j in cells[1:-1]] + [b]
            return PathPolyline(_compress_polyline(points))
        expanded = bbox
        for region in blockages:
            if region.intersects(bbox):
                expanded = expanded.union(region.expanded(2.0 * margin))
        if expanded.width == bbox.width and expanded.height == bbox.height:
            break
        bbox = expanded
    raise RuntimeError("trunk terminals are disconnected by blockages")


def _compress_polyline(points: list[Point]) -> list[Point]:
    """Drop interior points of collinear (axis-aligned) runs."""
    if len(points) <= 2:
        return points
    out = [points[0]]
    for prev, cur, nxt in zip(points, points[1:], points[2:]):
        same_x = prev.x == cur.x == nxt.x
        same_y = prev.y == cur.y == nxt.y
        if not (same_x or same_y):
            out.append(cur)
    out.append(points[-1])
    return out


def route_maze(
    term1: RouteTerminal,
    term2: RouteTerminal,
    library: DelaySlewLibrary,
    options: CTSOptions,
    stage_length: float,
    blockages: list[BBox] | None = None,
) -> RouteResult:
    """Route one merge with bidirectional maze expansion."""
    p1, p2 = term1.point, term2.point
    dist = p1.manhattan_to(p2)
    if dist <= 0:
        raise ValueError("terminals are coincident; no routing needed")
    span = max(abs(p1.x - p2.x), abs(p1.y - p2.y), dist / 2.0)
    pitch, n_cells = choose_pitch(span, options, stage_length)
    margin = max(1.0, n_cells * options.routing_margin_ratio) * pitch
    bbox = BBox.of_points([p1, p2]).expanded(margin)

    # A blockage can wall off the default window even though a detour
    # exists just outside it; grow the window around every intersecting
    # blockage (and coarsen the pitch if the cell count explodes).
    grid = None
    for _ in range(4):
        grid = MazeGrid(bbox, pitch)
        while grid.nx * grid.ny > 80_000:
            pitch *= 1.5
            grid = MazeGrid(bbox, pitch)
        for region in blockages or []:
            grid.block(region)
        c1, c2 = grid.nearest(p1), grid.nearest(p2)
        if grid.blocked[c1] or grid.blocked[c2]:
            raise ValueError("a terminal lies inside a blockage")
        dist1, parent1 = grid.bfs(c1)
        dist2, parent2 = grid.bfs(c2)
        both = (dist1 != _UNREACHED) & (dist2 != _UNREACHED)
        if both.any():
            break
        expanded = bbox
        for region in blockages or []:
            if region.intersects(bbox):
                expanded = expanded.union(region.expanded(2.0 * margin))
        if (
            expanded.width == bbox.width
            and expanded.height == bbox.height
        ):
            raise RuntimeError("terminals are disconnected by blockages")
        bbox = expanded
    else:
        raise RuntimeError("terminals are disconnected by blockages")

    max_k = int(max(dist1[both].max(), dist2[both].max()))
    tables = SegmentTables(library, pitch, max_k + 1, options.target_slew)
    builders = []
    for term in (term1, term2):
        builders.append(
            PathBuilder(
                tables,
                term.base_delay,
                term.load_name,
                options.target_slew,
                library.buffer_names,
                options.virtual_drive or library.buffer_names[-1],
                options.sizing_lookahead,
            )
        )
    prof1 = builders[0].delays_up_to(max_k)
    prof2 = builders[1].delays_up_to(max_k)

    p1_vals = prof1[np.clip(dist1, 0, max_k)]
    p2_vals = prof2[np.clip(dist2, 0, max_k)]
    d1 = np.where(both, p1_vals, np.inf)
    d2 = np.where(both, p2_vals, np.inf)
    skew = np.where(both, np.abs(p1_vals - p2_vals), np.inf)
    total = np.maximum(d1, d2)
    hops = np.where(both, dist1 + dist2, np.iinfo(int).max)
    order = np.lexsort((hops.ravel(), total.ravel(), np.round(skew.ravel(), 15)))
    best = order[0]
    bi, bj = np.unravel_index(best, skew.shape)
    meeting = grid.center(int(bi), int(bj))
    kk1, kk2 = int(dist1[bi, bj]), int(dist2[bi, bj])

    def materialize(term, parent, cell, builder, k):
        cells = grid.backtrack(parent, (int(cell[0]), int(cell[1])))
        points = [term.point] + [grid.center(i, j) for i, j in cells[1:]]
        if len(points) == 1:
            points.append(meeting)
        return RoutedPath(
            term,
            PathPolyline(_compress_polyline(points)),
            builder.state(k),
            pitch,
        )

    left = materialize(term1, parent1, (bi, bj), builders[0], kk1)
    right = materialize(term2, parent2, (bi, bj), builders[1], kk2)
    return RouteResult(
        meeting_point=meeting,
        left=left,
        right=right,
        est_left_delay=float(d1[bi, bj]),
        est_right_delay=float(d2[bi, bj]),
        grid_cells=max(grid.nx, grid.ny),
    )
