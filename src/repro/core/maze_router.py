"""Bidirectional maze routing over an explicit grid (Fig. 4.3).

The general router: two BFS wavefronts expand simultaneously from the two
sub-tree roots across a uniform-pitch routing grid (with optional blocked
cells); every cell reachable by both fronts carries propagation delay
information to both sides, and the cell with minimum delay difference is
picked as the tentative merge location. Buffer insertion along the
expansion follows the same :class:`~repro.core.segment_builder.PathBuilder`
logic as the profile router.

With no blockages this reduces exactly to the profile router (delay is a
function of step distance only); with blockages the BFS distances and the
backtracked detour paths differ, which is the case this router exists for.

BFS is consolidated behind one engine (:class:`BfsEngine`): the contract
is the *distance field only*, and path geometry is derived from it by a
deterministic descent (:meth:`MazeGrid.descend`), so every strategy —
closed-form on unblocked grids, sparse-graph BFS through
:func:`scipy.sparse.csgraph.breadth_first_order` with a vectorized
pointer-doubling depth reconstruction, or the scipy-free numpy
frontier-dilation wave — produces byte-identical routing results. The
original cell-by-cell implementations are retained as
``block_reference`` / ``bfs_reference``: they define the semantics, the
equivalence tests compare against them, and the perf harness times them
as the seed baseline.
"""

from __future__ import annotations

from collections import deque

import numpy as np

try:  # scipy ships with the toolchain; the wave BFS covers its absence.
    from scipy.sparse import csr_matrix
    from scipy.sparse.csgraph import breadth_first_order as _sparse_bfs_order
except ImportError:  # pragma: no cover - exercised only without scipy
    csr_matrix = None
    _sparse_bfs_order = None

from repro.charlib.library import DelaySlewLibrary
from repro.core.options import CTSOptions
from repro.core.routing_common import (
    MazeSearch,
    RoutedPath,
    RouteResult,
    RouteTerminal,
    choose_pitch,
    run_maze_search,
)
from repro.core.segment_builder import PathBuilder, SegmentTables
from repro.geom.bbox import BBox
from repro.geom.point import Point
from repro.geom.segment import PathPolyline

_UNREACHED = -1

#: 4-connected neighborhood; the order is the neighbor priority of the
#: deterministic distance-descent (:meth:`MazeGrid.descend`).
_DIRECTIONS = ((1, 0), (-1, 0), (0, 1), (0, -1))


class MazeGrid:
    """A square-pitch routing grid with blocked cells."""

    def __init__(self, bbox: BBox, pitch: float):
        self.bbox = bbox
        self.pitch = pitch
        self.nx = int(np.ceil(bbox.width / pitch)) + 1
        self.ny = int(np.ceil(bbox.height / pitch)) + 1
        self.blocked = np.zeros((self.nx, self.ny), dtype=bool)
        self._adj = None  # cached CSR adjacency; invalidated by block()
        self._xs = None  # cached cell-center coordinate axes
        self._ys = None
        self._any_blocked = False

    def block(self, region: BBox) -> None:
        """Block every cell whose center lies inside ``region``."""
        if self._xs is None:
            self._xs = self.bbox.xmin + np.arange(self.nx) * self.pitch
            self._ys = self.bbox.ymin + np.arange(self.ny) * self.pitch
        in_x = (self._xs >= region.xmin) & (self._xs <= region.xmax)
        in_y = (self._ys >= region.ymin) & (self._ys <= region.ymax)
        if in_x.any() and in_y.any():
            self.blocked |= in_x[:, None] & in_y[None, :]
            self._any_blocked = True
        self._adj = None

    def block_reference(self, region: BBox) -> None:
        """Cell-by-cell reference implementation of :meth:`block`."""
        for i in range(self.nx):
            for j in range(self.ny):
                if region.contains(self.center(i, j)):
                    self.blocked[i, j] = True
                    self._any_blocked = True
        self._adj = None

    def center(self, i: int, j: int) -> Point:
        return Point(self.bbox.xmin + i * self.pitch, self.bbox.ymin + j * self.pitch)

    def nearest(self, p: Point) -> tuple[int, int]:
        i = int(round((p.x - self.bbox.xmin) / self.pitch))
        j = int(round((p.y - self.bbox.ymin) / self.pitch))
        return (min(max(i, 0), self.nx - 1), min(max(j, 0), self.ny - 1))

    def nearest_free(self, cell: tuple[int, int]) -> tuple[int, int]:
        """Closest unblocked cell to ``cell`` (Manhattan distance).

        The scan order is fixed and documented so the fallback is
        deterministic under shared tiles: free cells are enumerated in
        row-major order (ascending ``i``, then ascending ``j``) and ties
        in Manhattan distance resolve to the first one enumerated — the
        lowest ``i``, and among equal ``i`` the lowest ``j``. The choice
        is a pure function of the blocked mask, so every window served
        from the same tile (no matter which pair first touched it) snaps
        an identical point to the identical cell.
        """
        if not self.blocked[cell]:
            return cell
        ii, jj = np.nonzero(~self.blocked)
        if ii.size == 0:
            raise ValueError("grid is fully blocked")
        k = int(np.argmin(np.abs(ii - cell[0]) + np.abs(jj - cell[1])))
        return (int(ii[k]), int(jj[k]))

    def bfs(self, start: tuple[int, int]) -> np.ndarray:
        """BFS step distances from ``start`` (4-connected, blocked-aware).

        Dispatches through the consolidated :data:`BFS_ENGINE`. Unreached
        (and blocked) cells hold ``-1``. Paths are recovered from the
        distance field with :meth:`descend`, never from BFS bookkeeping,
        so every engine strategy yields identical routing results.
        """
        return BFS_ENGINE.distances(self, [start])[0]

    def bfs_many(self, starts: list[tuple[int, int]]) -> list[np.ndarray]:
        """Distance fields from several starts (one engine round)."""
        return BFS_ENGINE.distances(self, starts)

    def bfs_reference(self, start: tuple[int, int]) -> np.ndarray:
        """Queue-based reference implementation of :meth:`bfs`.

        Defines the semantics every engine strategy is tested against,
        and serves as the seed baseline the perf harness times.
        """
        dist = np.full((self.nx, self.ny), _UNREACHED, dtype=int)
        if self.blocked[start]:
            raise ValueError(f"start cell {start} is blocked")
        dist[start] = 0
        queue = deque([start])
        while queue:
            i, j = queue.popleft()
            d = dist[i, j]
            for di, dj in _DIRECTIONS:
                ni, nj = i + di, j + dj
                if 0 <= ni < self.nx and 0 <= nj < self.ny:
                    if not self.blocked[ni, nj] and dist[ni, nj] == _UNREACHED:
                        dist[ni, nj] = d + 1
                        queue.append((ni, nj))
        return dist

    def _adjacency(self):
        """CSR adjacency of the free cells, assembled without a COO sort.

        For each cell the (up to 4) free neighbors are emitted in
        column-ascending order (-ny, -1, +1, +ny), so the data/indices/
        indptr triple is already canonical CSR.
        """
        if self._adj is not None:
            return self._adj
        nx, ny, n = self.nx, self.ny, self.nx * self.ny
        free = ~self.blocked
        codes = np.arange(n, dtype=np.int32).reshape(nx, ny)
        m = np.zeros((nx, ny, 4), dtype=bool)
        m[1:, :, 0] = free[1:, :] & free[:-1, :]  # neighbor (i-1, j)
        m[:, 1:, 1] = free[:, 1:] & free[:, :-1]  # neighbor (i, j-1)
        m[:, :-1, 2] = free[:, :-1] & free[:, 1:]  # neighbor (i, j+1)
        m[:-1, :, 3] = free[:-1, :] & free[1:, :]  # neighbor (i+1, j)
        offsets = np.array([-ny, -1, 1, ny], dtype=np.int32)
        cols4 = codes[:, :, None] + offsets[None, None, :]
        mflat = m.reshape(n, 4)
        indptr = np.zeros(n + 1, dtype=np.int32)
        np.cumsum(mflat.sum(axis=1, dtype=np.int32), out=indptr[1:])
        cols = cols4.reshape(n, 4)[mflat]
        data = np.ones(cols.size, dtype=np.int8)
        self._adj = csr_matrix((data, cols, indptr), shape=(n, n))
        return self._adj

    def staircase_arrays(
        self, start: tuple[int, int], cell: tuple[int, int]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Cell coordinates of the unblocked shortest path, as arrays.

        The canonical obstacle-free staircase (a y-run from the start
        followed by an x-run), produced without any BFS at all.
        """
        i0, j0 = start
        i1, j1 = cell
        js = np.arange(j0, j1, 1 if j1 >= j0 else -1)
        xs = np.arange(i0, i1, 1 if i1 >= i0 else -1)
        ci = np.concatenate([np.full(js.size, i0), xs, [i1]])
        cj = np.concatenate([js, np.full(xs.size + 1, j1)])
        return ci, cj

    def descend(
        self, dist: np.ndarray, cell: tuple[int, int]
    ) -> list[tuple[int, int]]:
        """Cell sequence from the BFS start to ``cell`` (inclusive).

        Walks the distance field from ``cell`` downhill (each step to a
        neighbor one BFS level closer), taking the first qualifying
        neighbor in the fixed ``_DIRECTIONS`` priority (+x, -x, +y, -y).
        The path is therefore a pure, deterministic function of the
        distance field — independent of which BFS strategy produced it —
        which is what keeps shared-window and per-pair routing results
        identical.
        """
        i, j = cell
        d = int(dist[i, j])
        if d < 0:
            raise ValueError(f"cell {cell} was not reached by this BFS")
        path = [cell]
        while d > 0:
            for di, dj in _DIRECTIONS:
                ni, nj = i + di, j + dj
                if (
                    0 <= ni < self.nx
                    and 0 <= nj < self.ny
                    and dist[ni, nj] == d - 1
                ):
                    i, j, d = ni, nj, d - 1
                    path.append((ni, nj))
                    break
            else:  # pragma: no cover - would mean an inconsistent field
                raise RuntimeError("inconsistent BFS distance field")
        path.reverse()
        return path


class BfsEngine:
    """The consolidated maze-BFS engine (one contract, three strategies).

    Consolidates the seed's five variants (``bfs`` / ``bfs_sparse`` /
    ``bfs_wave`` / ``bfs_multi`` / ``bfs_unblocked``) behind a single
    entry point returning distance fields only:

    - :meth:`closed_form` — obstacle-free grids: the distance field is
      the Manhattan step count, no traversal at all;
    - :meth:`sparse` — scipy's C breadth-first traversal
      (:func:`~scipy.sparse.csgraph.breadth_first_order`, ~6x cheaper per
      call than ``csgraph.dijkstra`` on routing-window-sized grids) plus
      a vectorized pointer-doubling depth reconstruction over the
      predecessor forest;
    - :meth:`wave` — the numpy frontier-dilation wave, for hosts without
      scipy.

    Cross-pair batching note: stacking many windows into one
    block-diagonal graph and issuing a single multi-source csgraph call
    was measured and *loses* — scipy initializes per-source output over
    the whole stacked graph, so the per-call overhead saved is repaid as
    O(pairs^2) array fills. The profitable batch axis is the lockstep
    *round* (:func:`repro.core.grid_cache.route_level` advances every
    pair of a level through window-expansion rounds together), with each
    grid answered by the cheapest per-grid strategy here.
    """

    def distances(
        self, grid: MazeGrid, starts: list[tuple[int, int]]
    ) -> list[np.ndarray]:
        """Distance fields from ``starts`` (the single dispatch point)."""
        for start in starts:
            if grid.blocked[start]:
                raise ValueError(f"start cell {start} is blocked")
        if not grid._any_blocked:
            return [self.closed_form(grid, s) for s in starts]
        if _sparse_bfs_order is not None:
            return [self.sparse(grid, s) for s in starts]
        return [self.wave(grid, s) for s in starts]

    def closed_form(self, grid: MazeGrid, start: tuple[int, int]) -> np.ndarray:
        """Manhattan step counts — exactly what BFS returns with no
        obstacles."""
        i0, j0 = start
        di = np.abs(np.arange(grid.nx) - i0)
        dj = np.abs(np.arange(grid.ny) - j0)
        return di[:, None] + dj[None, :]

    def sparse(self, grid: MazeGrid, start: tuple[int, int]) -> np.ndarray:
        """C breadth-first traversal + vectorized depth reconstruction.

        ``breadth_first_order`` returns the BFS predecessor forest; node
        depths are recovered by pointer doubling (each round, every node
        jumps to its pointer's pointer and accumulates the hops folded
        into it), which is O(n log depth) in a handful of numpy passes.
        """
        flat = start[0] * grid.ny + start[1]
        order, pred = _sparse_bfs_order(
            grid._adjacency(), flat, directed=True, return_predecessors=True
        )
        n = grid.nx * grid.ny
        hops = np.where(pred >= 0, 1, 0)
        ptr = np.where(pred >= 0, pred, -1)
        while True:
            valid = np.flatnonzero(ptr >= 0)
            if valid.size == 0:
                break
            pv = ptr[valid]
            hops[valid] += hops[pv]
            ptr[valid] = ptr[pv]
        dist = np.full(n, _UNREACHED, dtype=int)
        dist[order] = hops[order]
        return dist.reshape(grid.nx, grid.ny)

    def wave(self, grid: MazeGrid, start: tuple[int, int]) -> np.ndarray:
        """Numpy frontier-dilation BFS (the scipy-free vectorized path).

        Each wave shifts the current frontier mask one cell in every
        direction and claims the still-unreached free cells. The work per
        wave is confined to the bounding window of the frontier, so
        compact waves stay cheap on big grids.
        """
        nx, ny = grid.nx, grid.ny
        dist = np.full((nx, ny), _UNREACHED, dtype=int)
        unreached = ~grid.blocked
        frontier = np.zeros((nx, ny), dtype=bool)
        frontier[start] = True
        unreached[start] = False
        dist[start] = 0
        ilo, ihi = start[0], start[0] + 1
        jlo, jhi = start[1], start[1] + 1
        d = 0
        while True:
            # Every neighbor of the frontier lies inside the window grown
            # by one cell (clipped to the grid).
            ilo, ihi = max(ilo - 1, 0), min(ihi + 1, nx)
            jlo, jhi = max(jlo - 1, 0), min(jhi + 1, ny)
            fwin = frontier[ilo:ihi, jlo:jhi]
            uwin = unreached[ilo:ihi, jlo:jhi]
            new = np.zeros_like(fwin)
            for di, dj in _DIRECTIONS:
                cand = _shift(fwin, di, dj)
                cand &= uwin
                new |= cand
            if not new.any():
                return dist
            d += 1
            dist[ilo:ihi, jlo:jhi][new] = d
            uwin &= ~new
            frontier[ilo:ihi, jlo:jhi] = new
            # Shrink the window to the new frontier's bounding box.
            rows = np.flatnonzero(new.any(axis=1))
            cols = np.flatnonzero(new.any(axis=0))
            ilo, ihi = ilo + rows[0], ilo + rows[-1] + 1
            jlo, jhi = jlo + cols[0], jlo + cols[-1] + 1


#: The process-wide consolidated engine :class:`MazeGrid` dispatches to.
BFS_ENGINE = BfsEngine()


def _shift(mask: np.ndarray, di: int, dj: int) -> np.ndarray:
    """Mask of cells one ``(di, dj)`` step downstream of ``mask``."""
    out = np.zeros_like(mask)
    if di == 1:
        out[1:, :] = mask[:-1, :]
    elif di == -1:
        out[:-1, :] = mask[1:, :]
    elif dj == 1:
        out[:, 1:] = mask[:, :-1]
    else:
        out[:, :-1] = mask[:, 1:]
    return out


def blocked_path(
    a: Point,
    b: Point,
    pitch: float,
    blockages: list[BBox],
    margin: float,
) -> PathPolyline:
    """Shortest rectilinear path from ``a`` to ``b`` avoiding blockages.

    Used for point-to-point connections outside the merge flow (e.g. the
    source trunk). The window grows around intersecting blockages the
    same way :func:`route_maze` does.
    """
    bbox = BBox.of_points([a, b]).expanded(margin)

    def target_reached(search: MazeSearch) -> bool:
        return search.dists[0][search.cells[1]] != _UNREACHED

    search = run_maze_search(
        [a, b],
        bbox,
        pitch,
        blockages,
        margin,
        target_reached,
        what="trunk terminal",
        n_sources=1,
    )
    grid = search.grid
    cells = grid.descend(search.dists[0], search.cells[1])
    points = [a] + [grid.center(i, j) for i, j in cells[1:-1]] + [b]
    return PathPolyline(_compress_polyline(points))


def _cells_polyline(
    grid: MazeGrid, first: Point, ci: np.ndarray, cj: np.ndarray
) -> list[Point]:
    """``[first] + centers(cells)`` with collinear runs compressed.

    Vectorized equivalent of building every cell-center Point and calling
    :func:`_compress_polyline`: coordinates are computed with the exact
    same expression as :meth:`MazeGrid.center`, and only the bend vertices
    are materialized as Points.
    """
    if ci.size == 0:
        return [first]
    xs = np.concatenate(([first.x], grid.bbox.xmin + ci * grid.pitch))
    ys = np.concatenate(([first.y], grid.bbox.ymin + cj * grid.pitch))
    n = xs.size
    if n <= 2:
        return [first] + [Point(float(x), float(y)) for x, y in zip(xs[1:], ys[1:])]
    same_x = (xs[:-2] == xs[1:-1]) & (xs[1:-1] == xs[2:])
    same_y = (ys[:-2] == ys[1:-1]) & (ys[1:-1] == ys[2:])
    keep = np.flatnonzero(~(same_x | same_y)) + 1
    points = [first]
    points.extend(Point(float(xs[i]), float(ys[i])) for i in keep)
    points.append(Point(float(xs[-1]), float(ys[-1])))
    return points


def staircase_arrays_many(
    starts: list[tuple[int, int]], cells: list[tuple[int, int]]
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Batched :meth:`MazeGrid.staircase_arrays` over many sides.

    Every side's canonical staircase (y-run from the start, then x-run)
    is a clamped ramp in the position-within-side index, so all sides
    build as a handful of global numpy ops over the concatenation and
    split back into per-side views — element for element what the
    per-side calls return.
    """
    if not starts:
        return []
    i0 = np.array([c[0] for c in starts], dtype=np.int64)
    j0 = np.array([c[1] for c in starts], dtype=np.int64)
    i1 = np.array([c[0] for c in cells], dtype=np.int64)
    j1 = np.array([c[1] for c in cells], dtype=np.int64)
    run_x = np.abs(i1 - i0)
    run_y = np.abs(j1 - j0)
    sx = np.sign(i1 - i0)
    sy = np.sign(j1 - j0)
    lens = run_y + run_x + 1
    offs = np.zeros(lens.size, dtype=np.int64)
    np.cumsum(lens[:-1], out=offs[1:])
    pos = np.arange(int(lens.sum()), dtype=np.int64) - np.repeat(offs, lens)
    ry = np.repeat(run_y, lens)
    ci = np.repeat(i0, lens) + np.repeat(sx, lens) * np.maximum(0, pos - ry)
    cj = np.repeat(j0, lens) + np.repeat(sy, lens) * np.minimum(pos, ry)
    splits = np.cumsum(lens)[:-1]
    return list(zip(np.split(ci, splits), np.split(cj, splits)))


def cells_polylines_many(
    firsts: list[Point],
    cis: list[np.ndarray],
    cjs: list[np.ndarray],
    grids: list["MazeGrid"],
) -> list[list[Point]]:
    """Batched :func:`_cells_polyline` over many routed sides.

    All sides' cell coordinates map to layout coordinates in one
    multiply-add over the concatenation (the exact per-element expression
    of :meth:`MazeGrid.center`), bend detection runs as one global triple
    comparison (side boundaries are forced kept, so no cross-side triple
    can drop a point), and only the kept bend vertices materialize as
    Points — the same vertices, in the same order, as per-side
    :func:`_cells_polyline` calls produce.
    """
    n = len(firsts)
    if n == 0:
        return []
    lens = np.array([c.size for c in cis], dtype=np.int64)
    m = lens + 1  # points per side, including the first point
    starts = np.zeros(n, dtype=np.int64)
    np.cumsum(m[:-1], out=starts[1:])
    ends = starts + m - 1
    total = int(m.sum())
    xs = np.empty(total)
    ys = np.empty(total)
    xs[starts] = [p.x for p in firsts]
    ys[starts] = [p.y for p in firsts]
    fill = np.ones(total, dtype=bool)
    fill[starts] = False
    pitches = np.array([g.pitch for g in grids])
    xs[fill] = np.repeat(
        np.array([g.bbox.xmin for g in grids]), lens
    ) + np.concatenate(cis) * np.repeat(pitches, lens)
    ys[fill] = np.repeat(
        np.array([g.bbox.ymin for g in grids]), lens
    ) + np.concatenate(cjs) * np.repeat(pitches, lens)
    keep = np.ones(total, dtype=bool)
    if total > 2:
        same_x = (xs[:-2] == xs[1:-1]) & (xs[1:-1] == xs[2:])
        same_y = (ys[:-2] == ys[1:-1]) & (ys[1:-1] == ys[2:])
        keep[1:-1] = ~(same_x | same_y)
        keep[starts] = True
        keep[ends] = True
    counts = np.add.reduceat(keep.astype(np.int64), starts).tolist()
    kept = np.flatnonzero(keep)
    kept_x = xs[kept].tolist()  # python floats once, not per-vertex numpy
    kept_y = ys[kept].tolist()
    out: list[list[Point]] = []
    pos = 0
    for first, count in zip(firsts, counts):
        points = [first]
        points.extend(
            Point(kept_x[p], kept_y[p]) for p in range(pos + 1, pos + count)
        )
        pos += count
        out.append(points)
    return out


def _compress_polyline(points: list[Point]) -> list[Point]:
    """Drop interior points of collinear (axis-aligned) runs."""
    if len(points) <= 2:
        return points
    out = [points[0]]
    for prev, cur, nxt in zip(points, points[1:], points[2:]):
        same_x = prev.x == cur.x == nxt.x
        same_y = prev.y == cur.y == nxt.y
        if not (same_x or same_y):
            out.append(cur)
    out.append(points[-1])
    return out


def plan_maze_window(
    p1: Point, p2: Point, options: CTSOptions, stage_length: float
) -> tuple[BBox, float, float]:
    """Window geometry of one maze route: (bbox, base pitch, margin).

    Extracted so the shared-window level batcher and the per-pair
    fallback derive byte-identical windows from the same arithmetic.
    """
    dist = p1.manhattan_to(p2)
    if dist <= 0:
        raise ValueError("terminals are coincident; no routing needed")
    span = max(abs(p1.x - p2.x), abs(p1.y - p2.y), dist / 2.0)
    pitch, n_cells = choose_pitch(span, options, stage_length)
    margin = max(1.0, n_cells * options.routing_margin_ratio) * pitch
    return BBox.of_points([p1, p2]).expanded(margin), pitch, margin


def both_reached(search: MazeSearch) -> bool:
    """The merge-route acceptance predicate: some cell sees both fronts."""
    return bool(
        ((search.dists[0] != _UNREACHED) & (search.dists[1] != _UNREACHED)).any()
    )


def rank_candidates(
    dist1: np.ndarray,
    dist2: np.ndarray,
    both: np.ndarray,
    prof1: np.ndarray,
    prof2: np.ndarray,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]:
    """Rank one pair's co-reached cells and pick the merge cell (scalar).

    Ranks only the co-reached cells (ties break on the earliest flat
    index, which the subset preserves, so the winner is identical to
    ranking the full grid with inf sentinels) by successive argmin
    refinement: minimum skew rounded to 15 decimals, then minimum total
    delay, then minimum combined hop count, then the lowest flat index.
    Returns ``(cand, k1, k2, d1, d2, pick)`` — the candidate flat
    indices, both sides' step counts and profile delays, and the winning
    position within ``cand``.

    This is the per-pair reference the level-batched kernel
    (:func:`repro.core.routing_common.rank_level_cells`) is equivalence-
    and property-tested against; both must rank with the exact same key
    arithmetic and tie order or bit-identity breaks.
    """
    cand = np.flatnonzero(both.ravel())
    k1 = dist1.ravel()[cand]
    k2 = dist2.ravel()[cand]
    d1 = prof1[k1]
    d2 = prof2[k2]
    skew = np.abs(d1 - d2)
    total = np.maximum(d1, d2)
    hops = k1 + k2
    # Successive argmin refinement: only the top-ranked cell is needed,
    # and lexsort's stable tie order is the ascending flat index, which
    # each refinement preserves.
    rounded_skew = np.round(skew, 15)
    sel = np.flatnonzero(rounded_skew == rounded_skew.min())
    sel = sel[total[sel] == total[sel].min()]
    sel = sel[hops[sel] == hops[sel].min()]
    pick = int(sel[0])
    return cand, k1, k2, d1, d2, pick


#: Cell budget of one batched-descent chunk: the concatenated distance
#: fields of a chunk stay within this many cells so a level of large
#: (coarsening-capped) windows cannot balloon the copy. Chunking cannot
#: change results — each side's descent reads only its own field.
DESCENT_CELL_BUDGET = 4_000_000


def descend_many(
    sides: list[tuple[np.ndarray, tuple[int, int]]],
    cell_budget: int = DESCENT_CELL_BUDGET,
) -> list[tuple[np.ndarray, np.ndarray]]:
    """Batched :meth:`MazeGrid.descend`: walk many distance fields at once.

    ``sides`` holds ``(dist_field, cell)`` pairs — typically the two
    sides of every blocked merge route of a topology level. All descents
    advance in lockstep numpy steps: one round moves every still-active
    side one BFS level downhill, gathering the four neighbor distances of
    all sides from one concatenated field buffer and choosing, per side,
    the first qualifying neighbor in the fixed ``_DIRECTIONS`` priority
    (+x, -x, +y, -y) — exactly the scalar descent's choice, so the cell
    sequences are bit-identical to per-side :meth:`MazeGrid.descend`
    calls (pinned by the equivalence and property tests).

    Returns one ``(ci, cj)`` integer-array pair per side, start to
    ``cell`` inclusive (index = BFS depth, matching the scalar path
    order). Sides are grouped into chunks of at most ``cell_budget``
    concatenated field cells; results are invariant to the chunking.
    """
    if not sides:
        return []
    out: list[tuple[np.ndarray, np.ndarray]] = []
    chunk: list[tuple[np.ndarray, tuple[int, int]]] = []
    cells_in_chunk = 0
    for side in sides:
        size = side[0].size
        if chunk and cells_in_chunk + size > cell_budget:
            out.extend(_descend_chunk(chunk))
            chunk, cells_in_chunk = [], 0
        chunk.append(side)
        cells_in_chunk += size
    out.extend(_descend_chunk(chunk))
    return out


def _descend_chunk(
    sides: list[tuple[np.ndarray, tuple[int, int]]]
) -> list[tuple[np.ndarray, np.ndarray]]:
    """One lockstep descent round-loop over a chunk of sides.

    Every field is copied into one int32 buffer with a one-cell border
    of sentinel values, so a round needs no bounds checks at all: the
    four neighbor distances of every active side resolve as a single
    fancy-indexed ``(active, 4)`` gather at fixed per-side flat offsets,
    and a border hit reads the sentinel (never equal to a BFS level).
    """
    fields = [dist for dist, _ in sides]
    n = len(fields)
    pnys = np.array([f.shape[1] + 2 for f in fields], dtype=np.int64)
    sizes = np.array([(f.shape[0] + 2) * pny for f, pny in zip(fields, pnys)])
    offs = np.zeros(n, dtype=np.int64)
    np.cumsum(sizes[:-1], out=offs[1:])
    concat = np.full(int(sizes.sum()), _UNREACHED - 1, dtype=np.int32)
    for field, off, size, pny in zip(fields, offs, sizes, pnys):
        view = concat[off : off + size].reshape(-1, pny)
        view[1:-1, 1:-1] = field
    ci = np.array([c[0] for _, c in sides], dtype=np.int64)
    cj = np.array([c[1] for _, c in sides], dtype=np.int64)
    pos = offs + (ci + 1) * pnys + (cj + 1)  # padded flat coordinates
    depth = concat[pos].astype(np.int64)
    if (depth < 0).any():
        bad = int(np.flatnonzero(depth < 0)[0])
        cell = (int(ci[bad]), int(cj[bad]))
        raise ValueError(f"cell {cell} was not reached by this BFS")
    out_lens = depth + 1
    out_offs = np.zeros(n, dtype=np.int64)
    np.cumsum(out_lens[:-1], out=out_offs[1:])
    out_i = np.empty(int(out_lens.sum()), dtype=np.int64)
    out_j = np.empty_like(out_i)
    out_i[out_offs + depth] = ci
    out_j[out_offs + depth] = cj
    active = np.flatnonzero(depth > 0)
    ai, aj, ad, apos = ci[active], cj[active], depth[active], pos[active]
    a_out = out_offs[active]
    # Per-side flat steps of the 4 directions, in _DIRECTIONS priority
    # (+x, -x, +y, -y): on the padded row-major layout those are
    # (+pny, -pny, +1, -1).
    a_steps = np.stack(
        [pnys[active], -pnys[active], np.ones(active.size, dtype=np.int64),
         np.full(active.size, -1, dtype=np.int64)],
        axis=1,
    )
    di_of = np.array([di for di, _ in _DIRECTIONS], dtype=np.int64)
    dj_of = np.array([dj for _, dj in _DIRECTIONS], dtype=np.int64)
    rows = np.arange(active.size)
    while ai.size:
        target = ad - 1
        match = concat[apos[:, None] + a_steps] == target[:, None]
        if not match.any(axis=1).all():  # pragma: no cover - inconsistent field
            raise RuntimeError("inconsistent BFS distance field")
        choice = np.argmax(match, axis=1)  # first qualifying direction
        apos = apos + a_steps[rows[: ai.size], choice]
        ai = ai + di_of[choice]
        aj = aj + dj_of[choice]
        ad = target
        out_i[a_out + ad] = ai
        out_j[a_out + ad] = aj
        keep = ad > 0
        if not keep.all():
            ai, aj, ad, apos = ai[keep], aj[keep], ad[keep], apos[keep]
            a_out, a_steps = a_out[keep], a_steps[keep]
    return [
        (out_i[o : o + n_out], out_j[o : o + n_out])
        for o, n_out in zip(out_offs, out_lens)
    ]


def finish_maze_route(
    search: MazeSearch,
    term1: RouteTerminal,
    term2: RouteTerminal,
    library: DelaySlewLibrary,
    options: CTSOptions,
    tables: SegmentTables | None = None,
    both: np.ndarray | None = None,
    builders: list[PathBuilder] | None = None,
) -> RouteResult:
    """Profile evaluation, cell ranking and path materialization.

    The tail of one maze route, shared by the per-pair path and the
    level batcher. ``tables`` may be a pre-primed
    :class:`~repro.core.segment_builder.SegmentTables` (the batcher fills
    it with vectorized curve rounds per level; its ``n_steps`` then
    carries the co-reached maximum so nothing is recomputed),
    ``both`` the caller's co-reached mask, and ``builders`` the pair's
    two profile builders when the lockstep expansion scheduler
    (:mod:`repro.core.batch_expand`) already expanded them; when
    omitted each is computed here, to the same values.
    """
    grid, pitch = search.grid, search.pitch
    dist1, dist2 = search.dists
    if both is None:
        both = (dist1 != _UNREACHED) & (dist2 != _UNREACHED)

    if tables is None:
        max_k = int(max(dist1[both].max(), dist2[both].max()))
        tables = SegmentTables(library, pitch, max_k + 1, options.target_slew)
    else:
        max_k = tables.n_steps - 1
    if builders is None:
        builders = []
        for term in (term1, term2):
            builders.append(
                PathBuilder(
                    tables,
                    term.base_delay,
                    term.load_name,
                    options.target_slew,
                    library.buffer_names,
                    options.virtual_drive or library.buffer_names[-1],
                    options.sizing_lookahead,
                )
            )
    prof1 = builders[0].delays_up_to(max_k)
    prof2 = builders[1].delays_up_to(max_k)

    cand, k1, k2, d1, d2, pick = rank_candidates(dist1, dist2, both, prof1, prof2)
    best = int(cand[pick])
    bi, bj = np.unravel_index(best, both.shape)
    meeting = grid.center(int(bi), int(bj))
    kk1, kk2 = int(k1[pick]), int(k2[pick])

    def materialize(term, dist, start_cell, builder, k):
        cell = (int(bi), int(bj))
        if not grid._any_blocked:
            # Obstacle-free window: the shortest path is the analytic
            # staircase, so skip the descent entirely.
            ci, cj = grid.staircase_arrays(start_cell, cell)
            ci, cj = ci[1:], cj[1:]
        else:
            cells = grid.descend(dist, cell)[1:]
            ci = np.fromiter((c[0] for c in cells), dtype=float, count=len(cells))
            cj = np.fromiter((c[1] for c in cells), dtype=float, count=len(cells))
        points = _cells_polyline(grid, term.point, ci, cj)
        if len(points) == 1:
            points.append(meeting)
        return RoutedPath(
            term,
            PathPolyline(points),
            builder.state(k),
            pitch,
        )

    c1, c2 = search.cells[0], search.cells[1]
    left = materialize(term1, dist1, c1, builders[0], kk1)
    right = materialize(term2, dist2, c2, builders[1], kk2)
    return RouteResult(
        meeting_point=meeting,
        left=left,
        right=right,
        est_left_delay=float(d1[pick]),
        est_right_delay=float(d2[pick]),
        grid_cells=max(grid.nx, grid.ny),
    )


def route_maze(
    term1: RouteTerminal,
    term2: RouteTerminal,
    library: DelaySlewLibrary,
    options: CTSOptions,
    stage_length: float,
    blockages: list[BBox] | None = None,
    grid_provider=None,
) -> RouteResult:
    """Route one merge with bidirectional maze expansion.

    ``grid_provider`` (``(bbox, pitch) -> (grid, pitch)``) lets the
    shared-window subsystem serve cached tiles; ``None`` rasterizes a
    private window per call (the per-pair fallback). Results are
    identical either way.
    """
    bbox, pitch, margin = plan_maze_window(
        term1.point, term2.point, options, stage_length
    )
    search = run_maze_search(
        [term1.point, term2.point],
        bbox,
        pitch,
        blockages or [],
        margin,
        both_reached,
        provider=grid_provider,
    )
    return finish_maze_route(search, term1, term2, library, options)
