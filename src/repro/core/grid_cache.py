"""Shared-window routing: level-scoped grid tiles + cross-pair batching.

The route phase of one topology level rasterizes, blocks and searches one
maze window per merge pair. This module is the subsystem that shares that
work across the level instead of throwing it away per pair:

- :class:`GridCache` owns the level's **grid tiles**: each distinct
  (window bbox, resolved pitch) key is rasterized and blocked exactly
  once — through the same :func:`~repro.core.routing_common.build_window`
  arithmetic as the per-pair fallback, with the pitch-coarsening decision
  resolved by :func:`~repro.core.routing_common.coarsen_pitch` before any
  allocation — and every later request for the key is served the cached
  tile (mask, axes and the lazily built CSR adjacency included). Repeat
  requests are real in the flow: H-structure correction routes the same
  pair once per candidate pairing, and re-estimation re-routes flipped
  pairs. Reuse, pitch-bucket and rasterization counters are kept in
  :class:`SharingStats`.

- :func:`route_level` is the **cross-pair batcher**: it advances every
  pair of a level through the window-expansion search in lockstep rounds
  (round = one windowing + BFS attempt for all still-unrouted pairs,
  answered by the consolidated
  :class:`~repro.core.maze_router.BfsEngine`), then primes every pair's
  :class:`~repro.core.segment_builder.SegmentTables` with **one
  vectorized curve round per level**: the (drive, load, fn) fit curves
  every pair's profile expansion will ask for are evaluated over the
  concatenation of all pairs' length grids and split back — one
  ``partial_curve`` call per distinct triple instead of one per pair per
  triple.

- :func:`_finish_level` is the **route-finishing kernel**
  (``CTSOptions.batch_route_finish``, default on): every pair's
  co-reached candidate set goes into structure-of-arrays buffers, the
  level's merge cells are picked by one segmented ranking pass
  (:func:`~repro.core.routing_common.rank_level_cells`, scalar-identical
  tie order), and all winning paths on blocked grids materialize through
  one lockstep batched distance-field descent
  (:func:`~repro.core.maze_router.descend_many`). The per-pair
  :func:`~repro.core.maze_router.finish_maze_route` loop is retained as
  the bit-identical fallback (``batch_route_finish=False``).

Bit-identity contract
---------------------

Shared-window results are byte-identical to the per-pair fallback
(``shared_windows=False``), serial or pooled:

- window geometry, pitch coarsening, blockage masking and terminal
  snapping run through the exact same functions as the fallback;
- BFS answers are per-grid engine calls either way (stacking windows
  into one block-diagonal csgraph call was measured and rejected — see
  :class:`~repro.core.maze_router.BfsEngine`), and path geometry is a
  deterministic descent of the distance field;
- the batched curve rounds evaluate the same contracted polynomial
  element-wise over a concatenation, so each pair's slice equals its
  private evaluation bit for bit.

Because every per-pair computation is replicated exactly and the batch
axis only regroups element-wise work, results are also invariant to how
pairs are split into batches — which is what makes the PR 2 worker pool
compose: each worker batch-routes its task slice through a worker-local
cache and the gathered level is still identical to the serial flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

import numpy as np

from repro.charlib.library import DelaySlewLibrary
from repro.core.batch_expand import expand_level
from repro.core.maze_router import (
    _UNREACHED,
    both_reached,
    cells_polylines_many,
    descend_many,
    finish_maze_route,
    plan_maze_window,
    staircase_arrays_many,
)
from repro.core.options import CTSOptions
from repro.core.routing_common import (
    MAX_SEARCH_ATTEMPTS,
    MAX_WINDOW_CELLS,
    MazeSearch,
    RoutedPath,
    RouteResult,
    RouteTerminal,
    build_window,
    coarsen_pitch,
    grow_window,
    rank_level_cells,
    snap_cells,
    uses_maze_router,
)
from repro.core.segment_builder import PathBuilder, SegmentTables
from repro.geom.bbox import BBox
from repro.geom.segment import PathPolyline


@dataclass
class SharingStats:
    """Counters of the shared-window subsystem (diagnostics only).

    ``pitch_buckets`` histograms the coarsening depth of served windows:
    bucket k holds windows whose pitch was coarsened 1.5x k times by the
    ``MAX_WINDOW_CELLS`` budget (bucket 0 = the span-derived base pitch).

    Every counter is an integer total, so :meth:`merge` (field-wise sum)
    is order-independent — which is what lets the worker pool ship each
    batch's stats back to the parent and sum them on gather without the
    result depending on worker scheduling. The per-pair counters
    (``windows_served``, ``pairs_routed``, ``cells_ranked``,
    ``descent_sides``, ``descent_cells``, ``curve_points``,
    ``expansion_lanes``, ``expansion_runs``, ``expansion_insertions``)
    are also invariant to how a level is split into batches; the
    per-call ones (``search_rounds``, ``curve_rounds``,
    ``expansion_rounds``, ``finish_batches``, tile reuse) count once
    per ``route_level`` call and so depend on the (deterministic)
    batch split.
    """

    windows_served: int = 0
    tiles_built: int = 0
    tiles_reused: int = 0
    cells_rasterized: int = 0
    cells_reused: int = 0
    levels: int = 0
    search_rounds: int = 0
    pairs_routed: int = 0
    curve_rounds: int = 0
    curves_evaluated: int = 0
    curve_points: int = 0
    expansion_rounds: int = 0
    expansion_lanes: int = 0
    expansion_runs: int = 0
    expansion_insertions: int = 0
    finish_batches: int = 0
    cells_ranked: int = 0
    descent_sides: int = 0
    descent_cells: int = 0
    pitch_buckets: dict = field(default_factory=dict)

    def note_bucket(self, steps: int) -> None:
        self.pitch_buckets[steps] = self.pitch_buckets.get(steps, 0) + 1

    def merge(self, other: "SharingStats") -> None:
        """Add ``other``'s counts into this one (commutative sums)."""
        for f in fields(self):
            if f.name == "pitch_buckets":
                continue
            setattr(self, f.name, getattr(self, f.name) + getattr(other, f.name))
        for steps, count in other.pitch_buckets.items():
            self.pitch_buckets[steps] = self.pitch_buckets.get(steps, 0) + count

    def as_dict(self) -> dict:
        data = {f.name: getattr(self, f.name) for f in fields(self)}
        data["pitch_buckets"] = {
            str(k): v for k, v in sorted(self.pitch_buckets.items())
        }
        return data


class GridCache:
    """Level-scoped cache of rasterized + blocked routing-grid tiles.

    Keys are the exact window geometry ``(bbox corners, resolved pitch)``;
    values are fully blocked :class:`~repro.core.maze_router.MazeGrid`
    tiles, built once via :func:`build_window` and shared (including the
    lazily cached CSR adjacency) by every window that resolves to the
    same key. Tiles are immutable after construction — nothing in the
    route flow mutates a served grid — which is what makes
    :meth:`MazeGrid.nearest_free`'s documented fallback scan
    deterministic no matter which pair first touched the tile.

    :meth:`reset` starts a new level: tiles are dropped (windows are
    level-scoped; keys recur within a level, not across levels, so
    holding them longer only grows memory), counters persist.
    """

    def __init__(
        self,
        blockages: list[BBox] | None = None,
        cell_cap: int = MAX_WINDOW_CELLS,
        stats: SharingStats | None = None,
    ):
        self.blockages = list(blockages or [])
        self.cell_cap = cell_cap
        self.stats = stats if stats is not None else SharingStats()
        self._tiles: dict[tuple, object] = {}

    def reset(self) -> None:
        """Start a new topology level (drop tiles, keep counters)."""
        self._tiles.clear()
        self.stats.levels += 1

    def window(self, bbox: BBox, pitch: float):
        """A blocked grid for ``bbox`` at the coarsening-resolved pitch.

        Returns ``(grid, resolved_pitch)`` exactly like
        :func:`build_window`; the only difference is that equal keys are
        served the same tile object.
        """
        resolved = coarsen_pitch(bbox, pitch, self.cell_cap)
        key = (bbox.xmin, bbox.ymin, bbox.xmax, bbox.ymax, resolved)
        self.stats.windows_served += 1
        grid = self._tiles.get(key)
        if grid is None:
            grid, _ = build_window(bbox, resolved, self.blockages, self.cell_cap)
            self._tiles[key] = grid
            self.stats.tiles_built += 1
            self.stats.cells_rasterized += grid.nx * grid.ny
            # Coarsening depth: resolved = pitch * 1.5^k.
            steps = 0 if resolved == pitch else int(
                round(np.log(resolved / pitch) / np.log(1.5))
            )
            self.stats.note_bucket(steps)
        else:
            self.stats.tiles_reused += 1
            self.stats.cells_reused += grid.nx * grid.ny
        return grid, resolved

    def provider(self):
        """The ``(bbox, pitch) -> (grid, pitch)`` hook for maze searches."""
        return self.window


# ----------------------------------------------------------------------
# The cross-pair level batcher
# ----------------------------------------------------------------------

#: Candidate-row budget of one ranking chunk (see :func:`_finish_level`):
#: large enough that per-call numpy overhead amortizes away (a chunk
#: spans dozens of pairs), small enough that the chunk's ~8 live key
#: arrays stay cache-resident — the ranking is pure streaming passes, so
#: spilling to memory loses to the cache-hot per-pair loop. 32k rows
#: measured fastest on the 1000-sink blockage scenario (0.287 s route
#: phase vs 0.317 s at 256k rows and 0.303 s at 16k).
RANK_ROW_BUDGET = 32_768


@dataclass
class _PairSearch:
    """Lockstep search state of one pair (one window-expansion attempt
    per round until both fronts meet)."""

    index: int
    term1: RouteTerminal
    term2: RouteTerminal
    bbox: BBox
    pitch: float
    margin: float
    search: MazeSearch | None = None
    both: np.ndarray | None = None  # co-reached mask, reused by finish


def _search_rounds(
    pending: list[_PairSearch],
    blockages: list[BBox],
    cache: GridCache,
    stats: SharingStats,
) -> None:
    """Advance all pairs through window-expansion attempts in lockstep.

    Each round serves every still-unrouted pair one window (tile cache),
    snaps its terminals, and runs its BFS pair through the consolidated
    engine; pairs whose fronts met leave the round, the rest grow their
    window around intersecting blockages and re-enter — the same per-pair
    trajectory ``run_maze_search`` walks, just advanced level-wide.
    """
    for _ in range(MAX_SEARCH_ATTEMPTS):
        if not pending:
            return
        stats.search_rounds += 1
        still_pending: list[_PairSearch] = []
        for job in pending:
            grid, job.pitch = cache.window(job.bbox, job.pitch)
            points = [job.term1.point, job.term2.point]
            cells = snap_cells(grid, points, blockages, "terminal")
            dists = grid.bfs_many(cells)
            search = MazeSearch(grid, job.pitch, cells, dists)
            if both_reached(search):
                job.search = search
                continue
            grown = grow_window(job.bbox, blockages, job.margin)
            if grown is None:
                raise RuntimeError("terminals are disconnected by blockages")
            job.bbox = grown
            still_pending.append(job)
        pending = still_pending
    if pending:
        raise RuntimeError("terminals are disconnected by blockages")


def _finish_level(
    primed: list[tuple[_PairSearch, SegmentTables]],
    library: DelaySlewLibrary,
    options: CTSOptions,
    stats: SharingStats,
    results: list[RouteResult | None],
    builders_by_pair: list[list[PathBuilder]] | None = None,
) -> None:
    """The level-wide route-finishing kernel (one ranking pass, batched
    descent).

    The batched twin of per-pair :func:`finish_maze_route` calls: every
    pair's co-reached candidate cells are collected into
    structure-of-arrays buffers (candidate flat index, both sides' step
    counts, pair segment boundaries), the profile costs are gathered with
    one fancy index over the concatenation of all pairs' distance
    profiles, and the merge cells of the whole level are picked by one
    segmented ranking pass (:func:`rank_level_cells`, scalar-identical
    tie order). Winning paths on blocked grids then materialize through
    one lockstep batched descent
    (:func:`repro.core.maze_router.descend_many`); obstacle-free windows
    keep the analytic staircase.

    ``builders_by_pair`` (from the lockstep expansion scheduler,
    :func:`repro.core.batch_expand.expand_level`) supplies each pair's
    two already-expanded profile builders; ``None`` builds and expands
    them here, pair by pair — the same states either way.

    Bit-identity with the per-pair fallback: profile evaluation runs the
    same :class:`PathBuilder` state machines over the same primed tables;
    the ranking keys are gathers and element-wise maps of the same
    floats; the refinement compares (never combines) them; the descent
    replicates the scalar neighbor priority on the same distance fields.
    Batching only regroups element-wise work, so results are also
    invariant to how pairs are split into batches.
    """
    if not primed:
        return
    virtual = options.virtual_drive or library.buffer_names[-1]
    builders: list[list[PathBuilder]] = []
    cand_list: list[np.ndarray] = []
    k1_list: list[np.ndarray] = []
    k2_list: list[np.ndarray] = []
    prof1_list: list[np.ndarray] = []
    prof2_list: list[np.ndarray] = []
    for pos, (job, tables) in enumerate(primed):
        dist1, dist2 = job.search.dists
        if builders_by_pair is not None:
            pair_builders = builders_by_pair[pos]
        else:
            pair_builders = [
                PathBuilder(
                    tables,
                    term.base_delay,
                    term.load_name,
                    options.target_slew,
                    library.buffer_names,
                    virtual,
                    options.sizing_lookahead,
                )
                for term in (job.term1, job.term2)
            ]
        max_k = tables.n_steps - 1
        prof1_list.append(pair_builders[0].delays_view(max_k))
        prof2_list.append(pair_builders[1].delays_view(max_k))
        builders.append(pair_builders)
        cand = np.flatnonzero(job.both.ravel())
        cand_list.append(cand)
        k1_list.append(dist1.ravel()[cand])
        k2_list.append(dist2.ravel()[cand])

    # The ranking pass, in pair-group chunks of at most RANK_ROW_BUDGET
    # candidate rows: chunking keeps every key array and profile gather
    # cache-resident (one level's concatenation would stream the whole
    # working set through memory on every pass, losing to the cache-hot
    # per-pair loop) while still amortizing the per-call overhead over
    # thousands of rows. Segments stay whole, so the winners are
    # invariant to the chunk boundaries.
    n_pairs = len(primed)
    kk1 = np.empty(n_pairs, dtype=np.int64)
    kk2 = np.empty(n_pairs, dtype=np.int64)
    best = np.empty(n_pairs, dtype=np.int64)
    est1 = np.empty(n_pairs)
    est2 = np.empty(n_pairs)
    lo = 0
    while lo < n_pairs:
        hi = lo + 1
        rows = cand_list[lo].size
        while hi < n_pairs and rows + cand_list[hi].size <= RANK_ROW_BUDGET:
            rows += cand_list[hi].size
            hi += 1
        counts = np.array([c.size for c in cand_list[lo:hi]], dtype=np.int64)
        k1 = np.concatenate(k1_list[lo:hi])
        k2 = np.concatenate(k2_list[lo:hi])
        # Profile costs: one gather per side over the chunk's
        # concatenated profiles (each pair's rows index its own slice
        # via the segment offset).
        prof_lens = np.array([p.size for p in prof1_list[lo:hi]], dtype=np.int64)
        prof_offs = np.zeros(prof_lens.size, dtype=np.int64)
        np.cumsum(prof_lens[:-1], out=prof_offs[1:])
        row_offs = np.repeat(prof_offs, counts)
        d1 = np.concatenate(prof1_list[lo:hi])[k1 + row_offs]
        d2 = np.concatenate(prof2_list[lo:hi])[k2 + row_offs]
        skew = np.abs(d1 - d2)
        total = np.maximum(d1, d2)
        hops = k1 + k2
        winners = rank_level_cells(counts, np.round(skew, 15), total, hops)
        best[lo:hi] = np.concatenate(cand_list[lo:hi])[winners]
        kk1[lo:hi] = k1[winners]
        kk2[lo:hi] = k2[winners]
        est1[lo:hi] = d1[winners]
        est2[lo:hi] = d2[winners]
        stats.cells_ranked += int(counts.sum())
        lo = hi
    stats.finish_batches += 1

    nys = np.array([job.search.grid.ny for job, _ in primed], dtype=np.int64)
    bi = best // nys
    bj = best % nys

    # Blocked sides join the lockstep batched descent, obstacle-free
    # sides the batched analytic staircase (two per pair, in pair order).
    cells = list(zip(bi.tolist(), bj.tolist()))
    slot: dict[int, int] = {}
    stair_slot: dict[int, int] = {}
    descent_sides: list[tuple[np.ndarray, tuple[int, int]]] = []
    stair_starts: list[tuple[int, int]] = []
    stair_cells: list[tuple[int, int]] = []
    for pos, (job, _) in enumerate(primed):
        if job.search.grid._any_blocked:
            slot[pos] = len(descent_sides)
            descent_sides.append((job.search.dists[0], cells[pos]))
            descent_sides.append((job.search.dists[1], cells[pos]))
        else:
            stair_slot[pos] = len(stair_starts)
            stair_starts.extend(job.search.cells[:2])
            stair_cells.extend((cells[pos], cells[pos]))
    paths = descend_many(descent_sides)
    staircases = staircase_arrays_many(stair_starts, stair_cells)
    stats.descent_sides += len(descent_sides)
    stats.descent_cells += sum(int(ci.size) for ci, _ in paths)

    # All sides' cell sequences compress to polylines in one batched
    # pass (two sides per pair, in pair order).
    firsts: list = []
    side_ci: list[np.ndarray] = []
    side_cj: list[np.ndarray] = []
    side_grids: list = []
    for pos, (job, _) in enumerate(primed):
        grid = job.search.grid
        blocked = grid._any_blocked
        for side, term in enumerate((job.term1, job.term2)):
            if blocked:
                ci, cj = paths[slot[pos] + side]
            else:
                ci, cj = staircases[stair_slot[pos] + side]
            firsts.append(term.point)
            side_ci.append(ci[1:])
            side_cj.append(cj[1:])
            side_grids.append(grid)
    polylines = cells_polylines_many(firsts, side_ci, side_cj, side_grids)

    lines = iter(polylines)
    for (job, _), pair_builders, cell, k1s, k2s, e1, e2, left_pts, right_pts in zip(
        primed,
        builders,
        cells,
        kk1.tolist(),
        kk2.tolist(),
        est1.tolist(),
        est2.tolist(),
        lines,
        lines,
    ):
        grid, pitch = job.search.grid, job.search.pitch
        meeting = grid.center(*cell)
        sides: list[RoutedPath] = []
        for builder, term, k_steps, points in (
            (pair_builders[0], job.term1, k1s, left_pts),
            (pair_builders[1], job.term2, k2s, right_pts),
        ):
            if len(points) == 1:
                points.append(meeting)
            sides.append(
                RoutedPath(
                    term,
                    PathPolyline(points),
                    builder.state(k_steps),
                    pitch,
                )
            )
        results[job.index] = RouteResult(
            meeting_point=meeting,
            left=sides[0],
            right=sides[1],
            est_left_delay=e1,
            est_right_delay=e2,
            grid_cells=max(grid.nx, grid.ny),
        )
    stats.pairs_routed += len(primed)


def route_level(
    pairs: list[tuple[RouteTerminal, RouteTerminal] | None],
    library: DelaySlewLibrary,
    options: CTSOptions,
    stage_length: float,
    blockages: list[BBox],
    cache: GridCache | None = None,
    stats: SharingStats | None = None,
    resilience=None,
) -> list[RouteResult | None]:
    """Route one topology level's merge pairs through shared windows.

    ``pairs`` entries may be ``None`` (coincident or otherwise unroutable
    slots); results come back indexed like the input. Obstacle-free
    profile routing has no windows to share and is dispatched per pair
    unchanged; the maze path runs the lockstep search rounds, the
    lockstep profile-expansion scheduler
    (:func:`repro.core.batch_expand.expand_level` — grouped curve
    rounds + masked insertion sub-rounds; ``batch_expansion=False``
    falls back to per-pair lazy expansion), then the level-wide
    finishing kernel (:func:`_finish_level`) — or, with
    ``batch_route_finish=False``, the retained per-pair ranking and
    materialization (reusing the scheduler's builders when it ran).

    ``resilience`` (a :class:`~repro.core.resilience.ResilienceLog`)
    arms both kernels' degradation guards: on an unexpected exception
    the level's pairs re-expand/re-finish one by one (bit-identical —
    the kernels only regroup the per-pair work) and one
    ``batch_expansion`` / ``batch_route_finish`` degradation is noted.
    With ``None`` (pool workers) the exception propagates to the
    supervised gather instead.
    """
    if cache is None:
        cache = GridCache(blockages)
    if stats is None:
        stats = cache.stats
    plan = None
    if options.fault_plan:
        from repro.evalx.faultinject import active_plan

        plan = active_plan(options.fault_plan)
        plan.consult("shared_windows")
    results: list[RouteResult | None] = [None] * len(pairs)
    if not uses_maze_router(options, blockages):
        from repro.core.profile_router import route_profile

        for i, pair in enumerate(pairs):
            if pair is not None:
                results[i] = route_profile(
                    pair[0], pair[1], library, options, stage_length
                )
        return results

    jobs: list[_PairSearch] = []
    for i, pair in enumerate(pairs):
        if pair is None:
            continue
        term1, term2 = pair
        bbox, pitch, margin = plan_maze_window(
            term1.point, term2.point, options, stage_length
        )
        jobs.append(_PairSearch(i, term1, term2, bbox, pitch, margin))

    _search_rounds(list(jobs), blockages, cache, stats)

    primed: list[tuple[_PairSearch, SegmentTables]] = []
    for job in jobs:
        dist1, dist2 = job.search.dists
        job.both = (dist1 != _UNREACHED) & (dist2 != _UNREACHED)
        max_k = int(max(dist1[job.both].max(), dist2[job.both].max()))
        tables = SegmentTables(
            library, job.search.pitch, max_k + 1, options.target_slew
        )
        primed.append((job, tables))

    builders_by_pair: list[list[PathBuilder]] | None = None
    if options.batch_expansion:
        try:
            if plan is not None:
                plan.consult("batch_expansion")
            builders_by_pair = expand_level(primed, library, options, stats)
        except MemoryError:
            raise
        except Exception as exc:
            if resilience is None:
                raise
            resilience.note("batch_expansion", exc)
            # Replay per pair: the scheduler's partially primed tables
            # hold byte-identical values (priming only regroups the
            # evaluations), so lazy per-pair expansion — here or inside
            # the finish below — completes them to the same profiles.
            builders_by_pair = None

    if options.batch_route_finish:
        try:
            if plan is not None:
                plan.consult("route_finish")
            _finish_level(
                primed, library, options, stats, results, builders_by_pair
            )
            return results
        except MemoryError:
            raise
        except Exception as exc:
            if resilience is None:
                raise
            resilience.note("batch_route_finish", exc)
            # Replay the level per pair: the kernel had not touched
            # ``results`` for any pair it did not fully finish, and
            # per-pair finishing recomputes every slot from the intact
            # search state anyway.
    for pos, (job, tables) in enumerate(primed):
        results[job.index] = finish_maze_route(
            job.search,
            job.term1,
            job.term2,
            library,
            options,
            tables,
            both=job.both,
            builders=None if builders_by_pair is None else builders_by_pair[pos],
        )
        stats.pairs_routed += 1
    return results
