"""Shared-window routing: level-scoped grid tiles + cross-pair batching.

The route phase of one topology level rasterizes, blocks and searches one
maze window per merge pair. This module is the subsystem that shares that
work across the level instead of throwing it away per pair:

- :class:`GridCache` owns the level's **grid tiles**: each distinct
  (window bbox, resolved pitch) key is rasterized and blocked exactly
  once — through the same :func:`~repro.core.routing_common.build_window`
  arithmetic as the per-pair fallback, with the pitch-coarsening decision
  resolved by :func:`~repro.core.routing_common.coarsen_pitch` before any
  allocation — and every later request for the key is served the cached
  tile (mask, axes and the lazily built CSR adjacency included). Repeat
  requests are real in the flow: H-structure correction routes the same
  pair once per candidate pairing, and re-estimation re-routes flipped
  pairs. Reuse, pitch-bucket and rasterization counters are kept in
  :class:`SharingStats`.

- :func:`route_level` is the **cross-pair batcher**: it advances every
  pair of a level through the window-expansion search in lockstep rounds
  (round = one windowing + BFS attempt for all still-unrouted pairs,
  answered by the consolidated
  :class:`~repro.core.maze_router.BfsEngine`), then primes every pair's
  :class:`~repro.core.segment_builder.SegmentTables` with **one
  vectorized curve round per level**: the (drive, load, fn) fit curves
  every pair's profile expansion will ask for are evaluated over the
  concatenation of all pairs' length grids and split back — one
  ``partial_curve`` call per distinct triple instead of one per pair per
  triple.

Bit-identity contract
---------------------

Shared-window results are byte-identical to the per-pair fallback
(``shared_windows=False``), serial or pooled:

- window geometry, pitch coarsening, blockage masking and terminal
  snapping run through the exact same functions as the fallback;
- BFS answers are per-grid engine calls either way (stacking windows
  into one block-diagonal csgraph call was measured and rejected — see
  :class:`~repro.core.maze_router.BfsEngine`), and path geometry is a
  deterministic descent of the distance field;
- the batched curve rounds evaluate the same contracted polynomial
  element-wise over a concatenation, so each pair's slice equals its
  private evaluation bit for bit.

Because every per-pair computation is replicated exactly and the batch
axis only regroups element-wise work, results are also invariant to how
pairs are split into batches — which is what makes the PR 2 worker pool
compose: each worker batch-routes its task slice through a worker-local
cache and the gathered level is still identical to the serial flow.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields

import numpy as np

from repro.charlib.library import DelaySlewLibrary
from repro.core.maze_router import (
    _UNREACHED,
    both_reached,
    finish_maze_route,
    plan_maze_window,
)
from repro.core.options import CTSOptions
from repro.core.routing_common import (
    MAX_SEARCH_ATTEMPTS,
    MAX_WINDOW_CELLS,
    MazeSearch,
    RouteResult,
    RouteTerminal,
    build_window,
    coarsen_pitch,
    grow_window,
    snap_cells,
    uses_maze_router,
)
from repro.core.segment_builder import SegmentTables
from repro.geom.bbox import BBox


@dataclass
class SharingStats:
    """Counters of the shared-window subsystem (diagnostics only).

    ``pitch_buckets`` histograms the coarsening depth of served windows:
    bucket k holds windows whose pitch was coarsened 1.5x k times by the
    ``MAX_WINDOW_CELLS`` budget (bucket 0 = the span-derived base pitch).
    """

    windows_served: int = 0
    tiles_built: int = 0
    tiles_reused: int = 0
    cells_rasterized: int = 0
    cells_reused: int = 0
    levels: int = 0
    search_rounds: int = 0
    pairs_routed: int = 0
    curve_rounds: int = 0
    curves_evaluated: int = 0
    curve_points: int = 0
    pitch_buckets: dict = field(default_factory=dict)

    def note_bucket(self, steps: int) -> None:
        self.pitch_buckets[steps] = self.pitch_buckets.get(steps, 0) + 1

    def as_dict(self) -> dict:
        data = {f.name: getattr(self, f.name) for f in fields(self)}
        data["pitch_buckets"] = {
            str(k): v for k, v in sorted(self.pitch_buckets.items())
        }
        return data


class GridCache:
    """Level-scoped cache of rasterized + blocked routing-grid tiles.

    Keys are the exact window geometry ``(bbox corners, resolved pitch)``;
    values are fully blocked :class:`~repro.core.maze_router.MazeGrid`
    tiles, built once via :func:`build_window` and shared (including the
    lazily cached CSR adjacency) by every window that resolves to the
    same key. Tiles are immutable after construction — nothing in the
    route flow mutates a served grid — which is what makes
    :meth:`MazeGrid.nearest_free`'s documented fallback scan
    deterministic no matter which pair first touched the tile.

    :meth:`reset` starts a new level: tiles are dropped (windows are
    level-scoped; keys recur within a level, not across levels, so
    holding them longer only grows memory), counters persist.
    """

    def __init__(
        self,
        blockages: list[BBox] | None = None,
        cell_cap: int = MAX_WINDOW_CELLS,
        stats: SharingStats | None = None,
    ):
        self.blockages = list(blockages or [])
        self.cell_cap = cell_cap
        self.stats = stats if stats is not None else SharingStats()
        self._tiles: dict[tuple, object] = {}

    def reset(self) -> None:
        """Start a new topology level (drop tiles, keep counters)."""
        self._tiles.clear()
        self.stats.levels += 1

    def window(self, bbox: BBox, pitch: float):
        """A blocked grid for ``bbox`` at the coarsening-resolved pitch.

        Returns ``(grid, resolved_pitch)`` exactly like
        :func:`build_window`; the only difference is that equal keys are
        served the same tile object.
        """
        resolved = coarsen_pitch(bbox, pitch, self.cell_cap)
        key = (bbox.xmin, bbox.ymin, bbox.xmax, bbox.ymax, resolved)
        self.stats.windows_served += 1
        grid = self._tiles.get(key)
        if grid is None:
            grid, _ = build_window(bbox, resolved, self.blockages, self.cell_cap)
            self._tiles[key] = grid
            self.stats.tiles_built += 1
            self.stats.cells_rasterized += grid.nx * grid.ny
            # Coarsening depth: resolved = pitch * 1.5^k.
            steps = 0 if resolved == pitch else int(
                round(np.log(resolved / pitch) / np.log(1.5))
            )
            self.stats.note_bucket(steps)
        else:
            self.stats.tiles_reused += 1
            self.stats.cells_reused += grid.nx * grid.ny
        return grid, resolved

    def provider(self):
        """The ``(bbox, pitch) -> (grid, pitch)`` hook for maze searches."""
        return self.window


# ----------------------------------------------------------------------
# The cross-pair level batcher
# ----------------------------------------------------------------------


@dataclass
class _PairSearch:
    """Lockstep search state of one pair (one window-expansion attempt
    per round until both fronts meet)."""

    index: int
    term1: RouteTerminal
    term2: RouteTerminal
    bbox: BBox
    pitch: float
    margin: float
    search: MazeSearch | None = None
    both: np.ndarray | None = None  # co-reached mask, reused by finish


def _search_rounds(
    pending: list[_PairSearch],
    blockages: list[BBox],
    cache: GridCache,
    stats: SharingStats,
) -> None:
    """Advance all pairs through window-expansion attempts in lockstep.

    Each round serves every still-unrouted pair one window (tile cache),
    snaps its terminals, and runs its BFS pair through the consolidated
    engine; pairs whose fronts met leave the round, the rest grow their
    window around intersecting blockages and re-enter — the same per-pair
    trajectory ``run_maze_search`` walks, just advanced level-wide.
    """
    for _ in range(MAX_SEARCH_ATTEMPTS):
        if not pending:
            return
        stats.search_rounds += 1
        still_pending: list[_PairSearch] = []
        for job in pending:
            grid, job.pitch = cache.window(job.bbox, job.pitch)
            points = [job.term1.point, job.term2.point]
            cells = snap_cells(grid, points, blockages, "terminal")
            dists = grid.bfs_many(cells)
            search = MazeSearch(grid, job.pitch, cells, dists)
            if both_reached(search):
                job.search = search
                continue
            grown = grow_window(job.bbox, blockages, job.margin)
            if grown is None:
                raise RuntimeError("terminals are disconnected by blockages")
            job.bbox = grown
            still_pending.append(job)
        pending = still_pending
    if pending:
        raise RuntimeError("terminals are disconnected by blockages")


def _prime_tables(
    jobs: list[tuple[_PairSearch, SegmentTables]],
    library: DelaySlewLibrary,
    options: CTSOptions,
    stats: SharingStats,
) -> None:
    """One vectorized curve round: prefetch every pair's initial tables.

    Before its first buffer insertion, a pair's profile expansion reads,
    per side load L: the wire-slew tables of every buffer type into L
    (the feasibility frontier) and the virtual driver's wire-delay table
    into L. Those (drive, load, fn) triples are known before expansion
    starts, so they are gathered level-wide, grouped by triple, and each
    group's contracted fit curve is evaluated once over the concatenation
    of all requesting pairs' length prefixes. Each pair's slice is
    byte-identical to its private evaluation (clip + Horner are
    element-wise), so priming changes nothing but the call count.
    Post-insertion loads (rare) fall back to the per-pair lazy path,
    which computes the same values.
    """
    virtual = options.virtual_drive or library.buffer_names[-1]
    # Groups are keyed by (triple, input slew): every table in a group
    # shares one contracted curve, and a table whose input slew differed
    # would land in its own group rather than be primed with the wrong
    # curve. (The route flow constructs every SegmentTables at the slew
    # target, so in practice there is one slew per level.)
    requests: dict[
        tuple[tuple[str, str, str], float], list[tuple[SegmentTables, int]]
    ] = {}
    for job, tables in jobs:
        triples = []
        for load in dict.fromkeys((job.term1.load_name, job.term2.load_name)):
            triples.extend(
                (drive, load, "wire_slew") for drive in library.buffer_names
            )
            triples.append((virtual, load, "wire_delay"))
        for triple in dict.fromkeys(triples):
            requests.setdefault((triple, tables.input_slew), []).append(
                (tables, tables.eval_count(*triple))
            )
    if not requests:
        return
    stats.curve_rounds += 1
    for ((drive, load, fn), input_slew), reqs in requests.items():
        fit = library.single[(drive, load)][fn]
        curve = fit.partial_curve(input_slew)
        prefixes = [tables._lengths[:n] for tables, n in reqs]
        values = curve(np.concatenate(prefixes))
        stats.curves_evaluated += 1
        stats.curve_points += values.size
        offset = 0
        for (tables, n), prefix in zip(reqs, prefixes):
            tables.prime(drive, load, fn, values[offset : offset + n])
            offset += n


def route_level(
    pairs: list[tuple[RouteTerminal, RouteTerminal] | None],
    library: DelaySlewLibrary,
    options: CTSOptions,
    stage_length: float,
    blockages: list[BBox],
    cache: GridCache | None = None,
    stats: SharingStats | None = None,
) -> list[RouteResult | None]:
    """Route one topology level's merge pairs through shared windows.

    ``pairs`` entries may be ``None`` (coincident or otherwise unroutable
    slots); results come back indexed like the input. Obstacle-free
    profile routing has no windows to share and is dispatched per pair
    unchanged; the maze path runs the lockstep search rounds, the level
    curve round, then per-pair ranking and materialization.
    """
    if cache is None:
        cache = GridCache(blockages)
    if stats is None:
        stats = cache.stats
    results: list[RouteResult | None] = [None] * len(pairs)
    if not uses_maze_router(options, blockages):
        from repro.core.profile_router import route_profile

        for i, pair in enumerate(pairs):
            if pair is not None:
                results[i] = route_profile(
                    pair[0], pair[1], library, options, stage_length
                )
        return results

    jobs: list[_PairSearch] = []
    for i, pair in enumerate(pairs):
        if pair is None:
            continue
        term1, term2 = pair
        bbox, pitch, margin = plan_maze_window(
            term1.point, term2.point, options, stage_length
        )
        jobs.append(_PairSearch(i, term1, term2, bbox, pitch, margin))

    _search_rounds(list(jobs), blockages, cache, stats)

    primed: list[tuple[_PairSearch, SegmentTables]] = []
    for job in jobs:
        dist1, dist2 = job.search.dists
        job.both = (dist1 != _UNREACHED) & (dist2 != _UNREACHED)
        max_k = int(max(dist1[job.both].max(), dist2[job.both].max()))
        tables = SegmentTables(
            library, job.search.pitch, max_k + 1, options.target_slew
        )
        primed.append((job, tables))

    _prime_tables(primed, library, options, stats)

    for job, tables in primed:
        results[job.index] = finish_maze_route(
            job.search,
            job.term1,
            job.term2,
            library,
            options,
            tables,
            both=job.both,
        )
        stats.pairs_routed += 1
    return results
