"""Structured degradation events for the fault-tolerant synthesis flow.

Every fast path of the flow (worker pool, lockstep batched commit,
shared-window routing, level-batched route finishing) retains a
bit-identical scalar fallback. The guards around those paths call
:meth:`ResilienceLog.note` when the fast path fails: in strict mode the
triggering exception is re-raised (CI equivalence legs must never pass
on a silently degraded run); otherwise a :class:`Degradation` is
recorded and the caller replays the failed work through its fallback —
the synthesized tree is the same either way, only slower.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Degradation:
    """One recovery: ``component`` fell back during topology ``level``.

    Components match the knobs they degrade: ``pool`` (worker-pool
    routing to in-process), ``batch_commit`` (vectorized commit rounds
    to scalar probes), ``shared_windows`` (the cross-pair batcher to
    per-pair windows), ``batch_expansion`` (the lockstep profile
    expansion scheduler to per-pair lazy expansion),
    ``batch_route_finish`` (the level finishing kernel to per-pair
    finishing), ``soa_commit`` (the structure-of-arrays tree mirror's
    kernels to per-node object walks).
    """

    component: str
    reason: str
    level: int  # 1-based topology level; 0 = outside the level loop

    def as_record(self) -> tuple[str, str, int]:
        """Primitive row for checkpoints and cross-process job results."""
        return (self.component, self.reason, self.level)

    @classmethod
    def from_record(cls, record) -> "Degradation":
        component, reason, level = record
        return cls(str(component), str(reason), int(level))


class ResilienceLog:
    """Degradation events of one synthesis run.

    The flow updates :attr:`level` at the top of each topology level so
    guards deeper in the stack need no level plumbing of their own.
    """

    def __init__(self, strict: bool = False):
        self.strict = strict
        self.level = 0
        self.events: list[Degradation] = []

    def note(self, component: str, exc: BaseException | str) -> Degradation:
        """Record one degradation — or re-raise it in strict mode."""
        if isinstance(exc, BaseException):
            if self.strict:
                raise exc
            reason = f"{type(exc).__name__}: {exc}"
        else:
            if self.strict:
                raise RuntimeError(
                    f"{component} degraded in strict mode: {exc}"
                )
            reason = str(exc)
        event = Degradation(component, reason, self.level)
        self.events.append(event)
        return event
