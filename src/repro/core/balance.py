"""Balance stage: slew-safe progressive wire snaking (Sec. 4.2.1).

When the delay difference between two sub-trees exceeds what merge-routing
can absorb without detours, extra delay is added above the *faster*
sub-tree's root by alternately inserting a driving buffer and a wire whose
length is grown until the slew at its end would exceed the target (or the
remaining delay target is met) — the paper's "progressive approach that
inserts wires and buffers alternatively until the target delay is
achieved". The snaked wire is electrically real but geometrically folded:
the chain's nodes share the root's location while the wire lengths carry
the detour.
"""

from __future__ import annotations

from dataclasses import dataclass
from weakref import WeakKeyDictionary

from repro.charlib.library import DelaySlewLibrary
from repro.core.options import CTSOptions
from repro.tech.buffers import BufferLibrary
from repro.tree.nodes import NodeKind, TreeNode, make_buffer

#: Memoized per-library snake-candidate tables. The slew-feasible length
#: scan and the per-type stage delays are pure functions of
#: (buffer set, load type, slews, step), and snaking re-derives them for
#: every inserted chain stage — dozens of scalar fit evaluations each.
_CANDIDATE_CACHE: "WeakKeyDictionary[DelaySlewLibrary, dict]" = WeakKeyDictionary()


@dataclass
class SnakeResult:
    """Outcome of the balance stage on one sub-tree."""

    new_root: TreeNode
    added_delay: float
    n_buffers: int


def _stage_delay(
    library: DelaySlewLibrary, drive: str, load: str, input_slew: float, length: float
) -> float:
    return library.single_wire_total_delay(drive, load, input_slew, length)


def _max_length_within_slew(
    library: DelaySlewLibrary,
    drive: str,
    load: str,
    input_slew: float,
    target_slew: float,
    step: float,
) -> float:
    """Grow the wire in ``step`` increments until the slew target binds."""
    fit_hi = library.max_single_length(drive, load)
    length = 0.0
    while length + step <= fit_hi:
        slew = library.single_wire_slew(drive, load, input_slew, length + step)
        if slew > target_slew:
            break
        length += step
    return length


def _length_for_delay(
    library: DelaySlewLibrary,
    drive: str,
    load: str,
    input_slew: float,
    delay_target: float,
    max_length: float,
) -> float:
    """Bisect the wire length so the stage delay matches ``delay_target``."""
    lo, hi = 0.0, max_length
    for _ in range(40):
        mid = (lo + hi) / 2.0
        if _stage_delay(library, drive, load, input_slew, mid) < delay_target:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


def _snake_candidates(
    library: DelaySlewLibrary,
    buffers: BufferLibrary,
    load: str,
    input_slew: float,
    target_slew: float,
    step: float,
) -> tuple[list, float]:
    """Memoized (candidates, min increment) for one snake chain stage.

    ``candidates`` rows are (buffer type, max slew-feasible length, its
    stage delay); identical to deriving them inline (the scan is a pure
    function of the key), just not re-derived per inserted stage.
    """
    cache = _CANDIDATE_CACHE.setdefault(library, {})
    names = tuple(b.name for b in buffers)
    key = (names, load, input_slew, target_slew, step)
    hit = cache.get(key)
    if hit is None:
        rows = []
        for buf in buffers:
            max_len = _max_length_within_slew(
                library, buf.name, load, input_slew, target_slew, step
            )
            rows.append(
                (
                    buf.name,
                    max_len,
                    _stage_delay(library, buf.name, load, input_slew, max_len),
                )
            )
        min_increment = min(
            _stage_delay(library, b.name, load, input_slew, 0.0) for b in buffers
        )
        hit = cache[key] = (rows, min_increment)
    rows, min_increment = hit
    # Hand back the *caller's* BufferType objects — the cached rows carry
    # only names and fit-derived numbers, so a different BufferLibrary
    # instance with the same type names shares them safely.
    return (
        [(buffers[name], max_len, delay) for name, max_len, delay in rows],
        min_increment,
    )


def _root_load_name(library: DelaySlewLibrary, root: TreeNode, root_cap: float) -> str:
    if root.kind is NodeKind.BUFFER:
        return root.buffer.name
    return library.load_name_for_cap(root_cap)


def snake_delay(
    root: TreeNode,
    delay_needed: float,
    library: DelaySlewLibrary,
    buffers: BufferLibrary,
    options: CTSOptions,
    root_cap: float,
) -> SnakeResult:
    """Add ~``delay_needed`` seconds of buffered snaked wire above ``root``.

    ``root_cap`` is the collapsed stage capacitance at the root (used to
    map an unbuffered root onto a library load type). Stops early when the
    remaining shortfall is smaller than the smallest insertable increment
    (a minimum-size buffer with zero wire).
    """
    if delay_needed <= 0:
        return SnakeResult(root, 0.0, 0)
    target_slew = options.target_slew
    input_slew = target_slew  # worst-case assumption, as during routing
    added = 0.0
    n_added = 0
    node = root
    while added < delay_needed:
        load = _root_load_name(library, node, root_cap)
        remaining = delay_needed - added
        # Candidate (type, max slew-feasible length, its delay).
        candidates, min_increment = _snake_candidates(
            library, buffers, load, input_slew, target_slew, options.snake_step
        )
        if remaining < min_increment * 0.5:
            break  # closer to the target without another buffer
        full_chunks = [c for c in candidates if c[2] <= remaining]
        if full_chunks:
            # Take the biggest slew-feasible chunk.
            buf, length, delay = max(full_chunks, key=lambda c: c[2])
        else:
            # Final partial chunk: pick the type that lands nearest the
            # remaining target via bisection on the wire length.
            best = None
            for buf, max_len, __ in candidates:
                length = _length_for_delay(
                    library, buf.name, load, input_slew, remaining, max_len
                )
                delay = _stage_delay(library, buf.name, load, input_slew, length)
                err = abs(delay - remaining)
                if best is None or err < best[0]:
                    best = (err, buf, length, delay)
            __, buf, length, delay = best
        snake_buf = make_buffer(node.location, buf)
        snake_buf.attach(node, length)
        node = snake_buf
        added += delay
        n_added += 1
    return SnakeResult(node, added, n_added)
