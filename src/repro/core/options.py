"""Synthesis options for the aggressive-buffered CTS flow."""

from __future__ import annotations

import os
from dataclasses import dataclass, field


def _default_workers() -> int:
    """Honor ``REPRO_WORKERS`` so CI can run whole suites in parallel mode."""
    return int(os.environ.get("REPRO_WORKERS", "0") or 0)


def _default_batch_commit() -> bool:
    """Honor ``REPRO_BATCH_COMMIT`` so CI can exercise the scalar fallback."""
    return os.environ.get("REPRO_BATCH_COMMIT", "1").lower() not in (
        "0",
        "false",
        "no",
    )


def _default_shared_windows() -> bool:
    """Honor ``REPRO_SHARED_WINDOWS`` so CI can exercise the per-pair
    window fallback."""
    return os.environ.get("REPRO_SHARED_WINDOWS", "1").lower() not in (
        "0",
        "false",
        "no",
    )


def _default_batch_route_finish() -> bool:
    """Honor ``REPRO_BATCH_ROUTE_FINISH`` so CI can exercise the
    per-pair route-finishing fallback."""
    return os.environ.get("REPRO_BATCH_ROUTE_FINISH", "1").lower() not in (
        "0",
        "false",
        "no",
    )


def _default_batch_expansion() -> bool:
    """Honor ``REPRO_BATCH_EXPANSION`` so CI can exercise the per-pair
    profile-expansion fallback."""
    return os.environ.get("REPRO_BATCH_EXPANSION", "1").lower() not in (
        "0",
        "false",
        "no",
    )


def _default_soa_commit() -> bool:
    """Honor ``REPRO_SOA_COMMIT`` so CI can exercise the per-object
    commit fallback."""
    return os.environ.get("REPRO_SOA_COMMIT", "1").lower() not in (
        "0",
        "false",
        "no",
    )


def _default_strict() -> bool:
    """Honor ``REPRO_STRICT`` so CI equivalence legs re-raise fast-path
    failures instead of silently degrading past them."""
    return os.environ.get("REPRO_STRICT", "0").lower() in ("1", "true", "yes")


def _default_fault_plan() -> str:
    """Honor ``REPRO_FAULT_PLAN`` (``site:index:mode,...`` — see
    :mod:`repro.evalx.faultinject`) so CI can run a chaos leg."""
    return os.environ.get("REPRO_FAULT_PLAN", "")


def _default_pool_timeout() -> float:
    """Honor ``REPRO_POOL_TIMEOUT`` (seconds per gathered worker batch;
    0 waits forever)."""
    return float(os.environ.get("REPRO_POOL_TIMEOUT", "60") or 0.0)


@dataclass
class CTSOptions:
    """Knobs of the paper's flow, with the paper's defaults.

    Slew: the hard limit is 100 ps, but synthesis targets ``slew_limit *
    slew_margin`` = 80 ps "in order to leave a margin" (Sec. 5.1).
    """

    # --- slew control -------------------------------------------------
    slew_limit: float = 100.0e-12  # hard constraint checked by simulation
    slew_margin: float = 0.8  # synthesis-time target fraction
    # --- topology generation (Sec. 4.1.1) ------------------------------
    cost_alpha: float = 1.0  # weight of distance in the edge cost
    cost_beta: float = 1.0  # weight of |delay difference| in the edge cost
    # --- routing stage (Sec. 4.2.2) ------------------------------------
    grid_resolution: int = 45  # default R per dimension
    max_grid_cells: int = 200  # dynamic-growth cap per dimension
    target_cells_per_stage: int = 6  # dynamic growth: >= this many candidate
    #   buffer locations per slew-limited stage length
    sizing_lookahead: int = 3  # cells "at and ahead" evaluated when inserting
    routing_margin_ratio: float = 0.12  # grid bbox expansion around terminals
    router: str = "profile"  # "profile" (obstacle-free) or "maze" (general)
    # --- balance stage (Sec. 4.2.1) -------------------------------------
    enable_balance: bool = True
    balance_headroom: float = 0.9  # snake only the shortfall beyond what
    #   routing can absorb, scaled by this factor
    snake_step: float = 100.0  # wire-length granularity during snaking (units)
    # --- binary search stage (Sec. 4.2.3) --------------------------------
    enable_binary_search: bool = True
    binary_search_iters: int = 24
    binary_search_tol: float = 0.05e-12  # stop when |delay diff| below (s)
    # --- H-structure correction (Sec. 4.1.2) ------------------------------
    hstructure: str | None = None  # None | "reestimate" | "correct"
    # --- stage-size control ----------------------------------------------
    max_unbuffered_cap_ratio: float = 2.0  # force a buffer at a merge whose
    #   collapsed stage cap exceeds ratio * (largest buffer input cap), so
    #   every stage load stays within the library's characterized range
    # --- parallel merge routing ------------------------------------------
    workers: int = field(default_factory=_default_workers)  # process-pool
    #   workers for per-pair merge routing; 0 or 1 = serial flow
    merge_batch_size: int = 0  # route tasks shipped per worker call;
    #   0 = auto (level pairs spread over ~4 batches per worker)
    parallel_min_level_size: int = 8  # smallest pair count per topology
    #   level worth the IPC of the parallel path; smaller levels run serial
    # --- batched commit phase --------------------------------------------
    batch_commit: bool = field(default_factory=_default_batch_commit)
    #   advance a level's merge commits in lockstep, answering each step's
    #   timing queries with one vectorized library round (bit-identical to
    #   the scalar fallback; env REPRO_BATCH_COMMIT=0 disables the default)
    batch_commit_min_pairs: int = 4  # smallest pair count per topology
    #   level worth the lockstep bookkeeping; smaller levels commit scalar
    # --- shared-window routing -------------------------------------------
    shared_windows: bool = field(default_factory=_default_shared_windows)
    #   route each topology level through the level-scoped grid-tile cache
    #   and cross-pair batcher (repro.core.grid_cache) instead of private
    #   per-pair maze windows (bit-identical to the per-pair fallback; env
    #   REPRO_SHARED_WINDOWS=0 disables the default)
    batch_route_finish: bool = field(default_factory=_default_batch_route_finish)
    #   finish a shared-window level's maze routes through the level-wide
    #   ranking/materialization kernel (structure-of-arrays candidate
    #   ranking + lockstep batched distance-field descent) instead of pair
    #   by pair (bit-identical to the per-pair finish; only engages under
    #   shared_windows; env REPRO_BATCH_ROUTE_FINISH=0 disables the default)
    batch_expansion: bool = field(default_factory=_default_batch_expansion)
    #   expand a shared-window level's delay profiles through the lockstep
    #   scheduler (repro.core.batch_expand): grouped per-load curve rounds
    #   answer every pair's PathBuilder run extension and buffer insertion
    #   in shared sub-rounds instead of pair-by-pair lazy table evaluation
    #   (bit-identical to the per-pair expansion; only engages under
    #   shared_windows; env REPRO_BATCH_EXPANSION=0 disables the default)
    soa_commit: bool = field(default_factory=_default_soa_commit)
    #   mirror the in-flight tree into flat structure-of-arrays columns
    #   (repro.core.soa_tree) and drive the commit phase's bounds-bucket
    #   prefill, level-wide stage-buffer finish and checkpoint snapshots
    #   from the arrays instead of walking node objects (bit-identical to
    #   the object-walk fallback; env REPRO_SOA_COMMIT=0 disables the
    #   default)
    # --- resilience (fault-tolerant synthesis) ---------------------------
    strict: bool = field(default_factory=_default_strict)
    #   re-raise fast-path exceptions instead of degrading to the
    #   bit-identical scalar fallbacks — CI equivalence legs must fail
    #   loudly, never pass on a silently degraded run (env REPRO_STRICT=1)
    pool_timeout: float = field(default_factory=_default_pool_timeout)
    #   seconds to wait for one gathered worker batch before the
    #   supervision ladder engages (backoff retry, then in-process
    #   re-route); 0 waits forever (env REPRO_POOL_TIMEOUT)
    fault_plan: str = field(default_factory=_default_fault_plan)
    #   deterministic fault-injection plan consulted by pool workers and
    #   kernel guards ("site:index:mode,..." — repro.evalx.faultinject);
    #   empty = no injected faults (env REPRO_FAULT_PLAN)
    checkpoint_dir: str | None = None  # write a resumable snapshot after
    #   each topology level (repro.core.checkpoint); None disables
    resume_from: str | None = None  # checkpoint file — or directory, the
    #   highest completed *valid* level wins — to restart synthesis mid-tree
    heartbeat_file: str | None = None  # stamp this file atomically at each
    #   topology level so an external supervisor (repro.jobs) can tell a
    #   slow job from a hung one; None disables
    # --- misc ------------------------------------------------------------
    virtual_drive: str | None = None  # assumed driver type (default largest)
    source_slew: float = 60.0e-12  # slew of the ideal ramp at the clock source
    validate_every_merge: bool = False  # run tree invariants during synthesis
    seed: int = 0

    def __post_init__(self) -> None:
        if not 0 < self.slew_margin <= 1:
            raise ValueError("slew_margin must be in (0, 1]")
        if self.router not in ("profile", "maze"):
            raise ValueError(f"unknown router {self.router!r}")
        if self.hstructure not in (None, "reestimate", "correct"):
            raise ValueError(f"unknown hstructure mode {self.hstructure!r}")
        if self.grid_resolution < 4:
            raise ValueError("grid_resolution must be >= 4")
        if self.workers < 0:
            raise ValueError("workers must be >= 0")
        if self.merge_batch_size < 0:
            raise ValueError("merge_batch_size must be >= 0")
        if self.parallel_min_level_size < 1:
            raise ValueError("parallel_min_level_size must be >= 1")
        if self.batch_commit_min_pairs < 1:
            raise ValueError("batch_commit_min_pairs must be >= 1")
        if self.pool_timeout < 0:
            raise ValueError("pool_timeout must be >= 0 (0 waits forever)")
        if self.checkpoint_dir is not None and not self.checkpoint_dir:
            raise ValueError("checkpoint_dir must be a path or None")
        if self.resume_from is not None and not self.resume_from:
            raise ValueError("resume_from must be a path or None")
        if self.heartbeat_file is not None and not self.heartbeat_file:
            raise ValueError("heartbeat_file must be a path or None")

    @property
    def target_slew(self) -> float:
        """The synthesis-time slew target (limit x margin)."""
        return self.slew_limit * self.slew_margin
