"""Shared types and helpers for the two merge-routers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.charlib.library import DelaySlewLibrary
from repro.core.options import CTSOptions
from repro.core.segment_builder import PathState
from repro.geom.bbox import BBox
from repro.geom.point import Point
from repro.geom.segment import PathPolyline
from repro.tree.nodes import TreeNode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.maze_router import MazeGrid

#: Per-window cell budget; above it the pitch is coarsened 1.5x at a time.
MAX_WINDOW_CELLS = 80_000

#: Window-expansion attempts before terminals count as disconnected —
#: one retry budget shared by the per-pair search loop and the
#: shared-window level batcher (they must agree or bit-identity breaks).
MAX_SEARCH_ATTEMPTS = 4


def uses_maze_router(options, blockages) -> bool:
    """Whether a merge routes through the maze router (vs the profile
    router) — the one dispatch predicate shared by ``route_pair``, the
    level batcher and the flow's sweep gating."""
    return options.router == "maze" or bool(blockages)


@dataclass
class RouteTerminal:
    """One sub-tree root as seen by the router.

    Routing itself only reads the scalar fields (point, delays, load
    type); ``node`` is carried along so the commit phase can materialize
    the buffer chain onto the right sub-tree. :meth:`detached` drops the
    node reference, which is what makes a terminal cheap to pickle across
    a process boundary.
    """

    node: TreeNode | None
    point: Point
    base_delay: float  # max delay from this point to the sub-tree's sinks
    min_delay: float  # min delay (for skew bookkeeping)
    load_name: str  # library load type approximating the root's stage cap

    def detached(self) -> "RouteTerminal":
        """Node-free copy (everything the pure route phase needs)."""
        return RouteTerminal(
            None, self.point, self.base_delay, self.min_delay, self.load_name
        )


@dataclass
class RoutedPath:
    """One side of a routed merge: geometry plus buffer plan."""

    terminal: RouteTerminal
    polyline: PathPolyline  # from the terminal's point to the meeting point
    state: PathState  # expansion snapshot at the meeting distance
    step: float  # grid pitch used for this route

    @property
    def arc_length(self) -> float:
        return self.polyline.length


@dataclass
class RouteResult:
    """Output of the routing stage (input to binary search)."""

    meeting_point: Point
    left: RoutedPath
    right: RoutedPath
    est_left_delay: float  # delay estimate through the left side at meeting
    est_right_delay: float
    grid_cells: int  # diagnostics: per-dimension cell count used

    @property
    def est_skew(self) -> float:
        return abs(self.est_left_delay - self.est_right_delay)


def slew_limited_length(
    library: DelaySlewLibrary, target_slew: float, resolution: int = 200
) -> float:
    """Longest single wire any buffer can drive within the slew target.

    Used to size routing grids so a slew-limited stage always spans
    several cells (the paper's dynamic grid-size adjustment) and to cap
    the collapsed capacitance of unbuffered stages.
    """
    best = 0.0
    for drive in library.buffer_names:
        fit = library.single[(drive, drive)]["wire_slew"]
        lo, hi = float(fit.lo[1]), float(fit.hi[1])
        lengths = np.linspace(lo, hi, resolution)
        slews = fit.predict_many(
            np.column_stack([np.full(resolution, target_slew), lengths])
        )
        ok = lengths[slews <= target_slew]
        if ok.size:
            best = max(best, float(ok.max()))
    if best <= 0:
        raise ValueError("no buffer can satisfy the slew target at any length")
    return best


def choose_pitch(span: float, options: CTSOptions, stage_length: float) -> tuple[float, int]:
    """Grid pitch and per-dimension cell count for a route of ``span``.

    Default R = ``options.grid_resolution`` cells; for long routes the
    count grows so a slew-limited stage covers at least
    ``options.target_cells_per_stage`` cells, capped at
    ``options.max_grid_cells`` (the paper: "if the distance of two merging
    nodes is large, the routing grid size can increase dynamically").
    """
    if span <= 0:
        raise ValueError("span must be positive")
    n = options.grid_resolution
    pitch_cap = stage_length / options.target_cells_per_stage
    if span / n > pitch_cap:
        n = int(np.ceil(span / pitch_cap))
    n = min(n, options.max_grid_cells)
    return span / n, n


def grow_window(bbox: BBox, blockages: list[BBox], margin: float) -> BBox | None:
    """One step of blockage-driven window expansion.

    A blockage can wall off a routing window even though a detour exists
    just outside it; the window grows around every intersecting blockage.
    Returns the grown window, or ``None`` when no blockage forces growth
    (the window is as large as it will ever get).
    """
    expanded = bbox
    for region in blockages:
        if region.intersects(bbox):
            expanded = expanded.union(region.expanded(2.0 * margin))
    if expanded.width == bbox.width and expanded.height == bbox.height:
        return None
    return expanded


@dataclass
class MazeSearch:
    """Result of a windowed maze search: the final grid plus per-source BFS."""

    grid: "MazeGrid"
    pitch: float
    cells: list[tuple[int, int]]  # grid cells of the input points, in order
    dists: list[np.ndarray]  # BFS step distances, one per source


def coarsen_pitch(bbox: BBox, pitch: float, cell_cap: int = MAX_WINDOW_CELLS) -> float:
    """The ``MAX_WINDOW_CELLS`` pitch-coarsening decision, as arithmetic.

    Replicates (float operation for float operation) the seed's loop of
    building a grid and coarsening 1.5x while the cell count exceeds the
    cap — without allocating the thrown-away grids. Both the per-pair
    fallback and the shared-window tile cache resolve window pitches
    through this one function, so their coarsening decisions are
    identical by construction.
    """
    nx = int(np.ceil(bbox.width / pitch)) + 1
    ny = int(np.ceil(bbox.height / pitch)) + 1
    while nx * ny > cell_cap:
        pitch *= 1.5
        nx = int(np.ceil(bbox.width / pitch)) + 1
        ny = int(np.ceil(bbox.height / pitch)) + 1
    return pitch


def covering_blockages(grid: "MazeGrid", blockages: list[BBox]) -> list[BBox]:
    """The blockages that can mark at least one cell center of ``grid``.

    Cell centers span ``[xmin, xmin + (nx-1)*pitch] x [ymin, ...]`` (the
    ceil-sized grid overhangs its bbox by up to one pitch); a region
    outside that cover is an exact no-op for :meth:`MazeGrid.block`, so
    filtering it out leaves the blocked mask byte-identical. Order is
    preserved.
    """
    x_hi = grid.bbox.xmin + (grid.nx - 1) * grid.pitch
    y_hi = grid.bbox.ymin + (grid.ny - 1) * grid.pitch
    return [
        region
        for region in blockages
        if region.xmax >= grid.bbox.xmin
        and region.xmin <= x_hi
        and region.ymax >= grid.bbox.ymin
        and region.ymin <= y_hi
    ]


def build_window(
    bbox: BBox,
    pitch: float,
    blockages: list[BBox],
    cell_cap: int = MAX_WINDOW_CELLS,
):
    """Rasterize + block one routing window (the per-pair fallback path).

    Returns ``(grid, resolved_pitch)``. The shared-window subsystem
    (:class:`repro.core.grid_cache.GridCache`) wraps this same function
    behind a tile cache, so a cached window and a freshly built one are
    the same object graph.
    """
    from repro.core.maze_router import MazeGrid  # deferred: avoids an import cycle

    pitch = coarsen_pitch(bbox, pitch, cell_cap)
    grid = MazeGrid(bbox, pitch)
    for region in covering_blockages(grid, blockages):
        grid.block(region)
    return grid, pitch


def snap_cells(
    grid: "MazeGrid",
    points: list[Point],
    blockages: list[BBox],
    what: str = "terminal",
) -> list[tuple[int, int]]:
    """Quantize ``points`` onto free grid cells (shared snap logic).

    A point whose quantized cell landed inside a blockage (coarse pitch)
    snaps to the nearest free cell via the documented deterministic
    fallback scan (:meth:`MazeGrid.nearest_free`); a point genuinely
    inside a blockage raises.
    """
    cells = []
    for p in points:
        cell = grid.nearest(p)
        if grid.blocked[cell]:
            if any(region.contains(p) for region in blockages):
                raise ValueError(f"a {what} lies inside a blockage")
            cell = grid.nearest_free(cell)
        cells.append(cell)
    return cells


def run_maze_search(
    points: list[Point],
    bbox: BBox,
    pitch: float,
    blockages: list[BBox],
    margin: float,
    reachable: Callable[[MazeSearch], bool],
    what: str = "terminal",
    n_sources: int | None = None,
    max_attempts: int = MAX_SEARCH_ATTEMPTS,
    cell_cap: int = MAX_WINDOW_CELLS,
    provider=None,
) -> MazeSearch:
    """The window-expansion / pitch-coarsening loop shared by maze routes.

    Builds a grid over ``bbox`` (coarsening the pitch while the cell count
    exceeds ``cell_cap``), blocks the blockage regions, runs one BFS from
    each of the first ``n_sources`` points, and accepts the result when
    ``reachable`` says so; otherwise the window grows around intersecting
    blockages (:func:`grow_window`) and the search retries. When no growth
    is possible the points are genuinely disconnected.

    ``provider`` (``(bbox, pitch) -> (grid, pitch)``) substitutes the
    shared-window tile cache for the private :func:`build_window`; both
    produce identical grids, the cache just reuses them across requests.
    """
    if n_sources is None:
        n_sources = len(points)
    for _ in range(max_attempts):
        if provider is not None:
            grid, pitch = provider(bbox, pitch)
        else:
            grid, pitch = build_window(bbox, pitch, blockages, cell_cap)
        cells = snap_cells(grid, points, blockages, what)
        dists = grid.bfs_many(cells[:n_sources])
        search = MazeSearch(grid, pitch, cells, dists)
        if reachable(search):
            return search
        grown = grow_window(bbox, blockages, margin)
        if grown is None:
            break
        bbox = grown
    raise RuntimeError(f"{what}s are disconnected by blockages")


def rank_level_cells(
    counts: np.ndarray,
    rounded_skew: np.ndarray,
    total: np.ndarray,
    hops: np.ndarray,
) -> np.ndarray:
    """Pick every pair's merge cell in one segmented ranking pass.

    The level-batched twin of the per-pair successive argmin refinement
    in :func:`repro.core.maze_router.rank_candidates`: the key arrays are
    the concatenation of every pair's candidate rows (``counts[i]`` rows
    per pair, in pair order), and the winner of each segment is the row
    minimizing ``rounded_skew``, then ``total``, then ``hops``, with
    remaining ties resolved to the earliest row — the exact scalar tie
    order, because each refinement keeps only exact-equality survivors of
    the previous one (float comparisons, no arithmetic, so batching
    cannot change any outcome).

    Returns the winning *global* row index per segment; subtract the
    segment start for the within-pair position. Implemented as one
    segmented-minimum pass over the full concatenation (the skew stage)
    followed by a lexicographic tie resolution over the surviving rows
    only — O(rows) plus O(ties log ties), no per-pair Python.
    """
    counts = np.asarray(counts, dtype=np.int64)
    if counts.size == 0:
        return np.empty(0, dtype=np.int64)
    if (counts <= 0).any():
        raise ValueError("every segment needs at least one candidate row")
    starts = np.zeros(counts.size, dtype=np.int64)
    np.cumsum(counts[:-1], out=starts[1:])
    # Stage 1 over the full row set: per-segment minimum rounded skew.
    min_skew = np.minimum.reduceat(rounded_skew, starts)
    survivors = np.flatnonzero(rounded_skew == np.repeat(min_skew, counts))
    if survivors.size == counts.size:
        return survivors  # one survivor per segment: no ties anywhere
    # Tie stages over the (typically tiny) survivor set: ascending
    # lexicographic order by (segment, total, hops, row) makes the first
    # row of each segment exactly the scalar refinement's winner —
    # comparisons only, no arithmetic, so outcomes cannot drift.
    seg = np.searchsorted(starts, survivors, side="right") - 1
    order = np.lexsort((survivors, hops[survivors], total[survivors], seg))
    seg_sorted = seg[order]
    first = np.ones(seg_sorted.size, dtype=bool)
    first[1:] = seg_sorted[1:] != seg_sorted[:-1]
    return survivors[order[first]]


def l_path(a: Point, b: Point) -> PathPolyline:
    """An L-shaped rectilinear path from ``a`` to ``b`` (bend at (b.x, a.y))."""
    if a.x == b.x or a.y == b.y:
        return PathPolyline([a, b])
    return PathPolyline([a, Point(b.x, a.y), b])
