"""Closed-form distance-profile router (obstacle-free fast path).

In an obstacle-free uniform medium, the minimum-delay maze path between
two points is any monotone staircase, and the bidirectional wavefront
delay at a cell is a pure function of its Manhattan distance to each
terminal. The router therefore:

1. precomputes each side's delay-vs-distance profile with the shared
   :class:`~repro.core.segment_builder.PathBuilder` (identical buffer
   insertion/sizing logic to the general maze router);
2. evaluates every candidate grid cell's skew
   ``|t1 + d1(cell) - t2 - d2(cell)|`` vectorized with numpy;
3. picks the minimum-skew cell (ties: smaller max delay, then smaller
   total path length — prefer no detour).

A dedicated test asserts this router and the general maze router choose
equivalent merges on obstacle-free instances.
"""

from __future__ import annotations

import numpy as np

from repro.charlib.library import DelaySlewLibrary
from repro.core.options import CTSOptions
from repro.core.routing_common import (
    RoutedPath,
    RouteResult,
    RouteTerminal,
    choose_pitch,
    l_path,
)
from repro.core.segment_builder import PathBuilder, SegmentTables
from repro.geom.point import Point


def route_profile(
    term1: RouteTerminal,
    term2: RouteTerminal,
    library: DelaySlewLibrary,
    options: CTSOptions,
    stage_length: float,
) -> RouteResult:
    """Route one merge between two sub-tree roots (no blockages)."""
    p1, p2 = term1.point, term2.point
    dist = p1.manhattan_to(p2)
    if dist <= 0:
        raise ValueError("terminals are coincident; no routing needed")
    span = max(abs(p1.x - p2.x), abs(p1.y - p2.y), dist / 2.0)
    pitch, n_cells = choose_pitch(span, options, stage_length)

    margin = max(1, int(round(n_cells * options.routing_margin_ratio)))
    xmin = min(p1.x, p2.x) - margin * pitch
    ymin = min(p1.y, p2.y) - margin * pitch
    nx = int(np.ceil((max(p1.x, p2.x) - min(p1.x, p2.x)) / pitch)) + 2 * margin + 1
    ny = int(np.ceil((max(p1.y, p2.y) - min(p1.y, p2.y)) / pitch)) + 2 * margin + 1

    xs = xmin + pitch * np.arange(nx)
    ys = ymin + pitch * np.arange(ny)
    gx, gy = np.meshgrid(xs, ys, indexing="ij")
    k1 = np.rint((np.abs(gx - p1.x) + np.abs(gy - p1.y)) / pitch).astype(int)
    k2 = np.rint((np.abs(gx - p2.x) + np.abs(gy - p2.y)) / pitch).astype(int)

    max_k = int(max(k1.max(), k2.max()))
    tables = SegmentTables(library, pitch, max_k + 1, options.target_slew)
    builders = []
    for term in (term1, term2):
        builders.append(
            PathBuilder(
                tables,
                term.base_delay,
                term.load_name,
                options.target_slew,
                library.buffer_names,
                options.virtual_drive or library.buffer_names[-1],
                options.sizing_lookahead,
            )
        )
    prof1 = builders[0].delays_up_to(max_k)
    prof2 = builders[1].delays_up_to(max_k)

    d1 = prof1[k1]
    d2 = prof2[k2]
    skew = np.abs(d1 - d2)
    total = np.maximum(d1, d2)
    hops = k1 + k2
    # Lexicographic minimum: skew, then max delay, then path length.
    order = np.lexsort(
        (hops.ravel(), total.ravel(), np.round(skew.ravel(), 15))
    )
    best = order[0]
    bi, bj = np.unravel_index(best, skew.shape)
    meeting = Point(float(xs[bi]), float(ys[bj]))
    kk1, kk2 = int(k1[bi, bj]), int(k2[bi, bj])

    left = RoutedPath(term1, l_path(p1, meeting), builders[0].state(kk1), pitch)
    right = RoutedPath(term2, l_path(p2, meeting), builders[1].state(kk2), pitch)
    return RouteResult(
        meeting_point=meeting,
        left=left,
        right=right,
        est_left_delay=float(d1[bi, bj]),
        est_right_delay=float(d2[bi, bj]),
        grid_cells=max(nx, ny),
    )
