"""Merge-routing: balance -> route -> binary search -> commit (Sec. 4.2).

This module orchestrates one merge of two sub-trees:

1. *balance* — if the delay difference exceeds what the routed path can
   absorb, wire-snake above the faster root (:mod:`repro.core.balance`);
2. *route* — bidirectional (profile or maze) routing with slew-driven
   buffer insertion picks the tentative merge cell
   (:mod:`repro.core.profile_router` / :mod:`repro.core.maze_router`);
3. *binary search* — the merge node slides between the last fixed nodes
   until the timing-engine delay difference nulls
   (:mod:`repro.core.binary_search`);
4. *commit* — tree nodes are materialized; branch slews are re-checked
   with the library and violations fixed by corrective buffer insertion;
   merges whose collapsed unbuffered capacitance grew too large get a
   buffer immediately above them (keeping stages library-shaped).
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.charlib.library import DelaySlewLibrary
from repro.core.balance import snake_delay
from repro.core.binary_search import binary_search_merge
from repro.core.maze_router import route_maze
from repro.core.options import CTSOptions
from repro.core.profile_router import route_profile
from repro.core.routing_common import (
    RoutedPath,
    RouteResult,
    RouteTerminal,
    choose_pitch,
    l_path,
    slew_limited_length,
)
from repro.core.segment_builder import PathBuilder, SegmentTables
from repro.geom.bbox import BBox
from repro.geom.point import Point
from repro.geom.segment import PathPolyline
from repro.tech.buffers import BufferLibrary, BufferType
from repro.tech.technology import Technology
from repro.timing.analysis import LibraryTimingEngine, SubtreeBounds
from repro.tree.nodes import NodeKind, TreeNode, make_buffer, make_merge


@dataclass
class MergeStats:
    """Per-merge diagnostics aggregated by the top-level flow."""

    n_merges: int = 0
    n_snaked: int = 0
    snaked_delay: float = 0.0
    n_route_buffers: int = 0
    n_corrective_buffers: int = 0
    n_forced_stage_buffers: int = 0
    binary_search_iters: int = 0

    def combine(self, other: "MergeStats") -> "MergeStats":
        """Field-wise sum — merge diagnostics from independent routers."""
        return MergeStats(
            *(
                getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            )
        )


@dataclass
class MergePlan:
    """Output of the serial prepare phase of one merge.

    ``root1``/``root2`` are the (possibly re-rooted by balance snaking)
    sub-tree roots the commit phase will join. For non-coincident pairs
    the terminals carry everything the side-effect-free route phase
    needs; their :meth:`~repro.core.routing_common.RouteTerminal.detached`
    copies are what crosses a process boundary.
    """

    root1: TreeNode
    root2: TreeNode
    coincident: bool
    term1: RouteTerminal | None = None
    term2: RouteTerminal | None = None


def route_pair(
    term1: RouteTerminal,
    term2: RouteTerminal,
    library: DelaySlewLibrary,
    options: CTSOptions,
    stage_length: float,
    blockages: list[BBox],
) -> RouteResult:
    """The pure route phase of one merge: terminals in, route out.

    Deterministic in its arguments, touches no shared state, and needs
    only the scalar terminal fields — this is the function parallel
    workers execute (:mod:`repro.core.parallel_merge`).
    """
    if options.router == "maze" or blockages:
        return route_maze(term1, term2, library, options, stage_length, blockages)
    return route_profile(term1, term2, library, options, stage_length)


class MergeRouter:
    """Stateful merge-routing engine shared across the whole synthesis."""

    def __init__(
        self,
        tech: Technology,
        library: DelaySlewLibrary,
        buffers: BufferLibrary,
        engine: LibraryTimingEngine,
        options: CTSOptions,
        blockages: list[BBox] | None = None,
    ):
        self.tech = tech
        self.library = library
        self.buffers = buffers
        self.engine = engine
        self.options = options
        self.blockages = blockages or []
        self.stats = MergeStats()
        self.stage_length = slew_limited_length(library, options.target_slew)
        largest = library.buffer_names[-1]
        self.max_stage_cap = options.max_unbuffered_cap_ratio * library.input_cap(
            largest
        )
        self._virtual = options.virtual_drive or library.buffer_names[-1]
        self._delay_per_unit = self._calibrate_delay_per_unit()

    # ------------------------------------------------------------------
    # Terminal/bookkeeping helpers
    # ------------------------------------------------------------------

    def subtree_bounds(self, root: TreeNode) -> SubtreeBounds:
        """Delay bounds of a sub-tree under the slew-target assumption."""
        return self.engine.subtree_bounds(root, self.options.target_slew)

    def root_stage_cap(self, root: TreeNode) -> float:
        return self.engine._load_cap_of(root)

    def terminal_for(self, root: TreeNode) -> RouteTerminal:
        bounds = self.subtree_bounds(root)
        if root.kind is NodeKind.BUFFER:
            load_name = root.buffer.name
        else:
            load_name = self.library.load_name_for_cap(self.root_stage_cap(root))
        return RouteTerminal(
            node=root,
            point=root.location,
            base_delay=bounds.max_delay,
            min_delay=bounds.min_delay,
            load_name=load_name,
        )

    def _calibrate_delay_per_unit(self) -> float:
        """Average routed-path delay per layout unit (for balance checks)."""
        pitch = self.stage_length / self.options.target_cells_per_stage
        k = 4 * self.options.target_cells_per_stage
        tables = SegmentTables(self.library, pitch, k + 1, self.options.target_slew)
        builder = PathBuilder(
            tables,
            0.0,
            self.library.buffer_names[-1],
            self.options.target_slew,
            self.library.buffer_names,
            self._virtual,
            self.options.sizing_lookahead,
        )
        return builder.state(k).delay / (k * pitch)

    # ------------------------------------------------------------------
    # The merge itself
    # ------------------------------------------------------------------

    def merge(self, root1: TreeNode, root2: TreeNode) -> TreeNode:
        """Merge two sub-trees and return the new root node."""
        plan = self.prepare(root1, root2)
        return self.commit(plan, self.route_plan(plan))

    def prepare(self, root1: TreeNode, root2: TreeNode) -> MergePlan:
        """Stateful pre-route phase: balance snaking plus terminal capture.

        Everything that mutates the tree or the stats before routing
        happens here, so the route phase between :meth:`prepare` and
        :meth:`commit` is side-effect-free and can run out of process.
        """
        self.stats.n_merges += 1
        if root1.location.manhattan_to(root2.location) <= 1e-9:
            return MergePlan(root1, root2, True)
        root1, root2 = self._balance(root1, root2)
        return MergePlan(
            root1,
            root2,
            False,
            self.terminal_for(root1),
            self.terminal_for(root2),
        )

    def route_plan(self, plan: MergePlan) -> RouteResult | None:
        """Route a prepared merge in-process (None for coincident pairs)."""
        if plan.coincident:
            return None
        return route_pair(
            plan.term1,
            plan.term2,
            self.library,
            self.options,
            self.stage_length,
            self.blockages,
        )

    def commit(self, plan: MergePlan, route: RouteResult | None) -> TreeNode:
        """Stateful post-route phase: materialize, search, repair.

        ``route`` may come from another process with detached terminals;
        the plan's terminals (which hold the live nodes) are re-bound
        before materialization.
        """
        if plan.coincident:
            return self._merge_coincident(plan.root1, plan.root2)
        route.left.terminal = plan.term1
        route.right.terminal = plan.term2
        return self._commit(route)

    def _merge_coincident(self, root1: TreeNode, root2: TreeNode) -> TreeNode:
        merge = make_merge(root1.location)
        merge.attach(root1, 0.0)
        merge.attach(root2, 0.0)
        return self._maybe_force_stage_buffer(merge)

    def _balance(self, root1: TreeNode, root2: TreeNode) -> tuple[TreeNode, TreeNode]:
        """Wire-snake above the faster root when routing cannot absorb the
        delay difference (Sec. 4.2.1)."""
        if not self.options.enable_balance:
            return root1, root2
        b1 = self.subtree_bounds(root1)
        b2 = self.subtree_bounds(root2)
        dist = root1.location.manhattan_to(root2.location)
        absorbable = self.options.balance_headroom * self._delay_per_unit * dist
        diff = b1.max_delay - b2.max_delay
        shortfall = abs(diff) - absorbable
        if shortfall <= 0:
            return root1, root2
        fast = root2 if diff > 0 else root1
        result = snake_delay(
            fast,
            shortfall,
            self.library,
            self.buffers,
            self.options,
            self.root_stage_cap(fast),
        )
        if result.n_buffers:
            self.stats.n_snaked += 1
            self.stats.snaked_delay += result.added_delay
        if diff > 0:
            return root1, result.new_root
        return result.new_root, root2

    def route_trunk(self, root: TreeNode, source_point: Point) -> tuple[TreeNode, float]:
        """Buffered path from the final tree root to the clock source.

        The source usually does not coincide with the last merge; the
        trunk is routed with the same slew-driven buffer insertion as any
        merge path. Returns the new network root (chain top) and the wire
        length of its connection to the source.
        """
        dist = root.location.manhattan_to(source_point)
        if dist <= 1e-9:
            return root, 0.0
        term = self.terminal_for(root)
        pitch, n_cells = choose_pitch(dist, self.options, self.stage_length)
        if self.blockages:
            from repro.core.maze_router import blocked_path

            margin = max(1.0, n_cells * self.options.routing_margin_ratio) * pitch
            path = blocked_path(
                root.location, source_point, pitch, self.blockages, margin
            )
        else:
            path = l_path(root.location, source_point)
        k = max(1, int(round(path.length / pitch)))
        tables = SegmentTables(self.library, pitch, k + 1, self.options.target_slew)
        builder = PathBuilder(
            tables,
            term.base_delay,
            term.load_name,
            self.options.target_slew,
            self.library.buffer_names,
            self._virtual,
            self.options.sizing_lookahead,
        )
        routed = RoutedPath(term, path, builder.state(k), pitch)
        top, arc = self._materialize_chain(routed)
        remaining = max(path.length - arc, source_point.manhattan_to(top.location))
        return top, remaining

    # ------------------------------------------------------------------
    # Materialization and commit
    # ------------------------------------------------------------------

    def _materialize_chain(self, routed: RoutedPath) -> tuple[TreeNode, float]:
        """Create the buffer chain of one routed side.

        Returns the topmost node (the "last fixed node") and its arc
        position along the routed polyline.
        """
        node = routed.terminal.node
        arc_prev = 0.0
        for placed in routed.state.buffers:
            arc = min(placed.steps * routed.step, routed.polyline.length)
            point = routed.polyline.point_at_length(arc)
            buf = make_buffer(point, self.buffers[placed.type_name])
            wire = max(arc - arc_prev, node.location.manhattan_to(point))
            buf.attach(node, wire)
            node = buf
            arc_prev = arc
            self.stats.n_route_buffers += 1
        return node, arc_prev

    def _commit(self, route: RouteResult) -> TreeNode:
        v1, arc1 = self._materialize_chain(route.left)
        v2, arc2 = self._materialize_chain(route.right)
        span = route.left.polyline.subpath(arc1, route.left.polyline.length).concat(
            route.right.polyline.subpath(arc2, route.right.polyline.length).reversed()
        )
        # Corrective buffer insertion (slew repair) changes one side's
        # delay after the balance was found, so search, repair and
        # re-balance iterate; residual imbalance that the span cannot
        # absorb (search pinned at an extreme) is wire-snaked away.
        merge = None
        for round_idx in range(5):
            position = binary_search_merge(
                self.engine,
                self._virtual,
                self.options.target_slew,
                v1,
                v2,
                span,
                self.options.binary_search_iters,
                self.options.binary_search_tol,
                self.options.enable_binary_search,
                slew_target=self.options.target_slew,
            )
            self.stats.binary_search_iters += position.iterations
            residual = position.delay_difference
            pinned = position.ratio <= 1e-9 or position.ratio >= 1.0 - 1e-9
            if (
                round_idx < 4
                and pinned
                and self.options.enable_balance
                and abs(residual) > 2.0e-12
            ):
                fast = v2 if residual > 0 else v1
                snaked = snake_delay(
                    fast,
                    abs(residual),
                    self.library,
                    self.buffers,
                    self.options,
                    self.engine._load_cap_of(fast),
                )
                if snaked.n_buffers:
                    self.stats.n_snaked += 1
                    self.stats.snaked_delay += snaked.added_delay
                    if residual > 0:
                        v2 = snaked.new_root
                    else:
                        v1 = snaked.new_root
                    continue
            # Re-balanced spans are straight lines that can cut through a
            # blockage; keep the merge node itself outside any macro.
            merge = make_merge(self._nudge_off_blockages(position.location))
            merge.attach(
                v1, max(position.left_length, merge.location.manhattan_to(v1.location))
            )
            merge.attach(
                v2, max(position.right_length, merge.location.manhattan_to(v2.location))
            )
            inserted = self._fix_branch_slews(merge)
            if not inserted or round_idx == 4:
                break
            # Re-balance between the new fixed nodes (corrective buffers
            # or the originals); the old merge node is discarded.
            new_v1, new_v2 = merge.children
            v1 = new_v1.detach()
            v2 = new_v2.detach()
            mid = merge.location
            points = [v1.location]
            if mid != v1.location and mid != v2.location:
                points.append(mid)
            points.append(v2.location)
            span = PathPolyline(points)
        return self._maybe_force_stage_buffer(merge)

    # ------------------------------------------------------------------
    # Slew repair and stage-size control
    # ------------------------------------------------------------------

    def _fix_branch_slews(
        self, merge: TreeNode, drive: str | None = None, max_rounds: int = 8
    ) -> int:
        """Corrective insertion when the merged *branch* violates the target.

        Routing checked each side as a single-wire component; the merged
        stage is a branch component whose shared driver sees both sides'
        load, so slews can degrade past the target. Violating sides get a
        buffer spliced into their final wire, sized/positioned by the same
        closest-to-target rule as the router.
        """
        target = self.options.target_slew
        drive = drive or self._virtual
        inserted = 0
        # Branch fits clamp beyond their trained length range and would be
        # silently optimistic there; such wires are violations by fiat.
        branch_hi = float(self.library.branch[drive]["left_slew"].hi[2]) * 1.001
        for _ in range(max_rounds):
            left, right = merge.children
            branch_left, branch_right = self.library.branch_slews(
                drive,
                target,
                0.0,
                left.wire_to_parent,
                right.wire_to_parent,
                self.engine._load_cap_of(left),
                self.engine._load_cap_of(right),
            )
            left_slew = (
                float("inf") if left.wire_to_parent > branch_hi else branch_left
            )
            right_slew = (
                float("inf") if right.wire_to_parent > branch_hi else branch_right
            )
            worst_side = None
            if left_slew > target:
                worst_side = left
            if right_slew > target and (
                worst_side is None or right_slew > left_slew
            ):
                worst_side = right
            if worst_side is None:
                return inserted
            if not self._split_wire(merge, worst_side):
                return inserted
            inserted += 1
        return inserted

    def _split_wire(self, merge: TreeNode, child: TreeNode) -> bool:
        """Insert a buffer into the wire merge->child (intelligent sizing)."""
        total = child.wire_to_parent
        load_cap = self.engine._load_cap_of(child)
        load_name = (
            child.buffer.name
            if child.kind is NodeKind.BUFFER
            else self.library.load_name_for_cap(load_cap)
        )
        target = self.options.target_slew
        best: tuple[float, str] | None = None  # (length from child, type)
        for name in self.library.buffer_names:
            lo, hi = 0.0, total
            for _ in range(24):
                mid = (lo + hi) / 2.0
                slew = self.library.single_wire_slew(name, load_name, target, mid)
                if slew <= target:
                    lo = mid
                else:
                    hi = mid
            if best is None or lo > best[0]:
                best = (lo, name)
        length, type_name = best
        length = min(length, total)
        if length < 0.25 * total:
            length = 0.5 * total  # guarantee progress even when imperfect
        frac = length / total if total > 0 else 0.0
        point = self._nudge_off_blockages(
            child.location.lerp(merge.location, frac)
        )
        child.detach()
        buf = make_buffer(point, self.buffers[type_name])
        buf.attach(child, max(length, point.manhattan_to(child.location)))
        merge.attach(buf, max(total - length, merge.location.manhattan_to(point)))
        self.stats.n_corrective_buffers += 1
        return True

    def _nudge_off_blockages(self, point: Point) -> Point:
        """Move a tentative buffer location just outside any blockage.

        Corrective buffers are positioned by interpolation between merge
        and child; with blockages the interpolated point can land inside
        a macro, so it is projected to the nearest blockage edge.
        """
        for region in self.blockages:
            if region.contains(point):
                candidates = [
                    Point(region.xmin - 1.0, point.y),
                    Point(region.xmax + 1.0, point.y),
                    Point(point.x, region.ymin - 1.0),
                    Point(point.x, region.ymax + 1.0),
                ]
                point = min(candidates, key=lambda c: c.manhattan_to(point))
        return point

    def _maybe_force_stage_buffer(self, merge: TreeNode) -> TreeNode:
        """Keep merges library-shaped by buffering large collapsed stages.

        The characterized library models loads as buffer-gate-sized
        capacitances; a merge whose collapsed unbuffered capacitance
        exceeds ``max_unbuffered_cap_ratio`` times the largest buffer's
        input cap would be invisible to those fits, so it gets a buffer
        directly above it (sized via the branch fits).
        """
        cap = self.root_stage_cap(merge)
        if cap <= self.max_stage_cap:
            return merge
        buf = make_buffer(merge.location, self._choose_stage_driver(merge))
        buf.attach(merge, 0.0)
        self.stats.n_forced_stage_buffers += 1
        return buf

    def _choose_stage_driver(self, merge: TreeNode) -> BufferType:
        """Smallest buffer that keeps both branch slews within target."""
        target = self.options.target_slew
        left, right = merge.children
        cap_l = self.engine._load_cap_of(left)
        cap_r = self.engine._load_cap_of(right)
        for name in self.library.buffer_names:
            left_slew, right_slew = self.library.branch_slews(
                name,
                target,
                0.0,
                left.wire_to_parent,
                right.wire_to_parent,
                cap_l,
                cap_r,
            )
            if left_slew <= target and right_slew <= target:
                return self.buffers[name]
        return self.buffers[self.library.buffer_names[-1]]
