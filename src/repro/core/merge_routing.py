"""Merge-routing: balance -> route -> binary search -> commit (Sec. 4.2).

This module orchestrates one merge of two sub-trees:

1. *balance* — if the delay difference exceeds what the routed path can
   absorb, wire-snake above the faster root (:mod:`repro.core.balance`);
2. *route* — bidirectional (profile or maze) routing with slew-driven
   buffer insertion picks the tentative merge cell
   (:mod:`repro.core.profile_router` / :mod:`repro.core.maze_router`);
3. *binary search* — the merge node slides between the last fixed nodes
   until the timing-engine delay difference nulls
   (:mod:`repro.core.binary_search`);
4. *commit* — tree nodes are materialized; branch slews are re-checked
   with the library and violations fixed by corrective buffer insertion;
   merges whose collapsed unbuffered capacitance grew too large get a
   buffer immediately above them (keeping stages library-shaped).

Stages 3 and 4 are implemented as a resumable per-pair state machine
(:class:`repro.core.batch_commit.PairCommitState`): :meth:`MergeRouter.commit`
drives one machine with scalar probes, while the top-level flow can run
:meth:`MergeRouter.commit_prepare` for every pair of a topology level and
advance all machines in lockstep through the batched scheduler
(:class:`repro.core.batch_commit.BatchCommitScheduler`), answering each
step's probes with one vectorized library round.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, fields

import numpy as np

from repro.charlib.library import DelaySlewLibrary
from repro.core.balance import snake_delay
from repro.core.batch_commit import CommitQueryStats, PairCommitState
from repro.core.maze_router import route_maze
from repro.core.options import CTSOptions
from repro.core.profile_router import route_profile
from repro.core.routing_common import (
    RoutedPath,
    RouteResult,
    RouteTerminal,
    choose_pitch,
    l_path,
    slew_limited_length,
    uses_maze_router,
)
from repro.core.segment_builder import PathBuilder, SegmentTables
from repro.geom.bbox import BBox
from repro.geom.point import Point
from repro.tech.buffers import BufferLibrary, BufferType
from repro.tech.technology import Technology
from repro.timing.analysis import LibraryTimingEngine, SubtreeBounds
from repro.tree.nodes import NodeKind, TreeNode, make_buffer, make_merge


@dataclass
class MergeStats:
    """Per-merge diagnostics aggregated by the top-level flow."""

    n_merges: int = 0
    n_snaked: int = 0
    snaked_delay: float = 0.0
    n_route_buffers: int = 0
    n_corrective_buffers: int = 0
    n_forced_stage_buffers: int = 0
    binary_search_iters: int = 0

    def combine(self, other: "MergeStats") -> "MergeStats":
        """Field-wise sum — merge diagnostics from independent routers."""
        return MergeStats(
            *(
                getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            )
        )


@dataclass
class MergePlan:
    """Output of the serial prepare phase of one merge.

    ``root1``/``root2`` are the (possibly re-rooted by balance snaking)
    sub-tree roots the commit phase will join. For non-coincident pairs
    the terminals carry everything the side-effect-free route phase
    needs; their :meth:`~repro.core.routing_common.RouteTerminal.detached`
    copies are what crosses a process boundary.
    """

    root1: TreeNode
    root2: TreeNode
    coincident: bool
    term1: RouteTerminal | None = None
    term2: RouteTerminal | None = None
    #: Balance-snaking diagnostics of the prepare phase. Applied to the
    #: router stats by the pair's commit finish (with the commit phase's
    #: own snake deltas), so the floating-point accumulation order is
    #: pair-ordered in every execution mode.
    n_snaked: int = 0
    snaked_delay: float = 0.0


def route_pair(
    term1: RouteTerminal,
    term2: RouteTerminal,
    library: DelaySlewLibrary,
    options: CTSOptions,
    stage_length: float,
    blockages: list[BBox],
    grid_provider=None,
) -> RouteResult:
    """The pure route phase of one merge: terminals in, route out.

    Deterministic in its arguments, touches no shared state, and needs
    only the scalar terminal fields — this is the function parallel
    workers execute (:mod:`repro.core.parallel_merge`). ``grid_provider``
    optionally serves maze windows from a shared tile cache
    (:class:`repro.core.grid_cache.GridCache`); results are identical
    with or without it.
    """
    if uses_maze_router(options, blockages):
        return route_maze(
            term1,
            term2,
            library,
            options,
            stage_length,
            blockages,
            grid_provider=grid_provider,
        )
    return route_profile(term1, term2, library, options, stage_length)


class MergeRouter:
    """Stateful merge-routing engine shared across the whole synthesis."""

    def __init__(
        self,
        tech: Technology,
        library: DelaySlewLibrary,
        buffers: BufferLibrary,
        engine: LibraryTimingEngine,
        options: CTSOptions,
        blockages: list[BBox] | None = None,
    ):
        self.tech = tech
        self.library = library
        self.buffers = buffers
        self.engine = engine
        self.options = options
        self.blockages = blockages or []
        self.stats = MergeStats()
        self.stage_length = slew_limited_length(library, options.target_slew)
        largest = library.buffer_names[-1]
        self.max_stage_cap = options.max_unbuffered_cap_ratio * library.input_cap(
            largest
        )
        self._virtual = options.virtual_drive or library.buffer_names[-1]
        # Branch fits clamp beyond their trained length range and would be
        # silently optimistic there; such wires are violations by fiat.
        self._branch_hi = float(
            library.branch[self._virtual]["left_slew"].hi[2]
        ) * 1.001
        #: Commit-phase query totals (scalar and batched drivers).
        self.commit_queries = CommitQueryStats()
        #: Degradation events of this synthesis (fast paths falling back
        #: to their bit-identical scalar twins); strict mode re-raises.
        from repro.core.resilience import ResilienceLog

        self.resilience = ResilienceLog(strict=options.strict)
        #: Wall-clock spent in the route and commit phases.
        self.phase_seconds = {"route": 0.0, "commit": 0.0}
        #: Shared-window / route-finishing counters. Pool workers route
        #: through batch-local caches and ship their batch's counters
        #: back with the results; the executor sums them in here on
        #: gather (commutative integer sums, so the totals are
        #: independent of worker scheduling and the pair-level counters
        #: equal the serial flow's).
        from repro.core.grid_cache import GridCache, SharingStats

        self.route_sharing = SharingStats()
        self._grid_cache = (
            GridCache(self.blockages, stats=self.route_sharing)
            if options.shared_windows
            else None
        )
        # Blockage bounds as columns: one vectorized containment test
        # gates the (rarely entered) sequential nudge loop.
        if self.blockages:
            self._blockage_xmin = np.array([b.xmin for b in self.blockages])
            self._blockage_xmax = np.array([b.xmax for b in self.blockages])
            self._blockage_ymin = np.array([b.ymin for b in self.blockages])
            self._blockage_ymax = np.array([b.ymax for b in self.blockages])
        else:
            self._blockage_xmin = None
        self._delay_per_unit = self._calibrate_delay_per_unit()

    # ------------------------------------------------------------------
    # Terminal/bookkeeping helpers
    # ------------------------------------------------------------------

    def subtree_bounds(self, root: TreeNode) -> SubtreeBounds:
        """Delay bounds of a sub-tree under the slew-target assumption."""
        return self.engine.subtree_bounds(root, self.options.target_slew)

    def root_stage_cap(self, root: TreeNode) -> float:
        return self.engine._load_cap_of(root)

    def terminal_for(self, root: TreeNode) -> RouteTerminal:
        bounds = self.subtree_bounds(root)
        if root.kind is NodeKind.BUFFER:
            load_name = root.buffer.name
        else:
            load_name = self.library.load_name_for_cap(self.root_stage_cap(root))
        return RouteTerminal(
            node=root,
            point=root.location,
            base_delay=bounds.max_delay,
            min_delay=bounds.min_delay,
            load_name=load_name,
        )

    def _calibrate_delay_per_unit(self) -> float:
        """Average routed-path delay per layout unit (for balance checks)."""
        pitch = self.stage_length / self.options.target_cells_per_stage
        k = 4 * self.options.target_cells_per_stage
        tables = SegmentTables(self.library, pitch, k + 1, self.options.target_slew)
        builder = PathBuilder(
            tables,
            0.0,
            self.library.buffer_names[-1],
            self.options.target_slew,
            self.library.buffer_names,
            self._virtual,
            self.options.sizing_lookahead,
        )
        return builder.state(k).delay / (k * pitch)

    # ------------------------------------------------------------------
    # The merge itself
    # ------------------------------------------------------------------

    def merge(self, root1: TreeNode, root2: TreeNode) -> TreeNode:
        """Merge two sub-trees and return the new root node."""
        plan = self.prepare(root1, root2)
        return self.commit(plan, self.route_plan(plan))

    def prepare(self, root1: TreeNode, root2: TreeNode) -> MergePlan:
        """Stateful pre-route phase: balance snaking plus terminal capture.

        Everything that mutates the tree or the stats before routing
        happens here, so the route phase between :meth:`prepare` and
        :meth:`commit` is side-effect-free and can run out of process.
        """
        self.stats.n_merges += 1
        if root1.location.manhattan_to(root2.location) <= 1e-9:
            return MergePlan(root1, root2, True)
        root1, root2, added_delay = self._balance(root1, root2)
        return MergePlan(
            root1,
            root2,
            False,
            self.terminal_for(root1),
            self.terminal_for(root2),
            n_snaked=0 if added_delay is None else 1,
            snaked_delay=0.0 if added_delay is None else added_delay,
        )

    def reset_grid_cache(self) -> None:
        """Start a new topology level's tile scope (no-op per-pair mode).

        Called by the flow once per level — regardless of whether the
        level routes in-process, through the batcher, or in the worker
        pool — so tiles cached by ``route_plan``'s provider (H-structure
        candidate routing, small levels) never accumulate across levels.
        """
        if self._grid_cache is not None:
            self._grid_cache.reset()

    def route_plan(self, plan: MergePlan) -> RouteResult | None:
        """Route a prepared merge in-process (None for coincident pairs).

        With ``shared_windows`` the window comes from the router's tile
        cache (H-structure candidate routing re-requests the same window
        up to three times per pair); results are identical either way.
        """
        if plan.coincident:
            return None
        t0 = time.perf_counter()
        try:
            return route_pair(
                plan.term1,
                plan.term2,
                self.library,
                self.options,
                self.stage_length,
                self.blockages,
                grid_provider=(
                    self._grid_cache.provider() if self._grid_cache else None
                ),
            )
        finally:
            self.phase_seconds["route"] += time.perf_counter() - t0

    def route_level(
        self, plans: list[MergePlan | None]
    ) -> list[RouteResult | None]:
        """Route a swept level's plans in-process, sharing windows.

        The shared-window path (``CTSOptions.shared_windows``, the
        default) routes the whole level through the cross-pair batcher
        over a fresh level scope of the tile cache; the per-pair fallback
        routes plan by plan. Both produce byte-identical results — the
        knob only changes how much work is shared, which is also what
        makes the degradation guard safe: an exception in the batcher
        (routing is pure, nothing was mutated) is noted on the resilience
        log and the level replays per pair.
        """
        if self._grid_cache is None:
            return [
                None if plan is None else self.route_plan(plan)
                for plan in plans
            ]
        from repro.core.grid_cache import route_level as shared_route_level

        t0 = time.perf_counter()
        try:
            pairs = [
                None if plan is None or plan.coincident else (plan.term1, plan.term2)
                for plan in plans
            ]
            try:
                return shared_route_level(
                    pairs,
                    self.library,
                    self.options,
                    self.stage_length,
                    self.blockages,
                    cache=self._grid_cache,
                    resilience=self.resilience,
                )
            except MemoryError:
                # Never degrade past an OOM: the jobs watchdog must see
                # it, not a silently slower per-pair retry.
                raise
            except Exception as exc:
                self.resilience.note("shared_windows", exc)
                return [
                    None
                    if pair is None
                    else route_pair(
                        pair[0],
                        pair[1],
                        self.library,
                        self.options,
                        self.stage_length,
                        self.blockages,
                    )
                    for pair in pairs
                ]
        finally:
            self.phase_seconds["route"] += time.perf_counter() - t0

    def commit(self, plan: MergePlan, route: RouteResult | None) -> TreeNode:
        """Stateful post-route phase: materialize, search, repair.

        ``route`` may come from another process with detached terminals;
        the plan's terminals (which hold the live nodes) are re-bound
        before materialization. This scalar driver and the lockstep
        batched driver walk the same state machine, so their results are
        bit-identical.
        """
        t0 = time.perf_counter()
        try:
            state = self.commit_prepare(plan, route)
            state.run_scalar()
            return self.commit_finish(state)
        finally:
            self.phase_seconds["commit"] += time.perf_counter() - t0

    def commit_prepare(
        self, plan: MergePlan, route: RouteResult | None
    ) -> PairCommitState:
        """Start one pair's commit: materialize chains, arm the search.

        The returned state machine is ready for probe-driven advancement
        (:class:`~repro.core.batch_commit.BatchCommitScheduler` for the
        batched level path, :meth:`PairCommitState.run_scalar` for the
        scalar path); :meth:`commit_finish` collects the merged root.
        """
        return PairCommitState(self, plan, route)

    def commit_finish(self, state: PairCommitState) -> TreeNode:
        """Collect the merged root of a finished commit state machine."""
        return state.finish()

    def _merge_coincident(self, root1: TreeNode, root2: TreeNode) -> TreeNode:
        merge = make_merge(root1.location)
        merge.attach(root1, 0.0)
        merge.attach(root2, 0.0)
        return self._maybe_force_stage_buffer(merge)

    def _balance(
        self, root1: TreeNode, root2: TreeNode
    ) -> tuple[TreeNode, TreeNode, float | None]:
        """Wire-snake above the faster root when routing cannot absorb the
        delay difference (Sec. 4.2.1).

        Returns the (possibly re-rooted) sides and the added snake delay
        (``None`` when no snaking happened). Stats are deferred to the
        pair's commit finish via the plan — see :class:`MergePlan`.
        """
        if not self.options.enable_balance:
            return root1, root2, None
        b1 = self.subtree_bounds(root1)
        b2 = self.subtree_bounds(root2)
        dist = root1.location.manhattan_to(root2.location)
        absorbable = self.options.balance_headroom * self._delay_per_unit * dist
        diff = b1.max_delay - b2.max_delay
        shortfall = abs(diff) - absorbable
        if shortfall <= 0:
            return root1, root2, None
        fast = root2 if diff > 0 else root1
        result = snake_delay(
            fast,
            shortfall,
            self.library,
            self.buffers,
            self.options,
            self.root_stage_cap(fast),
        )
        added = result.added_delay if result.n_buffers else None
        if diff > 0:
            return root1, result.new_root, added
        return result.new_root, root2, added

    def route_trunk(self, root: TreeNode, source_point: Point) -> tuple[TreeNode, float]:
        """Buffered path from the final tree root to the clock source.

        The source usually does not coincide with the last merge; the
        trunk is routed with the same slew-driven buffer insertion as any
        merge path. Returns the new network root (chain top) and the wire
        length of its connection to the source.
        """
        dist = root.location.manhattan_to(source_point)
        if dist <= 1e-9:
            return root, 0.0
        term = self.terminal_for(root)
        pitch, n_cells = choose_pitch(dist, self.options, self.stage_length)
        if self.blockages:
            from repro.core.maze_router import blocked_path

            margin = max(1.0, n_cells * self.options.routing_margin_ratio) * pitch
            path = blocked_path(
                root.location, source_point, pitch, self.blockages, margin
            )
        else:
            path = l_path(root.location, source_point)
        k = max(1, int(round(path.length / pitch)))
        tables = SegmentTables(self.library, pitch, k + 1, self.options.target_slew)
        builder = PathBuilder(
            tables,
            term.base_delay,
            term.load_name,
            self.options.target_slew,
            self.library.buffer_names,
            self._virtual,
            self.options.sizing_lookahead,
        )
        routed = RoutedPath(term, path, builder.state(k), pitch)
        top, arc = self._materialize_chain(routed)
        remaining = max(path.length - arc, source_point.manhattan_to(top.location))
        return top, remaining

    # ------------------------------------------------------------------
    # Materialization and commit
    # ------------------------------------------------------------------

    def _materialize_chain(self, routed: RoutedPath) -> tuple[TreeNode, float]:
        """Create the buffer chain of one routed side.

        Returns the topmost node (the "last fixed node") and its arc
        position along the routed polyline.
        """
        node = routed.terminal.node
        arc_prev = 0.0
        for placed in routed.state.buffers:
            arc = min(placed.steps * routed.step, routed.polyline.length)
            point = routed.polyline.point_at_length(arc)
            buf = make_buffer(point, self.buffers[placed.type_name])
            wire = max(arc - arc_prev, node.location.manhattan_to(point))
            buf.attach(node, wire)
            node = buf
            arc_prev = arc
            self.stats.n_route_buffers += 1
        return node, arc_prev

    # ------------------------------------------------------------------
    # Slew repair and stage-size control
    # ------------------------------------------------------------------

    def _snake_residual(
        self, v1: TreeNode, v2: TreeNode, residual: float
    ) -> tuple[TreeNode, TreeNode, float | None]:
        """Wire-snake away residual imbalance a pinned search left behind.

        Returns the (possibly re-rooted) side nodes plus the added snake
        delay, or ``None`` when snaking was skipped (shortfall below one
        buffer increment). Stats are NOT updated here — the commit state
        machine defers them to its finish so the floating-point
        accumulation order stays pair-ordered (and hence bit-identical)
        no matter how the lockstep scheduler interleaves pairs.
        """
        fast = v2 if residual > 0 else v1
        snaked = snake_delay(
            fast,
            abs(residual),
            self.library,
            self.buffers,
            self.options,
            self.engine._load_cap_of(fast),
        )
        if not snaked.n_buffers:
            return v1, v2, None
        if residual > 0:
            return v1, snaked.new_root, snaked.added_delay
        return snaked.new_root, v2, snaked.added_delay

    def _worst_slew_side(
        self, merge: TreeNode, branch_left: float, branch_right: float
    ) -> TreeNode | None:
        """The child whose branch slew violates the target worst, if any.

        ``branch_left``/``branch_right`` are the library's branch-slew
        answers for the merge's current children (evaluated by the scalar
        or the batched driver); wires beyond the fits' trained length
        range are violations by fiat (the clamped fit would be silently
        optimistic there).
        """
        target = self.options.target_slew
        left, right = merge.children
        left_slew = (
            float("inf") if left.wire_to_parent > self._branch_hi else branch_left
        )
        right_slew = (
            float("inf")
            if right.wire_to_parent > self._branch_hi
            else branch_right
        )
        worst_side = None
        if left_slew > target:
            worst_side = left
        if right_slew > target and (worst_side is None or right_slew > left_slew):
            worst_side = right
        return worst_side

    def _split_wire(self, merge: TreeNode, child: TreeNode) -> bool:
        """Insert a buffer into the wire merge->child (intelligent sizing)."""
        total = child.wire_to_parent
        load_cap = self.engine._load_cap_of(child)
        load_name = (
            child.buffer.name
            if child.kind is NodeKind.BUFFER
            else self.library.load_name_for_cap(load_cap)
        )
        target = self.options.target_slew
        best: tuple[float, str] | None = None  # (length from child, type)
        for name in self.library.buffer_names:
            lo, hi = 0.0, total
            for _ in range(24):
                mid = (lo + hi) / 2.0
                slew = self.library.single_wire_slew(name, load_name, target, mid)
                if slew <= target:
                    lo = mid
                else:
                    hi = mid
            if best is None or lo > best[0]:
                best = (lo, name)
        length, type_name = best
        length = min(length, total)
        if length < 0.25 * total:
            length = 0.5 * total  # guarantee progress even when imperfect
        frac = length / total if total > 0 else 0.0
        point = self._nudge_off_blockages(
            child.location.lerp(merge.location, frac)
        )
        child.detach()
        buf = make_buffer(point, self.buffers[type_name])
        buf.attach(child, max(length, point.manhattan_to(child.location)))
        merge.attach(buf, max(total - length, merge.location.manhattan_to(point)))
        self.stats.n_corrective_buffers += 1
        return True

    def _nudge_off_blockages(self, point: Point) -> Point:
        """Move a tentative buffer location just outside any blockage.

        Corrective buffers are positioned by interpolation between merge
        and child; with blockages the interpolated point can land inside
        a macro, so it is projected to the nearest blockage edge.
        """
        if self._blockage_xmin is None:
            return point
        # Vectorized any-contains pre-gate (same inclusive bounds as
        # ``BBox.contains``): almost every candidate point is outside
        # every macro, and the sequential projection loop below — whose
        # per-region order matters once a point moves — only runs on a
        # hit, with identical results.
        inside = (
            (self._blockage_xmin <= point.x)
            & (point.x <= self._blockage_xmax)
            & (self._blockage_ymin <= point.y)
            & (point.y <= self._blockage_ymax)
        )
        if not inside.any():
            return point
        for region in self.blockages:
            if region.contains(point):
                candidates = [
                    Point(region.xmin - 1.0, point.y),
                    Point(region.xmax + 1.0, point.y),
                    Point(point.x, region.ymin - 1.0),
                    Point(point.x, region.ymax + 1.0),
                ]
                point = min(candidates, key=lambda c: c.manhattan_to(point))
        return point

    def _maybe_force_stage_buffer(self, merge: TreeNode) -> TreeNode:
        """Keep merges library-shaped by buffering large collapsed stages.

        The characterized library models loads as buffer-gate-sized
        capacitances; a merge whose collapsed unbuffered capacitance
        exceeds ``max_unbuffered_cap_ratio`` times the largest buffer's
        input cap would be invisible to those fits, so it gets a buffer
        directly above it (sized via the branch fits).
        """
        cap = self.root_stage_cap(merge)
        if cap <= self.max_stage_cap:
            return merge
        buf = make_buffer(merge.location, self._choose_stage_driver(merge))
        buf.attach(merge, 0.0)
        self.stats.n_forced_stage_buffers += 1
        return buf

    def _apply_stage_driver(
        self, merge: TreeNode, driver: BufferType | None
    ) -> TreeNode:
        """Apply a batched stage-driver decision (see
        :meth:`repro.core.soa_tree.SoaTree.stage_drivers`): None keeps
        the merge bare, otherwise the chosen buffer goes directly above
        it — the same surgery and stats ``_maybe_force_stage_buffer``
        performs inline."""
        if driver is None:
            return merge
        buf = make_buffer(merge.location, driver)
        buf.attach(merge, 0.0)
        self.stats.n_forced_stage_buffers += 1
        return buf

    def _choose_stage_driver(self, merge: TreeNode) -> BufferType:
        """Smallest buffer that keeps both branch slews within target."""
        target = self.options.target_slew
        left, right = merge.children
        cap_l = self.engine._load_cap_of(left)
        cap_r = self.engine._load_cap_of(right)
        for name in self.library.buffer_names:
            left_slew, right_slew = self.library.branch_slews(
                name,
                target,
                0.0,
                left.wire_to_parent,
                right.wire_to_parent,
                cap_l,
                cap_r,
            )
            if left_slew <= target and right_slew <= target:
                return self.buffers[name]
        return self.buffers[self.library.buffer_names[-1]]
