"""The paper's primary contribution: aggressive-buffered CTS.

Top-level flow (:mod:`repro.core.cts`) = levelized topology generation
(:mod:`repro.core.topology`) + merge-routing (:mod:`repro.core.merge_routing`:
balance / route / binary-search) + optional H-structure correction
(:mod:`repro.core.hstructure`). Two interchangeable routers implement the
routing stage: the general bidirectional maze router
(:mod:`repro.core.maze_router`, blockage-aware) and the distance-profile
router (:mod:`repro.core.profile_router`, provably equivalent without
blockages and much faster).
"""

from repro.core.options import CTSOptions
from repro.core.cts import AggressiveBufferedCTS, SynthesisResult, synthesize_clock_tree
from repro.core.topology import (
    SubTree,
    EdgeCost,
    greedy_matching,
    select_seed,
    select_seed_index,
)
from repro.core.merge_routing import MergePlan, MergeRouter, MergeStats, route_pair
from repro.core.parallel_merge import ParallelMergeExecutor, WorkerContext
from repro.core.segment_builder import PathBuilder, PathState, PlacedBuffer, SegmentTables
from repro.core.routing_common import (
    RouteTerminal,
    RoutedPath,
    RouteResult,
    slew_limited_length,
)
from repro.core.profile_router import route_profile
from repro.core.maze_router import route_maze, BfsEngine, BFS_ENGINE, MazeGrid
from repro.core.grid_cache import GridCache, SharingStats, route_level
from repro.core.batch_commit import (
    BatchCommitScheduler,
    CommitQueryStats,
    PairCommitState,
)
from repro.core.binary_search import (
    binary_search_merge,
    MergePosition,
    MergeSearchState,
    ProbeRequest,
)
from repro.core.balance import snake_delay, SnakeResult
from repro.core.resilience import Degradation, ResilienceLog
from repro.core.checkpoint import (
    CheckpointState,
    load_checkpoint,
    write_checkpoint,
)
from repro.core.hstructure import (
    HStructureOutcome,
    PAIRINGS,
    correct_pairing,
    reestimate_pairing,
)

__all__ = [
    "CTSOptions",
    "AggressiveBufferedCTS",
    "SynthesisResult",
    "synthesize_clock_tree",
    "SubTree",
    "EdgeCost",
    "greedy_matching",
    "select_seed",
    "select_seed_index",
    "MergePlan",
    "MergeRouter",
    "MergeStats",
    "route_pair",
    "ParallelMergeExecutor",
    "WorkerContext",
    "PathBuilder",
    "PathState",
    "PlacedBuffer",
    "SegmentTables",
    "RouteTerminal",
    "RoutedPath",
    "RouteResult",
    "slew_limited_length",
    "route_profile",
    "route_maze",
    "BfsEngine",
    "BFS_ENGINE",
    "MazeGrid",
    "GridCache",
    "SharingStats",
    "route_level",
    "BatchCommitScheduler",
    "CommitQueryStats",
    "PairCommitState",
    "binary_search_merge",
    "MergePosition",
    "MergeSearchState",
    "ProbeRequest",
    "snake_delay",
    "SnakeResult",
    "Degradation",
    "ResilienceLog",
    "CheckpointState",
    "load_checkpoint",
    "write_checkpoint",
    "HStructureOutcome",
    "PAIRINGS",
    "correct_pairing",
    "reestimate_pairing",
]
