"""Per-level checkpoint/resume for the synthesis flow.

After each topology level the flow can snapshot everything the next
level depends on (``CTSOptions.checkpoint_dir``): the live subtree
roots, the node-id counter, the accumulated diagnostics and the loop
state. ``CTSOptions.resume_from`` rebuilds that state and re-enters the
level loop mid-tree; because node ids/names, stats and the engine's
memoized timing are all restored or recomputed deterministically, the
resumed tree is bit-identical to an uninterrupted run
(``tree_signature`` equality is asserted in the tests).

Format (version :data:`CHECKPOINT_VERSION`): one framed pickled dict
per completed level, ``level_0007.ckpt``. The frame is an 8-byte magic,
the SHA-256 of the body, then the pickled body; files are written to a
``.tmp`` sibling, fsynced, and atomically renamed, so a kill mid-write
never corrupts the latest good snapshot — and a *torn* file (truncated
rename on a crashing filesystem, bit rot, a stray partial copy) is
detected by its content digest before unpickling, not by whatever
exception a half-read pickle happens to throw. Resuming from a
directory selects the highest-numbered checkpoint that passes its
digest: corrupt candidates are skipped with a loud ``RuntimeWarning``
and the previous level is used instead
(:class:`CorruptCheckpointError` when *no* candidate survives, or when
an explicitly named file is corrupt). The payload holds only
primitives — node records, stat field dicts, digests — never live
objects, so checkpoints survive refactors of the in-memory classes
better than naive object pickles would.

Compatibility is enforced by two digests: ``options_digest`` covers the
**result-affecting** options only (resilience/performance knobs like
``workers``, ``batch_commit`` or ``strict`` are excluded — every fast
path is bit-identical to its fallback, so a checkpoint written by a
parallel batched run may be resumed by a serial scalar one and vice
versa), and ``sinks_digest`` covers the sink instance. A mismatch of
either fails loudly with what differed.

Tree encoding walks each subtree in child-order-preserving preorder
(``TreeNode.walk`` reverses children — wrong here, attach order must
survive the round trip) and records ``(id, kind, name, x, y, wire,
cap, buffer, parent_id)`` rows; decoding re-creates nodes with their
explicit ids (the counter is untouched) and re-attaches them in row
order, which preserves child order because a parent's k-th child always
precedes its (k+1)-th in preorder.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
import warnings
from dataclasses import dataclass, fields

from repro.core.batch_commit import CommitQueryStats
from repro.core.grid_cache import SharingStats
from repro.core.merge_routing import MergeStats
from repro.core.options import CTSOptions
from repro.core.resilience import Degradation
from repro.core.topology import SubTree
from repro.geom.point import Point
from repro.tech.buffers import BufferLibrary
from repro.timing.analysis import SubtreeBounds
from repro.tree.nodes import NodeKind, TreeNode

CHECKPOINT_VERSION = 2

#: Frame prefix of every checkpoint file: magic, then the SHA-256 of the
#: pickled body. A file that lacks the magic or fails the digest is torn
#: or foreign and is rejected *before* any unpickling.
_MAGIC = b"RPCKPT02"
_DIGEST_BYTES = hashlib.sha256().digest_size


class CorruptCheckpointError(ValueError):
    """A checkpoint file is torn, truncated, or not a checkpoint at all.

    Distinct from the plain ``ValueError`` of a *semantic* mismatch
    (wrong sinks, wrong options, wrong version): directory resume skips
    corrupt files and falls back to the previous level, but never skips
    a semantically incompatible one.
    """

#: The options that change the synthesized tree. Everything else —
#: parallelism, batching, resilience, validation — only changes how the
#: same tree is computed, so it is deliberately outside the digest:
#: checkpoints stay portable across execution modes.
_RESULT_FIELDS = (
    "slew_limit",
    "slew_margin",
    "cost_alpha",
    "cost_beta",
    "grid_resolution",
    "max_grid_cells",
    "target_cells_per_stage",
    "sizing_lookahead",
    "routing_margin_ratio",
    "router",
    "enable_balance",
    "balance_headroom",
    "snake_step",
    "enable_binary_search",
    "binary_search_iters",
    "binary_search_tol",
    "hstructure",
    "max_unbuffered_cap_ratio",
    "virtual_drive",
    "source_slew",
    "seed",
)

#: The options deliberately *excluded* from the digest: execution-mode
#: knobs whose every fast path is bit-identical to its fallback, plus
#: the resilience plumbing itself. The split is explicit (not "whatever
#: is left over") so that a new knob must be classified on day one —
#: repro-lint rule CON305 fails the build if a ``CTSOptions`` field is
#: in neither list, and :func:`options_digest` refuses to run on an
#: incomplete partition.
_EXECUTION_FIELDS = (
    "workers",
    "merge_batch_size",
    "parallel_min_level_size",
    "batch_commit",
    "batch_commit_min_pairs",
    "shared_windows",
    "batch_expansion",
    "batch_route_finish",
    "strict",
    "pool_timeout",
    "fault_plan",
    "checkpoint_dir",
    "resume_from",
    "heartbeat_file",
    "validate_every_merge",
    "soa_commit",
)


def options_digest(options: CTSOptions) -> str:
    """Digest of the result-affecting options (see :data:`_RESULT_FIELDS`)."""
    unclassified = [
        f.name
        for f in fields(options)
        if f.name not in _RESULT_FIELDS and f.name not in _EXECUTION_FIELDS
    ]
    if unclassified:
        raise ValueError(
            "CTSOptions fields missing a digest classification "
            f"(_RESULT_FIELDS or _EXECUTION_FIELDS): {unclassified}"
        )
    payload = repr(
        [(name, getattr(options, name)) for name in _RESULT_FIELDS]
    )
    return hashlib.sha256(payload.encode()).hexdigest()


def sinks_digest(sinks: list[tuple[Point, float]]) -> str:
    """Digest of the sink instance (positions and caps, bit-exact)."""
    h = hashlib.sha256(struct.pack("<q", len(sinks)))
    for point, cap in sinks:
        h.update(struct.pack("<ddd", point.x, point.y, cap))
    return h.hexdigest()


@dataclass
class CheckpointState:
    """A decoded checkpoint, ready to re-enter the level loop."""

    levels_done: int
    n_flips: int
    next_node_id: int
    center: tuple[float, float]
    subtrees: list[SubTree]
    merge_stats: MergeStats
    commit_queries: CommitQueryStats
    route_sharing: SharingStats
    degradations: list[Degradation]


# ----------------------------------------------------------------------
# Tree encoding
# ----------------------------------------------------------------------


def _iter_preorder(root: TreeNode):
    """Preorder walk preserving child order (unlike ``TreeNode.walk``)."""
    stack = [root]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children))


def _encode_subtree(subtree: SubTree, soa=None) -> dict:
    nodes = None
    if soa is not None:
        # Row-identical to the object walk below (same preorder, same
        # fields); returns None when the mirror has degraded.
        nodes = soa.checkpoint_rows(subtree.root)
    if nodes is None:
        nodes = [
            (
                node.id,
                node.kind.value,
                node.name,
                node.location.x,
                node.location.y,
                node.wire_to_parent,
                node.cap,
                node.buffer.name if node.buffer is not None else None,
                node.parent.id if node.parent is not None else None,
            )
            for node in _iter_preorder(subtree.root)
        ]
    return {
        "root": subtree.root.id,
        "bounds": tuple(subtree.bounds),
        "parts": (
            None
            if subtree.parts is None
            else (subtree.parts[0].id, subtree.parts[1].id)
        ),
        "nodes": nodes,
    }


def _decode_subtree(data: dict, buffers: BufferLibrary) -> SubTree:
    by_id: dict[int, TreeNode] = {}
    for rec in data["nodes"]:
        node_id, kind, name, x, y, wire, cap, buffer_name, parent_id = rec
        node = TreeNode(
            kind=NodeKind(kind),
            location=Point(x, y),
            name=name,
            cap=cap,
            buffer=buffers[buffer_name] if buffer_name is not None else None,
            id=node_id,
        )
        by_id[node_id] = node
        if parent_id is not None:
            # Row order is preorder, so the parent exists and gets its
            # children back in the original attach order.
            by_id[parent_id].attach(node, wire)
    parts = data["parts"]
    return SubTree(
        by_id[data["root"]],
        SubtreeBounds(*data["bounds"]),
        None if parts is None else (by_id[parts[0]], by_id[parts[1]]),
    )


def _stats_dict(stats) -> dict:
    return {f.name: getattr(stats, f.name) for f in fields(stats)}


# ----------------------------------------------------------------------
# Write / load
# ----------------------------------------------------------------------


def checkpoint_filename(level: int) -> str:
    return f"level_{level:04d}.ckpt"


def write_checkpoint(
    dirpath: str,
    *,
    level: int,
    subtrees: list[SubTree],
    n_flips: int,
    next_node_id: int,
    center: Point,
    options: CTSOptions,
    sinks: list[tuple[Point, float]],
    merge_stats: MergeStats,
    commit_queries: CommitQueryStats,
    route_sharing: SharingStats,
    degradations: list[Degradation],
    soa=None,
) -> str:
    """Atomically snapshot the flow state after topology ``level``."""
    payload = {
        "version": CHECKPOINT_VERSION,
        "options_digest": options_digest(options),
        "sinks_digest": sinks_digest(sinks),
        "levels_done": level,
        "n_flips": n_flips,
        "next_node_id": next_node_id,
        "center": (center.x, center.y),
        "subtrees": [_encode_subtree(s, soa) for s in subtrees],
        "merge_stats": _stats_dict(merge_stats),
        "commit_queries": _stats_dict(commit_queries),
        "route_sharing": _stats_dict(route_sharing),
        "degradations": [d.as_record() for d in degradations],
    }
    os.makedirs(dirpath, exist_ok=True)
    path = os.path.join(dirpath, checkpoint_filename(level))
    body = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    tmp = path + ".tmp"
    with open(tmp, "wb") as fh:
        fh.write(_MAGIC)
        fh.write(hashlib.sha256(body).digest())
        fh.write(body)
        fh.flush()
        # A crash between rename and writeback must not leave a renamed
        # file with unwritten pages — that is exactly the torn state the
        # loader's digest guards against, so close the window too.
        os.fsync(fh.fileno())
    os.replace(tmp, path)
    if options.fault_plan:
        from repro.evalx.faultinject import active_plan

        # ``checkpoint_torn:N:torn`` truncates the snapshot that just
        # landed, simulating a torn write; the run continues unaware —
        # only a later resume discovers (and must skip) the damage.
        plan = active_plan(options.fault_plan)
        if plan is not None and plan.consult("checkpoint_torn") == "torn":
            with open(path, "r+b") as fh:
                fh.truncate(len(_MAGIC) + _DIGEST_BYTES + len(body) // 2)
    return path


def _read_payload(path: str) -> dict:
    """Read one framed checkpoint, digest-verified before unpickling."""
    with open(path, "rb") as fh:
        data = fh.read()
    if len(data) < len(_MAGIC) + _DIGEST_BYTES or not data.startswith(_MAGIC):
        raise CorruptCheckpointError(
            f"checkpoint {path!r} is truncated or not a framed checkpoint"
            " (bad magic)"
        )
    digest = data[len(_MAGIC) : len(_MAGIC) + _DIGEST_BYTES]
    body = data[len(_MAGIC) + _DIGEST_BYTES :]
    if hashlib.sha256(body).digest() != digest:
        raise CorruptCheckpointError(
            f"checkpoint {path!r} fails its content digest (torn write"
            " or corruption)"
        )
    try:
        payload = pickle.loads(body)
    except MemoryError:
        raise
    except Exception as exc:
        raise CorruptCheckpointError(
            f"checkpoint {path!r} passed its digest but does not"
            f" unpickle ({type(exc).__name__}: {exc})"
        ) from exc
    if not isinstance(payload, dict):
        raise CorruptCheckpointError(
            f"checkpoint {path!r} does not hold a payload dict"
        )
    return payload


def _resolve_payload(path: str) -> tuple[str, dict]:
    """The payload of ``path`` — or of a directory's newest *valid* file.

    Directory resume walks level files newest-first and skips any that
    fail :func:`_read_payload`, warning loudly per skipped file; an
    explicitly named file gets no such second chance.
    """
    if not os.path.isdir(path):
        if not os.path.exists(path):
            raise ValueError(f"checkpoint {path!r} does not exist")
        return path, _read_payload(path)
    names = sorted(
        (
            n
            for n in os.listdir(path)
            if n.startswith("level_") and n.endswith(".ckpt")
        ),
        reverse=True,
    )
    if not names:
        raise ValueError(f"no checkpoints (level_*.ckpt) in {path!r}")
    failures: list[str] = []
    for name in names:
        candidate = os.path.join(path, name)
        try:
            payload = _read_payload(candidate)
        except CorruptCheckpointError as exc:
            failures.append(f"{name}: {exc}")
            warnings.warn(
                f"skipping corrupt checkpoint {name!r} ({exc}); resuming"
                " from the previous level instead",
                RuntimeWarning,
                stacklevel=3,
            )
            continue
        return candidate, payload
    raise CorruptCheckpointError(
        f"no valid checkpoint in {path!r}: every candidate failed"
        f" ({'; '.join(failures)})"
    )


def load_checkpoint(
    path: str,
    sinks: list[tuple[Point, float]],
    options: CTSOptions,
    buffers: BufferLibrary,
) -> CheckpointState:
    """Load and verify a checkpoint file (or a directory's newest valid).

    Raises ``ValueError`` with what differed when the checkpoint was
    written for different sinks or different result-affecting options,
    and :class:`CorruptCheckpointError` when the file (or, for a
    directory, every file) is torn.
    """
    path, payload = _resolve_payload(path)
    version = payload.get("version")
    if version != CHECKPOINT_VERSION:
        raise ValueError(
            f"checkpoint {path!r} has version {version!r}; this build "
            f"reads version {CHECKPOINT_VERSION}"
        )
    if payload["sinks_digest"] != sinks_digest(sinks):
        raise ValueError(
            f"checkpoint {path!r} was written for a different sink "
            "instance (positions/caps differ)"
        )
    if payload["options_digest"] != options_digest(options):
        raise ValueError(
            f"checkpoint {path!r} was written with different "
            "result-affecting options (performance and resilience knobs "
            "are exempt; topology/routing/timing knobs must match)"
        )
    route_sharing = SharingStats(**payload["route_sharing"])
    return CheckpointState(
        levels_done=payload["levels_done"],
        n_flips=payload["n_flips"],
        next_node_id=payload["next_node_id"],
        center=payload["center"],
        subtrees=[
            _decode_subtree(data, buffers) for data in payload["subtrees"]
        ],
        merge_stats=MergeStats(**payload["merge_stats"]),
        commit_queries=CommitQueryStats(**payload["commit_queries"]),
        route_sharing=route_sharing,
        degradations=[
            Degradation.from_record(item) for item in payload["degradations"]
        ],
    )
