"""Binary search stage: slide the merge node to null the delay difference
(Sec. 4.2.3, Fig. 4.5).

After routing, the two "last fixed nodes" v1 and v2 (the topmost inserted
buffers, or the sub-tree roots when no buffer was inserted) bound an
unbuffered span through the tentative meeting point. The merge node M is
parameterized by the ratio ``r`` of its arc position along that span
(``r = 0`` at v1) and moved by bisection until the library-timing delay
difference between the two sides converges — the paper's "top-down timing
analysis" refinement that out-performs closed-form merge-point formulas.

The search itself is a resumable state machine (:class:`MergeSearchState`,
phase ∈ {bracket, bisect, clamp, done}): it *requests* probes and consumes
their results rather than evaluating the library inline. The scalar driver
(:func:`binary_search_merge`) answers each probe immediately; the lockstep
commit scheduler (:mod:`repro.core.batch_commit`) collects one probe per
active merge pair of a topology level and answers them all with a single
vectorized library round per step. Because batched fit evaluation is bit
for bit the scalar evaluation, both drivers walk identical trajectories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

from repro.geom.point import Point
from repro.geom.segment import PathPolyline
from repro.timing.analysis import LibraryTimingEngine, SubtreeBounds
from repro.tree.nodes import NodeKind, TreeNode

#: Bisection steps of the slew-window clamp (matches the seed's fixed 16).
CLAMP_STEPS = 16


@dataclass
class MergePosition:
    """Chosen merge-node position and the resulting wire lengths."""

    ratio: float
    location: Point
    left_length: float  # wire M -> v1
    right_length: float  # wire M -> v2
    delay_difference: float  # estimated at the chosen ratio
    iterations: int


class ProbeRequest(NamedTuple):
    """One library evaluation a search state is waiting on.

    ``kind`` is ``"diff"`` (full split evaluation, answered with the
    ``(difference, left slew, right slew)`` triple) or ``"slews"``
    (answered with the ``(left, right)`` branch-slew pair).
    """

    kind: str
    ratio: float


class MergeSearchState:
    """Resumable bisection over one merge span.

    Call :meth:`requests` for the probes the search needs next, evaluate
    them (scalar or batched), then :meth:`advance` with the results in
    request order; repeat until :attr:`done`. The probe/advance protocol
    reproduces the scalar loop exactly, including the iteration counts
    recorded in :class:`MergePosition` — the post-clamp re-evaluation is
    counted too (the seed forgot it, undercounting exactly the
    slew-clamped merges).

    "diff" probes answer with the ``(difference, left slew, right slew)``
    triple — the branch slews fall out of the split evaluation anyway,
    and keeping them lets the clamp check and the post-clamp
    re-evaluation reuse the already-evaluated values whenever the ratio
    has not moved since (no probe round, same floats, counted as
    iterations all the same). :attr:`last_eval` exposes the values of
    the accepted ratio so the commit's first slew-repair check can reuse
    them too.
    """

    def __init__(
        self,
        total: float,
        max_iters: int = 24,
        tolerance: float = 0.05e-12,
        enabled: bool = True,
        slew_target: float | None = None,
    ):
        self.total = total
        self.max_iters = max_iters
        self.tolerance = tolerance
        self.slew_target = slew_target
        self.iterations = 0
        self.ratio = 0.5
        self.diff: float | None = None
        self.phase = "bracket"
        self._midpoint_only = not enabled or total <= 0
        self._lo = 0.0
        self._hi = 1.0
        self._steps = 0
        self._clamp_side: str | None = None  # "left" | "right"
        self._clamp_lo = 0.0
        self._clamp_hi = 1.0
        self._clamp_steps = 0
        self._final = False  # awaiting the post-clamp diff re-evaluation
        #: (ratio, diff, left slew, right slew) of the last evaluated
        #: "diff" probe; reused when the same ratio is queried again.
        self.last_eval: tuple[float, float, float, float] | None = None

    @property
    def done(self) -> bool:
        return self.phase == "done"

    # ------------------------------------------------------------------

    def requests(self) -> list[ProbeRequest]:
        """The probes to evaluate before the next :meth:`advance`."""
        if self.phase == "bracket":
            if self._midpoint_only:
                return [ProbeRequest("diff", 0.5)]
            return [ProbeRequest("diff", 0.0), ProbeRequest("diff", 1.0)]
        if self.phase == "bisect":
            return [ProbeRequest("diff", (self._lo + self._hi) / 2.0)]
        if self.phase == "clamp":
            if self._final:
                return [ProbeRequest("diff", self.ratio)]
            if self._clamp_side is None:
                return [ProbeRequest("slews", self.ratio)]
            return [
                ProbeRequest("slews", (self._clamp_lo + self._clamp_hi) / 2.0)
            ]
        return []

    def advance(self, results: list) -> None:
        """Consume probe results (aligned with the last :meth:`requests`)."""
        if self.phase == "bracket":
            self._advance_bracket(results)
        elif self.phase == "bisect":
            self._advance_bisect(results[0])
        elif self.phase == "clamp":
            self._advance_clamp(results[0])

    # ------------------------------------------------------------------

    def _advance_bracket(self, results: list) -> None:
        if self._midpoint_only:
            # Search disabled or zero-length span: midpoint, no clamp.
            d, left_slew, right_slew = results[0]
            self.ratio, self.diff = 0.5, d
            self.last_eval = (0.5, d, left_slew, right_slew)
            self.phase = "done"
            return
        (f_lo, ls_lo, rs_lo), (f_hi, ls_hi, rs_hi) = results
        self.iterations = 2
        if f_lo >= 0:
            # Left side slower even with zero left wire: pin at v1.
            self.ratio, self.diff = 0.0, f_lo
            self.last_eval = (0.0, f_lo, ls_lo, rs_lo)
            self._after_search()
        elif f_hi <= 0:
            self.ratio, self.diff = 1.0, f_hi
            self.last_eval = (1.0, f_hi, ls_hi, rs_hi)
            self._after_search()
        elif self.max_iters <= 0:
            self.ratio, self.diff = 0.5, None
            self._after_search()
        else:
            self.phase = "bisect"

    def _advance_bisect(self, result) -> None:
        r = (self._lo + self._hi) / 2.0
        d, left_slew, right_slew = result
        self.iterations += 1
        self._steps += 1
        self.ratio, self.diff = r, d
        self.last_eval = (r, d, left_slew, right_slew)
        if abs(d) < self.tolerance or self._steps >= self.max_iters:
            self._after_search()
            return
        if d < 0:
            self._lo = r
        else:
            self._hi = r

    def _after_search(self) -> None:
        if self.slew_target is None:
            self.phase = "done"
            return
        self.phase = "clamp"
        self._clamp_side = None
        self._final = False
        # The accepted ratio's branch slews (and difference) were just
        # evaluated; consume them without further probe rounds.
        if self.last_eval is not None and self.last_eval[0] == self.ratio:
            __, __, left_slew, right_slew = self.last_eval
            self._clamp_check(left_slew, right_slew)
            self._try_finish_from_last_eval()

    def _clamp_check(self, left_slew: float, right_slew: float) -> None:
        """The clamp's feasibility check at the current ratio."""
        target = self.slew_target
        self.iterations += 1
        if left_slew <= target and right_slew <= target:
            self._final = True
        elif left_slew > target:
            # Find r_max: largest r with left slew within target.
            self._clamp_side = "left"
            self._clamp_lo, self._clamp_hi = 0.0, self.ratio
            self._clamp_steps = 0
        else:
            # Right slew violated: find the smallest feasible r.
            self._clamp_side = "right"
            self._clamp_lo, self._clamp_hi = self.ratio, 1.0
            self._clamp_steps = 0

    def _try_finish_from_last_eval(self) -> None:
        """Skip the post-clamp re-evaluation when the ratio has not moved.

        The re-evaluation at an unchanged ratio would reproduce the
        stored values bit for bit; it still counts as an iteration so
        the accounting matches the probing path.
        """
        if (
            self._final
            and self.last_eval is not None
            and self.last_eval[0] == self.ratio
        ):
            self.diff = self.last_eval[1]
            self.iterations += 1
            self.phase = "done"

    def _advance_clamp(self, result) -> None:
        """One step of the slew-window clamp (Sec. 4.2.3 refinement).

        Left-branch slew grows with r (longer left wire), right-branch
        slew shrinks, so the feasible window is an interval; the balanced
        ratio is clamped into it by bisection on the violated side, then
        the delay difference is re-evaluated at the clamped ratio.
        """
        target = self.slew_target
        if self._final:
            d, left_slew, right_slew = result
            self.diff = d
            self.last_eval = (self.ratio, d, left_slew, right_slew)
            self.iterations += 1
            self.phase = "done"
            return
        left_slew, right_slew = result
        if self._clamp_side is None:
            self._clamp_check(left_slew, right_slew)
            self._try_finish_from_last_eval()
            return
        mid = (self._clamp_lo + self._clamp_hi) / 2.0
        self.iterations += 1
        self._clamp_steps += 1
        if self._clamp_side == "left":
            if left_slew <= target:
                self._clamp_lo = mid
            else:
                self._clamp_hi = mid
            if self._clamp_steps >= CLAMP_STEPS:
                self.ratio = self._clamp_lo
                self._final = True
        else:
            if right_slew <= target:
                self._clamp_hi = mid
            else:
                self._clamp_lo = mid
            if self._clamp_steps >= CLAMP_STEPS:
                self.ratio = self._clamp_hi
                self._final = True

    # ------------------------------------------------------------------

    def position(self, span: PathPolyline) -> MergePosition:
        """The chosen merge position (valid once :attr:`done`)."""
        total = self.total
        return MergePosition(
            ratio=self.ratio,
            location=span.point_at_length(self.ratio * total),
            left_length=self.ratio * total,
            right_length=(1.0 - self.ratio) * total,
            delay_difference=self.diff,
            iterations=self.iterations,
        )


def _side_bounds(
    engine: LibraryTimingEngine, node: TreeNode, input_slew: float
) -> SubtreeBounds:
    if node.kind is NodeKind.BUFFER:
        return engine.buffer_subtree_bounds(node, input_slew)
    return engine.subtree_bounds(node, input_slew)


def _load_cap(engine: LibraryTimingEngine, node: TreeNode) -> float:
    soa = getattr(engine, "_soa", None)
    if soa is not None:
        # Collapsed cap folded from the byte-cached buffer codes —
        # bit-identical to the object walk, and O(depth) instead of
        # O(subtree) on cache misses. None → object fallback.
        cap = soa.load_cap(engine, node)
        if cap is not None:
            return cap
    return engine._load_cap_of(node)


def evaluate_split(
    engine: LibraryTimingEngine,
    drive: str,
    input_slew: float,
    v1: TreeNode,
    v2: TreeNode,
    left_length: float,
    right_length: float,
    caps: tuple[float, float] | None = None,
) -> tuple[SubtreeBounds, SubtreeBounds, object]:
    """Per-side delay bounds of the would-be merge, via the branch fits.

    Returns (left bounds, right bounds, branch timing); the bounds are
    measured from the merge point M (virtual driver at M, its intrinsic
    delay excluded, consistent with sub-tree delay bookkeeping). ``caps``
    lets bisection callers pass the two (loop-invariant) side load caps.
    """
    if caps is None:
        caps = (_load_cap(engine, v1), _load_cap(engine, v2))
    timing = engine.library.branch_component(
        drive,
        input_slew,
        0.0,
        left_length,
        right_length,
        caps[0],
        caps[1],
    )
    below1 = _side_bounds(engine, v1, timing.left_slew)
    below2 = _side_bounds(engine, v2, timing.right_slew)
    left = SubtreeBounds(
        timing.left_delay + below1.min_delay,
        timing.left_delay + below1.max_delay,
        max(timing.left_slew, below1.worst_slew),
    )
    right = SubtreeBounds(
        timing.right_delay + below2.min_delay,
        timing.right_delay + below2.max_delay,
        max(timing.right_slew, below2.worst_slew),
    )
    return left, right, timing


def evaluate_probe(
    engine: LibraryTimingEngine,
    drive: str,
    input_slew: float,
    kind: str,
    v1: TreeNode | None,
    v2: TreeNode | None,
    left_length: float,
    right_length: float,
    caps: tuple[float, float],
):
    """Answer one probe (``"diff"`` or ``"slews"``) with scalar calls.

    The single scalar implementation both probe drivers share — the
    search driver below and the commit state machine's scalar fallback
    (:mod:`repro.core.batch_commit`) — so the bit-identity contract with
    the batched evaluators has exactly one scalar counterpart.
    """
    if kind == "diff":
        left, right, timing = evaluate_split(
            engine, drive, input_slew, v1, v2, left_length, right_length, caps=caps
        )
        return (
            left.max_delay - right.max_delay,
            timing.left_slew,
            timing.right_slew,
        )
    # Slew-window clamping needs only the two branch slews; skip the
    # three delay fits and the per-side subtree bounds entirely.
    return engine.library.branch_slews(
        drive, input_slew, 0.0, left_length, right_length, caps[0], caps[1]
    )


def evaluate_search_probe(
    engine: LibraryTimingEngine,
    drive: str,
    input_slew: float,
    v1: TreeNode,
    v2: TreeNode,
    total: float,
    caps: tuple[float, float],
    request: ProbeRequest,
):
    """Answer one :class:`ProbeRequest` with scalar library calls."""
    return evaluate_probe(
        engine,
        drive,
        input_slew,
        request.kind,
        v1,
        v2,
        request.ratio * total,
        (1.0 - request.ratio) * total,
        caps,
    )


def binary_search_merge(
    engine: LibraryTimingEngine,
    drive: str,
    input_slew: float,
    v1: TreeNode,
    v2: TreeNode,
    span: PathPolyline,
    max_iters: int = 24,
    tolerance: float = 0.05e-12,
    enabled: bool = True,
    slew_target: float | None = None,
) -> MergePosition:
    """Find the ratio ``r`` that nulls the side-delay difference.

    ``span`` runs from v1 to v2 through the routed meeting point. The delay
    difference f(r) = left(r) - right(r) is monotonically increasing in r
    (more wire on the left side), so plain bisection applies; when even the
    extremes cannot null the difference the best extreme is returned (the
    balance stage should have prevented this).

    When ``slew_target`` is given, the chosen ratio is clamped into the
    window where both branch slews stay within it (slew has priority over
    residual skew; corrective insertion handles the rare infeasible spans).

    This is the scalar driver of :class:`MergeSearchState`; the batched
    commit scheduler drives the same machine with vectorized probes.
    """
    total = span.length
    caps = (_load_cap(engine, v1), _load_cap(engine, v2))
    state = MergeSearchState(total, max_iters, tolerance, enabled, slew_target)
    while not state.done:
        results = [
            evaluate_search_probe(
                engine, drive, input_slew, v1, v2, total, caps, request
            )
            for request in state.requests()
        ]
        state.advance(results)
    return state.position(span)
