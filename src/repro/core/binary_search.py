"""Binary search stage: slide the merge node to null the delay difference
(Sec. 4.2.3, Fig. 4.5).

After routing, the two "last fixed nodes" v1 and v2 (the topmost inserted
buffers, or the sub-tree roots when no buffer was inserted) bound an
unbuffered span through the tentative meeting point. The merge node M is
parameterized by the ratio ``r`` of its arc position along that span
(``r = 0`` at v1) and moved by bisection until the library-timing delay
difference between the two sides converges — the paper's "top-down timing
analysis" refinement that out-performs closed-form merge-point formulas.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.geom.point import Point
from repro.geom.segment import PathPolyline
from repro.timing.analysis import LibraryTimingEngine, SubtreeBounds
from repro.tree.nodes import NodeKind, TreeNode


@dataclass
class MergePosition:
    """Chosen merge-node position and the resulting wire lengths."""

    ratio: float
    location: Point
    left_length: float  # wire M -> v1
    right_length: float  # wire M -> v2
    delay_difference: float  # estimated at the chosen ratio
    iterations: int


def _side_bounds(
    engine: LibraryTimingEngine, node: TreeNode, input_slew: float
) -> SubtreeBounds:
    if node.kind is NodeKind.BUFFER:
        return engine.buffer_subtree_bounds(node, input_slew)
    return engine.subtree_bounds(node, input_slew)


def _load_cap(engine: LibraryTimingEngine, node: TreeNode) -> float:
    return engine._load_cap_of(node)


def evaluate_split(
    engine: LibraryTimingEngine,
    drive: str,
    input_slew: float,
    v1: TreeNode,
    v2: TreeNode,
    left_length: float,
    right_length: float,
    caps: tuple[float, float] | None = None,
) -> tuple[SubtreeBounds, SubtreeBounds, object]:
    """Per-side delay bounds of the would-be merge, via the branch fits.

    Returns (left bounds, right bounds, branch timing); the bounds are
    measured from the merge point M (virtual driver at M, its intrinsic
    delay excluded, consistent with sub-tree delay bookkeeping). ``caps``
    lets bisection callers pass the two (loop-invariant) side load caps.
    """
    if caps is None:
        caps = (_load_cap(engine, v1), _load_cap(engine, v2))
    timing = engine.library.branch_component(
        drive,
        input_slew,
        0.0,
        left_length,
        right_length,
        caps[0],
        caps[1],
    )
    below1 = _side_bounds(engine, v1, timing.left_slew)
    below2 = _side_bounds(engine, v2, timing.right_slew)
    left = SubtreeBounds(
        timing.left_delay + below1.min_delay,
        timing.left_delay + below1.max_delay,
        max(timing.left_slew, below1.worst_slew),
    )
    right = SubtreeBounds(
        timing.right_delay + below2.min_delay,
        timing.right_delay + below2.max_delay,
        max(timing.right_slew, below2.worst_slew),
    )
    return left, right, timing


def binary_search_merge(
    engine: LibraryTimingEngine,
    drive: str,
    input_slew: float,
    v1: TreeNode,
    v2: TreeNode,
    span: PathPolyline,
    max_iters: int = 24,
    tolerance: float = 0.05e-12,
    enabled: bool = True,
    slew_target: float | None = None,
) -> MergePosition:
    """Find the ratio ``r`` that nulls the side-delay difference.

    ``span`` runs from v1 to v2 through the routed meeting point. The delay
    difference f(r) = left(r) - right(r) is monotonically increasing in r
    (more wire on the left side), so plain bisection applies; when even the
    extremes cannot null the difference the best extreme is returned (the
    balance stage should have prevented this).

    When ``slew_target`` is given, the chosen ratio is clamped into the
    window where both branch slews stay within it (slew has priority over
    residual skew; corrective insertion handles the rare infeasible spans).
    """
    total = span.length
    cap1, cap2 = _load_cap(engine, v1), _load_cap(engine, v2)

    def split_at(r: float):
        return evaluate_split(
            engine,
            drive,
            input_slew,
            v1,
            v2,
            r * total,
            (1.0 - r) * total,
            caps=(cap1, cap2),
        )

    def slews_at(r: float) -> tuple[float, float]:
        # Slew-window clamping needs only the two branch slews; skip the
        # three delay fits and the per-side subtree bounds entirely.
        return engine.library.branch_slews(
            drive, input_slew, 0.0, r * total, (1.0 - r) * total, cap1, cap2
        )

    def diff_at(r: float) -> float:
        left, right, __ = split_at(r)
        return left.max_delay - right.max_delay

    iterations = 0
    if not enabled or total <= 0:
        r = 0.5
        d = diff_at(r)
    else:
        lo, hi = 0.0, 1.0
        f_lo, f_hi = diff_at(lo), diff_at(hi)
        iterations = 2
        if f_lo >= 0:
            r, d = lo, f_lo  # left side slower even with zero left wire
        elif f_hi <= 0:
            r, d = hi, f_hi
        else:
            r, d = 0.5, None
            for _ in range(max_iters):
                r = (lo + hi) / 2.0
                d = diff_at(r)
                iterations += 1
                if abs(d) < tolerance:
                    break
                if d < 0:
                    lo = r
                else:
                    hi = r
        if slew_target is not None:
            r, extra = _clamp_to_slew_window(slews_at, r, slew_target)
            iterations += extra
            d = diff_at(r)
    return MergePosition(
        ratio=r,
        location=span.point_at_length(r * total),
        left_length=r * total,
        right_length=(1.0 - r) * total,
        delay_difference=d,
        iterations=iterations,
    )


def _clamp_to_slew_window(slews_at, r: float, target: float) -> tuple[float, int]:
    """Clamp ``r`` into the slew-feasible window by bisection.

    Left-branch slew grows with r (longer left wire), right-branch slew
    shrinks, so the feasible window is an interval [r_min, r_max]; the
    balanced ratio is clamped into it (or the window midpoint is used when
    the interval is empty — both sides then need corrective buffers).
    """
    left_slew, right_slew = slews_at(r)
    iters = 1
    if left_slew <= target and right_slew <= target:
        return r, iters
    if left_slew > target:
        # Find r_max: largest r with left slew within target.
        lo, hi = 0.0, r
        for _ in range(16):
            mid = (lo + hi) / 2.0
            ls, __ = slews_at(mid)
            iters += 1
            if ls <= target:
                lo = mid
            else:
                hi = mid
        return lo, iters
    # Right slew violated: find r_min, smallest r with right slew ok.
    lo, hi = r, 1.0
    for _ in range(16):
        mid = (lo + hi) / 2.0
        __, rs = slews_at(mid)
        iters += 1
        if rs <= target:
            hi = mid
        else:
            lo = mid
    return hi, iters
