"""Lockstep batched commit phase: one vectorized library round per step.

PR 2 took the route phase off the critical path; what remained serial was
the commit phase's library timing queries — per pair, up to five rounds of
bisection (``MergeSearchState``) plus slew-repair checks, each a handful
of Horner-evaluated polynomial fits issued one at a time. Those queries
are independent across the merge pairs of a topology level given the
routed spans, so this module advances every pair of a level **in
lockstep**: each scheduler round collects the single probe (or probe
pair) every active merge is waiting on, answers all "diff" probes with
one batched branch-component evaluation plus one batched subtree-bounds
lookup, all "slews" probes with one batched branch-slews evaluation, and
scatters the results back before advancing the pairs in pair order.

Bit-identity with the scalar flow rests on three facts:

- ``PolynomialFit.predict_many`` performs the scalar evaluator's float
  operations element-wise, so each probe row's answer equals the scalar
  call's answer bit for bit;
- the timing engine's memoized bounds are exact functions of their cache
  key (bucket-representative evaluation + interpolation), so the
  interleaved cache fill order cannot change any value;
- pairs advance in pair order and every node-creating advance records
  the id span it consumed, so the level is renumbered into serial
  creation order afterwards (the PR 2 machinery, now with as many spans
  per pair as the pair had node-creating steps).

``PairCommitState`` is the single implementation of the commit loop:
the scalar flow (``MergeRouter.commit``) drives it probe by probe, the
batched flow drives many machines through ``BatchCommitScheduler``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

import numpy as np

from repro.core.binary_search import MergeSearchState, evaluate_probe
from repro.geom.segment import PathPolyline
from repro.tree.nodes import TreeNode, make_merge, peek_node_id

#: Search/repair/re-balance rounds per merge (the seed's fixed loop sizes).
MAX_COMMIT_ROUNDS = 5
MAX_REPAIR_ROUNDS = 8

#: Lockstep rounds with fewer probe rows than this answer them scalar —
#: below it, numpy dispatch on tiny arrays costs more than the compiled
#: scalar evaluators (results are bit-identical either way). The long
#: single-pair tail of a level (slew-window clamps run 18 sequential
#: rounds) stays cheap while the wide early rounds vectorize.
SCALAR_ROUND_ROWS = 32


@dataclass
class CommitQueryStats:
    """Commit-phase library-query totals, split by probe purpose.

    Probe-row counters are mode-independent (the scalar and batched
    drivers issue identical probe sequences); the ``batched_*`` counters
    are only advanced by the lockstep scheduler.
    """

    search_probes: int = 0  # split evaluations (bracket/bisect/final)
    clamp_probes: int = 0  # slew-window probes of the clamp stage
    repair_probes: int = 0  # branch-slew checks of corrective insertion
    reused_checks: int = 0  # checks answered from already-evaluated values
    batched_rounds: int = 0  # lockstep rounds answered vectorized
    batched_rows: int = 0  # probe rows across those rounds

    @property
    def total_probes(self) -> int:
        return self.search_probes + self.clamp_probes + self.repair_probes

    @property
    def mean_batch_rows(self) -> float:
        if not self.batched_rounds:
            return 0.0
        return self.batched_rows / self.batched_rounds

    def as_dict(self) -> dict:
        return {
            "search_probes": self.search_probes,
            "clamp_probes": self.clamp_probes,
            "repair_probes": self.repair_probes,
            "reused_checks": self.reused_checks,
            "batched_rounds": self.batched_rounds,
            "batched_rows": self.batched_rows,
            "mean_batch_rows": self.mean_batch_rows,
        }


class CommitProbe(NamedTuple):
    """One pending library evaluation of a commit state machine.

    ``kind`` is ``"diff"`` (answered with the ``(difference, left slew,
    right slew)`` triple of the split; needs the side nodes for subtree
    bounds) or ``"slews"`` (answered with the branch-slew pair).
    """

    kind: str
    left_length: float
    right_length: float
    cap_left: float
    cap_right: float
    left_node: TreeNode | None = None
    right_node: TreeNode | None = None


class PairCommitState:
    """Resumable commit of one merge pair: search -> repair -> finalize.

    Reproduces the serial commit loop exactly — corrective insertion
    (slew repair) changes one side's delay after the balance was found,
    so search, repair and re-balance iterate up to
    :data:`MAX_COMMIT_ROUNDS` times; residual imbalance that the span
    cannot absorb (search pinned at an extreme) is wire-snaked away.
    Construction materializes the routed buffer chains (node-creating);
    every subsequent node-creating step happens inside :meth:`advance`.
    """

    def __init__(self, router, plan, route) -> None:
        self.router = router
        self.root: TreeNode | None = None
        self.merge: TreeNode | None = None
        self.phase = "done"
        # Snake diagnostics (the prepare phase's via the plan, the commit
        # phase's accumulated here) are applied to the router stats at
        # finish — pair order in every mode — so the float sum does not
        # depend on how the lockstep scheduler interleaves pairs.
        self._n_snaked = plan.n_snaked
        self._snaked_delay = plan.snaked_delay
        self._finished = False
        #: Set by the lockstep scheduler (never in scalar runs): park in
        #: phase "stage" instead of forcing the stage buffer inline, so
        #: a whole round's forced-stage decisions batch through the SoA
        #: kernel. The pair's node-creating order is unchanged — the
        #: stage buffer is always its last created node — so the serial
        #: renumbering sees identical per-pair span sequences.
        self.defer_stage = False
        self._pending_stage_merge: TreeNode | None = None
        if plan.coincident:
            self.root = router._merge_coincident(plan.root1, plan.root2)
            return
        # ``route`` may come from another process with detached
        # terminals; the plan's terminals hold the live nodes.
        route.left.terminal = plan.term1
        route.right.terminal = plan.term2
        self.v1, arc1 = router._materialize_chain(route.left)
        self.v2, arc2 = router._materialize_chain(route.right)
        self.span = route.left.polyline.subpath(
            arc1, route.left.polyline.length
        ).concat(
            route.right.polyline.subpath(
                arc2, route.right.polyline.length
            ).reversed()
        )
        self.round_idx = 0
        self._repair_inserted = 0
        self._repair_rounds = 0
        self._begin_search()

    @property
    def done(self) -> bool:
        return self.phase == "done"

    # ------------------------------------------------------------------

    def _begin_search(self) -> None:
        router = self.router
        options = router.options
        self.cap1 = router.engine._load_cap_of(self.v1)
        self.cap2 = router.engine._load_cap_of(self.v2)
        self.search = MergeSearchState(
            self.span.length,
            options.binary_search_iters,
            options.binary_search_tol,
            options.enable_binary_search,
            slew_target=options.target_slew,
        )
        self.phase = "search"

    def requests(self) -> list[CommitProbe]:
        """The probes to answer before the next :meth:`advance`.

        Call exactly once per round — probe-row counters are advanced
        here so the scalar and batched drivers account identically.
        """
        stats = self.router.commit_queries
        if self.phase == "search":
            total = self.span.length
            probes = []
            for request in self.search.requests():
                left_length = request.ratio * total
                right_length = (1.0 - request.ratio) * total
                if request.kind == "diff":
                    stats.search_probes += 1
                    probes.append(
                        CommitProbe(
                            "diff",
                            left_length,
                            right_length,
                            self.cap1,
                            self.cap2,
                            self.v1,
                            self.v2,
                        )
                    )
                else:
                    stats.clamp_probes += 1
                    probes.append(
                        CommitProbe(
                            "slews", left_length, right_length, self.cap1, self.cap2
                        )
                    )
            return probes
        if self.phase == "repair":
            left, right = self.merge.children
            engine = self.router.engine
            stats.repair_probes += 1
            return [
                CommitProbe(
                    "slews",
                    left.wire_to_parent,
                    right.wire_to_parent,
                    engine._load_cap_of(left),
                    engine._load_cap_of(right),
                )
            ]
        return []

    def advance(self, results: list) -> None:
        """Consume probe results (aligned with the last :meth:`requests`)."""
        if self.phase == "search":
            self.search.advance(results)
            if self.search.done:
                self._on_search_done()
        elif self.phase == "repair":
            self._on_repair_probe(results[0])

    # ------------------------------------------------------------------

    def _on_search_done(self) -> None:
        router = self.router
        position = self.search.position(self.span)
        router.stats.binary_search_iters += position.iterations
        residual = position.delay_difference
        pinned = position.ratio <= 1e-9 or position.ratio >= 1.0 - 1e-9
        if (
            self.round_idx < MAX_COMMIT_ROUNDS - 1
            and pinned
            and router.options.enable_balance
            and abs(residual) > 2.0e-12
        ):
            v1, v2, added_delay = router._snake_residual(
                self.v1, self.v2, residual
            )
            if added_delay is not None:
                self._n_snaked += 1
                self._snaked_delay += added_delay
                self.v1, self.v2 = v1, v2
                self.round_idx += 1
                self._begin_search()
                return
        # Re-balanced spans are straight lines that can cut through a
        # blockage; keep the merge node itself outside any macro.
        merge = make_merge(router._nudge_off_blockages(position.location))
        merge.attach(
            self.v1,
            max(
                position.left_length,
                merge.location.manhattan_to(self.v1.location),
            ),
        )
        merge.attach(
            self.v2,
            max(
                position.right_length,
                merge.location.manhattan_to(self.v2.location),
            ),
        )
        self.merge = merge
        self._repair_inserted = 0
        self._repair_rounds = 0
        self.phase = "repair"
        # First repair check reuse: when neither wire was stretched to
        # the manhattan distance, the merged branch the repair would
        # probe is exactly the component the search's accepted ratio
        # evaluated last — same lengths, same (memoized) caps — so the
        # stored slews answer it without a probe round.
        last = self.search.last_eval
        if (
            last is not None
            and last[0] == self.search.ratio
            and merge.children[0].wire_to_parent == position.left_length
            and merge.children[1].wire_to_parent == position.right_length
        ):
            router.commit_queries.reused_checks += 1
            self._on_repair_probe((last[2], last[3]))

    def _on_repair_probe(self, slews: tuple[float, float]) -> None:
        """One slew-repair round: check the merged branch, maybe insert.

        Routing checked each side as a single-wire component; the merged
        stage is a branch component whose shared driver sees both sides'
        load, so slews can degrade past the target. Violating sides get a
        buffer spliced into their final wire until the check passes or
        :data:`MAX_REPAIR_ROUNDS` insertions were made.
        """
        router = self.router
        branch_left, branch_right = slews
        worst = router._worst_slew_side(self.merge, branch_left, branch_right)
        if worst is not None and router._split_wire(self.merge, worst):
            self._repair_inserted += 1
            self._repair_rounds += 1
            if self._repair_rounds < MAX_REPAIR_ROUNDS:
                return
        self._finish_repair()

    def _finish_repair(self) -> None:
        router = self.router
        if not self._repair_inserted or self.round_idx == MAX_COMMIT_ROUNDS - 1:
            if self.defer_stage:
                self._pending_stage_merge = self.merge
                self.merge = None
                self.phase = "stage"
                return
            self.root = router._maybe_force_stage_buffer(self.merge)
            self.merge = None
            self.phase = "done"
            return
        # Re-balance between the new fixed nodes (corrective buffers or
        # the originals); the old merge node is discarded.
        new_v1, new_v2 = self.merge.children
        self.v1 = new_v1.detach()
        self.v2 = new_v2.detach()
        mid = self.merge.location
        points = [self.v1.location]
        if mid != self.v1.location and mid != self.v2.location:
            points.append(mid)
        points.append(self.v2.location)
        self.span = PathPolyline(points)
        self.merge = None
        self.round_idx += 1
        self._begin_search()

    # ------------------------------------------------------------------

    def _evaluate_scalar(self, probe: CommitProbe):
        """Answer one probe with the scalar library calls the seed made."""
        router = self.router
        return evaluate_probe(
            router.engine,
            router._virtual,
            router.options.target_slew,
            probe.kind,
            probe.left_node,
            probe.right_node,
            probe.left_length,
            probe.right_length,
            (probe.cap_left, probe.cap_right),
        )

    def run_scalar(self) -> None:
        """Drive this machine to completion with scalar probes."""
        while not self.done:
            self.advance([self._evaluate_scalar(p) for p in self.requests()])

    def finish(self) -> TreeNode:
        if not self.done:
            raise RuntimeError("commit state machine is not finished")
        if not self._finished:
            self._finished = True
            self.router.stats.n_snaked += self._n_snaked
            self.router.stats.snaked_delay += self._snaked_delay
        return self.root


class BatchCommitScheduler:
    """Advance a level's commit state machines in lockstep.

    Each round: gather every active pair's pending probes, answer all
    "diff" rows with one vectorized branch-component evaluation plus one
    grouped subtree-bounds lookup, all "slews" rows with one vectorized
    branch-slews evaluation, then advance the machines in pair order.
    Node-creating advances record the id span they consumed into
    ``spans`` (when given) so the caller can renumber the level into
    serial creation order.
    """

    def __init__(self, router) -> None:
        self.router = router
        #: Set once a vectorized round fails; every later round of this
        #: scheduler answers scalar (one degradation event per cause).
        self._degraded = False
        self._plan = None
        if router.options.fault_plan:
            from repro.evalx.faultinject import active_plan

            self._plan = active_plan(router.options.fault_plan)

    def run(
        self,
        states: list[PairCommitState],
        spans: list[list[tuple[int, int]]] | None = None,
    ) -> None:
        router = self.router
        stats = router.commit_queries
        drive = router._virtual
        input_slew = router.options.target_slew
        soa = getattr(router.engine, "_soa", None)
        if soa is not None and spans is not None:
            # Stage-buffer forcing parks in phase "stage" and resolves
            # level-wide through the SoA kernel after each advance round
            # (scalar per merge once the mirror degrades). Only when
            # spans are recorded: the deferral regroups actual creation
            # order across pairs, which the serial renumbering undoes.
            for state in states:
                state.defer_stage = True
        active = [i for i, state in enumerate(states) if not state.done]
        while active:
            gathered: list[tuple[int, list[CommitProbe]]] = []
            diff_rows: list[tuple[int, int, CommitProbe]] = []
            slew_rows: list[tuple[int, int, CommitProbe]] = []
            for i in active:
                probes = states[i].requests()
                gathered.append((i, probes))
                for slot, probe in enumerate(probes):
                    row = (i, slot, probe)
                    if probe.kind == "diff":
                        diff_rows.append(row)
                    else:
                        slew_rows.append(row)
            results = {i: [None] * len(probes) for i, probes in gathered}
            n_rows = len(diff_rows) + len(slew_rows)
            answered = False
            if n_rows >= SCALAR_ROUND_ROWS and not self._degraded:
                try:
                    if self._plan is not None:
                        self._plan.consult("batch_commit")
                    if diff_rows:
                        self._answer_diff_rows(
                            diff_rows, results, drive, input_slew
                        )
                    if slew_rows:
                        self._answer_slew_rows(
                            slew_rows, results, drive, input_slew
                        )
                    stats.batched_rounds += 1
                    stats.batched_rows += n_rows
                    answered = True
                except MemoryError:
                    # Never degrade past an OOM: the jobs watchdog must
                    # see it, not a silently slower scalar retry.
                    raise
                except Exception as exc:
                    # Re-answering a partially scattered round scalar is
                    # safe: the scalar evaluator recomputes every row
                    # from the probe alone, overwriting any batched
                    # answers with bit-identical values. ``requests()``
                    # ran exactly once, so probe counters stay serial.
                    self.router.resilience.note("batch_commit", exc)
                    self._degraded = True
            if not answered:
                for i, slot, probe in diff_rows + slew_rows:
                    results[i][slot] = states[i]._evaluate_scalar(probe)
            for i, __ in gathered:
                state = states[i]
                if spans is None:
                    state.advance(results[i])
                else:
                    start = peek_node_id()
                    state.advance(results[i])
                    end = peek_node_id()
                    if end > start:
                        spans[i].append((start, end))
            staged = [i for i, __ in gathered if states[i].phase == "stage"]
            if staged:
                self._finish_stage_states(states, staged, spans)
            active = [i for i, __ in gathered if not states[i].done]

    def _finish_stage_states(self, states, staged, spans) -> None:
        """Resolve a round's parked stage-buffer decisions level-wide.

        One batched :meth:`~repro.core.soa_tree.SoaTree.stage_drivers`
        call decides every parked merge; application (node creation,
        stats, span recording) stays in pair order, so the per-pair
        creation sequence — and therefore the serial renumbering —
        is exactly the inline flow's.
        """
        router = self.router
        soa = getattr(router.engine, "_soa", None)
        merges = [states[i]._pending_stage_merge for i in staged]
        drivers = soa.stage_drivers(router, merges) if soa is not None else None
        for pos, i in enumerate(staged):
            state = states[i]
            merge = state._pending_stage_merge
            state._pending_stage_merge = None
            start = peek_node_id()
            if drivers is None:
                root = router._maybe_force_stage_buffer(merge)
            else:
                root = router._apply_stage_driver(merge, drivers[pos])
            end = peek_node_id()
            if spans is not None and end > start:
                spans[i].append((start, end))
            state.root = root
            state.phase = "done"

    # ------------------------------------------------------------------

    @staticmethod
    def _row_inputs(rows) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        n = len(rows)
        left_lengths = np.empty(n)
        right_lengths = np.empty(n)
        left_caps = np.empty(n)
        right_caps = np.empty(n)
        for k, (__, __, probe) in enumerate(rows):
            left_lengths[k] = probe.left_length
            right_lengths[k] = probe.right_length
            left_caps[k] = probe.cap_left
            right_caps[k] = probe.cap_right
        return left_lengths, right_lengths, left_caps, right_caps

    def _answer_diff_rows(self, rows, results, drive, input_slew) -> None:
        """One vectorized split evaluation for every pending diff probe.

        The scalar path's per-probe float ops are reproduced exactly: the
        four needed branch fits evaluate batched (bit-identical rows),
        the per-side bounds come from the engine's key-deterministic
        caches, and the final delay difference is composed per row with
        the same scalar additions ``evaluate_split`` performs.
        """
        router = self.router
        batch = router.library.branch_component_many(
            drive, input_slew, 0.0, *self._row_inputs(rows)
        )
        items: list[tuple[TreeNode, float]] = []
        for k, (__, __, probe) in enumerate(rows):
            items.append((probe.left_node, float(batch.left_slew[k])))
            items.append((probe.right_node, float(batch.right_slew[k])))
        bounds = router.engine.subtree_bounds_many(items)
        for k, (i, slot, __) in enumerate(rows):
            left_slew = items[2 * k][1]
            right_slew = items[2 * k + 1][1]
            left_max = float(batch.left_delay[k]) + bounds[2 * k].max_delay
            right_max = float(batch.right_delay[k]) + bounds[2 * k + 1].max_delay
            results[i][slot] = (left_max - right_max, left_slew, right_slew)

    def _answer_slew_rows(self, rows, results, drive, input_slew) -> None:
        left, right = self.router.library.branch_slews_many(
            drive, input_slew, 0.0, *self._row_inputs(rows)
        )
        for k, (i, slot, __) in enumerate(rows):
            results[i][slot] = (float(left[k]), float(right[k]))
