"""Top-level aggressive-buffered clock tree synthesis (Sec. 4.1, Fig. 4.1).

The flow: level 0 holds the sinks; each level pairs the current sub-trees
with the greedy nearest-neighbor matching and merge-routes every pair,
optionally running H-structure re-estimation/correction on pairs of
merge-rooted sub-trees; odd levels promote a max-latency seed node. The
loop ends when one sub-tree remains, which becomes the network under the
clock SOURCE.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.charlib.build import load_default_library
from repro.charlib.library import DelaySlewLibrary
from repro.core.hstructure import correct_pairing, reestimate_pairing
from repro.core.merge_routing import MergeRouter, MergeStats
from repro.core.options import CTSOptions
from repro.core.routing_common import uses_maze_router
from repro.core.topology import EdgeCost, SubTree, greedy_matching
from repro.geom.bbox import BBox
from repro.geom.point import Point, centroid
from repro.tech.buffers import BufferLibrary
from repro.tech.presets import cts_buffer_library, default_technology
from repro.tech.technology import Technology
from repro.timing.analysis import LibraryTimingEngine
from repro.tree.clocktree import ClockTree
from repro.tree.nodes import (
    TreeNode,
    make_sink,
    peek_node_id,
    set_node_id,
    set_tree_recorder,
)
from repro.tree.validate import validate_tree


@dataclass
class SynthesisResult:
    """A synthesized clock tree plus flow diagnostics."""

    tree: ClockTree
    options: CTSOptions
    runtime: float
    n_flippings: int
    merge_stats: MergeStats
    levels: int
    #: Wall-clock of the route and commit phases plus commit-query totals
    #: and shared-window routing counters (diagnostics — excluded from
    #: cross-mode equivalence comparisons).
    phase_seconds: dict = field(default_factory=dict)
    commit_queries: dict = field(default_factory=dict)
    route_sharing: dict = field(default_factory=dict)
    #: Degradation events of this run (fast paths that fell back to their
    #: bit-identical scalar twins mid-synthesis; see repro.core.resilience).
    #: A resumed run carries the interrupted run's events forward.
    degradations: list = field(default_factory=list)
    #: The completed topology level this run restarted after, when it
    #: resumed from a checkpoint; None for a fresh synthesis.
    resumed_from: int | None = None

    def report(self) -> str:
        stats = self.tree.stats()
        lines = [
            f"clock tree: {stats['n_sinks']} sinks, {stats['n_buffers']} buffers,"
            f" wirelength {stats['wirelength']:.0f} units, {self.levels} levels",
            f"buffer mix: {stats['buffers']}",
            f"synthesis time: {self.runtime:.2f} s;"
            f" flippings: {self.n_flippings};"
            f" snaked merges: {self.merge_stats.n_snaked}",
        ]
        if self.resumed_from is not None:
            lines.append(f"resumed from checkpoint after level {self.resumed_from}")
        for event in self.degradations:
            lines.append(
                f"degraded: {event.component} at level {event.level}"
                f" ({event.reason})"
            )
        return "\n".join(lines)


class AggressiveBufferedCTS:
    """The paper's synthesis flow, reusable across benchmarks."""

    def __init__(
        self,
        tech: Technology | None = None,
        buffers: BufferLibrary | None = None,
        library: DelaySlewLibrary | None = None,
        options: CTSOptions | None = None,
        blockages: list[BBox] | None = None,
    ):
        self.tech = tech or default_technology()
        self.buffers = buffers or cts_buffer_library()
        self.library = library or load_default_library(self.tech)
        self.options = options or CTSOptions()
        self.engine = LibraryTimingEngine(
            self.library, self.tech, self.options.virtual_drive
        )
        self.router = MergeRouter(
            self.tech,
            self.library,
            self.buffers,
            self.engine,
            self.options,
            blockages,
        )
        self._cost = EdgeCost(self.options, self.router._delay_per_unit)
        #: Why the parallel path was disabled, if it was (see _make_executor).
        self.parallel_fallback_reason: str | None = None

    # ------------------------------------------------------------------

    def synthesize(
        self,
        sinks: list[tuple[Point, float]],
        source_location: Point | None = None,
    ) -> SynthesisResult:
        """Synthesize a clock tree over ``(location, capacitance)`` sinks.

        Under ``options.soa_commit`` the run executes with a
        structure-of-arrays mirror of the in-flight tree installed
        (:class:`repro.core.soa_tree.SoaTree`): every node creation /
        attach / detach is echoed into flat numpy columns, and the
        commit phase's bounds-bucket prefill, forced-stage-buffer
        decisions and checkpoint frames read the columns instead of
        walking node objects — bit-identical to the object walks, which
        remain the degradation fallback.
        """
        if len(sinks) < 1:
            raise ValueError("need at least one sink")
        if not self.options.soa_commit:
            return self._synthesize(sinks, source_location)
        from repro.core.soa_tree import SoaTree

        soa = SoaTree(
            resilience=self.router.resilience,
            fault_plan=self.options.fault_plan,
        )
        previous = set_tree_recorder(soa)
        self.engine.attach_soa(soa)
        try:
            return self._synthesize(sinks, source_location)
        finally:
            set_tree_recorder(previous)
            self.engine.attach_soa(None)

    def _synthesize(
        self,
        sinks: list[tuple[Point, float]],
        source_location: Point | None = None,
    ) -> SynthesisResult:
        t0 = time.perf_counter()
        resilience = self.router.resilience
        resilience.events.clear()
        resumed_from: int | None = None
        if self.options.resume_from is not None:
            level, center, n_flips, n_levels = self._resume(sinks)
            resumed_from = n_levels
        else:
            level = [self._leaf(pt, cap, i) for i, (pt, cap) in enumerate(sinks)]
            center = centroid([s.point for s in level])
            n_flips = 0
            n_levels = 0
        executor = self._make_executor()
        try:
            while len(level) > 1:
                n_levels += 1
                resilience.level = n_levels
                self.router.reset_grid_cache()
                pairs, seed = greedy_matching(level, center, self._cost)
                next_level: list[SubTree] = [seed] if seed else []
                use_pool = (
                    executor is not None
                    and len(pairs) >= self.options.parallel_min_level_size
                )
                use_batch = (
                    self.options.batch_commit
                    and len(pairs) >= self.options.batch_commit_min_pairs
                )
                # Shared-window routing pays from the first co-routed
                # maze pair (one curve round either way), so any level
                # with two routable pairs sweeps; deliberately not
                # coupled to the commit-batching threshold. Profile-only
                # runs have no windows to share and stay on the cheap
                # serial loop.
                use_shared = (
                    self.options.shared_windows
                    and len(pairs) >= 2
                    and uses_maze_router(self.options, self.router.blockages)
                )
                if use_pool or use_batch or use_shared:
                    merged_level, level_flips = self._merge_level_swept(
                        executor if use_pool else None, pairs, use_batch
                    )
                    n_flips += level_flips
                    next_level.extend(merged_level)
                else:
                    for a, b in pairs:
                        merged = self._merge_pair(a, b)
                        n_flips += merged[1]
                        next_level.extend(merged[0])
                level = next_level
                if self.options.checkpoint_dir is not None:
                    self._write_checkpoint(
                        n_levels, level, n_flips, center, sinks
                    )
                self._level_pulse(n_levels)
        finally:
            if executor is not None:
                if executor.fallback_reason is not None:
                    self.parallel_fallback_reason = executor.fallback_reason
                executor.close()
            resilience.level = 0
        root = level[0].root
        if source_location is None:
            source_location = root.location
        root, trunk_wire = self.router.route_trunk(root, source_location)
        tree = ClockTree.from_network(source_location, root, trunk_wire)
        if self.options.validate_every_merge:
            validate_tree(tree.root, expect_source_root=True)
        return SynthesisResult(
            tree=tree,
            options=self.options,
            runtime=time.perf_counter() - t0,
            n_flippings=n_flips,
            merge_stats=self.router.stats,
            levels=n_levels,
            phase_seconds=dict(self.router.phase_seconds),
            commit_queries=self.router.commit_queries.as_dict(),
            route_sharing=self.router.route_sharing.as_dict(),
            degradations=list(resilience.events),
            resumed_from=resumed_from,
        )

    # ------------------------------------------------------------------
    # Checkpoint / resume
    # ------------------------------------------------------------------

    def _write_checkpoint(
        self,
        n_levels: int,
        level: list[SubTree],
        n_flips: int,
        center: Point,
        sinks: list[tuple[Point, float]],
    ) -> None:
        """Snapshot the flow after one completed topology level."""
        from repro.core.checkpoint import write_checkpoint

        write_checkpoint(
            self.options.checkpoint_dir,
            level=n_levels,
            subtrees=level,
            n_flips=n_flips,
            next_node_id=peek_node_id(),
            center=center,
            options=self.options,
            sinks=sinks,
            merge_stats=self.router.stats,
            commit_queries=self.router.commit_queries,
            route_sharing=self.router.route_sharing,
            degradations=self.router.resilience.events,
            soa=self.engine._soa,
        )
        if self.options.fault_plan:
            from repro.evalx.faultinject import active_plan

            # ``checkpoint:N:halt`` simulates a kill right after the N-th
            # snapshot landed; SynthesisHalted is a BaseException, so it
            # unwinds straight through every degradation guard.
            active_plan(self.options.fault_plan).consult("checkpoint")

    def _level_pulse(self, n_levels: int) -> None:
        """Prove liveness after one completed topology level.

        Stamps ``options.heartbeat_file`` (atomically, content changes
        every level) so the job supervisor's staleness watchdog can tell
        a slow level from a hung process. The ``job_hang``/``job_oom``
        fault sites live here — right where a real hang would silence
        the heartbeat — so chaos tests exercise the watchdog for real.
        """
        if self.options.heartbeat_file is not None:
            from repro.jobs.heartbeat import stamp_heartbeat

            stamp_heartbeat(
                self.options.heartbeat_file, f"level:{n_levels}"
            )
        if self.options.fault_plan:
            from repro.evalx.faultinject import active_plan

            plan = active_plan(self.options.fault_plan)
            plan.consult("job_hang")
            plan.consult("job_oom")

    def _resume(
        self, sinks: list[tuple[Point, float]]
    ) -> tuple[list[SubTree], Point, int, int]:
        """Rebuild the level-loop state from ``options.resume_from``.

        The node-id counter is restored so post-resume nodes get the ids
        and auto-names the uninterrupted run would have assigned, and the
        timing engine's memoized caches are dropped (memoization is
        order-independent, so recomputed entries are bit-identical).
        """
        from repro.core.checkpoint import load_checkpoint

        state = load_checkpoint(
            self.options.resume_from, sinks, self.options, self.buffers
        )
        set_node_id(state.next_node_id)
        self.engine.clear_cache()
        self.router.stats = state.merge_stats
        self.router.commit_queries = state.commit_queries
        # ``route_sharing`` is aliased by the router's grid cache — merge
        # the saved counters in rather than swapping the object out.
        self.router.route_sharing.merge(state.route_sharing)
        self.router.resilience.events.extend(state.degradations)
        return (
            state.subtrees,
            Point(*state.center),
            state.n_flips,
            state.levels_done,
        )

    # ------------------------------------------------------------------
    # Parallel level routing
    # ------------------------------------------------------------------

    def _make_executor(self):
        """A :class:`ParallelMergeExecutor`, or None for the serial flow.

        Falls back to serial (recording why) when the routing context
        cannot cross a process boundary — e.g. a hand-built library with
        unpicklable members.
        """
        self.parallel_fallback_reason = None
        if self.options.workers < 2:
            return None
        from repro.core.parallel_merge import ParallelMergeExecutor

        try:
            return ParallelMergeExecutor(
                self.router, self.options.workers, self.options.merge_batch_size
            )
        except MemoryError:
            raise
        except Exception as exc:  # unpicklable context, exhausted fds, ...
            self.parallel_fallback_reason = f"{type(exc).__name__}: {exc}"
            return None

    def _merge_level_swept(
        self,
        executor,
        pairs: list[tuple[SubTree, SubTree]],
        batch_commit: bool,
    ) -> tuple[list[SubTree], int]:
        """Merge one level in phase sweeps instead of pair by pair.

        Three sweeps, each in pair order: (1) the stateful prepare phase
        (H-structure pairs take the full serial path here, since their
        re-pairing decisions interleave routing); (2) the pure route
        phase — fanned out to the worker pool when ``executor`` is given,
        in-process through :meth:`MergeRouter.route_level` otherwise
        (which batches the level through the shared-window subsystem
        when ``shared_windows``); (3) the stateful commit phase — every
        pair's commit state machine advanced in lockstep by the batched
        scheduler when ``batch_commit``, scalar pair by pair otherwise.
        Afterwards the level's nodes are renumbered into serial creation
        order so the result is bit-identical to the fully serial flow.
        """
        from repro.core.parallel_merge import (
            renumber_subtrees,
            serial_id_mapping,
        )

        base = peek_node_id()
        n_flips = 0
        spans: list[list[tuple[int, int]]] = []
        prepared: list[tuple[str, object]] = []
        for a, b in pairs:
            start = peek_node_id()
            if self._is_hstructure_pair(a, b):
                merged, flips = self._merge_pair(a, b)
                n_flips += flips
                prepared.append(("done", merged))
            else:
                prepared.append(("plan", (a, b, self.router.prepare(a.root, b.root))))
            spans.append([(start, peek_node_id())])

        plans = [
            payload[2] if kind == "plan" else None
            for kind, payload in prepared
        ]
        if executor is not None:
            t0 = time.perf_counter()
            routes = executor.route_plans(plans)
            self.router.phase_seconds["route"] += time.perf_counter() - t0
        else:
            routes = self.router.route_level(plans)

        if batch_commit:
            roots = self._commit_level_batched(prepared, routes, spans)
        else:
            roots = self._commit_level_scalar(prepared, routes, spans)

        merged_level: list[SubTree] = []
        level_roots: list[TreeNode] = []
        for i, (kind, payload) in enumerate(prepared):
            if kind == "done":
                subtrees = payload
            else:
                a, b, __ = payload
                subtrees = [self._subtree(roots[i], (a.root, b.root))]
            merged_level.extend(subtrees)
            level_roots.extend(s.root for s in subtrees)

        renumber_subtrees(
            level_roots, serial_id_mapping(base, spans), self.engine
        )
        return merged_level, n_flips

    def _commit_level_scalar(
        self, prepared, routes, spans
    ) -> dict[int, TreeNode]:
        """Commit a swept level pair by pair (the PR 2 protocol)."""
        roots: dict[int, TreeNode] = {}
        for i, (kind, payload) in enumerate(prepared):
            if kind != "plan":
                continue
            start = peek_node_id()
            __, __, plan = payload
            roots[i] = self.router.commit(plan, routes[i])
            spans[i].append((start, peek_node_id()))
        return roots

    def _commit_level_batched(
        self, prepared, routes, spans
    ) -> dict[int, TreeNode]:
        """Commit a swept level in lockstep through the batched scheduler.

        Chain materialization (``commit_prepare``) happens in pair order;
        the scheduler then advances all state machines together, one
        vectorized library round per step, recording the id span every
        node-creating advance consumed so the serial renumbering covers
        the interleaved creation order.
        """
        from repro.core.batch_commit import BatchCommitScheduler

        t0 = time.perf_counter()
        states: list = []
        order: list[int] = []
        for i, (kind, payload) in enumerate(prepared):
            if kind != "plan":
                continue
            start = peek_node_id()
            __, __, plan = payload
            states.append(self.router.commit_prepare(plan, routes[i]))
            end = peek_node_id()
            if end > start:
                spans[i].append((start, end))
            order.append(i)
        BatchCommitScheduler(self.router).run(
            states, spans=[spans[i] for i in order]
        )
        roots = {
            i: self.router.commit_finish(states[pos])
            for pos, i in enumerate(order)
        }
        self.router.phase_seconds["commit"] += time.perf_counter() - t0
        return roots

    # ------------------------------------------------------------------

    def _leaf(self, point: Point, cap: float, index: int) -> SubTree:
        node = make_sink(point, cap, name=f"s{index}")
        return SubTree(node, self.router.subtree_bounds(node))

    def _subtree(
        self, root: TreeNode, parts: tuple[TreeNode, TreeNode] | None
    ) -> SubTree:
        return SubTree(root, self.router.subtree_bounds(root), parts)

    def _is_hstructure_pair(self, a: SubTree, b: SubTree) -> bool:
        """Whether this pair goes through H-structure re-pairing.

        Shared by the serial and parallel level paths — the parallel path
        must route exactly the pairs the serial flow would, or the
        bit-identical guarantee breaks.
        """
        return bool(self.options.hstructure and a.parts and b.parts)

    def _merge_pair(
        self, a: SubTree, b: SubTree
    ) -> tuple[list[SubTree], int]:
        """Merge one matched pair; H-structure checking may split it into
        two replacement sub-trees that are then merged normally."""
        if self._is_hstructure_pair(a, b):
            mode = self.options.hstructure
            if mode == "reestimate":
                outcome = reestimate_pairing(self.router, self._cost, a, b)
            else:
                outcome = correct_pairing(self.router, a, b)
            root = self.router.merge(outcome.left_root, outcome.right_root)
            merged = self._subtree(root, (outcome.left_root, outcome.right_root))
            return [merged], (1 if outcome.flipped else 0)
        root = self.router.merge(a.root, b.root)
        return [self._subtree(root, (a.root, b.root))], 0


def synthesize_clock_tree(
    sinks: list[tuple[Point, float]],
    tech: Technology | None = None,
    options: CTSOptions | None = None,
    **kwargs,
) -> SynthesisResult:
    """One-call convenience wrapper around :class:`AggressiveBufferedCTS`."""
    cts = AggressiveBufferedCTS(tech=tech, options=options, **kwargs)
    return cts.synthesize(sinks)
