"""Slew-driven buffer insertion along a 1-D routing path (Fig. 4.4).

This is the logic shared by both routers: as maze expansion extends the
open wire segment cell by cell, the slew at the segment's downstream end
(monitored with the driver input slew assumed equal to the slew target) is
looked up from the characterized library; when no buffer type could keep
it within the target anymore, a buffer is inserted using *intelligent
sizing* — every (buffer type, recent cell) pair is evaluated and the one
whose resulting slew is closest to (but within) the target wins, maximizing
the usable segment length.

Because the routing medium is uniform, delay along a path depends only on
the number of grid steps, so the whole expansion is precomputed as a
*distance profile*: arrays of delay/state per step count, shared by every
cell at the same path distance.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass

import numpy as np

from repro.charlib.library import DelaySlewLibrary


class SegmentTablesReference:
    """The seed's table builder: full-length evaluation, scalar lookups.

    Retained for the perf harness (the baseline the scaling bench times);
    :class:`SegmentTables` is the production implementation.
    """

    def __init__(
        self,
        library: DelaySlewLibrary,
        step: float,
        n_steps: int,
        input_slew: float,
    ):
        if step <= 0:
            raise ValueError("step must be positive")
        self.library = library
        self.step = step
        self.n_steps = n_steps
        self.input_slew = input_slew
        self._cache: dict[tuple[str, str, str], np.ndarray] = {}
        self._lengths = np.arange(n_steps + 1) * step

    def _table(self, drive: str, load: str, fn: str) -> np.ndarray:
        key = (drive, load, fn)
        table = self._cache.get(key)
        if table is None:
            fit = self.library.single[(drive, load)][fn]
            x = np.column_stack(
                [np.full(self._lengths.size, self.input_slew), self._lengths]
            )
            table = fit.predict_many(x)
            if fn == "wire_slew":
                beyond = self._lengths > float(fit.hi[1]) * 1.001
                table = np.where(beyond, np.inf, table)
            self._cache[key] = table
        return table

    def wire_slew(self, drive: str, load: str, k: int) -> float:
        return float(self._table(drive, load, "wire_slew")[k])

    def wire_delay(self, drive: str, load: str, k: int) -> float:
        return max(0.0, float(self._table(drive, load, "wire_delay")[k]))

    def buffer_delay(self, drive: str, load: str, k: int) -> float:
        return max(0.0, float(self._table(drive, load, "buffer_delay")[k]))


class SegmentTables:
    """Vectorized single-wire lookups at multiples of one grid pitch.

    For a given merge, every lookup is at a length ``k * step`` with the
    same assumed input slew, so each (drive, load, function) triple
    collapses into one array indexed by step count.
    """

    def __init__(
        self,
        library: DelaySlewLibrary,
        step: float,
        n_steps: int,
        input_slew: float,
    ):
        if step <= 0:
            raise ValueError("step must be positive")
        self.library = library
        self.step = step
        self.n_steps = n_steps
        self.input_slew = input_slew
        self._cache: dict[tuple[str, str, str], np.ndarray] = {}
        self._matrix_cache: dict[tuple[tuple[str, ...], str], np.ndarray] = {}
        self._feasible_cache: dict[tuple[tuple[str, ...], str, float], np.ndarray] = {}
        self._delay_cache: dict[tuple[str, str], np.ndarray] = {}
        self._lengths = np.arange(n_steps + 1) * step
        #: Memoization observability for the binding-level lookups
        #: (:meth:`any_feasible` / :meth:`clamped_wire_delays`): every
        #: re-bind to an already-seen load must be a cache hit, never a
        #: recomputation — asserted by the unit tests, relied on by the
        #: lockstep expansion scheduler (which pre-installs the entries
        #: and expects ``_bind_load`` to be pure dict lookups).
        self.binding_evals = 0
        self.binding_hits = 0

    def eval_count(self, drive: str, load: str, fn: str) -> int:
        """How many leading length points a table genuinely evaluates.

        Lengths past the fit's range all clamp to the range edge and
        evaluate to the same value, so only the in-range prefix (plus one
        clamped point) is evaluated; the tail is filled with it. Exposed
        so the shared-window level batcher can gather exactly this prefix
        from every pair into one vectorized curve round.
        """
        fit = self.library.single[(drive, load)][fn]
        return min(
            int(np.searchsorted(self._lengths, float(fit.hi[1]))) + 1,
            self._lengths.size,
        )

    def prime(self, drive: str, load: str, fn: str, values: np.ndarray) -> None:
        """Install a table from its evaluated prefix (batched fill path).

        ``values`` must be the contracted-curve evaluation over
        ``lengths[:eval_count(...)]`` — exactly what :meth:`_table`
        computes itself — so a primed table is byte-identical to a lazily
        built one; the batcher merely evaluates many pairs' prefixes in
        one call.
        """
        self._cache[(drive, load, fn)] = self._assemble(drive, load, fn, values)

    def _assemble(
        self, drive: str, load: str, fn: str, values: np.ndarray
    ) -> np.ndarray:
        """Tail-fill the evaluated prefix and mask out-of-range slews."""
        fit = self.library.single[(drive, load)][fn]
        table = values
        if table.size < self._lengths.size:
            table = np.concatenate(
                [table, np.full(self._lengths.size - table.size, table[-1])]
            )
        if fn == "wire_slew":
            # Beyond the characterized length range the fit would
            # clamp (silently optimistic); mark those entries
            # infeasible so buffer insertion never relies on them.
            beyond = self._lengths > float(fit.hi[1]) * 1.001
            table = np.where(beyond, np.inf, table)
        return table

    def _table(self, drive: str, load: str, fn: str) -> np.ndarray:
        key = (drive, load, fn)
        table = self._cache.get(key)
        if table is None:
            fit = self.library.single[(drive, load)][fn]
            n_eval = self.eval_count(drive, load, fn)
            # One contracted-curve evaluation (the input slew is fixed for
            # the whole table, so the 2-var fit collapses to a Horner
            # polynomial in length, shared across every merge's tables).
            values = fit.partial_curve(self.input_slew)(self._lengths[:n_eval])
            table = self._assemble(drive, load, fn, values)
            self._cache[key] = table
        return table

    def wire_slew(self, drive: str, load: str, k: int) -> float:
        return float(self._table(drive, load, "wire_slew")[k])

    def wire_delay(self, drive: str, load: str, k: int) -> float:
        return max(0.0, float(self._table(drive, load, "wire_delay")[k]))

    def buffer_delay(self, drive: str, load: str, k: int) -> float:
        return max(0.0, float(self._table(drive, load, "buffer_delay")[k]))

    def slew_matrix(self, drives: list[str], load: str) -> np.ndarray:
        """Stacked wire-slew tables, shape ``(len(drives), n_steps + 1)``.

        Row ``i`` is exactly ``wire_slew(drives[i], load, k)`` over k, so
        whole candidate sets (every drive at every recent cell) resolve in
        one indexing operation instead of per-candidate scalar lookups.
        """
        key = (tuple(drives), load)
        matrix = self._matrix_cache.get(key)
        if matrix is None:
            matrix = np.vstack([self._table(d, load, "wire_slew") for d in drives])
            self._matrix_cache[key] = matrix
        return matrix

    def any_feasible(self, drives: list[str], load: str, target_slew: float) -> np.ndarray:
        """Boolean per-step feasibility frontier over ``drives``.

        Entry ``k`` answers "could *some* drive keep a k-step open segment
        into ``load`` within the slew target" — the question the expansion
        asks before every step — without re-querying the library per type.
        """
        key = (tuple(drives), load, target_slew)
        ok = self._feasible_cache.get(key)
        if ok is None:
            self.binding_evals += 1
            ok = (self.slew_matrix(drives, load) <= target_slew).any(axis=0)
            self._feasible_cache[key] = ok
        else:
            self.binding_hits += 1
        return ok

    def clamped_wire_delays(self, drive: str, load: str) -> np.ndarray:
        """Per-step ``max(0, wire_delay)`` array (one batch, not per-k)."""
        key = (drive, load)
        table = self._delay_cache.get(key)
        if table is None:
            self.binding_evals += 1
            table = np.maximum(self._table(drive, load, "wire_delay"), 0.0)
            self._delay_cache[key] = table
        else:
            self.binding_hits += 1
        return table

    def max_feasible_steps(self, drive: str, load: str, target_slew: float) -> int:
        """Largest k with wire_slew(k) <= target (0 if even k=1 violates)."""
        table = self._table(drive, load, "wire_slew")
        ok = np.nonzero(table > target_slew)[0]
        if ok.size == 0:
            return self.n_steps
        return max(0, int(ok[0]) - 1)


@dataclass(frozen=True)
class PlacedBuffer:
    """A buffer inserted ``steps`` grid steps from the path's start."""

    steps: int
    type_name: str


@dataclass(frozen=True)
class PathState:
    """Snapshot of the expansion frontier after ``k`` steps.

    ``delay`` is the estimated delay from the frontier to the sub-tree's
    sinks: sub-tree delay + completed buffered stages + the open segment's
    wire delay under a virtual frontier driver.
    """

    steps: int
    delay: float
    open_steps: int  # length of the open (driverless) segment, in steps
    load_name: str  # library load type of the open segment's far end
    buffers: tuple[PlacedBuffer, ...]
    n_stages: int


class PathBuilder:
    """Expand a path step by step, inserting buffers per the slew rule.

    The expansion is simulated run by run: between buffer insertions the
    open segment grows monotonically under one load, so whole stretches
    of steps resolve as a single slice of the precomputed feasibility
    frontier and open-segment delay tables. :class:`PathState` snapshots
    are materialized on demand from the run records, so nothing is built
    per step in Python.
    """

    def __init__(
        self,
        tables: SegmentTables,
        base_delay: float,
        initial_load: str,
        target_slew: float,
        buffer_names: list[str],
        virtual_drive: str,
        lookahead: int = 3,
    ):
        self.tables = tables
        self.target_slew = target_slew
        self.buffer_names = buffer_names  # ordered smallest -> largest
        self.virtual_drive = virtual_drive
        self.lookahead = lookahead
        self._initial_load = initial_load
        self._completed_delay = base_delay
        self._open = 0
        self._load = initial_load
        self._buffers: list[PlacedBuffer] = []
        self._bind_load()
        #: Frontier-delay profile, one float64 per step, in a growable
        #: buffer (``_n_delays`` entries are valid) so run extensions
        #: append numpy slices directly — no list/array round-trips.
        self._delays = np.empty(64)
        self._delays[0] = base_delay
        self._n_delays = 1
        #: Run records: (first_step, open_before_first_step, load, buffers).
        self._runs: list[tuple[int, int, str, tuple[PlacedBuffer, ...]]] = []
        self._built = 0  # highest step index whose delay is computed

    def _bind_load(self) -> None:
        """Refresh the per-load batched lookups (feasibility frontier and
        open-segment delay profile); called whenever ``_load`` changes."""
        self._ok_any = self.tables.any_feasible(
            self.buffer_names, self._load, self.target_slew
        )
        self._vd_delays = self.tables.clamped_wire_delays(
            self.virtual_drive, self._load
        )

    # ------------------------------------------------------------------

    def state(self, k: int) -> PathState:
        """Snapshot after k steps (extends the profile on demand)."""
        self._ensure(k)
        if k == 0:
            return PathState(0, float(self._delays[0]), 0, self._initial_load, (), 0)
        idx = bisect_right(self._runs, k, key=lambda r: r[0]) - 1
        first_step, open_before, load, buffers = self._runs[idx]
        return PathState(
            k,
            float(self._delays[k]),
            open_before + (k - first_step + 1),
            load,
            buffers,
            len(buffers),
        )

    def delays_up_to(self, k: int) -> np.ndarray:
        """Array of frontier delays for steps 0..k inclusive."""
        self._ensure(k)
        return self._delays[: k + 1].copy()

    def delays_view(self, k: int) -> np.ndarray:
        """No-copy view of the delays for steps 0..k (read-only).

        The level-batched route-finishing kernel gathers profile costs
        straight out of every pair's buffer; values are exactly
        :meth:`delays_up_to`'s. The view is returned non-writeable so
        the no-copy contract is enforced, not just documented — a
        caller that mutates it raises instead of corrupting the shared
        profile (the underlying buffer stays writeable for run
        extension).
        """
        self._ensure(k)
        view = self._delays[: k + 1]
        view.flags.writeable = False
        return view

    # ------------------------------------------------------------------

    def _any_type_ok(self, open_steps: int) -> bool:
        return bool(self._ok_any[open_steps])

    def _open_wire_delay(self, open_steps: int) -> float:
        return float(self._vd_delays[open_steps])

    def _ensure(self, k: int) -> None:
        """Extend the profile through step ``k`` (run-at-a-time)."""
        while self._built < k:
            o0 = self._open
            remaining = k - self._built
            window = self._ok_any[o0 + 1 : o0 + 1 + remaining]
            if window.size == 0:
                raise IndexError("path extended beyond the segment tables")
            bad = np.flatnonzero(~window)
            run_len = int(bad[0]) if bad.size else int(window.size)
            if run_len == 0:
                # The very next step violates every type: insert a buffer
                # at/behind the frontier (step ``_built``) and re-check.
                self._insert_buffer(self._built)
                # After insertion the load is a buffer very close by; a
                # single further step must be feasible for at least the
                # largest type.
                if not self._any_type_ok(self._open + 1):
                    raise RuntimeError(
                        "grid pitch too coarse for the slew target: one step"
                        " already violates slew after buffer insertion"
                    )
                continue
            seg = self._vd_delays[o0 + 1 : o0 + run_len + 1] + self._completed_delay
            self._append_delays(seg)
            self._runs.append(
                (self._built + 1, o0, self._load, tuple(self._buffers))
            )
            self._open = o0 + run_len
            self._built += run_len

    def _append_delays(self, seg: np.ndarray) -> None:
        """Append one run's delay slice to the profile buffer."""
        end = self._n_delays + seg.size
        if end > self._delays.size:
            grown = np.empty(max(end, 2 * self._delays.size))
            grown[: self._n_delays] = self._delays[: self._n_delays]
            self._delays = grown
        self._delays[self._n_delays : end] = seg
        self._n_delays = end

    def _insert_buffer(self, frontier_step: int) -> None:
        """Intelligent sizing: pick (cell, type) with slew closest to target.

        Candidate positions are the frontier cell and up to ``lookahead``
        cells behind it ("at and ahead of the maze expansion grid in
        question"); candidate types are the whole buffer library. The
        chosen buffer's completed segment becomes a stage; its input
        becomes the new open segment's load.

        Split into :meth:`_choose_buffer` (pure decision) and
        :meth:`_commit_buffer` (state mutation) so the lockstep level
        scheduler can resolve a whole level's insertions as one masked
        sub-round: choose for every lane, group-prime the chosen types'
        tables, then commit — the same two calls, the same arithmetic.
        """
        position, type_name = self._choose_buffer(frontier_step)
        self._commit_buffer(frontier_step, position, type_name)

    def _choose_buffer(self, frontier_step: int) -> tuple[int, str]:
        """The insertion decision: winning (position, type), no mutation."""
        n_back = min(self.lookahead, self._open) + 1
        seg_candidates = self._open - np.arange(n_back)
        # One gather per insertion: slews of every (recent cell, type) pair.
        cand = self.tables.slew_matrix(self.buffer_names, self._load)[
            :, seg_candidates
        ]
        feasible = cand <= self.target_slew
        if feasible.any():
            # The scalar scan replaced only on strictly-greater slew while
            # iterating (position, type) in order, so the winner is the
            # first occurrence of the maximum in (back-major, type-minor)
            # order — which is exactly argmax on the transposed gather.
            flat = np.where(feasible, cand, -np.inf).T.ravel()
            back, name_idx = divmod(int(np.argmax(flat)), len(self.buffer_names))
            position = frontier_step - back
            type_name = self.buffer_names[name_idx]
        else:
            # Even a zero-length segment violates — cannot happen with a
            # sane library, but guard with the largest buffer at distance 0.
            position = frontier_step - self._open
            type_name = self.buffer_names[-1]
        return position, type_name

    def _commit_buffer(
        self, frontier_step: int, position: int, type_name: str
    ) -> None:
        """Apply one chosen insertion: complete the stage, re-bind the load."""
        steps_from_start_of_open = position - (frontier_step - self._open)
        seg_steps = steps_from_start_of_open
        self._completed_delay += self.tables.buffer_delay(
            type_name, self._load, seg_steps
        ) + self.tables.wire_delay(type_name, self._load, seg_steps)
        self._buffers.append(PlacedBuffer(position, type_name))
        self._load = type_name
        self._open = frontier_step - position
        self._bind_load()


class PathBuilderReference:
    """The seed's per-step expansion with scalar library lookups.

    Retained for the perf harness as the timing baseline of the scaling
    bench; :class:`PathBuilder` is the production implementation and
    produces the same states (covered by the equivalence tests).
    """

    def __init__(
        self,
        tables,
        base_delay: float,
        initial_load: str,
        target_slew: float,
        buffer_names: list[str],
        virtual_drive: str,
        lookahead: int = 3,
    ):
        self.tables = tables
        self.target_slew = target_slew
        self.buffer_names = buffer_names
        self.virtual_drive = virtual_drive
        self.lookahead = lookahead
        self._states: list[PathState] = [
            PathState(0, base_delay, 0, initial_load, (), 0)
        ]
        self._completed_delay = base_delay
        self._open = 0
        self._load = initial_load
        self._buffers: list[PlacedBuffer] = []

    def state(self, k: int) -> PathState:
        while len(self._states) <= k:
            self._extend_one()
        return self._states[k]

    def delays_up_to(self, k: int) -> np.ndarray:
        self.state(k)
        return np.array([s.delay for s in self._states[: k + 1]])

    def _slew_ok(self, drive: str, open_steps: int) -> bool:
        return self.tables.wire_slew(drive, self._load, open_steps) <= self.target_slew

    def _any_type_ok(self, open_steps: int) -> bool:
        return any(self._slew_ok(name, open_steps) for name in self.buffer_names)

    def _open_wire_delay(self, open_steps: int) -> float:
        return self.tables.wire_delay(self.virtual_drive, self._load, open_steps)

    def _extend_one(self) -> None:
        k = len(self._states)
        tentative = self._open + 1
        if not self._any_type_ok(tentative):
            self._insert_buffer(k - 1)
            tentative = self._open + 1
            if not self._any_type_ok(tentative):
                raise RuntimeError(
                    "grid pitch too coarse for the slew target: one step"
                    " already violates slew after buffer insertion"
                )
        self._open = tentative
        delay = self._completed_delay + self._open_wire_delay(self._open)
        self._states.append(
            PathState(
                k,
                delay,
                self._open,
                self._load,
                tuple(self._buffers),
                len(self._buffers),
            )
        )

    def _insert_buffer(self, frontier_step: int) -> None:
        best: tuple[float, int, str] | None = None  # (slew, position, type)
        for back in range(0, min(self.lookahead, self._open) + 1):
            seg_steps = self._open - back
            if seg_steps < 0:
                break
            for name in self.buffer_names:
                slew = self.tables.wire_slew(name, self._load, seg_steps)
                if slew <= self.target_slew:
                    if best is None or slew > best[0]:
                        best = (slew, frontier_step - back, name)
        if best is None:
            best = (0.0, frontier_step - self._open, self.buffer_names[-1])
        __, position, type_name = best
        steps_from_start_of_open = position - (frontier_step - self._open)
        seg_steps = steps_from_start_of_open
        self._completed_delay += self.tables.buffer_delay(
            type_name, self._load, seg_steps
        ) + self.tables.wire_delay(type_name, self._load, seg_steps)
        self._buffers.append(PlacedBuffer(position, type_name))
        self._load = type_name
        self._open = frontier_step - position
