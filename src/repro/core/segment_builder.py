"""Slew-driven buffer insertion along a 1-D routing path (Fig. 4.4).

This is the logic shared by both routers: as maze expansion extends the
open wire segment cell by cell, the slew at the segment's downstream end
(monitored with the driver input slew assumed equal to the slew target) is
looked up from the characterized library; when no buffer type could keep
it within the target anymore, a buffer is inserted using *intelligent
sizing* — every (buffer type, recent cell) pair is evaluated and the one
whose resulting slew is closest to (but within) the target wins, maximizing
the usable segment length.

Because the routing medium is uniform, delay along a path depends only on
the number of grid steps, so the whole expansion is precomputed as a
*distance profile*: arrays of delay/state per step count, shared by every
cell at the same path distance.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.charlib.library import DelaySlewLibrary


class SegmentTables:
    """Vectorized single-wire lookups at multiples of one grid pitch.

    For a given merge, every lookup is at a length ``k * step`` with the
    same assumed input slew, so each (drive, load, function) triple
    collapses into one array indexed by step count.
    """

    def __init__(
        self,
        library: DelaySlewLibrary,
        step: float,
        n_steps: int,
        input_slew: float,
    ):
        if step <= 0:
            raise ValueError("step must be positive")
        self.library = library
        self.step = step
        self.n_steps = n_steps
        self.input_slew = input_slew
        self._cache: dict[tuple[str, str, str], np.ndarray] = {}
        self._lengths = np.arange(n_steps + 1) * step

    def _table(self, drive: str, load: str, fn: str) -> np.ndarray:
        key = (drive, load, fn)
        table = self._cache.get(key)
        if table is None:
            fit = self.library.single[(drive, load)][fn]
            x = np.column_stack(
                [np.full(self._lengths.size, self.input_slew), self._lengths]
            )
            table = fit.predict_many(x)
            if fn == "wire_slew":
                # Beyond the characterized length range the fit would
                # clamp (silently optimistic); mark those entries
                # infeasible so buffer insertion never relies on them.
                beyond = self._lengths > float(fit.hi[1]) * 1.001
                table = np.where(beyond, np.inf, table)
            self._cache[key] = table
        return table

    def wire_slew(self, drive: str, load: str, k: int) -> float:
        return float(self._table(drive, load, "wire_slew")[k])

    def wire_delay(self, drive: str, load: str, k: int) -> float:
        return max(0.0, float(self._table(drive, load, "wire_delay")[k]))

    def buffer_delay(self, drive: str, load: str, k: int) -> float:
        return max(0.0, float(self._table(drive, load, "buffer_delay")[k]))

    def max_feasible_steps(self, drive: str, load: str, target_slew: float) -> int:
        """Largest k with wire_slew(k) <= target (0 if even k=1 violates)."""
        table = self._table(drive, load, "wire_slew")
        ok = np.nonzero(table > target_slew)[0]
        if ok.size == 0:
            return self.n_steps
        return max(0, int(ok[0]) - 1)


@dataclass(frozen=True)
class PlacedBuffer:
    """A buffer inserted ``steps`` grid steps from the path's start."""

    steps: int
    type_name: str


@dataclass(frozen=True)
class PathState:
    """Snapshot of the expansion frontier after ``k`` steps.

    ``delay`` is the estimated delay from the frontier to the sub-tree's
    sinks: sub-tree delay + completed buffered stages + the open segment's
    wire delay under a virtual frontier driver.
    """

    steps: int
    delay: float
    open_steps: int  # length of the open (driverless) segment, in steps
    load_name: str  # library load type of the open segment's far end
    buffers: tuple[PlacedBuffer, ...]
    n_stages: int


class PathBuilder:
    """Expand a path step by step, inserting buffers per the slew rule."""

    def __init__(
        self,
        tables: SegmentTables,
        base_delay: float,
        initial_load: str,
        target_slew: float,
        buffer_names: list[str],
        virtual_drive: str,
        lookahead: int = 3,
    ):
        self.tables = tables
        self.target_slew = target_slew
        self.buffer_names = buffer_names  # ordered smallest -> largest
        self.virtual_drive = virtual_drive
        self.lookahead = lookahead
        self._states: list[PathState] = [
            PathState(0, base_delay, 0, initial_load, (), 0)
        ]
        self._completed_delay = base_delay
        # Mutable frontier mirror (duplicated from the last state for speed).
        self._open = 0
        self._load = initial_load
        self._buffers: list[PlacedBuffer] = []

    # ------------------------------------------------------------------

    def state(self, k: int) -> PathState:
        """Snapshot after k steps (extends the profile on demand)."""
        while len(self._states) <= k:
            self._extend_one()
        return self._states[k]

    def delays_up_to(self, k: int) -> np.ndarray:
        """Array of frontier delays for steps 0..k inclusive."""
        self.state(k)
        return np.array([s.delay for s in self._states[: k + 1]])

    # ------------------------------------------------------------------

    def _slew_ok(self, drive: str, open_steps: int) -> bool:
        return self.tables.wire_slew(drive, self._load, open_steps) <= self.target_slew

    def _any_type_ok(self, open_steps: int) -> bool:
        return any(self._slew_ok(name, open_steps) for name in self.buffer_names)

    def _open_wire_delay(self, open_steps: int) -> float:
        return self.tables.wire_delay(self.virtual_drive, self._load, open_steps)

    def _extend_one(self) -> None:
        k = len(self._states)  # step index being created
        tentative = self._open + 1
        if not self._any_type_ok(tentative):
            self._insert_buffer(k - 1)
            tentative = self._open + 1
            # After insertion the load is a buffer very close by; a single
            # further step must be feasible for at least the largest type.
            if not self._any_type_ok(tentative):
                raise RuntimeError(
                    "grid pitch too coarse for the slew target: one step"
                    " already violates slew after buffer insertion"
                )
        self._open = tentative
        delay = self._completed_delay + self._open_wire_delay(self._open)
        self._states.append(
            PathState(
                k,
                delay,
                self._open,
                self._load,
                tuple(self._buffers),
                len(self._buffers),
            )
        )

    def _insert_buffer(self, frontier_step: int) -> None:
        """Intelligent sizing: pick (cell, type) with slew closest to target.

        Candidate positions are the frontier cell and up to ``lookahead``
        cells behind it ("at and ahead of the maze expansion grid in
        question"); candidate types are the whole buffer library. The
        chosen buffer's completed segment becomes a stage; its input
        becomes the new open segment's load.
        """
        best: tuple[float, int, str] | None = None  # (slew, position, type)
        for back in range(0, min(self.lookahead, self._open) + 1):
            seg_steps = self._open - back
            if seg_steps < 0:
                break
            for name in self.buffer_names:
                slew = self.tables.wire_slew(name, self._load, seg_steps)
                if slew <= self.target_slew:
                    if best is None or slew > best[0]:
                        best = (slew, frontier_step - back, name)
        if best is None:
            # Even a zero-length segment violates — cannot happen with a
            # sane library, but guard with the largest buffer at distance 0.
            best = (0.0, frontier_step - self._open, self.buffer_names[-1])
        __, position, type_name = best
        steps_from_start_of_open = position - (frontier_step - self._open)
        seg_steps = steps_from_start_of_open
        self._completed_delay += self.tables.buffer_delay(
            type_name, self._load, seg_steps
        ) + self.tables.wire_delay(type_name, self._load, seg_steps)
        self._buffers.append(PlacedBuffer(position, type_name))
        self._load = type_name
        self._open = frontier_step - position
