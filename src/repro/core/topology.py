"""Levelized topology generation (Sec. 4.1.1).

A complete nearest-neighbor graph is maintained over the current level's
sub-trees with edge cost ``alpha * distance + beta * |delay difference|``;
the matching heuristic repeatedly pairs the node farthest from the sink
centroid with its nearest (cheapest-edge) neighbor. With an odd node
count, a *seed* node — the one with maximum latency — is promoted directly
to the next level, where its larger delay is better matched.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.options import CTSOptions
from repro.geom.point import Point
from repro.timing.analysis import SubtreeBounds
from repro.tree.nodes import TreeNode


@dataclass
class SubTree:
    """One node of the nearest-neighbor graph: a sub-tree plus its timing.

    ``parts`` records the two sub-tree roots that were merge-routed to
    form this sub-tree (None for level-0 sinks); H-structure correction
    uses it to re-pair grandchildren.
    """

    root: TreeNode
    bounds: SubtreeBounds
    parts: tuple[TreeNode, TreeNode] | None = None

    @property
    def point(self) -> Point:
        return self.root.location

    @property
    def max_delay(self) -> float:
        return self.bounds.max_delay


class EdgeCost:
    """The paper's cost (Eq. 4.1), with delay converted to length units.

    Distance is in layout units and delay difference in seconds; the delay
    term is scaled by ``units_per_second`` (how much path length one second
    of delay corresponds to, calibrated from the routed delay per unit) so
    ``alpha`` and ``beta`` are dimensionless as in the paper.
    """

    def __init__(self, options: CTSOptions, delay_per_unit: float):
        self.alpha = options.cost_alpha
        self.beta = options.cost_beta
        self.units_per_second = 1.0 / delay_per_unit if delay_per_unit > 0 else 0.0

    def __call__(self, a: SubTree, b: SubTree) -> float:
        distance = a.point.manhattan_to(b.point)
        delay_diff = abs(a.max_delay - b.max_delay)
        return self.alpha * distance + self.beta * delay_diff * self.units_per_second

    def delay_cost(self, a: SubTree, b: SubTree) -> float:
        """Cost of the delay-difference term alone (H-structure Method 1)."""
        return abs(a.max_delay - b.max_delay) * self.units_per_second


def select_seed(nodes: list[SubTree]) -> SubTree:
    """The node promoted unmatched on odd counts: maximum latency."""
    return max(nodes, key=lambda s: s.max_delay)


def greedy_matching(
    nodes: list[SubTree],
    centroid: Point,
    cost: EdgeCost,
) -> tuple[list[tuple[SubTree, SubTree]], SubTree | None]:
    """The paper's matching heuristic.

    Repeatedly take the unmatched node farthest from the sink centroid and
    pair it with its nearest neighbor under the edge cost. Returns the
    pairs plus the promoted seed (odd counts only).
    """
    if not nodes:
        raise ValueError("matching on empty level")
    pool = list(nodes)
    seed = None
    if len(pool) % 2 == 1:
        seed = select_seed(pool)
        pool.remove(seed)
    pairs: list[tuple[SubTree, SubTree]] = []
    # Sort once by distance from centroid (descending); consume greedily.
    pool.sort(key=lambda s: s.point.manhattan_to(centroid), reverse=True)
    unmatched = pool
    while unmatched:
        anchor = unmatched[0]
        rest = unmatched[1:]
        partner = min(rest, key=lambda s: cost(anchor, s))
        pairs.append((anchor, partner))
        unmatched = [s for s in rest if s is not partner]
    return pairs, seed
