"""Levelized topology generation (Sec. 4.1.1).

A complete nearest-neighbor graph is maintained over the current level's
sub-trees with edge cost ``alpha * distance + beta * |delay difference|``;
the matching heuristic repeatedly pairs the node farthest from the sink
centroid with its nearest (cheapest-edge) neighbor. With an odd node
count, a *seed* node — the one with maximum latency — is promoted directly
to the next level, where its larger delay is better matched.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.options import CTSOptions
from repro.geom.point import Point
from repro.timing.analysis import SubtreeBounds
from repro.tree.nodes import TreeNode


@dataclass
class SubTree:
    """One node of the nearest-neighbor graph: a sub-tree plus its timing.

    ``parts`` records the two sub-tree roots that were merge-routed to
    form this sub-tree (None for level-0 sinks); H-structure correction
    uses it to re-pair grandchildren.
    """

    root: TreeNode
    bounds: SubtreeBounds
    parts: tuple[TreeNode, TreeNode] | None = None

    @property
    def point(self) -> Point:
        return self.root.location

    @property
    def max_delay(self) -> float:
        return self.bounds.max_delay


class EdgeCost:
    """The paper's cost (Eq. 4.1), with delay converted to length units.

    Distance is in layout units and delay difference in seconds; the delay
    term is scaled by ``units_per_second`` (how much path length one second
    of delay corresponds to, calibrated from the routed delay per unit) so
    ``alpha`` and ``beta`` are dimensionless as in the paper.
    """

    def __init__(self, options: CTSOptions, delay_per_unit: float):
        self.alpha = options.cost_alpha
        self.beta = options.cost_beta
        self.units_per_second = 1.0 / delay_per_unit if delay_per_unit > 0 else 0.0

    def __call__(self, a: SubTree, b: SubTree) -> float:
        distance = a.point.manhattan_to(b.point)
        delay_diff = abs(a.max_delay - b.max_delay)
        return self.alpha * distance + self.beta * delay_diff * self.units_per_second

    def delay_cost(self, a: SubTree, b: SubTree) -> float:
        """Cost of the delay-difference term alone (H-structure Method 1)."""
        return abs(a.max_delay - b.max_delay) * self.units_per_second


def select_seed_index(nodes: list[SubTree]) -> int:
    """Index of the node promoted unmatched on odd counts: max latency.

    The tie-break is explicit — among equal delays the *lowest pool
    index* wins — rather than relying on ``max`` iteration order over
    bare float delays; the parallel flow's bit-identical guarantee
    depends on this being deterministic.
    """
    if not nodes:
        raise ValueError("seed selection on empty level")
    return max(range(len(nodes)), key=lambda i: (nodes[i].max_delay, -i))


def select_seed(nodes: list[SubTree]) -> SubTree:
    """The node promoted unmatched on odd counts: maximum latency."""
    return nodes[select_seed_index(nodes)]


def greedy_matching(
    nodes: list[SubTree],
    centroid: Point,
    cost: EdgeCost,
) -> tuple[list[tuple[SubTree, SubTree]], SubTree | None]:
    """The paper's matching heuristic.

    Repeatedly take the unmatched node farthest from the sink centroid and
    pair it with its nearest neighbor under the edge cost. Returns the
    pairs plus the promoted seed (odd counts only).

    The partner search runs over a grid-bucketed spatial index: since the
    delay term of the edge cost is non-negative, any candidate at Manhattan
    distance ``d`` costs at least ``alpha * d``, so rings of buckets are
    scanned outward and the scan stops once the ring's distance lower bound
    alone exceeds the best cost found. The pairing is identical to
    :func:`greedy_matching_reference` (ties resolved by pool order).
    """
    if not nodes:
        raise ValueError("matching on empty level")
    pool, seed = _promote_seed(nodes)
    # Sort once by distance from centroid (descending); consume greedily.
    pool.sort(key=lambda s: s.point.manhattan_to(centroid), reverse=True)
    return _match_pool(pool, cost), seed


def greedy_matching_reference(
    nodes: list[SubTree],
    centroid: Point,
    cost: EdgeCost,
) -> tuple[list[tuple[SubTree, SubTree]], SubTree | None]:
    """The original O(n^2) matching scan (semantics reference)."""
    if not nodes:
        raise ValueError("matching on empty level")
    pool, seed = _promote_seed(nodes)
    pool.sort(key=lambda s: s.point.manhattan_to(centroid), reverse=True)
    return _match_pool_scan(pool, cost), seed


def _promote_seed(nodes: list[SubTree]) -> tuple[list[SubTree], SubTree | None]:
    """Copy the pool, removing the promoted seed *by identity* on odd counts.

    ``list.remove`` drops the first ``==``-equal element, which is the
    wrong object when a level holds equal-comparing sub-trees; removal by
    index keeps seed promotion deterministic and identity-exact.
    """
    pool = list(nodes)
    if len(pool) % 2 == 0:
        return pool, None
    idx = select_seed_index(pool)
    seed = pool[idx]
    del pool[idx]
    return pool, seed


class _SpatialBuckets:
    """Uniform grid buckets over the pool's points, keyed by pool index.

    Cell size is chosen so an average bucket holds about one node; all
    candidate enumeration happens per Chebyshev ring of buckets around the
    anchor's bucket, giving the near-linear behavior for the usual case of
    roughly uniform levels.
    """

    def __init__(self, pool: list[SubTree]):
        xs = [s.point.x for s in pool]
        ys = [s.point.y for s in pool]
        self.x0, self.y0 = min(xs), min(ys)
        span = (max(xs) - self.x0) + (max(ys) - self.y0)
        self.cell = max(span / (2.0 * max(len(pool), 1) ** 0.5), 1e-9)
        self.buckets: dict[tuple[int, int], list[int]] = {}
        self.key_of: list[tuple[int, int]] = []
        for idx, s in enumerate(pool):
            key = self._key(s.point)
            self.key_of.append(key)
            self.buckets.setdefault(key, []).append(idx)
        keys = self.buckets.keys()
        self.ki_min = min(k[0] for k in keys)
        self.ki_max = max(k[0] for k in keys)
        self.kj_min = min(k[1] for k in keys)
        self.kj_max = max(k[1] for k in keys)

    def _key(self, p: Point) -> tuple[int, int]:
        return (int((p.x - self.x0) // self.cell), int((p.y - self.y0) // self.cell))

    def remove(self, idx: int) -> None:
        key = self.key_of[idx]
        bucket = self.buckets[key]
        bucket.remove(idx)
        if not bucket:
            del self.buckets[key]

    def ring(self, center: tuple[int, int], r: int):
        """Occupied buckets at Chebyshev distance ``r`` from ``center``."""
        ci, cj = center
        if r == 0:
            bucket = self.buckets.get(center)
            if bucket:
                yield bucket
            return
        for i in range(ci - r, ci + r + 1):
            for j in (cj - r, cj + r):
                bucket = self.buckets.get((i, j))
                if bucket:
                    yield bucket
        for j in range(cj - r + 1, cj + r):
            for i in (ci - r, ci + r):
                bucket = self.buckets.get((i, j))
                if bucket:
                    yield bucket

    def max_ring(self, center: tuple[int, int]) -> int:
        """Largest ring that can still contain an occupied bucket."""
        ci, cj = center
        return max(
            ci - self.ki_min, self.ki_max - ci, cj - self.kj_min, self.kj_max - cj
        )


def _match_pool(pool: list[SubTree], cost: EdgeCost) -> list[tuple[SubTree, SubTree]]:
    """Pair the (even-sized, anchor-ordered) pool; identical to the O(n^2)
    scan, including tie resolution by pool order."""
    pairs: list[tuple[SubTree, SubTree]] = []
    if not pool:
        return pairs
    alpha = getattr(cost, "alpha", 0.0)
    if len(pool) <= 8 or alpha <= 0:
        # Tiny levels (or no distance term to prune on): plain scan.
        return _match_pool_scan(pool, cost)
    index = _SpatialBuckets(pool)
    matched = [False] * len(pool)
    for i, anchor in enumerate(pool):
        if matched[i]:
            continue
        matched[i] = True
        index.remove(i)
        center = index.key_of[i]
        best_idx = -1
        best_cost = float("inf")
        max_ring = index.max_ring(center)
        for r in range(max_ring + 1):
            # Any point in ring r is at Manhattan distance >= (r-1)*cell,
            # hence cost >= alpha * (r-1) * cell; equal-cost candidates in
            # later rings must still be seen for the pool-order tie-break,
            # so the scan stops only on a strictly larger lower bound.
            if best_idx >= 0 and alpha * (r - 1) * index.cell > best_cost:
                break
            for bucket in index.ring(center, r):
                for j in bucket:
                    c = cost(anchor, pool[j])
                    if c < best_cost or (c == best_cost and j < best_idx):
                        best_cost = c
                        best_idx = j
        matched[best_idx] = True
        index.remove(best_idx)
        pairs.append((anchor, pool[best_idx]))
    return pairs


def _match_pool_scan(
    pool: list[SubTree], cost: EdgeCost
) -> list[tuple[SubTree, SubTree]]:
    unmatched = pool
    pairs: list[tuple[SubTree, SubTree]] = []
    while unmatched:
        anchor = unmatched[0]
        rest = unmatched[1:]
        partner = min(rest, key=lambda s: cost(anchor, s))
        pairs.append((anchor, partner))
        unmatched = [s for s in rest if s is not partner]
    return pairs
