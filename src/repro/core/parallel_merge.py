"""Parallel per-pair merge routing over a deterministic process pool.

Within one topology level every matched pair routes independently (grid
build + two BFS passes + profile evaluation), so the route phase is
embarrassingly parallel. This module runs it on a
:class:`concurrent.futures.ProcessPoolExecutor`:

- each worker is initialized **once** with a pickled
  :class:`WorkerContext` (library, options, blockages, stage length) —
  tasks themselves carry only two node-free
  :class:`~repro.core.routing_common.RouteTerminal` copies;
- pairs are shipped in **batches** (``CTSOptions.merge_batch_size``, or
  an automatic split into ~4 batches per worker) to amortize IPC now
  that the vectorized engine made a single route cheap;
- results are gathered **in submission order** and indexed back to their
  pair, so the main process commits them in exactly the serial
  sequence regardless of worker scheduling — either scalar pair by pair
  or, with ``CTSOptions.batch_commit``, through the lockstep batched
  commit scheduler (:mod:`repro.core.batch_commit`): route in the pool,
  commit batched in the parent;
- each batch ships its :class:`~repro.core.grid_cache.SharingStats`
  back with the results and the executor sums them into the router's
  route-phase counters — integer sums commute, so pooled stats are
  order-independent (and their pair-level counters equal the serial
  flow's), which is what lets tests assert stats equality under the
  pool.

Routing is a pure function of its inputs (`route_pair`), and the library
pickle round-trip re-derives its compiled evaluators from identical
coefficients, so a worker's :class:`RouteResult` is bit-identical to the
in-process one.

Serial-identical node numbering
-------------------------------

The phases still create nodes in a different *order* than the serial
flow (all prepares, then all commits, instead of prepare+commit per
pair), which would leak into auto-generated node ids and names. The
executor therefore records the id range each phase call consumed and
renumbers the level's nodes afterwards into the serial creation order —
a bijection on the level's id block — and remaps the timing engine's
memoized bounds keys to follow. The synthesized tree (including node
names) is then bit-identical to the serial flow's.
"""

from __future__ import annotations

import math
import multiprocessing
import pickle
from concurrent.futures import CancelledError, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from repro.charlib.library import DelaySlewLibrary
from repro.core.grid_cache import SharingStats
from repro.core.merge_routing import MergePlan, MergeRouter, route_pair
from repro.core.options import CTSOptions
from repro.core.routing_common import RouteResult, RouteTerminal
from repro.geom.bbox import BBox
from repro.timing.analysis import LibraryTimingEngine
from repro.tree.nodes import TreeNode


@dataclass
class WorkerContext:
    """Everything a worker needs to route any pair of this synthesis."""

    library: DelaySlewLibrary
    options: CTSOptions
    blockages: list[BBox]
    stage_length: float


_CTX: WorkerContext | None = None


def _init_worker(ctx_bytes: bytes) -> None:
    """Build the per-worker context once (not per task)."""
    global _CTX
    _CTX = pickle.loads(ctx_bytes)


def _route_tasks(
    ctx: "WorkerContext",
    tasks: list[tuple[int, RouteTerminal, RouteTerminal]],
    resilience=None,
) -> tuple[list[tuple[int, RouteResult]], "SharingStats"]:
    """Route one batch of (pair index, terminal, terminal) tasks.

    With ``shared_windows`` the batch routes through the cross-pair
    batcher (including the level-batched finishing kernel when
    ``batch_route_finish`` — workers and the serial flow share one
    kernel) over a batch-local tile cache: the pairs of one worker batch
    share tiles, lockstep search rounds, the curve round and the finish
    kernel among themselves instead of each rebuilding private windows.
    Because the shared path replicates every per-pair computation exactly
    (batching only regroups element-wise work), results are invariant to
    the batch split and identical to the serial flow — shipping
    parent-built tiles instead was measured as a wash, since window keys
    are pair-unique and a pickled tile costs about as much as rasterizing
    it.

    Returns the routed results plus the batch's
    :class:`~repro.core.grid_cache.SharingStats`, so the gather side can
    sum every batch's counters into the router's stats (integer sums
    commute, making the totals independent of worker scheduling).

    ``resilience`` is forwarded to the shared route kernels: the parent's
    in-process fallback passes its log (kernel failures degrade in place),
    workers pass None (a worker exception propagates to the supervised
    gather, which handles it as a pool degradation).
    """
    if ctx.options.shared_windows:
        from repro.core.grid_cache import GridCache, route_level

        cache = GridCache(ctx.blockages)
        routes = route_level(
            [(term1, term2) for _, term1, term2 in tasks],
            ctx.library,
            ctx.options,
            ctx.stage_length,
            ctx.blockages,
            cache=cache,
            resilience=resilience,
        )
        routed = [(index, route) for (index, _, _), route in zip(tasks, routes)]
        return routed, cache.stats
    routed = [
        (
            index,
            route_pair(
                term1,
                term2,
                ctx.library,
                ctx.options,
                ctx.stage_length,
                ctx.blockages,
            ),
        )
        for index, term1, term2 in tasks
    ]
    return routed, SharingStats()


def _route_batch(
    ordinal: int,
    tasks: list[tuple[int, RouteTerminal, RouteTerminal]],
) -> tuple[list[tuple[int, RouteResult]], "SharingStats"]:
    """Worker entry point: route one shipped batch with the worker ctx.

    ``ordinal`` is the batch's global submission number, assigned by the
    parent — the fault-injection key that makes worker faults
    deterministic regardless of which worker picks the batch up. Only
    this entry point consults the plan, never :func:`_route_tasks`, so
    the in-process recovery of a failed batch cannot re-fire its fault.
    """
    ctx = _CTX
    if ctx is None:  # pragma: no cover - initializer always ran
        raise RuntimeError("merge-routing worker used before initialization")
    if ctx.options.fault_plan:
        from repro.evalx.faultinject import active_plan

        active_plan(ctx.options.fault_plan).consult(
            "worker_batch",
            ordinal,
            sleep_s=4.0 * max(ctx.options.pool_timeout, 0.05),
        )
    return _route_tasks(ctx, tasks)


def _pool_context():
    """Prefer fork (cheap, POSIX) but survive platforms without it."""
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context()


#: A broken pool is respawned at most this many times; one more break
#: degrades routing to in-process permanently (recording why).
MAX_POOL_RESPAWNS = 1


class ParallelMergeExecutor:
    """A process pool that routes prepared merge plans deterministically.

    Construction pickles the routing context up front — raising
    immediately (rather than mid-level) when a custom library or
    blockage set cannot cross a process boundary — but the pool itself
    is spawned lazily on the first routed level.

    Gathering is supervised (see :meth:`route_plans`): a timed-out batch
    is retried once with a doubled timeout, a broken pool is shut down
    and respawned at most :data:`MAX_POOL_RESPAWNS` times, and any batch
    the pool fails to deliver is re-routed through the in-process
    :func:`_route_tasks` fallback — bit-identical by construction, since
    results are indexed by pair and gathered in submission order.
    """

    def __init__(
        self,
        router: MergeRouter,
        workers: int,
        batch_size: int = 0,
    ):
        if workers < 2:
            raise ValueError("parallel merge routing needs workers >= 2")
        self.workers = workers
        self.batch_size = batch_size
        self.timeout = router.options.pool_timeout
        context = WorkerContext(
            router.library,
            router.options,
            list(router.blockages),
            router.stage_length,
        )
        self._ctx_bytes = pickle.dumps(
            context, protocol=pickle.HIGHEST_PROTOCOL
        )
        self._pool: ProcessPoolExecutor | None = None
        self._fallback_ctx: WorkerContext | None = None
        #: Why routing dropped to in-process execution, if it did.
        self.fallback_reason: str | None = None
        #: Where pool degradations are recorded (the router's log).
        self._resilience = router.resilience
        self._respawns = 0
        #: Global batch submission counter — the deterministic key worker
        #: fault injection fires on, and the label degradations carry.
        self._batch_ordinal = 0
        #: Where batch SharingStats land on gather (the router's
        #: route-phase counters): each batch's counts are summed in, in
        #: submission order, so pooled totals match repeated runs exactly
        #: and the pair-level counters match the serial flow.
        self._stats_sink = router.route_sharing

    # ------------------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor | None:
        """The pool, spawned on first use; None if spawning failed.

        A host at its process/fd limit fails here, not at construction;
        routing then runs in-process through the exact same task path
        (bit-identical results, just no parallelism) instead of aborting
        a synthesis the serial flow could finish.
        """
        if self._pool is None and self.fallback_reason is None:
            try:
                self._pool = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=_pool_context(),
                    initializer=_init_worker,
                    initargs=(self._ctx_bytes,),
                )
            except OSError as exc:
                self.fallback_reason = f"{type(exc).__name__}: {exc}"
        return self._pool

    def _batch_size_for(self, n_tasks: int) -> int:
        if self.batch_size > 0:
            return self.batch_size
        # ~4 batches per worker: coarse enough to amortize IPC, fine
        # enough that an unlucky slow batch cannot idle the pool.
        return max(1, math.ceil(n_tasks / (4 * self.workers)))

    def route_plans(
        self, plans: list[MergePlan | None]
    ) -> list[RouteResult | None]:
        """Route every routable plan; results indexed like ``plans``.

        ``None`` entries (pairs merged by another path) and coincident
        plans come back as ``None``. Batches are gathered in submission
        order, so the output — and hence the commit sequence — does not
        depend on worker scheduling.
        """
        tasks = [
            (i, plan.term1.detached(), plan.term2.detached())
            for i, plan in enumerate(plans)
            if plan is not None and not plan.coincident
        ]
        results: list[RouteResult | None] = [None] * len(plans)
        if not tasks:
            return results
        pool = self._ensure_pool()
        if pool is None:
            routed, stats = self._route_in_process(tasks)
            for index, route in routed:
                results[index] = route
            self._stats_sink.merge(stats)
            return results
        size = self._batch_size_for(len(tasks))
        submitted = []
        try:
            for k in range(0, len(tasks), size):
                batch = tasks[k : k + size]
                ordinal = self._batch_ordinal
                self._batch_ordinal += 1
                submitted.append((pool.submit(_route_batch, ordinal, batch), batch, ordinal))
            for future, batch, ordinal in submitted:
                gathered = self._gather(future, batch, ordinal)
                if gathered is None:
                    gathered = self._route_in_process(batch)
                routed, stats = gathered
                for index, route in routed:
                    results[index] = route
                self._stats_sink.merge(stats)
        except BaseException:
            # Satellite: a failed level must not leak workers. Strict
            # mode (or an unexpected gather error) unwinds through here —
            # cancel what has not started, kill what has, and re-raise.
            for future, _, _ in submitted:
                future.cancel()
            self._shutdown_pool(cancel=True)
            raise
        return results

    # ------------------------------------------------------------------
    # Supervision ladder
    # ------------------------------------------------------------------

    def _gather(
        self, future, batch, ordinal: int
    ) -> tuple[list[tuple[int, "RouteResult"]], "SharingStats"] | None:
        """One supervised gather; None means "re-route this in-process".

        The ladder: a worker exception degrades just that batch; a
        timeout gets one backoff retry at double the timeout; a broken
        or cancelled pool is shut down and (at most once) respawned. A
        degraded batch is recovered bit-identically by the caller, since
        results are keyed by pair index, not by which path routed them.
        """
        timeout = self.timeout if self.timeout and self.timeout > 0 else None
        try:
            return future.result(timeout)
        except (BrokenProcessPool, CancelledError) as exc:
            # Once one future breaks the pool, every later future fails
            # the same way; note the first cause only.
            self._note_broken(exc, ordinal)
            return None
        except FuturesTimeout:
            return self._retry(batch, ordinal, timeout)
        except MemoryError:
            raise
        except Exception as exc:
            # The worker raised routing this batch (injected or real):
            # the pool is still healthy, only this batch degrades.
            self._resilience.note(
                "pool", f"worker batch {ordinal} failed: {type(exc).__name__}: {exc}"
            )
            return None

    def _retry(
        self, batch, ordinal: int, timeout: float | None
    ) -> tuple[list[tuple[int, "RouteResult"]], "SharingStats"] | None:
        """Backoff retry of one timed-out batch (double the timeout)."""
        pool = self._pool
        if pool is None or timeout is None:  # pragma: no cover - guard
            return None
        try:
            result = pool.submit(_route_batch, ordinal, batch).result(2 * timeout)
        except FuturesTimeout:
            # Twice over budget: assume the pool is wedged, not slow.
            self._mark_broken(
                f"batch {ordinal} timed out twice "
                f"(pool_timeout={timeout:.3g}s, retry at {2 * timeout:.3g}s)"
            )
            return None
        except (BrokenProcessPool, CancelledError) as exc:
            self._note_broken(exc, ordinal)
            return None
        except MemoryError:
            raise
        except Exception as exc:
            self._resilience.note(
                "pool",
                f"worker batch {ordinal} failed on retry: "
                f"{type(exc).__name__}: {exc}",
            )
            return None
        self._resilience.note(
            "pool",
            f"batch {ordinal} timed out after {timeout:.3g}s; "
            "backoff retry succeeded",
        )
        return result

    def _note_broken(self, exc: BaseException, ordinal: int) -> None:
        """Record a broken pool once; cascading failures stay silent."""
        if self._pool is not None:
            self._mark_broken(
                f"{type(exc).__name__} gathering batch {ordinal}: {exc}"
            )

    def _mark_broken(self, reason: str) -> None:
        """Shut the broken pool down; respawn budget decides permanence.

        ``_ensure_pool`` respawns on the next level while the respawn
        budget lasts; past it, ``fallback_reason`` pins routing
        in-process for the rest of the synthesis.
        """
        self._shutdown_pool(cancel=True)
        self._respawns += 1
        if self._respawns > MAX_POOL_RESPAWNS:
            self.fallback_reason = (
                f"pool degraded permanently after {self._respawns} breaks: "
                f"{reason}"
            )
        self._resilience.note("pool", reason)

    def _shutdown_pool(self, cancel: bool = False) -> None:
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=not cancel, cancel_futures=cancel)

    def _route_in_process(
        self, tasks
    ) -> tuple[list[tuple[int, "RouteResult"]], "SharingStats"]:
        """The bit-identical in-process fallback for undelivered tasks."""
        if self._fallback_ctx is None:
            self._fallback_ctx = pickle.loads(self._ctx_bytes)
        return _route_tasks(self._fallback_ctx, tasks, resilience=self._resilience)

    # ------------------------------------------------------------------

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "ParallelMergeExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# Serial-identical renumbering
# ----------------------------------------------------------------------


def serial_id_mapping(
    base: int, spans_per_pair: list[list[tuple[int, int]]]
) -> dict[int, int]:
    """Map phase-order node ids onto serial creation order.

    ``spans_per_pair[i]`` lists the ``[start, end)`` id ranges pair ``i``
    consumed, in that pair's own phase order (prepare first, commit
    second). The serial flow would have consumed the same ranges pair by
    pair starting at ``base``; the returned dict is that bijection,
    with identity entries dropped.
    """
    mapping: dict[int, int] = {}
    next_id = base
    for spans in spans_per_pair:
        for start, end in spans:
            for old in range(start, end):
                if old != next_id:
                    mapping[old] = next_id
                next_id += 1
    return mapping


def renumber_subtrees(
    roots: list[TreeNode],
    mapping: dict[int, int],
    engine: LibraryTimingEngine,
) -> None:
    """Apply a serial id mapping to live nodes and the engine's cache.

    Auto-generated names (``m<id>``/``b<id>``/…) are regenerated so
    exports match the serial flow byte for byte; explicit names (sinks,
    sources) are never touched because level-created nodes are only
    merges, buffers and steiner points.
    """
    if not mapping:
        return
    for root in roots:
        for node in root.walk():
            new_id = mapping.get(node.id)
            if new_id is None:
                continue
            auto_name = f"{node.kind.value[0]}{node.id}"
            node.id = new_id
            if node.name == auto_name:
                node.name = f"{node.kind.value[0]}{new_id}"
    engine.remap_node_ids(mapping)
