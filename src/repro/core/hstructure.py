"""H-structure re-estimation and correction (Sec. 4.1.2).

When the top-level matching is about to merge two sub-trees P and Q that
were themselves produced by merges, their four grandchildren A, B (under
P) and C, D (under Q) admit three pairings — (A,B)(C,D) [the current one],
(A,C)(B,D) and (A,D)(B,C) (Fig. 4.2) — and a bad earlier choice shows up
as an intertwined "H" structure. Two remedies:

- **Method 1 (re-estimation)**: score the six candidate edges with the
  topology cost function and keep the cheapest pairing; only the chosen
  pairing is actually merge-routed.
- **Method 2 (correction)**: merge-route *all* pairings and keep the one
  whose worse-side skew is smallest; the others are discarded. Best
  quality, most expensive ("all combinations need to be actually routed
  rather than simply evaluated by cost functions").

A "flipping" is counted whenever the surviving pairing differs from the
original (A,B)(C,D).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.merge_routing import MergeRouter
from repro.core.topology import EdgeCost, SubTree
from repro.tree.nodes import TreeNode


@dataclass
class HStructureOutcome:
    """Result of examining one (P, Q) pair: two replacement sub-trees."""

    left_root: TreeNode
    right_root: TreeNode
    flipped: bool


#: The three pairings of grandchildren indices (A, B, C, D) = (0, 1, 2, 3).
PAIRINGS = (
    ((0, 1), (2, 3)),  # (A,B)(C,D) — the original
    ((0, 2), (1, 3)),  # (A,C)(B,D)
    ((0, 3), (1, 2)),  # (A,D)(B,C)
)


def _free_parts(p: SubTree, q: SubTree) -> list[TreeNode]:
    """Detach the four grandchildren from the structures above them."""
    return [part.detach() for part in (*p.parts, *q.parts)]


def reestimate_pairing(
    router: MergeRouter,
    cost: EdgeCost,
    p: SubTree,
    q: SubTree,
) -> HStructureOutcome:
    """Method 1: choose the pairing by cost estimate, then route it."""
    parts = _free_parts(p, q)
    subtrees = [SubTree(part, router.subtree_bounds(part)) for part in parts]

    def pairing_cost(pairing) -> float:
        (i, j), (k, l) = pairing
        return cost(subtrees[i], subtrees[j]) + cost(subtrees[k], subtrees[l])

    best = min(PAIRINGS, key=pairing_cost)
    (i, j), (k, l) = best
    left = router.merge(parts[i], parts[j])
    right = router.merge(parts[k], parts[l])
    return HStructureOutcome(left, right, best != PAIRINGS[0])


def correct_pairing(
    router: MergeRouter,
    p: SubTree,
    q: SubTree,
) -> HStructureOutcome:
    """Method 2: route all pairings, keep the lowest worse-side skew.

    Every candidate pairing is actually merge-routed and measured with the
    timing engine; losers are torn down (the grandchildren detach, the
    discarded merge structures are dropped). The winner is rebuilt last so
    the surviving tree contains exactly one routed copy.
    """
    parts = _free_parts(p, q)
    best_idx = 0
    best_key = None
    for idx, ((i, j), (k, l)) in enumerate(PAIRINGS):
        left = router.merge(parts[i], parts[j])
        right = router.merge(parts[k], parts[l])
        worse = max(
            router.subtree_bounds(left).skew, router.subtree_bounds(right).skew
        )
        wirelength = (
            left.downstream_wirelength() + right.downstream_wirelength()
        )
        # Primary criterion: worse-side skew, as in the paper. The balance
        # machinery drives every candidate's estimated skew near zero, so
        # ties (within half a picosecond) break on wirelength — shorter
        # trees are the ones without intertwined "H" crossings.
        key = (round(worse / 0.5e-12), wirelength)
        for part in parts:
            part.detach()
        if best_key is None or key < best_key:
            best_key = key
            best_idx = idx
    (i, j), (k, l) = PAIRINGS[best_idx]
    left = router.merge(parts[i], parts[j])
    right = router.merge(parts[k], parts[l])
    return HStructureOutcome(left, right, best_idx != 0)
