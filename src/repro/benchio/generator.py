"""Seeded synthetic sink-placement generators."""

from __future__ import annotations

import numpy as np

from repro.benchio.instance import BenchmarkInstance, Sink
from repro.geom.point import Point

#: Default sink capacitance range (F). Buffer input caps in the default
#: library span ~3.75-11.25 fF; sink caps are drawn from a similar range
#: so the paper's "approximate a sink by the buffer of similar load
#: capacitance" mapping stays accurate.
DEFAULT_CAP_RANGE = (4.0e-15, 14.0e-15)


def random_instance(
    n_sinks: int,
    area: float,
    seed: int = 0,
    name: str | None = None,
    cap_range: tuple[float, float] = DEFAULT_CAP_RANGE,
) -> BenchmarkInstance:
    """Uniformly random sinks over an ``area x area`` die."""
    if n_sinks < 1:
        raise ValueError("need at least one sink")
    rng = np.random.default_rng(seed)
    xs = rng.uniform(0.0, area, n_sinks)
    ys = rng.uniform(0.0, area, n_sinks)
    caps = rng.uniform(cap_range[0], cap_range[1], n_sinks)
    sinks = [
        Sink(f"s{i}", Point(float(x), float(y)), float(c))
        for i, (x, y, c) in enumerate(zip(xs, ys, caps))
    ]
    return BenchmarkInstance(
        name=name or f"rand{n_sinks}",
        sinks=sinks,
        source=Point(area / 2.0, area / 2.0),
        meta={"seed": seed, "area": area, "generator": "random"},
    )


def clustered_instance(
    n_sinks: int,
    area: float,
    n_clusters: int = 6,
    cluster_sigma_ratio: float = 0.06,
    seed: int = 0,
    name: str | None = None,
    cap_range: tuple[float, float] = DEFAULT_CAP_RANGE,
) -> BenchmarkInstance:
    """Sinks in Gaussian clusters — the register-bank look of real designs.

    Cluster centers are uniform over the die; each sink joins a random
    cluster with Gaussian spread ``cluster_sigma_ratio * area``, clipped
    to the die.
    """
    if n_clusters < 1:
        raise ValueError("need at least one cluster")
    rng = np.random.default_rng(seed)
    centers = rng.uniform(0.15 * area, 0.85 * area, size=(n_clusters, 2))
    assignment = rng.integers(0, n_clusters, n_sinks)
    sigma = cluster_sigma_ratio * area
    xs = np.clip(centers[assignment, 0] + rng.normal(0, sigma, n_sinks), 0, area)
    ys = np.clip(centers[assignment, 1] + rng.normal(0, sigma, n_sinks), 0, area)
    caps = rng.uniform(cap_range[0], cap_range[1], n_sinks)
    sinks = [
        Sink(f"s{i}", Point(float(x), float(y)), float(c))
        for i, (x, y, c) in enumerate(zip(xs, ys, caps))
    ]
    return BenchmarkInstance(
        name=name or f"clus{n_sinks}",
        sinks=sinks,
        source=Point(area / 2.0, area / 2.0),
        meta={
            "seed": seed,
            "area": area,
            "generator": "clustered",
            "n_clusters": n_clusters,
        },
    )
