"""The neutral benchmark-instance container."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.geom.bbox import BBox
from repro.geom.point import Point


@dataclass(frozen=True)
class Sink:
    """One clock sink: a location and a load capacitance."""

    name: str
    location: Point
    cap: float  # Farad

    def as_pair(self) -> tuple[Point, float]:
        return (self.location, self.cap)


@dataclass
class BenchmarkInstance:
    """A named set of clock sinks plus optional blockages and metadata."""

    name: str
    sinks: list[Sink]
    source: Point | None = None  # suggested clock-source location
    blockages: list[BBox] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.sinks:
            raise ValueError(f"benchmark {self.name!r} has no sinks")
        names = [s.name for s in self.sinks]
        if len(set(names)) != len(names):
            raise ValueError(f"benchmark {self.name!r} has duplicate sink names")

    @property
    def n_sinks(self) -> int:
        return len(self.sinks)

    def sink_pairs(self) -> list[tuple[Point, float]]:
        """The (location, cap) list the synthesis API consumes."""
        return [s.as_pair() for s in self.sinks]

    def bbox(self) -> BBox:
        return BBox.of_points([s.location for s in self.sinks])

    def scaled_down(self, n_sinks: int, seed: int = 0) -> "BenchmarkInstance":
        """A reduced copy with ``n_sinks`` randomly sampled sinks.

        Used by the default (CI-speed) benchmark runs; the full published
        sink counts run under ``REPRO_FULL=1``.
        """
        import numpy as np

        if n_sinks >= self.n_sinks:
            return self
        rng = np.random.default_rng(seed)
        idx = sorted(rng.choice(self.n_sinks, size=n_sinks, replace=False))
        return BenchmarkInstance(
            name=f"{self.name}@{n_sinks}",
            sinks=[self.sinks[i] for i in idx],
            source=self.source,
            blockages=list(self.blockages),
            meta={**self.meta, "scaled_from": self.n_sinks},
        )

    def __repr__(self) -> str:
        box = self.bbox()
        return (
            f"<BenchmarkInstance {self.name}: {self.n_sinks} sinks,"
            f" {box.width:.0f}x{box.height:.0f}>"
        )
