"""The neutral benchmark-instance container."""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.geom.bbox import BBox
from repro.geom.point import Point


@dataclass(frozen=True)
class Sink:
    """One clock sink: a location and a load capacitance."""

    name: str
    location: Point
    cap: float  # Farad

    def as_pair(self) -> tuple[Point, float]:
        return (self.location, self.cap)


@dataclass
class BenchmarkInstance:
    """A named set of clock sinks plus optional blockages and metadata."""

    name: str
    sinks: list[Sink]
    source: Point | None = None  # suggested clock-source location
    blockages: list[BBox] = field(default_factory=list)
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.sinks:
            raise ValueError(f"benchmark {self.name!r} has no sinks")
        names = [s.name for s in self.sinks]
        if len(set(names)) != len(names):
            raise ValueError(f"benchmark {self.name!r} has duplicate sink names")
        for sink in self.sinks:
            if not (
                math.isfinite(sink.location.x)
                and math.isfinite(sink.location.y)
            ):
                raise ValueError(
                    f"benchmark {self.name!r}: sink {sink.name!r} has a"
                    f" non-finite location ({sink.location.x}, {sink.location.y})"
                )
            if not math.isfinite(sink.cap) or sink.cap <= 0:
                raise ValueError(
                    f"benchmark {self.name!r}: sink {sink.name!r} has a"
                    f" non-positive or non-finite load cap ({sink.cap})"
                )
        if self.source is not None and not (
            math.isfinite(self.source.x) and math.isfinite(self.source.y)
        ):
            raise ValueError(
                f"benchmark {self.name!r} has a non-finite source location"
                f" ({self.source.x}, {self.source.y})"
            )
        self._validate_blockages()

    def _validate_blockages(self) -> None:
        """Reject blockages that are corrupt or cannot affect routing.

        A zero-area or non-finite blockage is a parse bug, and one lying
        entirely outside the die region (the sink/source bounding box,
        expanded by half its larger span — routing windows never grow
        further out) can only come from mismatched units; both fail with
        the offending rectangle named rather than silently distorting or
        not affecting the maze grids.
        """
        if not self.blockages:
            return
        points = [s.location for s in self.sinks]
        if self.source is not None:
            points.append(self.source)
        die = BBox.of_points(points)
        margin = 0.5 * max(die.width, die.height, 1.0)
        reach = BBox(
            die.xmin - margin,
            die.ymin - margin,
            die.xmax + margin,
            die.ymax + margin,
        )
        for i, blk in enumerate(self.blockages):
            corners = (blk.xmin, blk.ymin, blk.xmax, blk.ymax)
            if not all(math.isfinite(c) for c in corners):
                raise ValueError(
                    f"benchmark {self.name!r}: blockage #{i} {corners}"
                    " has non-finite corners"
                )
            if blk.xmax <= blk.xmin or blk.ymax <= blk.ymin:
                raise ValueError(
                    f"benchmark {self.name!r}: blockage #{i} {corners}"
                    " has zero area"
                )
            if (
                blk.xmax < reach.xmin
                or blk.xmin > reach.xmax
                or blk.ymax < reach.ymin
                or blk.ymin > reach.ymax
            ):
                raise ValueError(
                    f"benchmark {self.name!r}: blockage #{i} {corners}"
                    " lies entirely outside the die region"
                    f" ({reach.xmin:.0f}, {reach.ymin:.0f},"
                    f" {reach.xmax:.0f}, {reach.ymax:.0f})"
                )

    @property
    def n_sinks(self) -> int:
        return len(self.sinks)

    def sink_pairs(self) -> list[tuple[Point, float]]:
        """The (location, cap) list the synthesis API consumes."""
        return [s.as_pair() for s in self.sinks]

    def bbox(self) -> BBox:
        return BBox.of_points([s.location for s in self.sinks])

    def scaled_down(self, n_sinks: int, seed: int = 0) -> "BenchmarkInstance":
        """A reduced copy with ``n_sinks`` randomly sampled sinks.

        Used by the default (CI-speed) benchmark runs; the full published
        sink counts run under ``REPRO_FULL=1``.
        """
        import numpy as np

        if n_sinks >= self.n_sinks:
            return self
        rng = np.random.default_rng(seed)
        idx = sorted(rng.choice(self.n_sinks, size=n_sinks, replace=False))
        return BenchmarkInstance(
            name=f"{self.name}@{n_sinks}",
            sinks=[self.sinks[i] for i in idx],
            source=self.source,
            blockages=list(self.blockages),
            meta={**self.meta, "scaled_from": self.n_sinks},
        )

    def __repr__(self) -> str:
        box = self.bbox()
        return (
            f"<BenchmarkInstance {self.name}: {self.n_sinks} sinks,"
            f" {box.width:.0f}x{box.height:.0f}>"
        )
