"""Benchmark instances: parsers and synthetic generators.

The paper evaluates on the GSRC Bookshelf BST benchmarks (r1-r5) and the
ISPD 2009 clock network synthesis contest benchmarks. Neither archive is
redistributable here, so this package provides:

- parsers for the published file formats (drop the real files in and they
  load);
- seeded synthetic generators producing instances with the *published*
  sink counts and chip dimensions (DESIGN.md documents the substitution);
- a neutral :class:`BenchmarkInstance` the rest of the library consumes.
"""

from repro.benchio.instance import BenchmarkInstance, Sink
from repro.benchio.generator import random_instance, clustered_instance
from repro.benchio.gsrc import (
    GSRC_SINK_COUNTS,
    gsrc_instance,
    gsrc_suite,
    parse_gsrc,
)
from repro.benchio.ispd import (
    ISPD_SINK_COUNTS,
    ispd_instance,
    ispd_suite,
    parse_ispd,
)

__all__ = [
    "BenchmarkInstance",
    "Sink",
    "random_instance",
    "clustered_instance",
    "GSRC_SINK_COUNTS",
    "gsrc_instance",
    "gsrc_suite",
    "parse_gsrc",
    "ISPD_SINK_COUNTS",
    "ispd_instance",
    "ispd_suite",
    "parse_ispd",
]
