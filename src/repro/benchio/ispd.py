"""ISPD 2009 clock-network-synthesis benchmarks: parser + stand-ins.

The contest archive is offline-unavailable; :func:`ispd_instance`
generates seeded instances with the published sink counts. The ISPD dies
are much larger than the GSRC r-series — the paper: "these benchmarks
have large areas and it is very challenging to control slew" — so the
stand-in areas are scaled per benchmark to land the synthesized latencies
in the same ordering as the paper's Table 5.2 (f22 smallest ... fnb1
largest). Sinks are clustered (register banks), as in the contest chips.

:func:`parse_ispd` reads a simplified version of the contest format::

    num sink 121
    1 4250000 2550000 35
    ...
    num blockage 2
    x1 y1 x2 y2
"""

from __future__ import annotations

from pathlib import Path

from repro.benchio.generator import clustered_instance
from repro.benchio.instance import BenchmarkInstance, Sink
from repro.geom.bbox import BBox
from repro.geom.point import Point

#: Published sink counts (Table 5.2 of the paper).
ISPD_SINK_COUNTS = {
    "f11": 121,
    "f12": 117,
    "f21": 117,
    "f22": 91,
    "f31": 273,
    "f32": 190,
    "fnb1": 330,
}

#: Stand-in die spans (layout units), ordered like the paper's latencies.
ISPD_AREAS = {
    "f11": 110000.0,
    "f12": 95000.0,
    "f21": 105000.0,
    "f22": 80000.0,
    "f31": 200000.0,
    "f32": 165000.0,
    "fnb1": 220000.0,
}

_ISPD_SEEDS = {name: 200 + i for i, name in enumerate(ISPD_SINK_COUNTS)}


def ispd_instance(name: str) -> BenchmarkInstance:
    """A synthetic stand-in for one ISPD-2009 benchmark."""
    if name not in ISPD_SINK_COUNTS:
        raise KeyError(
            f"unknown ISPD benchmark {name!r}; have {sorted(ISPD_SINK_COUNTS)}"
        )
    inst = clustered_instance(
        ISPD_SINK_COUNTS[name],
        ISPD_AREAS[name],
        n_clusters=max(4, ISPD_SINK_COUNTS[name] // 30),
        seed=_ISPD_SEEDS[name],
        name=name,
    )
    inst.meta["suite"] = "ispd-synthetic"
    return inst


def ispd_suite() -> list[BenchmarkInstance]:
    """All seven contest stand-ins, in published order."""
    return [ispd_instance(name) for name in ISPD_SINK_COUNTS]


def parse_ispd(path: str | Path, name: str | None = None) -> BenchmarkInstance:
    """Parse the simplified contest format (see module docstring)."""
    path = Path(path)
    sinks: list[Sink] = []
    blockages: list[BBox] = []
    mode = None
    expected = 0
    for raw in path.read_text().splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        lowered = line.lower()
        if lowered.startswith("num "):
            parts = lowered.split()
            if len(parts) != 3:
                raise ValueError(f"{path}: malformed header {line!r}")
            mode = parts[1]
            expected = int(parts[2])
            continue
        parts = line.split()
        if mode == "sink":
            if len(parts) == 4:
                sink_name, x, y, cap = parts
            else:
                raise ValueError(f"{path}: malformed sink line {line!r}")
            # Contest caps are in fF.
            sinks.append(
                Sink(f"s{sink_name}", Point(float(x), float(y)), float(cap) * 1e-15)
            )
        elif mode == "blockage":
            if len(parts) != 4:
                raise ValueError(f"{path}: malformed blockage line {line!r}")
            x1, y1, x2, y2 = map(float, parts)
            blockages.append(BBox(min(x1, x2), min(y1, y2), max(x1, x2), max(y1, y2)))
        else:
            raise ValueError(f"{path}: data before a 'num' header: {line!r}")
    inst = BenchmarkInstance(
        name=name or path.stem,
        sinks=sinks,
        blockages=blockages,
        meta={"suite": "ispd-file", "path": str(path)},
    )
    if expected and mode == "blockage" and len(blockages) != expected:
        raise ValueError(f"{path}: blockage count mismatch")
    return inst
