"""GSRC Bookshelf BST benchmarks (r1-r5): parser + synthetic stand-ins.

The real archive (vlsicad.ucsd.edu GSRC bookshelf, Bounded-Skew Clock
Tree slot) is not redistributable/offline; :func:`gsrc_instance` generates
seeded instances with the published sink counts on a 69k x 69k die — the
r-series' footprint — and sink caps in the library-compatible range.
:func:`parse_gsrc` reads the bookshelf-style sink list so the real files
can be dropped in transparently.

Format accepted by the parser (one sink per line, ``#`` comments)::

    NumSinks : 267
    sink0 x y cap
    ...
"""

from __future__ import annotations

from pathlib import Path

from repro.benchio.generator import random_instance
from repro.benchio.instance import BenchmarkInstance, Sink
from repro.geom.point import Point

#: Published sink counts of the GSRC r-series (Table 5.1 of the paper).
GSRC_SINK_COUNTS = {"r1": 267, "r2": 598, "r3": 862, "r4": 1903, "r5": 3101}

#: Die span used by the synthetic stand-ins (r-series footprint, units).
GSRC_AREA = 69000.0

_GSRC_SEEDS = {"r1": 101, "r2": 102, "r3": 103, "r4": 104, "r5": 105}


def gsrc_instance(name: str) -> BenchmarkInstance:
    """A synthetic stand-in for one GSRC benchmark (r1..r5)."""
    if name not in GSRC_SINK_COUNTS:
        raise KeyError(f"unknown GSRC benchmark {name!r}; have {sorted(GSRC_SINK_COUNTS)}")
    inst = random_instance(
        GSRC_SINK_COUNTS[name],
        GSRC_AREA,
        seed=_GSRC_SEEDS[name],
        name=name,
    )
    inst.meta["suite"] = "gsrc-synthetic"
    return inst


def gsrc_suite() -> list[BenchmarkInstance]:
    """All five r-series stand-ins, in published order."""
    return [gsrc_instance(name) for name in GSRC_SINK_COUNTS]


def parse_gsrc(path: str | Path, name: str | None = None) -> BenchmarkInstance:
    """Parse a bookshelf-style sink list (see module docstring)."""
    path = Path(path)
    declared = None
    sinks: list[Sink] = []
    for raw in path.read_text().splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if ":" in line:
            key, __, value = line.partition(":")
            if key.strip().lower() in ("numsinks", "num_sinks", "sinks"):
                declared = int(value.strip())
            continue
        parts = line.split()
        if len(parts) == 4:
            sink_name, x, y, cap = parts
        elif len(parts) == 3:
            sink_name = f"s{len(sinks)}"
            x, y, cap = parts
        else:
            raise ValueError(f"{path}: malformed sink line {line!r}")
        sinks.append(Sink(sink_name, Point(float(x), float(y)), float(cap)))
    if declared is not None and declared != len(sinks):
        raise ValueError(
            f"{path}: declared {declared} sinks but found {len(sinks)}"
        )
    return BenchmarkInstance(
        name=name or path.stem,
        sinks=sinks,
        meta={"suite": "gsrc-file", "path": str(path)},
    )
