"""Alpha-power-law MOSFET model (Sakurai-Newton).

The alpha-power law is the standard compact model for velocity-saturated
short-channel CMOS:

    Idsat = K * W * (Vgs - Vth)^alpha
    Vdsat = Kv * (Vgs - Vth)^(alpha/2)
    Id    = Idsat * (2 - Vds/Vdsat) * (Vds/Vdsat)   for Vds < Vdsat (linear)
    Id    = Idsat * (1 + lam * (Vds - Vdsat))        for Vds >= Vdsat

It captures what the paper's flow depends on: drive current that depends
nonlinearly on the (slew-limited) gate voltage, making buffer intrinsic
delay a strong function of input slew, and output waveforms that are
curved rather than ramps.

Devices are symmetric: when ``Vds < 0`` the drain/source roles swap. PMOS
is modeled by voltage mirroring of the NMOS equations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tech.technology import Technology

#: Small drain-source conductance for Newton conditioning (Siemens per X).
GMIN_PER_X = 1e-9

#: Channel-length-modulation coefficient (1/V).
LAMBDA = 0.05

#: Vdsat coefficient: Vdsat(Vdd) ~ 0.45 V at 0.7 V overdrive, alpha = 1.4.
KV = 0.58


@dataclass(frozen=True)
class MosfetParams:
    """Parameters of one device instance."""

    k: float  # A / V^alpha per X
    vth: float  # V (positive magnitude)
    alpha: float
    width: float  # relative width, X
    is_pmos: bool

    @property
    def gmin(self) -> float:
        return GMIN_PER_X * self.width


def nmos_params(tech: Technology, width: float) -> MosfetParams:
    return MosfetParams(tech.nmos_k, tech.nmos_vth, tech.alpha, width, False)


def pmos_params(tech: Technology, width: float) -> MosfetParams:
    return MosfetParams(tech.pmos_k, tech.pmos_vth, tech.alpha, width, True)


def _core_current(
    vgs: float, vds: float, p: MosfetParams
) -> tuple[float, float, float]:
    """NMOS-convention current for ``vds >= 0``.

    Returns ``(id, did_dvgs, did_dvds)``.
    """
    over = vgs - p.vth
    if over <= 0.0:
        return 0.0, 0.0, 0.0
    idsat = p.k * p.width * over**p.alpha
    didsat_dvgs = p.alpha * p.k * p.width * over ** (p.alpha - 1.0)
    vdsat = KV * over ** (p.alpha / 2.0)
    dvdsat_dvgs = KV * (p.alpha / 2.0) * over ** (p.alpha / 2.0 - 1.0)
    if vds >= vdsat:
        clm = 1.0 + LAMBDA * (vds - vdsat)
        i = idsat * clm
        di_dvgs = didsat_dvgs * clm - idsat * LAMBDA * dvdsat_dvgs
        di_dvds = idsat * LAMBDA
        return i, di_dvgs, di_dvds
    u = vds / vdsat
    f = (2.0 - u) * u
    df_du = 2.0 - 2.0 * u
    du_dvds = 1.0 / vdsat
    du_dvgs = -vds / (vdsat * vdsat) * dvdsat_dvgs
    i = idsat * f
    di_dvgs = didsat_dvgs * f + idsat * df_du * du_dvgs
    di_dvds = idsat * df_du * du_dvds
    return i, di_dvgs, di_dvds


def _nmos_current(
    vg: float, vd: float, vs: float, p: MosfetParams
) -> tuple[float, float, float, float]:
    """Symmetric NMOS current into the drain terminal.

    Returns ``(id, did_dvg, did_dvd, did_dvs)`` where ``id`` flows from
    drain to source inside the device (out of node d).
    """
    if vd >= vs:
        i, di_dvgs, di_dvds = _core_current(vg - vs, vd - vs, p)
        di_dvg = di_dvgs
        di_dvd = di_dvds
        di_dvs = -di_dvgs - di_dvds
    else:
        # Swap roles: terminal d acts as the source.
        i_sw, di_dvgs, di_dvds = _core_current(vg - vd, vs - vd, p)
        i = -i_sw
        di_dvg = -di_dvgs
        di_dvs = -di_dvds
        di_dvd = di_dvgs + di_dvds
    # gmin leak keeps the Jacobian nonsingular when the device is off.
    i += p.gmin * (vd - vs)
    di_dvd += p.gmin
    di_dvs -= p.gmin
    return i, di_dvg, di_dvd, di_dvs


def mosfet_current(
    vg: float, vd: float, vs: float, p: MosfetParams
) -> tuple[float, float, float, float]:
    """Drain current and derivatives for NMOS or PMOS.

    The return convention matches :func:`_nmos_current`: current flowing
    *into* the drain node (so KCL adds ``+id`` at the drain and ``-id`` at
    the source).
    """
    if not p.is_pmos:
        return _nmos_current(vg, vd, vs, p)
    # PMOS via mirroring: i_p(vg, vd, vs) = -i_n(-vg, -vd, -vs).
    i, di_dvg, di_dvd, di_dvs = _nmos_current(-vg, -vd, -vs, p)
    return -i, di_dvg, di_dvd, di_dvs
