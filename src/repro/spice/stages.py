"""Stage circuits: a driving buffer, an RC wire tree, and its loads.

CMOS gates are unidirectional — a gate's input draws only its (constant)
gate capacitance and its output is regenerated from the rails — so a
buffered clock tree decomposes *exactly* at buffer inputs into independent
"stages". Simulating stage by stage in topological order, feeding each
stage the waveform computed at its driver's input, reproduces the flat
SPICE solution of the whole tree while keeping every linear solve tiny.

The same :class:`StageSpec` describes both characterization circuits
(single wire, branch) and the stages of synthesized trees.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.spice.circuit import Circuit, DEFAULT_SEGMENT_LENGTH
from repro.spice.transient import TransientOptions, TransientResult, simulate
from repro.tech.buffers import BufferType
from repro.tech.technology import Technology
from repro.timing.waveform import Waveform

#: Node id of the driving buffer's output in every StageSpec.
STAGE_ROOT = 0

INPUT_NODE = "in"


@dataclass(frozen=True)
class StageWire:
    """A wire of ``length`` units from tree node ``parent`` to ``node``."""

    parent: int
    node: int
    length: float


@dataclass
class StageSpec:
    """One buffered stage: driver + RC tree + capacitive loads.

    ``wires`` defines a tree over small integer node ids with node 0 being
    the driver's output; ``load_caps`` attaches extra grounded capacitance
    (downstream buffer input caps, sink caps) at any node. A stage without
    a driver (``drive is None``) models the tree root driven directly by
    the clock source.
    """

    drive: BufferType | None
    wires: list[StageWire] = field(default_factory=list)
    load_caps: dict[int, float] = field(default_factory=dict)

    def node_ids(self) -> list[int]:
        ids = {STAGE_ROOT}
        for w in self.wires:
            ids.add(w.parent)
            ids.add(w.node)
        ids.update(self.load_caps)
        return sorted(ids)

    def validate(self) -> None:
        """Check the wires form a tree rooted at node 0."""
        seen = {STAGE_ROOT}
        for w in self.wires:
            if w.parent not in seen:
                raise ValueError(
                    f"wire parent {w.parent} appears before being reached"
                )
            if w.node in seen:
                raise ValueError(f"node {w.node} has two parents")
            if w.length < 0:
                raise ValueError(f"negative wire length on {w}")
            seen.add(w.node)
        for node in self.load_caps:
            if node not in seen:
                raise ValueError(f"load at unknown node {node}")

    def total_wire_length(self) -> float:
        return sum(w.length for w in self.wires)

    def total_load_cap(self) -> float:
        return sum(self.load_caps.values())


def _stage_node_name(node_id: int) -> str:
    return INPUT_NODE if node_id == -1 else f"s{node_id}"


def build_stage_circuit(
    tech: Technology,
    spec: StageSpec,
    input_wave: Waveform,
    segment_length: float = DEFAULT_SEGMENT_LENGTH,
    title: str = "stage",
) -> tuple[Circuit, dict[int, str], list[str]]:
    """Materialize a stage as a flat circuit.

    Returns ``(circuit, node_names, internal_wire_nodes)`` where
    ``node_names`` maps stage node ids to circuit node names and the
    internal wire nodes are extra probe points for worst-slew monitoring.
    """
    spec.validate()
    circuit = Circuit(tech, title=title)
    circuit.add_vsource(INPUT_NODE, input_wave)
    root_name = _stage_node_name(STAGE_ROOT)
    if spec.drive is not None:
        circuit.add_buffer(INPUT_NODE, root_name, spec.drive)
    else:
        circuit.add_resistor(INPUT_NODE, root_name, 1e-3)
    names = {STAGE_ROOT: root_name}
    internal: list[str] = []
    for w in spec.wires:
        names[w.node] = _stage_node_name(w.node)
        internal.extend(
            circuit.add_wire(
                names[w.parent], names[w.node], w.length, segment_length
            )
        )
    for node, cap in spec.load_caps.items():
        circuit.add_cap(names[node], cap)
    return circuit, names, internal


@dataclass
class StageSimResult:
    """Measurements from one simulated stage."""

    tech: Technology
    spec: StageSpec
    result: TransientResult
    node_names: dict[int, str]
    internal_nodes: list[str]

    def input_waveform(self) -> Waveform:
        return self.result.waveform(INPUT_NODE)

    def waveform(self, node_id: int) -> Waveform:
        return self.result.waveform(self.node_names[node_id])

    def input_cross_time(self) -> float:
        return self.input_waveform().cross_time(
            self.tech.logic_threshold_voltage()
        )

    def delay_to(self, node_id: int) -> float:
        """50% input crossing to 50% crossing at ``node_id``."""
        return (
            self.waveform(node_id).cross_time(self.tech.logic_threshold_voltage())
            - self.input_cross_time()
        )

    def buffer_delay(self) -> float:
        """Intrinsic delay of the driving buffer (input to node 0)."""
        return self.delay_to(STAGE_ROOT)

    def slew_at(self, node_id: int) -> float:
        return self.waveform(node_id).slew(
            self.tech.vdd, self.tech.slew_lo, self.tech.slew_hi
        )

    def input_slew(self) -> float:
        return self.input_waveform().slew(
            self.tech.vdd, self.tech.slew_lo, self.tech.slew_hi
        )

    def worst_slew(self) -> float:
        """Largest 10-90 slew over every node of the stage.

        A node that has not reached the 90% level by the end of the
        window is itself a slew violation; its slew is reported as the
        (lower-bound) time from the 10% crossing to the window end.
        """
        worst = 0.0
        vdd = self.tech.vdd
        lo_v = self.tech.slew_lo * vdd
        for name in list(self.node_names.values()) + self.internal_nodes:
            wave = self.result.waveform(name)
            if wave.v_final < lo_v:
                continue  # never rose (e.g. falling internal node)
            try:
                slew = wave.slew(vdd, self.tech.slew_lo, self.tech.slew_hi)
            except ValueError:
                slew = float(wave.times[-1]) - wave.cross_time(lo_v)
            worst = max(worst, slew)
        return worst

    def trimmed_waveform(self, node_id: int, lead: float = 20e-12) -> Waveform:
        """Waveform at ``node_id`` windowed to its transition.

        Passing trimmed waveforms downstream keeps each stage's simulation
        window tight; the clamped-extrapolation semantics of
        :class:`Waveform` preserve the settled levels outside the window.
        """
        wave = self.waveform(node_id)
        vdd = self.tech.vdd
        try:
            t0 = wave.cross_time(0.02 * vdd)
        except ValueError:
            return wave
        t0 = max(wave.times[0], t0 - lead)
        return wave.windowed(t0, wave.times[-1])


def simulate_stage(
    tech: Technology,
    spec: StageSpec,
    input_wave: Waveform,
    dt: float = 1.0e-12,
    segment_length: float = DEFAULT_SEGMENT_LENGTH,
    settle_allowance: float = 1.5e-9,
) -> StageSimResult:
    """Simulate one stage driven by ``input_wave``.

    The time window starts where the input starts and extends far enough
    for the stage to settle; early-stopping trims the excess.
    """
    circuit, names, internal = build_stage_circuit(
        tech, spec, input_wave, segment_length
    )
    t_start = float(input_wave.times[0])
    t_stop = float(input_wave.times[-1]) + settle_allowance
    opts = TransientOptions(dt=dt, t_start=t_start, t_stop=t_stop, auto_stop=True)
    result = simulate(circuit, opts)
    return StageSimResult(tech, spec, result, names, internal)


def single_wire_spec(
    drive: BufferType, length: float, load_cap: float
) -> StageSpec:
    """The paper's single-wire component (Fig. 3.3)."""
    return StageSpec(
        drive=drive,
        wires=[StageWire(STAGE_ROOT, 1, length)],
        load_caps={1: load_cap},
    )


def branch_spec(
    drive: BufferType,
    left_length: float,
    right_length: float,
    left_cap: float,
    right_cap: float,
    stem_length: float = 0.0,
) -> StageSpec:
    """The paper's two-branch component (Fig. 3.5).

    Node 1 is the branch point (== node 0 when ``stem_length`` is 0 is
    avoided by always materializing the stem wire, possibly zero-length),
    node 2 the left endpoint, node 3 the right endpoint.
    """
    return StageSpec(
        drive=drive,
        wires=[
            StageWire(STAGE_ROOT, 1, stem_length),
            StageWire(1, 2, left_length),
            StageWire(1, 3, right_length),
        ],
        load_caps={2: left_cap, 3: right_cap},
    )
