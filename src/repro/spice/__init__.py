"""A small nonlinear transient circuit simulator ("mini-SPICE").

This is the substrate that replaces the paper's HSPICE + 45 nm PTM setup.
It simulates exactly the circuit class clock tree synthesis needs:

- CMOS buffers (two cascaded inverters) with an alpha-power-law MOSFET
  model — reproducing slew-dependent intrinsic delay and curved output
  waveforms;
- distributed RC wires (pi-segment ladders);
- grounded capacitive loads (gate caps, sink caps);
- piecewise-linear voltage sources.

Integration is backward Euler with Newton iteration on a dense MNA system;
stage circuits are small (tens of nodes), so dense linear algebra is both
simple and fast. Whole clock trees are simulated exactly by stage
decomposition (:mod:`repro.spice.stages`): CMOS gates are unidirectional,
so the tree splits at buffer inputs into independently solvable stages
whose interface waveforms are propagated in topological order.
"""

from repro.spice.mosfet import MosfetParams, mosfet_current, nmos_params, pmos_params
from repro.spice.circuit import Circuit
from repro.spice.transient import TransientOptions, TransientResult, simulate
from repro.spice.stages import (
    StageSpec,
    StageWire,
    build_stage_circuit,
    simulate_stage,
    StageSimResult,
)
from repro.spice.netlist import write_netlist, parse_netlist

__all__ = [
    "MosfetParams",
    "mosfet_current",
    "nmos_params",
    "pmos_params",
    "Circuit",
    "TransientOptions",
    "TransientResult",
    "simulate",
    "StageSpec",
    "StageWire",
    "build_stage_circuit",
    "simulate_stage",
    "StageSimResult",
    "write_netlist",
    "parse_netlist",
]
