"""Backward-Euler transient analysis with Newton iteration.

The solver targets the circuit class produced by :mod:`repro.spice.circuit`:
small (tens to a few hundred nodes), tree-structured RC networks with a
handful of MOSFETs. Dense linear algebra is therefore the right tool — the
per-step Jacobian solve is microseconds — and the implementation stays
simple enough to audit.

Numerical scheme:

- nodal analysis over *unknown* nodes (ground, Vdd and waveform-driven
  nodes are eliminated as known voltages);
- backward Euler: ``C (v_k - v_{k-1})/h + G v_k + i_nl(v_k) = inj_k``;
- Newton with per-update damping; the linear part ``A0 = G + C/h`` and the
  known-node injection schedule are precomputed for the whole run.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

import numpy as np

try:  # scipy ships with the toolchain; fall back to dense solves without it.
    from scipy.linalg import lu_factor, lu_solve
except ImportError:  # pragma: no cover - exercised only without scipy
    lu_factor = lu_solve = None

from repro.spice.circuit import Circuit, GROUND
from repro.spice.mosfet import mosfet_current
from repro.timing.waveform import Waveform

#: Diagonal leak added for the DC operating-point solve only, so nodes with
#: purely capacitive DC paths do not make the conductance matrix singular.
DC_GLEAK = 1e-12


class ConvergenceError(RuntimeError):
    """Newton iteration failed to converge."""


@dataclass
class TransientOptions:
    """Knobs for :func:`simulate`."""

    dt: float = 1.0e-12  # timestep (s)
    t_start: float = 0.0  # absolute start time (global timebase)
    t_stop: float | None = None  # absolute end time; derived from sources if None
    max_newton: int = 60
    vtol: float = 1.0e-6  # Newton convergence: max |dv| (V)
    damping_v: float = 0.3  # max |dv| applied per Newton update (V)
    auto_stop: bool = True  # stop early once the circuit settles
    settle_dv: float = 1.0e-5  # "settled" means max step-to-step dv below this
    settle_steps: int = 8  # ... for this many consecutive steps
    tail_time: float = 30.0e-12  # minimum sim time past the last input sample


@dataclass
class TransientResult:
    """Sampled node voltages over time."""

    times: np.ndarray
    node_index: dict[str, int]
    voltages: np.ndarray  # shape (n_steps, n_nodes), ground excluded

    def waveform(self, node: str) -> Waveform:
        """Waveform at ``node`` (ground returns an all-zero waveform)."""
        if node == GROUND:
            return Waveform(self.times, np.zeros_like(self.times))
        try:
            col = self.node_index[node]
        except KeyError:
            raise KeyError(f"no such node {node!r}") from None
        return Waveform(self.times, self.voltages[:, col])

    @property
    def nodes(self) -> list[str]:
        return sorted(self.node_index)

    def final_voltage(self, node: str) -> float:
        return float(self.voltages[-1, self.node_index[node]])


@dataclass
class _System:
    """Precompiled matrices and index maps for one circuit."""

    names: list[str]  # all non-ground nodes
    index: dict[str, int]  # name -> column in the full voltage vector
    unknown: list[int]  # indices (into names) of unknown nodes
    known: list[int]
    g_uu: np.ndarray  # conductance among unknowns
    g_uk: np.ndarray  # conductance unknowns x knowns
    c_diag: np.ndarray  # grounded capacitance at unknowns
    mosfets: list  # Mosfet elements
    unknown_pos: dict[int, int] = field(default_factory=dict)


def _compile(circuit: Circuit) -> _System:
    names = circuit.all_nodes()
    index = {name: i for i, name in enumerate(names)}
    source_map = circuit.source_nodes()
    known = [index[n] for n in names if n in source_map]
    unknown = [index[n] for n in names if n not in source_map]
    if not unknown:
        raise ValueError("circuit has no unknown nodes to solve for")
    upos = {node: i for i, node in enumerate(unknown)}
    kpos = {node: i for i, node in enumerate(known)}
    n_u, n_k = len(unknown), len(known)
    g_uu = np.zeros((n_u, n_u))
    g_uk = np.zeros((n_u, n_k))
    c_diag = np.zeros(n_u)

    def stamp_g(i: int, j: int, g: float) -> None:
        """Conductance g between full-indices i, j (j may be -1 = ground)."""
        if i in upos:
            g_uu[upos[i], upos[i]] += g
            if j >= 0:
                if j in upos:
                    g_uu[upos[i], upos[j]] -= g
                else:
                    g_uk[upos[i], kpos[j]] -= g

    for r in circuit.resistors:
        i = index[r.n1] if r.n1 != GROUND else -1
        j = index[r.n2] if r.n2 != GROUND else -1
        g = 1.0 / r.r
        stamp_g(i, j, g)
        stamp_g(j, i, g)
    for c in circuit.caps:
        if c.node == GROUND:
            continue
        i = index[c.node]
        if i in upos:
            c_diag[upos[i]] += c.c
    sys = _System(
        names, index, unknown, known, g_uu, g_uk, c_diag, circuit.mosfets
    )
    sys.unknown_pos = upos
    return sys


def _known_voltages(circuit: Circuit, sys: _System, times: np.ndarray) -> np.ndarray:
    """Voltage schedule of the known nodes, shape (n_known, n_steps)."""
    source_map = circuit.source_nodes()
    vk = np.zeros((len(sys.known), times.size))
    for pos, node_idx in enumerate(sys.known):
        value = source_map[sys.names[node_idx]]
        if isinstance(value, Waveform):
            vk[pos, :] = np.interp(times, value.times, value.values)
        else:
            vk[pos, :] = value
    return vk


def _mosfet_terminals(sys: _System, m) -> tuple[int, int, int]:
    """Full indices of (gate, drain, source); ground maps to -1."""

    def idx(name: str) -> int:
        return -1 if name == GROUND else sys.index[name]

    return idx(m.gate), idx(m.drain), idx(m.source)


def _newton_solve(
    sys: _System,
    a0: np.ndarray,
    rhs: np.ndarray,
    v_full: np.ndarray,
    opts: TransientOptions,
    mos_terms: list[tuple[int, int, int]],
    a0_lu=None,
) -> np.ndarray:
    """Solve ``a0 v_u + i_nl(v) = rhs`` for the unknown sub-vector.

    ``v_full`` holds the current voltage estimate for every node (knowns
    already set for this timestep); it is updated in place and returned.
    Without MOSFETs the Jacobian is ``a0`` itself, so no copy is stamped
    and a prefactored ``a0_lu`` (scipy LU) can be reused across every
    timestep of a run.
    """
    upos = sys.unknown_pos
    u_idx = np.array(sys.unknown, dtype=int)
    max_dv = float("inf")
    damping = opts.damping_v
    dv_prev = None
    for iteration in range(opts.max_newton):
        v_u = v_full[u_idx]
        f = a0 @ v_u - rhs
        if mos_terms:
            jac = a0.copy()
            for m, (g, d, s) in zip(sys.mosfets, mos_terms):
                vg = v_full[g] if g >= 0 else 0.0
                vd = v_full[d] if d >= 0 else 0.0
                vs = v_full[s] if s >= 0 else 0.0
                i, di_dvg, di_dvd, di_dvs = mosfet_current(vg, vd, vs, m.params)
                if d in upos:
                    row = upos[d]
                    f[row] += i
                    for term, dterm in ((g, di_dvg), (d, di_dvd), (s, di_dvs)):
                        if term in upos:
                            jac[row, upos[term]] += dterm
                if s in upos:
                    row = upos[s]
                    f[row] -= i
                    for term, dterm in ((g, di_dvg), (d, di_dvd), (s, di_dvs)):
                        if term in upos:
                            jac[row, upos[term]] -= dterm
            dv = np.linalg.solve(jac, -f)
        elif a0_lu is not None:
            dv = lu_solve(a0_lu, -f)
        else:
            dv = np.linalg.solve(a0, -f)
        max_dv = float(np.max(np.abs(dv)))
        # Oscillation control: when consecutive updates reverse direction
        # (limit cycling across model-region boundaries), shrink the
        # allowed step so the iteration contracts.
        if dv_prev is not None and float(dv @ dv_prev) < 0.0:
            damping = max(damping * 0.5, 1e-4)
        if max_dv > damping:
            dv = dv * (damping / max_dv)
        dv_prev = dv
        v_full[u_idx] = v_u + dv
        if max_dv < opts.vtol:
            return v_full
        # Micro-volt limit cycles (piecewise model-region boundaries) are
        # physically irrelevant for ps-scale timing: accept after enough
        # iterations once the update is within 100x of the tolerance.
        if iteration > opts.max_newton // 2 and max_dv < 100.0 * opts.vtol:
            return v_full
    # Last resort: a sub-millivolt residual update changes threshold
    # crossings by well under 0.1 ps; accept rather than abort the run.
    if max_dv < 1.0e-3:
        return v_full
    raise ConvergenceError(
        f"Newton failed after {opts.max_newton} iterations (max dv = {max_dv:.3g} V)"
    )


def dc_operating_point(circuit: Circuit, at_time: float = 0.0) -> dict[str, float]:
    """DC solution with sources held at their ``at_time`` values."""
    sys = _compile(circuit)
    opts = TransientOptions()
    times = np.array([at_time, at_time + 1.0])
    vk = _known_voltages(circuit, sys, times)[:, 0]
    n_u = len(sys.unknown)
    a0 = sys.g_uu + DC_GLEAK * np.eye(n_u)
    rhs = -sys.g_uk @ vk
    v_full = _logic_guess(circuit, sys, vk)
    mos_terms = [_mosfet_terminals(sys, m) for m in circuit.mosfets]
    try:
        v_full = _newton_solve(sys, a0, rhs, v_full, opts, mos_terms)
    except ConvergenceError:
        # Fall back to pseudo-transient continuation: big capacitive steps.
        v_full = _pseudo_transient_dc(sys, a0, rhs, v_full, opts, mos_terms)
    return {name: float(v_full[sys.index[name]]) for name in sys.names}


def _pseudo_transient_dc(sys, a0, rhs, v_full, opts, mos_terms):
    """Relax toward DC by damped fixed-capacitance pseudo-timestepping."""
    n_u = len(sys.unknown)
    u_idx = np.array(sys.unknown, dtype=int)
    c_pseudo = np.full(n_u, 1e-12)
    for h in (1e-9, 1e-8, 1e-7):
        a_step = a0 + np.diag(c_pseudo / h)
        for _ in range(40):
            rhs_step = rhs + (c_pseudo / h) * v_full[u_idx]
            v_full = _newton_solve(sys, a_step, rhs_step, v_full, opts, mos_terms)
    return v_full


def _logic_guess(circuit: Circuit, sys: _System, vk: np.ndarray) -> np.ndarray:
    """Initial DC guess by propagating logic levels through inverters.

    Resistively connected nodes share a level; each MOSFET pair's output
    takes the inverse of its gate's level. Iterated to a fixed point (stage
    circuits are acyclic, so a few passes suffice).
    """
    vdd = circuit.tech.vdd
    n_all = len(sys.names)
    v_full = np.zeros(n_all)
    level: list[float | None] = [None] * n_all
    for pos, node_idx in enumerate(sys.known):
        level[node_idx] = float(vk[pos])
        v_full[node_idx] = vk[pos]

    # Union resistively connected nodes.
    parent = list(range(n_all))

    def find(i: int) -> int:
        while parent[i] != i:
            parent[i] = parent[parent[i]]
            i = parent[i]
        return i

    for r in circuit.resistors:
        if r.n1 == GROUND or r.n2 == GROUND:
            continue
        a, b = find(sys.index[r.n1]), find(sys.index[r.n2])
        if a != b:
            parent[a] = b

    groups: dict[int, list[int]] = {}
    for i in range(n_all):
        groups.setdefault(find(i), []).append(i)

    def group_level(i: int) -> float | None:
        for j in groups[find(i)]:
            if level[j] is not None:
                return level[j]
        return None

    def set_group_level(i: int, val: float) -> None:
        for j in groups[find(i)]:
            if level[j] is None:
                level[j] = val

    for _ in range(len(circuit.mosfets) + 2):
        changed = False
        for m in circuit.mosfets:
            if m.gate == GROUND:
                gate_level = 0.0
            else:
                gate_level = group_level(sys.index[m.gate])
            if gate_level is None or m.drain == GROUND:
                continue
            drain_idx = sys.index[m.drain]
            if group_level(drain_idx) is None:
                out = 0.0 if gate_level > vdd / 2.0 else vdd
                set_group_level(drain_idx, out)
                changed = True
        if not changed:
            break
    for i in range(n_all):
        lvl = group_level(i)
        v_full[i] = lvl if lvl is not None else 0.0
    for pos, node_idx in enumerate(sys.known):
        v_full[node_idx] = vk[pos]
    return v_full


def _input_end_time(circuit: Circuit, opts: TransientOptions) -> float:
    """Last sample time over all waveform sources."""
    t_last = opts.t_start
    for s in circuit.sources:
        if isinstance(s.value, Waveform):
            t_last = max(t_last, float(s.value.times[-1]))
    if t_last == opts.t_start:
        t_last = opts.t_start + 100 * opts.dt
    return t_last


def simulate(
    circuit: Circuit,
    options: TransientOptions | None = None,
) -> TransientResult:
    """Run a backward-Euler transient from the DC operating point."""
    opts = options or TransientOptions()
    sys = _compile(circuit)
    t_input_end = _input_end_time(circuit, opts)
    t_stop = opts.t_stop if opts.t_stop is not None else t_input_end + opts.tail_time
    n_steps = max(2, int(round((t_stop - opts.t_start) / opts.dt)) + 1)
    times = opts.t_start + np.arange(n_steps) * opts.dt

    vk_all = _known_voltages(circuit, sys, times)
    u_idx = np.array(sys.unknown, dtype=int)
    k_idx = np.array(sys.known, dtype=int)
    n_u = len(sys.unknown)
    mos_terms = [_mosfet_terminals(sys, m) for m in circuit.mosfets]

    # DC operating point at t = 0.
    a_dc = sys.g_uu + DC_GLEAK * np.eye(n_u)
    rhs_dc = -sys.g_uk @ vk_all[:, 0]
    v_full = _logic_guess(circuit, sys, vk_all[:, 0])
    try:
        v_full = _newton_solve(sys, a_dc, rhs_dc, v_full, TransientOptions(max_newton=100), mos_terms)
    except ConvergenceError:
        v_full = _pseudo_transient_dc(sys, a_dc, rhs_dc, v_full, opts, mos_terms)

    c_over_h = sys.c_diag / opts.dt
    a0 = sys.g_uu + np.diag(c_over_h)
    # Linear circuits (no MOSFETs) reuse one LU factorization of a0 for
    # every Newton solve of every timestep. A zero pivot means a0 is
    # singular; fall back to np.linalg.solve so the run still fails
    # loudly (lu_solve would return inf instead of raising).
    a0_lu = None
    if not mos_terms and lu_factor is not None:
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            candidate = lu_factor(a0)
        if not np.any(np.diag(candidate[0]) == 0.0):
            a0_lu = candidate
    # Injection from known nodes, precomputed for every step.
    inj_known = -sys.g_uk @ vk_all  # (n_u, n_steps)

    voltages = np.empty((n_steps, len(sys.names)))
    voltages[0, :] = v_full
    settled = 0
    last_step = n_steps - 1
    for k in range(1, n_steps):
        v_prev_u = v_full[u_idx].copy()
        v_full[k_idx] = vk_all[:, k]
        rhs = inj_known[:, k] + c_over_h * v_prev_u
        v_full = _newton_solve(sys, a0, rhs, v_full, opts, mos_terms, a0_lu=a0_lu)
        voltages[k, :] = v_full
        if opts.auto_stop:
            step_dv = float(np.max(np.abs(v_full[u_idx] - v_prev_u)))
            input_active = times[k] < t_input_end
            settled = 0 if (step_dv > opts.settle_dv or input_active) else settled + 1
            if settled >= opts.settle_steps:
                last_step = k
                break

    index = {name: i for i, name in enumerate(sys.names)}
    return TransientResult(
        times[: last_step + 1], index, voltages[: last_step + 1, :]
    )
