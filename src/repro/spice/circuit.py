"""Circuit assembly: nodes, elements, and CMOS/wire subcircuit helpers."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.spice.mosfet import MosfetParams, nmos_params, pmos_params
from repro.tech.buffers import BufferType
from repro.tech.technology import Technology
from repro.timing.waveform import Waveform

GROUND = "0"
VDD = "vdd"

#: Default maximum wire-segment length (layout units) for pi-ladder wires.
DEFAULT_SEGMENT_LENGTH = 400.0

#: Hard cap on segments per wire so huge wires stay simulable.
MAX_SEGMENTS_PER_WIRE = 64


@dataclass
class Resistor:
    n1: str
    n2: str
    r: float


@dataclass
class GroundedCap:
    node: str
    c: float


@dataclass
class Mosfet:
    drain: str
    gate: str
    source: str
    params: MosfetParams


@dataclass
class VSource:
    """Ideal grounded voltage source: fixed value or a driving waveform."""

    node: str
    value: float | Waveform


@dataclass
class Circuit:
    """A flat netlist of R / C / MOSFET / V elements over named nodes.

    Node names are arbitrary strings; ``"0"`` is ground and ``"vdd"`` the
    supply (created implicitly by :meth:`add_rails`). Helper methods build
    the recurring subcircuits: inverters, two-inverter buffers, and
    pi-segmented distributed RC wires.
    """

    tech: Technology
    title: str = "circuit"
    resistors: list[Resistor] = field(default_factory=list)
    caps: list[GroundedCap] = field(default_factory=list)
    mosfets: list[Mosfet] = field(default_factory=list)
    sources: list[VSource] = field(default_factory=list)
    _counter: int = 0

    def fresh_node(self, prefix: str = "n") -> str:
        """A new unique internal node name."""
        self._counter += 1
        return f"{prefix}${self._counter}"

    # ------------------------------------------------------------------
    # Primitive elements
    # ------------------------------------------------------------------

    def add_resistor(self, n1: str, n2: str, r: float) -> None:
        if r <= 0:
            raise ValueError(f"resistance must be positive, got {r}")
        self.resistors.append(Resistor(n1, n2, r))

    def add_cap(self, node: str, c: float) -> None:
        """Grounded capacitor. Zero-valued caps are dropped."""
        if c < 0:
            raise ValueError(f"capacitance must be non-negative, got {c}")
        if c > 0:
            self.caps.append(GroundedCap(node, c))

    def add_mosfet(self, drain: str, gate: str, source: str, params: MosfetParams) -> None:
        self.mosfets.append(Mosfet(drain, gate, source, params))

    def add_vsource(self, node: str, value: float | Waveform) -> None:
        if any(s.node == node for s in self.sources):
            raise ValueError(f"node {node!r} already has a source")
        self.sources.append(VSource(node, value))

    def add_rails(self) -> None:
        """Attach the Vdd rail source (ground is implicit)."""
        if not any(s.node == VDD for s in self.sources):
            self.add_vsource(VDD, self.tech.vdd)

    # ------------------------------------------------------------------
    # Subcircuits
    # ------------------------------------------------------------------

    def add_inverter(self, inp: str, out: str, width: float) -> None:
        """A CMOS inverter of the given relative width.

        The PMOS is made twice as wide as the NMOS (standard beta-matching)
        and parasitic gate/drain caps are attached.
        """
        self.add_rails()
        self.add_mosfet(out, inp, GROUND, nmos_params(self.tech, width))
        self.add_mosfet(out, inp, VDD, pmos_params(self.tech, 2.0 * width))
        self.add_cap(inp, self.tech.gate_cap_per_x * width)
        self.add_cap(out, self.tech.drain_cap_per_x * width)

    def add_buffer(self, inp: str, out: str, buf: BufferType) -> str:
        """A two-inverter buffer; returns the internal mid node name."""
        mid = self.fresh_node("mid")
        self.add_inverter(inp, mid, buf.input_size)
        self.add_inverter(mid, out, buf.size)
        return mid

    def add_wire(
        self,
        n1: str,
        n2: str,
        length: float,
        segment_length: float = DEFAULT_SEGMENT_LENGTH,
    ) -> list[str]:
        """A distributed RC wire as a ladder of pi segments.

        Returns the list of internal node names (useful as slew probes).
        Zero-length wires short the nodes with a tiny resistor so the
        matrix stays well formed.
        """
        if length < 0:
            raise ValueError(f"wire length must be non-negative, got {length}")
        wire = self.tech.wire
        if length == 0:
            self.add_resistor(n1, n2, 1e-3)
            return []
        n_seg = max(1, min(MAX_SEGMENTS_PER_WIRE, round(length / segment_length)))
        seg_r = wire.total_r(length) / n_seg
        seg_c = wire.total_c(length) / n_seg
        nodes = [n1] + [self.fresh_node("w") for _ in range(n_seg - 1)] + [n2]
        for a, b in zip(nodes, nodes[1:]):
            self.add_resistor(a, b, seg_r)
        # pi model: half-segment cap at the ends, full at internal joints.
        self.add_cap(nodes[0], seg_c / 2.0)
        self.add_cap(nodes[-1], seg_c / 2.0)
        for node in nodes[1:-1]:
            self.add_cap(node, seg_c)
        return nodes[1:-1]

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def all_nodes(self) -> list[str]:
        """Every node mentioned by any element (ground excluded)."""
        names: set[str] = set()
        for r in self.resistors:
            names.update((r.n1, r.n2))
        for c in self.caps:
            names.add(c.node)
        for m in self.mosfets:
            names.update((m.drain, m.gate, m.source))
        for s in self.sources:
            names.add(s.node)
        names.discard(GROUND)
        return sorted(names)

    def source_nodes(self) -> dict[str, float | Waveform]:
        return {s.node: s.value for s in self.sources}

    def node_count(self) -> int:
        return len(self.all_nodes())

    def element_count(self) -> int:
        return (
            len(self.resistors)
            + len(self.caps)
            + len(self.mosfets)
            + len(self.sources)
        )
