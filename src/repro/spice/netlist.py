"""SPICE-format netlist export and (subset) import.

The exporter writes the standard card format so synthesized clock trees
can be inspected with familiar tools; the parser reads back the same
subset, giving a round-trippable external representation and a convenient
integration-test surface.

Supported cards::

    * comment
    Rname n1 n2 value
    Cname n  0  value
    Mname d g s b MODEL W=value   (b and MODEL select NMOS/PMOS)
    Vname n  0  DC value
    Vname n  0  PWL(t1 v1 t2 v2 ...)
    .END
"""

from __future__ import annotations

import numpy as np

from repro.spice.circuit import GROUND, Circuit
from repro.spice.mosfet import MosfetParams
from repro.tech.technology import Technology
from repro.timing.waveform import Waveform


def write_netlist(circuit: Circuit) -> str:
    """Render the circuit as SPICE cards."""
    lines = [f"* {circuit.title}"]
    lines.append(f"* nodes={circuit.node_count()} elements={circuit.element_count()}")
    for i, r in enumerate(circuit.resistors):
        lines.append(f"R{i} {r.n1} {r.n2} {r.r:.6g}")
    for i, c in enumerate(circuit.caps):
        lines.append(f"C{i} {c.node} 0 {c.c:.6g}")
    for i, m in enumerate(circuit.mosfets):
        model = "PMOS" if m.params.is_pmos else "NMOS"
        body = "vdd" if m.params.is_pmos else "0"
        lines.append(
            f"M{i} {m.drain} {m.gate} {m.source} {body} {model} W={m.params.width:.6g}"
        )
    for i, s in enumerate(circuit.sources):
        if isinstance(s.value, Waveform):
            pairs = " ".join(
                f"{t:.6g} {v:.6g}" for t, v in zip(s.value.times, s.value.values)
            )
            lines.append(f"V{i} {s.node} 0 PWL({pairs})")
        else:
            lines.append(f"V{i} {s.node} 0 DC {s.value:.6g}")
    lines.append(".END")
    return "\n".join(lines) + "\n"


def _parse_mosfet_params(tech: Technology, model: str, width: float) -> MosfetParams:
    if model.upper() == "PMOS":
        return MosfetParams(tech.pmos_k, tech.pmos_vth, tech.alpha, width, True)
    if model.upper() == "NMOS":
        return MosfetParams(tech.nmos_k, tech.nmos_vth, tech.alpha, width, False)
    raise ValueError(f"unknown MOSFET model {model!r}")


def parse_netlist(text: str, tech: Technology) -> Circuit:
    """Parse the subset emitted by :func:`write_netlist`."""
    circuit = Circuit(tech, title="parsed")
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("*"):
            continue
        if line.upper() == ".END":
            break
        card = line[0].upper()
        if card == "R":
            __, n1, n2, value = line.split()
            circuit.add_resistor(n1, n2, float(value))
        elif card == "C":
            __, node, gnd, value = line.split()
            if gnd != GROUND:
                raise ValueError(f"only grounded caps supported: {line!r}")
            circuit.add_cap(node, float(value))
        elif card == "M":
            parts = line.split()
            if len(parts) != 7 or not parts[6].upper().startswith("W="):
                raise ValueError(f"malformed MOSFET card: {line!r}")
            __, d, g, s, _body, model, w_spec = parts
            width = float(w_spec.split("=", 1)[1])
            circuit.add_mosfet(d, g, s, _parse_mosfet_params(tech, model, width))
        elif card == "V":
            if "PWL(" in line.upper():
                head, _, tail = line.partition("(")
                __, node, gnd, _kind = head.split()
                numbers = [float(tok) for tok in tail.rstrip(") ").split()]
                if len(numbers) < 4 or len(numbers) % 2:
                    raise ValueError(f"malformed PWL card: {line!r}")
                times = np.array(numbers[0::2])
                values = np.array(numbers[1::2])
                circuit.add_vsource(node, Waveform(times, values))
            else:
                __, node, gnd, _dc, value = line.split()
                circuit.add_vsource(node, float(value))
        else:
            raise ValueError(f"unsupported card: {line!r}")
    return circuit
