"""Wall-clock scaling measurements for the synthesis hot paths.

Defines the canonical scaling scenarios — clustered register banks at
50/200/1000/4000 sinks, with and without macro blockages — and times
full synthesis runs with two engines:

- ``vectorized``: the current routing engine (sparse-graph BFS, masked
  blocking, bucketed matching, compiled fit evaluators);
- ``reference``: the retained seed implementations (cell-by-cell
  ``block``, queue BFS, O(n^2) matching, interpreted fit evaluation)
  running inside the same flow;
- ``parallel``: the vectorized engine with the per-pair route phase
  fanned out to a ``PARALLEL_WORKERS``-process pool (bit-identical
  trees; timed at sizes >= ``PARALLEL_MIN_SINKS`` where batching can
  amortize the IPC);
- ``scalar-commit``: the vectorized engine with the lockstep batched
  commit phase disabled (``batch_commit=False``) — the scalar fallback
  the batched commit is measured against (bit-identical trees; timed at
  sizes >= ``BATCH_COMMIT_MIN_SINKS``);
- ``per-pair-windows``: the vectorized engine with shared-window routing
  disabled (``shared_windows=False``) — every merge rasterizes and
  searches a private maze window, the fallback the level-scoped grid
  cache + cross-pair batcher is measured against (bit-identical trees;
  timed at sizes >= ``SHARED_WINDOWS_MIN_SINKS``, and the source of the
  ``route_speedups`` rows);
- ``per-pair-finish``: the vectorized engine with the level-batched
  route-finishing kernel disabled (``batch_route_finish=False``) —
  shared windows stay on but every maze route ranks its candidate cells
  and materializes its paths pair by pair, the fallback the level-wide
  ranking/descent kernel is measured against (bit-identical trees; timed
  on the blockage scenarios at sizes >= ``ROUTE_FINISH_MIN_SINKS``, the
  source of the ``route_finish_speedups`` rows);
- ``per-pair-expansion``: the vectorized engine with the lockstep
  profile-expansion scheduler disabled (``batch_expansion=False``) —
  every pair expands its delay profiles through the lazy per-pair
  ``PathBuilder`` loop, the fallback the level-wide expansion scheduler
  is measured against (bit-identical trees; timed on the blockage
  scenarios at sizes >= ``EXPANSION_MIN_SINKS``, the source of the
  ``expansion_speedups`` rows);
- ``per-object-commit``: the vectorized engine with the
  structure-of-arrays tree mirror disabled (``soa_commit=False``) —
  bounds-bucket prefill, forced-stage-buffer decisions and checkpoint
  frames walk node objects per pair, the fallback the SoA columns are
  measured against (bit-identical trees; timed at sizes >=
  ``SOA_COMMIT_MIN_SINKS``, the source of the ``soa_commit_speedups``
  rows).

``collect_scaling`` produces a JSON-ready payload with per-scenario
seconds and reference/vectorized speedups; ``write_scaling_json`` emits
``BENCH_cts_scaling.json``, the perf trajectory artifact every future PR
re-measures. Scenario sizes honor ``REPRO_SCALE`` (CI smoke) and
``REPRO_FULL`` the same way the table benches do; reference runs are
additionally capped at ``REPRO_PERF_REF_CAP`` sinks (default 1000)
because the seed engine is the thing being measured as slow.
"""

from __future__ import annotations

import json
import os
import platform
import time
from contextlib import contextmanager
from pathlib import Path

import repro.charlib.build as charlib_build
import repro.charlib.fitting as fitting
import repro.core.cts as cts_mod
import repro.core.maze_router as maze_router_mod
import repro.core.merge_routing as merge_routing_mod
import repro.core.profile_router as profile_router_mod
import repro.core.routing_common as routing_common_mod
from repro.benchio.generator import clustered_instance
from repro.core import topology
from repro.core.cts import AggressiveBufferedCTS
from repro.core.maze_router import MazeGrid
from repro.core.options import CTSOptions
from repro.charlib.library import DelaySlewLibrary
from repro.core.segment_builder import PathBuilderReference, SegmentTablesReference
from repro.evalx.tables import format_table
from repro.geom.bbox import BBox
from repro.geom.point import Point

#: The canonical scaling ladder (sinks per scenario).
SCALING_SIZES = (50, 200, 1000, 4000)

#: Worker count for the parallel merge-routing rows of the bench.
PARALLEL_WORKERS = 2

#: Smallest ladder size at which serial-vs-parallel is timed (below this
#: the per-merge cost is too small for process-pool IPC to amortize).
PARALLEL_MIN_SINKS = 1000

#: Smallest ladder size at which batched-vs-scalar commit is timed.
BATCH_COMMIT_MIN_SINKS = 1000

#: Smallest ladder size at which shared-vs-per-pair windows is timed.
SHARED_WINDOWS_MIN_SINKS = 1000

#: Smallest ladder size at which batched-vs-per-pair route finishing is
#: timed (blockage scenarios only — the profile router has no maze
#: candidates to rank, so the no-blockage ladder never enters the kernel).
ROUTE_FINISH_MIN_SINKS = 1000

#: Smallest ladder size at which lockstep-vs-per-pair profile expansion
#: is timed (blockage scenarios, where the maze route phase the scheduler
#: accelerates dominates; below this the per-level lane counts are too
#: small for the grouped rounds to amortize).
EXPANSION_MIN_SINKS = 1000

#: Smallest ladder size at which SoA-vs-object commit is timed (the
#: mirror's level-wide gathers need enough rows per level to amortize).
SOA_COMMIT_MIN_SINKS = 1000

#: Sink density: die edge grows with sqrt(n) so merge spans stay realistic.
AREA_PER_SQRT_SINK = 1200.0

JSON_NAME = "BENCH_cts_scaling.json"


def full_run_requested() -> bool:
    return os.environ.get("REPRO_FULL", "") not in ("", "0", "false")


def scaling_sizes(scale: int | None = None) -> list[int]:
    """The scenario sizes to run, honoring the CI smoke budget."""
    if scale is None:
        if full_run_requested():
            return list(SCALING_SIZES)
        env = os.environ.get("REPRO_SCALE", "")
        scale = int(env) if env else None
    if scale is None:
        return list(SCALING_SIZES)
    return sorted({min(n, scale) for n in SCALING_SIZES})


def reference_size_cap() -> int:
    if full_run_requested():
        return max(SCALING_SIZES)
    return int(os.environ.get("REPRO_PERF_REF_CAP", "1000"))


def default_macros(area: float) -> list[BBox]:
    """A representative macro floorplan: six blocks with routing corridors."""
    return [
        BBox(0.12 * area, 0.10 * area, 0.22 * area, 0.45 * area),
        BBox(0.30 * area, 0.33 * area, 0.43 * area, 0.90 * area),
        BBox(0.57 * area, 0.07 * area, 0.67 * area, 0.53 * area),
        BBox(0.72 * area, 0.60 * area, 0.95 * area, 0.70 * area),
        BBox(0.10 * area, 0.65 * area, 0.25 * area, 0.78 * area),
        BBox(0.50 * area, 0.75 * area, 0.62 * area, 0.95 * area),
    ]


def scaling_scenario(
    n_sinks: int, with_blockages: bool, seed: int = 5
) -> tuple[list[tuple[Point, float]], Point, list[BBox]]:
    """Clustered sinks over a density-constant die, pushed off the macros."""
    area = AREA_PER_SQRT_SINK * (n_sinks**0.5)
    instance = clustered_instance(n_sinks, area, seed=seed)
    blockages = default_macros(area) if with_blockages else []
    clear = 0.03 * area
    sinks: list[tuple[Point, float]] = []
    for p, c in instance.sink_pairs():
        for region in blockages:
            if region.expanded(clear).contains(p):
                near_left = abs(p.x - region.xmin) < abs(p.x - region.xmax)
                x = region.xmin - clear if near_left else region.xmax + clear
                p = Point(x, p.y)
        sinks.append((p, c))
    return sinks, instance.source, blockages


def _ref_branch_slews(self, *args):
    timing = self.branch_component(*args)
    return timing.left_slew, timing.right_slew


def _ref_single_wire_slew(self, drive, load, input_slew, length):
    return self.single_wire(drive, load, input_slew, length).wire_slew


def _ref_single_wire_total_delay(self, drive, load, input_slew, length):
    return self.single_wire(drive, load, input_slew, length).total_delay


def _ref_single_wire_delay_slew(self, drive, load, input_slew, length, include):
    timing = self.single_wire(drive, load, input_slew, length)
    delay = timing.wire_delay + (timing.buffer_delay if include else 0.0)
    return delay, timing.wire_slew


@contextmanager
def reference_engine():
    """Swap in the retained seed implementations for baseline timing.

    Patches the grid kernels, the matching, the path builder/tables, the
    fit-evaluator compile flag, and the partial library queries (the seed
    always evaluated the full fit set per component); the caller must
    construct its CTS (and hence its library) inside this context so the
    interpreted evaluators take effect.
    """
    builder_mods = (maze_router_mod, merge_routing_mod, profile_router_mod)
    lib_partials = (
        "branch_slews",
        "single_wire_slew",
        "single_wire_total_delay",
        "single_wire_delay_slew",
    )
    saved = (
        MazeGrid.bfs,
        MazeGrid.bfs_many,
        MazeGrid.block,
        cts_mod.greedy_matching,
        fitting.COMPILE_SCALAR,
        [(m.PathBuilder, m.SegmentTables) for m in builder_mods],
        [getattr(DelaySlewLibrary, name) for name in lib_partials],
    )
    saved_covering = routing_common_mod.covering_blockages
    saved_lib_cache = dict(charlib_build._DEFAULT_CACHE)
    MazeGrid.bfs = MazeGrid.bfs_reference
    MazeGrid.bfs_many = lambda self, starts: [self.bfs(s) for s in starts]
    MazeGrid.block = MazeGrid.block_reference
    # The seed blocked every region against every window (no cell-cover
    # prefilter); bypass the exact-no-op filter so the baseline pays the
    # seed's cost faithfully.
    routing_common_mod.covering_blockages = lambda grid, blockages: list(blockages)
    cts_mod.greedy_matching = topology.greedy_matching_reference
    fitting.COMPILE_SCALAR = False
    # The default-library cache holds fits built with compiled evaluators;
    # drop it so the baseline constructs interpreted ones.
    charlib_build._DEFAULT_CACHE.clear()
    for mod in builder_mods:
        mod.PathBuilder = PathBuilderReference
        mod.SegmentTables = SegmentTablesReference
    DelaySlewLibrary.branch_slews = _ref_branch_slews
    DelaySlewLibrary.single_wire_slew = _ref_single_wire_slew
    DelaySlewLibrary.single_wire_total_delay = _ref_single_wire_total_delay
    DelaySlewLibrary.single_wire_delay_slew = _ref_single_wire_delay_slew
    try:
        yield
    finally:
        (
            MazeGrid.bfs,
            MazeGrid.bfs_many,
            MazeGrid.block,
            cts_mod.greedy_matching,
            fitting.COMPILE_SCALAR,
            builders,
            partials,
        ) = saved
        routing_common_mod.covering_blockages = saved_covering
        for mod, (pb, st) in zip(builder_mods, builders):
            mod.PathBuilder = pb
            mod.SegmentTables = st
        for name, fn in zip(lib_partials, partials):
            setattr(DelaySlewLibrary, name, fn)
        charlib_build._DEFAULT_CACHE.clear()
        charlib_build._DEFAULT_CACHE.update(saved_lib_cache)


def time_synthesis(
    n_sinks: int,
    with_blockages: bool,
    engine: str = "vectorized",
    seed: int = 5,
    repeats: int = 1,
) -> dict:
    """Synthesize one scaling scenario and report wall-clock seconds.

    ``repeats`` takes the fastest of N runs (noise on shared machines is
    strictly additive, so the minimum is the honest estimate).
    """
    sinks, source, blockages = scaling_scenario(n_sinks, with_blockages, seed)
    # Every engine pins its knobs explicitly so REPRO_WORKERS /
    # REPRO_BATCH_COMMIT / REPRO_SHARED_WINDOWS in the environment cannot
    # silently change what a row measures: serial rows must stay serial
    # (the reference engine's monkeypatches would not propagate into pool
    # workers), the reference/scalar-commit/per-pair-windows rows exist
    # to measure their respective subsystem OFF, and the
    # vectorized/parallel rows to measure everything ON.
    if engine == "parallel":
        options = CTSOptions(
            workers=PARALLEL_WORKERS,
            batch_commit=True,
            shared_windows=True,
            batch_route_finish=True,
            batch_expansion=True,
            soa_commit=True,
        )
    elif engine == "reference":
        options = CTSOptions(
            workers=0,
            batch_commit=False,
            shared_windows=False,
            batch_route_finish=False,
            batch_expansion=False,
            soa_commit=False,
        )
    elif engine == "scalar-commit":
        options = CTSOptions(
            workers=0,
            batch_commit=False,
            shared_windows=True,
            batch_route_finish=True,
            batch_expansion=True,
            soa_commit=True,
        )
    elif engine == "per-pair-windows":
        options = CTSOptions(
            workers=0,
            batch_commit=True,
            shared_windows=False,
            batch_route_finish=True,
            batch_expansion=True,
            soa_commit=True,
        )
    elif engine == "per-pair-finish":
        options = CTSOptions(
            workers=0,
            batch_commit=True,
            shared_windows=True,
            batch_route_finish=False,
            batch_expansion=True,
            soa_commit=True,
        )
    elif engine == "per-pair-expansion":
        options = CTSOptions(
            workers=0,
            batch_commit=True,
            shared_windows=True,
            batch_route_finish=True,
            batch_expansion=False,
            soa_commit=True,
        )
    elif engine == "per-object-commit":
        options = CTSOptions(
            workers=0,
            batch_commit=True,
            shared_windows=True,
            batch_route_finish=True,
            batch_expansion=True,
            soa_commit=False,
        )
    else:
        options = CTSOptions(
            workers=0,
            batch_commit=True,
            shared_windows=True,
            batch_route_finish=True,
            batch_expansion=True,
            soa_commit=True,
        )

    def run() -> dict:
        best = None
        for _ in range(max(1, repeats)):
            cts = AggressiveBufferedCTS(
                options=options, blockages=blockages or None
            )
            t0 = time.perf_counter()
            result = cts.synthesize(sinks, source)
            seconds = time.perf_counter() - t0
            if best is None or seconds < best[0]:
                best = (seconds, result)
        seconds, result = best
        stats = result.tree.stats()
        queries = result.commit_queries
        return {
            "n_sinks": n_sinks,
            "blockages": with_blockages,
            "engine": engine,
            "seconds": seconds,
            "route_s": result.phase_seconds.get("route"),
            "commit_s": result.phase_seconds.get("commit"),
            "commit_probes": queries.get("search_probes", 0)
            + queries.get("clamp_probes", 0)
            + queries.get("repair_probes", 0),
            "commit_batch_rounds": queries.get("batched_rounds", 0),
            "commit_batch_rows": queries.get("batched_rows", 0),
            "commit_mean_batch_rows": queries.get("mean_batch_rows", 0.0),
            "levels": result.levels,
            "merges": result.merge_stats.n_merges,
            "buffers": stats["n_buffers"],
            "wirelength": stats["wirelength"],
            "route_sharing": result.route_sharing,
        }

    if engine == "reference":
        with reference_engine():
            return run()
    if engine not in (
        "vectorized",
        "parallel",
        "scalar-commit",
        "per-pair-windows",
        "per-pair-finish",
        "per-pair-expansion",
        "per-object-commit",
    ):
        raise ValueError(f"unknown engine {engine!r}")
    return run()


def _alternating_route_best(
    n: int,
    with_blockages: bool,
    seed: int,
    seeded: dict[str, float],
    rounds: int = 2,
) -> dict[str, float]:
    """Best route-phase seconds per engine, timed in alternating rounds.

    Route-phase comparisons are sub-second intervals, so slow machine
    drift between two distant measurements swamps them; each round times
    every engine once, back to back, and each engine keeps its best —
    the drift cancels. ``seeded`` maps engine name to an already-measured
    route_s that seeds the minimum.
    """
    best = dict(seeded)
    for __ in range(rounds):
        for engine in best:
            best[engine] = min(
                best[engine],
                time_synthesis(n, with_blockages, engine, seed)["route_s"],
            )
    return best


def collect_scaling(
    sizes: list[int] | None = None,
    reference_cap: int | None = None,
    seed: int = 5,
) -> dict:
    """Time every scenario; pair vectorized and reference runs.

    Reference runs happen only up to ``reference_cap`` sinks (the seed
    engine is quadratic-ish; timing it at every size would dominate the
    bench). Skipped baselines are recorded as ``null`` seconds so the
    JSON shows what was not measured rather than silently omitting it.
    """
    sizes = sizes if sizes is not None else scaling_sizes()
    cap = reference_cap if reference_cap is not None else reference_size_cap()
    samples: list[dict] = []
    speedups: list[dict] = []
    parallel_speedups: list[dict] = []
    commit_speedups: list[dict] = []
    route_speedups: list[dict] = []
    route_finish_speedups: list[dict] = []
    expansion_speedups: list[dict] = []
    soa_commit_speedups: list[dict] = []
    for with_blockages in (False, True):
        for n in sizes:
            vec = time_synthesis(n, with_blockages, "vectorized", seed, repeats=2)
            samples.append(vec)
            if n >= SHARED_WINDOWS_MIN_SINKS:
                pp = time_synthesis(
                    n, with_blockages, "per-pair-windows", seed, repeats=2
                )
                samples.append(pp)
                route_best = _alternating_route_best(
                    n,
                    with_blockages,
                    seed,
                    {
                        "vectorized": vec["route_s"],
                        "per-pair-windows": pp["route_s"],
                    },
                )
                shared_route = route_best["vectorized"]
                per_pair_route = route_best["per-pair-windows"]
                sharing = vec.get("route_sharing", {})
                route_speedups.append(
                    {
                        "n_sinks": n,
                        "blockages": with_blockages,
                        "per_pair_route_s": per_pair_route,
                        "shared_route_s": shared_route,
                        "route_speedup": per_pair_route / shared_route,
                        "windows_served": sharing.get("windows_served", 0),
                        "tiles_built": sharing.get("tiles_built", 0),
                        "tiles_reused": sharing.get("tiles_reused", 0),
                        "curve_rounds": sharing.get("curve_rounds", 0),
                        "pitch_buckets": sharing.get("pitch_buckets", {}),
                    }
                )
            if with_blockages and n >= ROUTE_FINISH_MIN_SINKS:
                pf = time_synthesis(
                    n, with_blockages, "per-pair-finish", seed, repeats=2
                )
                samples.append(pf)
                finish_best = _alternating_route_best(
                    n,
                    with_blockages,
                    seed,
                    {
                        "vectorized": vec["route_s"],
                        "per-pair-finish": pf["route_s"],
                    },
                )
                batched_route = finish_best["vectorized"]
                per_pair_route = finish_best["per-pair-finish"]
                sharing = vec.get("route_sharing", {})
                route_finish_speedups.append(
                    {
                        "n_sinks": n,
                        "blockages": with_blockages,
                        "per_pair_finish_route_s": per_pair_route,
                        "batched_finish_route_s": batched_route,
                        "route_finish_speedup": per_pair_route / batched_route,
                        "finish_batches": sharing.get("finish_batches", 0),
                        "cells_ranked": sharing.get("cells_ranked", 0),
                        "descent_sides": sharing.get("descent_sides", 0),
                        "descent_cells": sharing.get("descent_cells", 0),
                    }
                )
            if with_blockages and n >= EXPANSION_MIN_SINKS:
                pe = time_synthesis(
                    n, with_blockages, "per-pair-expansion", seed, repeats=2
                )
                samples.append(pe)
                expansion_best = _alternating_route_best(
                    n,
                    with_blockages,
                    seed,
                    {
                        "vectorized": vec["route_s"],
                        "per-pair-expansion": pe["route_s"],
                    },
                )
                batched_route = expansion_best["vectorized"]
                per_pair_route = expansion_best["per-pair-expansion"]
                sharing = vec.get("route_sharing", {})
                expansion_speedups.append(
                    {
                        "n_sinks": n,
                        "blockages": with_blockages,
                        "per_pair_expansion_route_s": per_pair_route,
                        "batched_expansion_route_s": batched_route,
                        "expansion_speedup": per_pair_route / batched_route,
                        "expansion_lanes": sharing.get("expansion_lanes", 0),
                        "expansion_runs": sharing.get("expansion_runs", 0),
                        "expansion_insertions": sharing.get(
                            "expansion_insertions", 0
                        ),
                        "curve_points": sharing.get("curve_points", 0),
                    }
                )
            if n >= PARALLEL_MIN_SINKS:
                par = time_synthesis(n, with_blockages, "parallel", seed, repeats=2)
                samples.append(par)
                parallel_speedups.append(
                    {
                        "n_sinks": n,
                        "blockages": with_blockages,
                        "workers": PARALLEL_WORKERS,
                        "serial_s": vec["seconds"],
                        "parallel_s": par["seconds"],
                        "speedup": vec["seconds"] / par["seconds"],
                    }
                )
            if n >= SOA_COMMIT_MIN_SINKS:
                po = time_synthesis(
                    n, with_blockages, "per-object-commit", seed, repeats=2
                )
                samples.append(po)
                soa_commit_speedups.append(
                    {
                        "n_sinks": n,
                        "blockages": with_blockages,
                        "object_commit_s": po["commit_s"],
                        "soa_commit_s": vec["commit_s"],
                        "soa_commit_speedup": po["commit_s"] / vec["commit_s"],
                        "commit_probes": vec["commit_probes"],
                    }
                )
            if n >= BATCH_COMMIT_MIN_SINKS:
                sc = time_synthesis(
                    n, with_blockages, "scalar-commit", seed, repeats=2
                )
                samples.append(sc)
                commit_speedups.append(
                    {
                        "n_sinks": n,
                        "blockages": with_blockages,
                        "scalar_commit_s": sc["commit_s"],
                        "batched_commit_s": vec["commit_s"],
                        "commit_speedup": sc["commit_s"] / vec["commit_s"],
                        "batch_rounds": vec["commit_batch_rounds"],
                        "mean_batch_rows": vec["commit_mean_batch_rows"],
                    }
                )
            if n <= cap:
                ref = time_synthesis(n, with_blockages, "reference", seed)
                samples.append(ref)
                speedups.append(
                    {
                        "n_sinks": n,
                        "blockages": with_blockages,
                        "vectorized_s": vec["seconds"],
                        "reference_s": ref["seconds"],
                        "speedup": ref["seconds"] / vec["seconds"],
                    }
                )
            else:
                speedups.append(
                    {
                        "n_sinks": n,
                        "blockages": with_blockages,
                        "vectorized_s": vec["seconds"],
                        "reference_s": None,
                        "speedup": None,
                    }
                )
    return {
        "bench": "cts_scaling",
        "sizes": sizes,
        "reference_cap": cap,
        "seed": seed,
        "python": platform.python_version(),
        "cpus": os.cpu_count(),
        "samples": samples,
        "speedups": speedups,
        "parallel_speedups": parallel_speedups,
        "commit_speedups": commit_speedups,
        "route_speedups": route_speedups,
        "route_finish_speedups": route_finish_speedups,
        "expansion_speedups": expansion_speedups,
        "soa_commit_speedups": soa_commit_speedups,
    }


def parallel_equivalence(
    n_sinks: int = 200,
    with_blockages: bool = True,
    workers: int = PARALLEL_WORKERS,
    seed: int = 5,
) -> dict:
    """Serial and parallel runs of one scenario, reduced to signatures.

    The returned trees are canonical :func:`repro.tree.export.tree_signature`
    dicts (auto names rebased per run), so ``serial_tree == parallel_tree``
    asserts bit-identical synthesis including node creation order.
    """
    from repro.tree.export import tree_signature
    from repro.tree.nodes import peek_node_id

    sinks, source, blockages = scaling_scenario(n_sinks, with_blockages, seed)
    out: dict = {"n_sinks": n_sinks, "blockages": with_blockages}
    for label, n_workers in (("serial", 0), ("parallel", workers)):
        cts = AggressiveBufferedCTS(
            options=CTSOptions(workers=n_workers, merge_batch_size=0),
            blockages=blockages or None,
        )
        base = peek_node_id()
        result = cts.synthesize(sinks, source)
        out[f"{label}_tree"] = tree_signature(result.tree, base)
        out[f"{label}_stats"] = result.merge_stats
        out[f"{label}_levels"] = result.levels
    return out


def batched_equivalence(
    n_sinks: int = 200,
    with_blockages: bool = True,
    seed: int = 5,
) -> dict:
    """Scalar-fallback and batched-commit runs of one scenario, reduced
    to signatures.

    Like :func:`parallel_equivalence` but for the lockstep batched commit
    phase: ``scalar_tree == batched_tree`` asserts bit-identical
    synthesis (same bisection trajectories, same tie-breaks, same node
    creation order after renumbering).
    """
    from repro.tree.export import tree_signature
    from repro.tree.nodes import peek_node_id

    sinks, source, blockages = scaling_scenario(n_sinks, with_blockages, seed)
    out: dict = {"n_sinks": n_sinks, "blockages": with_blockages}
    for label, batch in (("scalar", False), ("batched", True)):
        cts = AggressiveBufferedCTS(
            options=CTSOptions(workers=0, batch_commit=batch),
            blockages=blockages or None,
        )
        base = peek_node_id()
        result = cts.synthesize(sinks, source)
        out[f"{label}_tree"] = tree_signature(result.tree, base)
        out[f"{label}_stats"] = result.merge_stats
        out[f"{label}_levels"] = result.levels
        out[f"{label}_queries"] = result.commit_queries
    return out


def shared_equivalence(
    n_sinks: int = 200,
    with_blockages: bool = True,
    workers: int = 0,
    seed: int = 5,
) -> dict:
    """Shared-window and per-pair-window runs of one scenario, reduced to
    signatures.

    Like :func:`parallel_equivalence` but for the shared-window routing
    subsystem: ``shared_tree == per_pair_tree`` asserts bit-identical
    synthesis (same windows, same BFS distance fields, same descent
    geometry, same table values). Pass ``workers`` to run the shared side
    through the PR 2 pool as well.
    """
    from repro.tree.export import tree_signature
    from repro.tree.nodes import peek_node_id

    sinks, source, blockages = scaling_scenario(n_sinks, with_blockages, seed)
    out: dict = {"n_sinks": n_sinks, "blockages": with_blockages}
    for label, shared in (("shared", True), ("per_pair", False)):
        cts = AggressiveBufferedCTS(
            options=CTSOptions(
                workers=workers if shared else 0, shared_windows=shared
            ),
            blockages=blockages or None,
        )
        base = peek_node_id()
        result = cts.synthesize(sinks, source)
        out[f"{label}_tree"] = tree_signature(result.tree, base)
        out[f"{label}_stats"] = result.merge_stats
        out[f"{label}_levels"] = result.levels
        out[f"{label}_sharing"] = result.route_sharing
    return out


def batch_finish_equivalence(
    n_sinks: int = 200,
    with_blockages: bool = True,
    workers: int = 0,
    seed: int = 5,
) -> dict:
    """Batched-finish and per-pair-finish runs of one scenario, reduced
    to signatures.

    Like :func:`shared_equivalence` but for the level-batched
    route-finishing kernel: ``batched_tree == per_pair_tree`` asserts
    bit-identical synthesis (same ranked merge cells including every tie,
    same descent geometry, same buffer chains). Both sides route through
    shared windows; only the finishing path differs. Pass ``workers`` to
    run the batched side through the PR 2 pool as well.
    """
    from repro.tree.export import tree_signature
    from repro.tree.nodes import peek_node_id

    sinks, source, blockages = scaling_scenario(n_sinks, with_blockages, seed)
    out: dict = {"n_sinks": n_sinks, "blockages": with_blockages}
    for label, batched in (("batched", True), ("per_pair", False)):
        cts = AggressiveBufferedCTS(
            options=CTSOptions(
                workers=workers if batched else 0,
                shared_windows=True,
                batch_route_finish=batched,
            ),
            blockages=blockages or None,
        )
        base = peek_node_id()
        result = cts.synthesize(sinks, source)
        out[f"{label}_tree"] = tree_signature(result.tree, base)
        out[f"{label}_stats"] = result.merge_stats
        out[f"{label}_levels"] = result.levels
        out[f"{label}_sharing"] = result.route_sharing
    return out


def expansion_equivalence(
    n_sinks: int = 200,
    with_blockages: bool = True,
    workers: int = 0,
    seed: int = 5,
) -> dict:
    """Lockstep-scheduler and per-pair-expansion runs of one scenario,
    reduced to signatures.

    Like :func:`batch_finish_equivalence` but for the lockstep profile
    expansion scheduler: ``batched_tree == per_pair_tree`` asserts
    bit-identical synthesis (same primed segment tables, same buffer
    placements, same delay profiles, same node creation order after
    renumbering). Both sides route through shared windows and the
    level-batched finisher; only the expansion path differs. Pass
    ``workers`` to run the batched side through the PR 2 pool as well.
    """
    from repro.tree.export import tree_signature
    from repro.tree.nodes import peek_node_id

    sinks, source, blockages = scaling_scenario(n_sinks, with_blockages, seed)
    out: dict = {"n_sinks": n_sinks, "blockages": with_blockages}
    for label, batched in (("batched", True), ("per_pair", False)):
        cts = AggressiveBufferedCTS(
            options=CTSOptions(
                workers=workers if batched else 0,
                shared_windows=True,
                batch_route_finish=True,
                batch_expansion=batched,
            ),
            blockages=blockages or None,
        )
        base = peek_node_id()
        result = cts.synthesize(sinks, source)
        out[f"{label}_tree"] = tree_signature(result.tree, base)
        out[f"{label}_stats"] = result.merge_stats
        out[f"{label}_levels"] = result.levels
        out[f"{label}_sharing"] = result.route_sharing
    return out


def soa_commit_equivalence(
    n_sinks: int = 200,
    with_blockages: bool = True,
    workers: int = 0,
    seed: int = 5,
) -> dict:
    """SoA-mirror and per-object-commit runs of one scenario, reduced to
    signatures.

    Like :func:`batched_equivalence` but for the structure-of-arrays
    tree mirror: ``soa_tree == object_tree`` asserts bit-identical
    synthesis (same bounds-bucket cache fills, same forced stage
    buffers, same node creation order after renumbering). Pass
    ``workers`` to run the SoA side through the PR 2 pool as well.
    """
    from repro.tree.export import tree_signature
    from repro.tree.nodes import peek_node_id

    sinks, source, blockages = scaling_scenario(n_sinks, with_blockages, seed)
    out: dict = {"n_sinks": n_sinks, "blockages": with_blockages}
    for label, soa in (("soa", True), ("object", False)):
        cts = AggressiveBufferedCTS(
            options=CTSOptions(
                workers=workers if soa else 0, soa_commit=soa
            ),
            blockages=blockages or None,
        )
        base = peek_node_id()
        result = cts.synthesize(sinks, source)
        out[f"{label}_tree"] = tree_signature(result.tree, base)
        out[f"{label}_stats"] = result.merge_stats
        out[f"{label}_levels"] = result.levels
        out[f"{label}_queries"] = result.commit_queries
    return out


def checkpoint_resume_equivalence(
    n_sinks: int = 200,
    with_blockages: bool = True,
    seed: int = 5,
    halt_after: int = 2,
) -> dict:
    """Clean and halt-at-level-``halt_after``-then-resume runs of one
    scenario, reduced to signatures.

    Like :func:`parallel_equivalence` but for the checkpoint subsystem:
    a synthesis is killed (injected ``checkpoint:N:halt``) right after
    its ``halt_after``-th per-level snapshot landed, then resumed from
    the checkpoint directory; ``clean_tree == resumed_tree`` asserts the
    restart is bit-identical, including node ids/names created before
    the kill.
    """
    import tempfile

    from repro.evalx.faultinject import SynthesisHalted, reset_plans
    from repro.tree.export import tree_signature
    from repro.tree.nodes import peek_node_id

    sinks, source, blockages = scaling_scenario(n_sinks, with_blockages, seed)
    out: dict = {"n_sinks": n_sinks, "blockages": with_blockages}

    cts = AggressiveBufferedCTS(
        options=CTSOptions(fault_plan="", strict=False),
        blockages=blockages or None,
    )
    base = peek_node_id()
    clean = cts.synthesize(sinks, source)
    out["clean_tree"] = tree_signature(clean.tree, base)
    out["clean_stats"] = clean.merge_stats
    out["clean_levels"] = clean.levels

    with tempfile.TemporaryDirectory() as ckpt_dir:
        reset_plans()
        base = peek_node_id()
        halted = AggressiveBufferedCTS(
            options=CTSOptions(
                checkpoint_dir=ckpt_dir,
                fault_plan=f"checkpoint:{halt_after - 1}:halt",
                strict=False,
            ),
            blockages=blockages or None,
        )
        try:
            halted.synthesize(sinks, source)
            raise RuntimeError("injected halt did not fire")
        except SynthesisHalted:
            pass
        out["checkpoints_written"] = len(os.listdir(ckpt_dir))
        reset_plans()
        resumer = AggressiveBufferedCTS(
            options=CTSOptions(
                resume_from=ckpt_dir, fault_plan="", strict=False
            ),
            blockages=blockages or None,
        )
        resumed = resumer.synthesize(sinks, source)
    out["resumed_tree"] = tree_signature(resumed.tree, base)
    out["resumed_stats"] = resumed.merge_stats
    out["resumed_levels"] = resumed.levels
    out["resumed_from"] = resumed.resumed_from
    return out


def write_scaling_json(payload: dict, results_dir: str | Path | None = None) -> Path:
    """Emit ``BENCH_cts_scaling.json`` under ``benchmarks/results``."""
    if results_dir is None:
        results_dir = Path(__file__).resolve().parents[3] / "benchmarks" / "results"
    results_dir = Path(results_dir)
    results_dir.mkdir(parents=True, exist_ok=True)
    path = results_dir / JSON_NAME
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def render_scaling(payload: dict) -> str:
    headers = ["sinks", "blockages", "vectorized[s]", "reference[s]", "speedup"]
    body = []
    for row in payload["speedups"]:
        body.append(
            [
                row["n_sinks"],
                "yes" if row["blockages"] else "no",
                round(row["vectorized_s"], 3),
                "-" if row["reference_s"] is None else round(row["reference_s"], 3),
                "-" if row["speedup"] is None else round(row["speedup"], 1),
            ]
        )
    table = format_table(
        headers,
        body,
        title=(
            "CTS synthesis scaling — vectorized engine vs retained seed"
            " reference (same flow, same scenarios)"
        ),
    )
    if payload.get("route_speedups"):
        route_body = [
            [
                row["n_sinks"],
                "yes" if row["blockages"] else "no",
                round(row["per_pair_route_s"], 3),
                round(row["shared_route_s"], 3),
                round(row["route_speedup"], 2),
                row["windows_served"],
                row["tiles_reused"],
            ]
            for row in payload["route_speedups"]
        ]
        table += "\n\n" + format_table(
            [
                "sinks",
                "blockages",
                "per-pair route[s]",
                "shared route[s]",
                "speedup",
                "windows",
                "tile reuse",
            ],
            route_body,
            title=(
                "Route phase — per-pair windows vs level-scoped shared"
                " grid cache + cross-pair batcher (bit-identical trees)"
            ),
        )
    if payload.get("route_finish_speedups"):
        finish_body = [
            [
                row["n_sinks"],
                "yes" if row["blockages"] else "no",
                round(row["per_pair_finish_route_s"], 3),
                round(row["batched_finish_route_s"], 3),
                round(row["route_finish_speedup"], 2),
                row["cells_ranked"],
                row["descent_sides"],
            ]
            for row in payload["route_finish_speedups"]
        ]
        table += "\n\n" + format_table(
            [
                "sinks",
                "blockages",
                "per-pair finish[s]",
                "batched finish[s]",
                "speedup",
                "cells ranked",
                "descents",
            ],
            finish_body,
            title=(
                "Route finishing — per-pair ranking/materialization vs"
                " level-batched kernel (bit-identical trees)"
            ),
        )
    if payload.get("expansion_speedups"):
        expansion_body = [
            [
                row["n_sinks"],
                "yes" if row["blockages"] else "no",
                round(row["per_pair_expansion_route_s"], 3),
                round(row["batched_expansion_route_s"], 3),
                round(row["expansion_speedup"], 2),
                row["expansion_lanes"],
                row["expansion_insertions"],
            ]
            for row in payload["expansion_speedups"]
        ]
        table += "\n\n" + format_table(
            [
                "sinks",
                "blockages",
                "per-pair expand[s]",
                "lockstep expand[s]",
                "speedup",
                "lanes",
                "insertions",
            ],
            expansion_body,
            title=(
                "Profile expansion — per-pair lazy PathBuilder loop vs"
                " lockstep level scheduler (bit-identical trees)"
            ),
        )
    if payload.get("commit_speedups"):
        commit_body = [
            [
                row["n_sinks"],
                "yes" if row["blockages"] else "no",
                round(row["scalar_commit_s"], 3),
                round(row["batched_commit_s"], 3),
                round(row["commit_speedup"], 2),
                round(row["mean_batch_rows"], 1),
            ]
            for row in payload["commit_speedups"]
        ]
        table += "\n\n" + format_table(
            [
                "sinks",
                "blockages",
                "scalar commit[s]",
                "batched commit[s]",
                "speedup",
                "rows/round",
            ],
            commit_body,
            title=(
                "Commit phase — scalar fallback vs lockstep batched"
                " timing queries (bit-identical trees)"
            ),
        )
    if payload.get("soa_commit_speedups"):
        soa_body = [
            [
                row["n_sinks"],
                "yes" if row["blockages"] else "no",
                round(row["object_commit_s"], 3),
                round(row["soa_commit_s"], 3),
                round(row["soa_commit_speedup"], 2),
                row["commit_probes"],
            ]
            for row in payload["soa_commit_speedups"]
        ]
        table += "\n\n" + format_table(
            [
                "sinks",
                "blockages",
                "object commit[s]",
                "soa commit[s]",
                "speedup",
                "probes",
            ],
            soa_body,
            title=(
                "Commit phase — per-object walks vs structure-of-arrays"
                " tree mirror (bit-identical trees)"
            ),
        )
    if payload.get("parallel_speedups"):
        par_body = [
            [
                row["n_sinks"],
                "yes" if row["blockages"] else "no",
                round(row["serial_s"], 3),
                round(row["parallel_s"], 3),
                round(row["speedup"], 2),
            ]
            for row in payload["parallel_speedups"]
        ]
        table += "\n\n" + format_table(
            ["sinks", "blockages", "serial[s]", "parallel[s]", "speedup"],
            par_body,
            title=(
                "Serial vs parallel merge routing"
                f" (workers={PARALLEL_WORKERS}, {payload.get('cpus', '?')} cpus;"
                " bit-identical trees)"
            ),
        )
    return table
