"""Process-variation Monte Carlo on synthesized clock trees.

The paper's related work (refs [13-16]) studies variation-tolerant clock
trees; this extension quantifies how a synthesized tree's skew degrades
under process variation, using the mini-SPICE substrate:

- *global (die-to-die)* variation scales every device/wire together and
  mostly shifts latency, not skew;
- *local (within-die, random)* variation perturbs each buffer's drive
  strength and each wire's RC independently — this is what breaks skew,
  and deeper/more-buffered paths accumulate more of it.

Each Monte Carlo sample perturbs the technology/buffer parameters with
seeded Gaussians and re-simulates the tree stage by stage.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.evalx.metrics import DEFAULT_SOURCE_SLEW
from repro.spice.stages import simulate_stage
from repro.tech.technology import Technology
from repro.timing.waveform import Waveform, ramp_waveform
from repro.tree.clocktree import ClockTree
from repro.tree.nodes import NodeKind, TreeNode
from repro.tree.stages_map import stage_spec_for


@dataclass
class VariationModel:
    """Sigma (relative) of each perturbed parameter."""

    buffer_strength_sigma: float = 0.05  # per-buffer drive current
    wire_r_sigma: float = 0.05  # per-stage wire resistance
    wire_c_sigma: float = 0.03  # per-stage wire capacitance
    global_sigma: float = 0.0  # die-to-die multiplier on drive current
    seed: int = 1


@dataclass
class VariationResult:
    """Monte Carlo skew/latency statistics."""

    nominal_skew: float
    nominal_latency: float
    skews: np.ndarray
    latencies: np.ndarray

    @property
    def mean_skew(self) -> float:
        return float(np.mean(self.skews))

    @property
    def p95_skew(self) -> float:
        return float(np.percentile(self.skews, 95))

    @property
    def sigma_latency(self) -> float:
        return float(np.std(self.latencies))

    def row(self) -> dict:
        return {
            "nominal_skew_ps": self.nominal_skew * 1e12,
            "mean_skew_ps": self.mean_skew * 1e12,
            "p95_skew_ps": self.p95_skew * 1e12,
            "nominal_latency_ns": self.nominal_latency * 1e9,
            "sigma_latency_ps": self.sigma_latency * 1e12,
        }


def _perturbed_tech(
    tech: Technology, rng: np.random.Generator, model: VariationModel
) -> Technology:
    """Per-stage technology sample: wire RC and drive strength scaled."""
    r_scale = rng.lognormal(0.0, model.wire_r_sigma)
    c_scale = rng.lognormal(0.0, model.wire_c_sigma)
    k_scale = rng.lognormal(0.0, model.buffer_strength_sigma)
    wire = replace(
        tech.wire,
        resistance_per_unit=tech.wire.resistance_per_unit * r_scale,
        capacitance_per_unit=tech.wire.capacitance_per_unit * c_scale,
    )
    return replace(
        tech,
        wire=wire,
        nmos_k=tech.nmos_k * k_scale,
        pmos_k=tech.pmos_k * k_scale,
    )


def _simulate_sample(
    root: TreeNode,
    tech: Technology,
    model: VariationModel,
    rng: np.random.Generator,
    dt: float,
    global_scale: float,
) -> tuple[float, float]:
    """One Monte Carlo sample: (skew, latency)."""
    source_wave = ramp_waveform(tech.vdd, DEFAULT_SOURCE_SLEW, t_start=50e-12)
    threshold = tech.logic_threshold_voltage()
    t_ref = source_wave.cross_time(threshold)
    arrivals: dict[str, float] = {}
    queue: list[tuple[TreeNode, Waveform]] = [(root, source_wave)]
    while queue:
        stage_root, wave_in = queue.pop()
        sample = _perturbed_tech(tech, rng, model)
        if global_scale != 1.0:
            sample = replace(
                sample,
                nmos_k=sample.nmos_k * global_scale,
                pmos_k=sample.pmos_k * global_scale,
            )
        spec, id_map = stage_spec_for(stage_root, sample)
        sim = simulate_stage(sample, spec, wave_in, dt=dt)
        for node_id, tree_node in id_map.items():
            if tree_node is stage_root:
                continue
            if tree_node.kind is NodeKind.SINK:
                arrivals[tree_node.name] = (
                    sim.waveform(node_id).cross_time(threshold) - t_ref
                )
            elif tree_node.kind is NodeKind.BUFFER:
                queue.append((tree_node, sim.trimmed_waveform(node_id)))
    values = list(arrivals.values())
    return (max(values) - min(values), max(values))


def monte_carlo_skew(
    tree: ClockTree | TreeNode,
    tech: Technology,
    model: VariationModel | None = None,
    n_samples: int = 20,
    dt: float = 2.0e-12,
) -> VariationResult:
    """Run the variation Monte Carlo and collect skew/latency statistics."""
    model = model or VariationModel()
    root = tree.root if isinstance(tree, ClockTree) else tree
    rng = np.random.default_rng(model.seed)
    nominal_skew, nominal_latency = _simulate_sample(
        root, tech, VariationModel(0.0, 0.0, 0.0, 0.0, model.seed), rng, dt, 1.0
    )
    skews, latencies = [], []
    for _ in range(n_samples):
        global_scale = (
            rng.lognormal(0.0, model.global_sigma) if model.global_sigma else 1.0
        )
        skew, latency = _simulate_sample(root, tech, model, rng, dt, global_scale)
        skews.append(skew)
        latencies.append(latency)
    return VariationResult(
        nominal_skew, nominal_latency, np.array(skews), np.array(latencies)
    )
