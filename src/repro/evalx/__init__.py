"""Evaluation harness: simulated tree metrics, experiment drivers, tables.

Every number reported by the benches comes from
:func:`repro.evalx.metrics.evaluate_tree`, which simulates the synthesized
netlist with the mini-SPICE substrate (stage-decomposed, electrically
exact for CMOS stages) — mirroring how the paper obtains worst slew, skew
and max latency "from SPICE simulation of the clock tree netlist".
"""

from repro.evalx.metrics import TreeMetrics, evaluate_tree, engine_metrics
from repro.evalx.harness import (
    BenchmarkRun,
    run_aggressive,
    run_merge_buffer,
    table_5_1_rows,
    table_5_2_rows,
    table_5_3_rows,
    render_table_5_1,
    render_table_5_2,
    render_table_5_3,
    scale_instance,
    full_run_requested,
)
from repro.evalx.experiments import (
    fig_1_1_rows,
    fig_3_2_experiment,
    fig_3_4_rows,
    fig_3_6_3_7_rows,
    CurveVsRampResult,
)
from repro.evalx.tables import format_table
from repro.evalx.power import PowerReport, tree_power
from repro.evalx.variation import VariationModel, VariationResult, monte_carlo_skew
from repro.evalx import paper_data

__all__ = [
    "PowerReport",
    "tree_power",
    "VariationModel",
    "VariationResult",
    "monte_carlo_skew",
    "TreeMetrics",
    "evaluate_tree",
    "engine_metrics",
    "BenchmarkRun",
    "run_aggressive",
    "run_merge_buffer",
    "table_5_1_rows",
    "table_5_2_rows",
    "table_5_3_rows",
    "render_table_5_1",
    "render_table_5_2",
    "render_table_5_3",
    "scale_instance",
    "full_run_requested",
    "fig_1_1_rows",
    "fig_3_2_experiment",
    "fig_3_4_rows",
    "fig_3_6_3_7_rows",
    "CurveVsRampResult",
    "format_table",
    "paper_data",
]
