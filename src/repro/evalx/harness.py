"""Benchmark drivers for the paper's tables.

Every driver returns plain row dicts so the benches can both assert on
and pretty-print them. The published sink counts are heavy for pure
Python, so instances are scaled down by default; set ``REPRO_FULL=1`` (or
pass ``full=True``) to run the published sizes.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.baselines.merge_buffer import COMPARISON_POLICIES, MergeBufferCTS
from repro.benchio.gsrc import gsrc_suite
from repro.benchio.instance import BenchmarkInstance
from repro.benchio.ispd import ispd_suite
from repro.core.cts import AggressiveBufferedCTS, SynthesisResult
from repro.core.options import CTSOptions
from repro.evalx.metrics import TreeMetrics, evaluate_tree
from repro.evalx import paper_data
from repro.evalx.tables import format_table
from repro.tech.presets import default_technology
from repro.tech.technology import Technology

#: Default per-benchmark sink budget for CI-speed runs.
DEFAULT_SCALE = 80


def full_run_requested() -> bool:
    return os.environ.get("REPRO_FULL", "") not in ("", "0", "false")


def scale_instance(
    instance: BenchmarkInstance, full: bool | None = None, scale: int = DEFAULT_SCALE
) -> BenchmarkInstance:
    if full if full is not None else full_run_requested():
        return instance
    return instance.scaled_down(scale, seed=1)


@dataclass
class BenchmarkRun:
    """One synthesized + simulated benchmark."""

    instance: BenchmarkInstance
    synthesis: SynthesisResult
    metrics: TreeMetrics

    def row(self) -> dict:
        return {
            "bench": self.instance.name,
            "sinks": self.instance.n_sinks,
            "worst_slew_ps": self.metrics.worst_slew * 1e12,
            "skew_ps": self.metrics.skew * 1e12,
            "latency_ns": self.metrics.latency * 1e9,
            "buffers": self.metrics.n_buffers,
            "synth_s": self.synthesis.runtime,
        }


def run_aggressive(
    instance: BenchmarkInstance,
    tech: Technology | None = None,
    options: CTSOptions | None = None,
    eval_dt: float = 1.0e-12,
) -> BenchmarkRun:
    """Synthesize with the paper's flow and verify by simulation."""
    tech = tech or default_technology()
    cts = AggressiveBufferedCTS(
        tech=tech, options=options, blockages=instance.blockages or None
    )
    synthesis = cts.synthesize(instance.sink_pairs(), instance.source)
    metrics = evaluate_tree(synthesis.tree, tech, dt=eval_dt)
    return BenchmarkRun(instance, synthesis, metrics)


def run_merge_buffer(
    instance: BenchmarkInstance,
    policy_name: str,
    tech: Technology | None = None,
    eval_dt: float = 1.0e-12,
) -> TreeMetrics:
    """Synthesize with a merge-node-only baseline and verify.

    Pass ``tech=default_technology(wire_scale=1.0)`` to evaluate the
    baseline under un-stressed (1X) parasitics — the regime the papers
    [6, 8, 16] reported in, where merge-node-only buffering is viable.
    """
    tech = tech or default_technology()
    baseline = MergeBufferCTS(COMPARISON_POLICIES[policy_name], tech=tech)
    result = baseline.synthesize(instance.sink_pairs())
    return evaluate_tree(result.tree, tech, dt=eval_dt)


# ----------------------------------------------------------------------
# Table drivers
# ----------------------------------------------------------------------


def table_5_1_rows(
    full: bool | None = None,
    scale: int = DEFAULT_SCALE,
    with_baselines: bool = True,
    options: CTSOptions | None = None,
) -> list[dict]:
    """Reproduce Table 5.1 (GSRC): ours + merge-node-only baseline skews."""
    rows = []
    for instance in gsrc_suite():
        inst = scale_instance(instance, full, scale)
        run = run_aggressive(inst, options=options)
        row = run.row()
        paper = paper_data.TABLE_5_1[instance.name]
        row.update(
            paper_worst_slew_ps=paper["worst_slew"],
            paper_skew_ps=paper["skew"],
            paper_latency_ns=paper["latency_ns"],
        )
        if with_baselines:
            for policy, key in (
                ("chen-wong96", "ref6"),
                ("chaturvedi-hu04", "ref8"),
                ("rajaram-pan06", "ref16"),
            ):
                metrics = run_merge_buffer(inst, policy)
                row[f"{key}_skew_ps"] = metrics.skew * 1e12
                row[f"{key}_worst_slew_ps"] = metrics.worst_slew * 1e12
                row[f"paper_{key}_skew_ps"] = paper[f"skew_{key}"]
        rows.append(row)
    return rows


def table_5_2_rows(
    full: bool | None = None,
    scale: int = DEFAULT_SCALE,
    options: CTSOptions | None = None,
) -> list[dict]:
    """Reproduce Table 5.2 (ISPD 2009)."""
    rows = []
    for instance in ispd_suite():
        inst = scale_instance(instance, full, scale)
        run = run_aggressive(inst, options=options)
        row = run.row()
        paper = paper_data.TABLE_5_2[instance.name]
        row.update(
            paper_worst_slew_ps=paper["worst_slew"],
            paper_skew_ps=paper["skew"],
            paper_latency_ns=paper["latency_ns"],
            skew_over_latency_pct=100.0 * run.metrics.skew / run.metrics.latency,
        )
        rows.append(row)
    return rows


def table_5_3_rows(
    full: bool | None = None,
    scale: int = DEFAULT_SCALE,
    benchmarks: list[str] | None = None,
    workers: int = 0,
) -> list[dict]:
    """Reproduce Table 5.3 (H-structure re-estimation and correction)."""
    suite = {i.name: i for i in gsrc_suite() + ispd_suite()}
    names = benchmarks or list(suite)
    rows = []
    for name in names:
        inst = scale_instance(suite[name], full, scale)
        runs = {}
        for mode in (None, "reestimate", "correct"):
            options = CTSOptions(hstructure=mode, workers=workers)
            runs[mode] = run_aggressive(inst, options=options)
        base_skew = runs[None].metrics.skew
        row = {
            "bench": name,
            "sinks": inst.n_sinks,
            "orig_skew_ps": base_skew * 1e12,
            "reestimate_skew_ps": runs["reestimate"].metrics.skew * 1e12,
            "correct_skew_ps": runs["correct"].metrics.skew * 1e12,
            "reestimate_ratio_pct": _ratio(runs["reestimate"].metrics.skew, base_skew),
            "correct_ratio_pct": _ratio(runs["correct"].metrics.skew, base_skew),
            "flippings": runs["correct"].synthesis.n_flippings,
        }
        paper = paper_data.TABLE_5_3.get(name, {})
        row.update(
            paper_reestimate_ratio_pct=paper.get("reestimate_ratio"),
            paper_correct_ratio_pct=paper.get("correct_ratio"),
            paper_flippings=paper.get("flippings"),
        )
        rows.append(row)
    return rows


def _ratio(skew: float, base: float) -> float:
    if base <= 0:
        return 0.0
    return 100.0 * (skew - base) / base


# ----------------------------------------------------------------------
# Rendering
# ----------------------------------------------------------------------


def render_table_5_1(rows: list[dict]) -> str:
    headers = [
        "bench", "sinks", "slew[ps]", "skew[ps]", "lat[ns]",
        "paper slew", "paper skew", "paper lat",
        "[6]skew", "[8]skew", "[16]skew",
    ]
    has_1x = any("ref8_1x_skew_ps" in r for r in rows)
    if has_1x:
        headers += ["[8]skew@1X", "[8]slew@1X"]
    body = []
    for r in rows:
        row = [
            r["bench"], r["sinks"],
            r["worst_slew_ps"], r["skew_ps"], round(r["latency_ns"], 2),
            r["paper_worst_slew_ps"], r["paper_skew_ps"], r["paper_latency_ns"],
            r.get("ref6_skew_ps", float("nan")),
            r.get("ref8_skew_ps", float("nan")),
            r.get("ref16_skew_ps", float("nan")),
        ]
        if has_1x:
            row += [
                r.get("ref8_1x_skew_ps", float("nan")),
                r.get("ref8_1x_worst_slew_ps", float("nan")),
            ]
        body.append(row)
    return format_table(
        headers,
        body,
        title=(
            "Table 5.1 — GSRC benchmarks (ours at 10X parasitics vs paper;"
            " [6]/[8]/[16]-style merge-node-only reimplementations at 10X,"
            " plus the [8]-style baseline at the papers' own 1X parasitics)"
        ),
    )


def render_table_5_2(rows: list[dict]) -> str:
    headers = [
        "bench", "sinks", "slew[ps]", "skew[ps]", "lat[ns]", "skew/lat[%]",
        "paper slew", "paper skew", "paper lat",
    ]
    body = [
        [
            r["bench"], r["sinks"], r["worst_slew_ps"], r["skew_ps"],
            round(r["latency_ns"], 2), round(r["skew_over_latency_pct"], 1),
            r["paper_worst_slew_ps"], r["paper_skew_ps"], r["paper_latency_ns"],
        ]
        for r in rows
    ]
    return format_table(headers, body, title="Table 5.2 — ISPD 2009 benchmarks")


def render_table_5_3(rows: list[dict]) -> str:
    headers = [
        "bench", "orig[ps]", "reest[ps]", "ratio[%]", "corr[ps]", "ratio[%]",
        "flips", "paper reest%", "paper corr%", "paper flips",
    ]
    body = [
        [
            r["bench"], r["orig_skew_ps"], r["reestimate_skew_ps"],
            round(r["reestimate_ratio_pct"], 1), r["correct_skew_ps"],
            round(r["correct_ratio_pct"], 1), r["flippings"],
            r.get("paper_reestimate_ratio_pct") or float("nan"),
            r.get("paper_correct_ratio_pct") or float("nan"),
            r.get("paper_flippings") or 0,
        ]
        for r in rows
    ]
    return format_table(headers, body, title="Table 5.3 — H-structure corrections")
