"""Assemble a markdown experiment report from archived bench results.

Each bench run archives its rendered table under ``benchmarks/results/``;
this module stitches those files into a single markdown document (the
mechanical part of EXPERIMENTS.md), so a full reproduction run can
regenerate its evidence in one call::

    python -c "from repro.evalx.report import write_report; write_report()"
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

#: Presentation order and headlines for the known experiment artifacts.
SECTIONS = [
    ("perf_scaling", "Performance — CTS synthesis scaling"),
    ("table_5_1", "Table 5.1 — GSRC benchmarks"),
    ("table_5_2", "Table 5.2 — ISPD 2009 benchmarks"),
    ("table_5_3", "Table 5.3 — H-structure corrections"),
    ("fig_1_1", "Fig. 1.1 — slew vs wire length"),
    ("fig_3_2", "Fig. 3.2 — curve vs ramp input"),
    ("fig_3_4", "Fig. 3.4 — buffer intrinsic-delay fits"),
    ("fig_3_6_3_7", "Figs. 3.6/3.7 — branch delay fits"),
    ("ablation_grid", "Ablation — grid resolution"),
    ("ablation_flow", "Ablation — balance / binary-search stages"),
    ("ablation_models", "Ablation — delay-model accuracy ladder"),
    ("ablation_sizing", "Ablation — buffer sizing freedom"),
    ("ablation_router", "Ablation — profile vs maze router"),
    ("ablation_slew_limit", "Extension — slew-limit sweep"),
    ("ablation_topology", "Extension — topology comparison"),
    ("ablation_variation", "Extension — process-variation Monte Carlo"),
    ("ablation_bst", "Extension — bounded-skew DME trade-off"),
]


@dataclass
class ReportSection:
    key: str
    title: str
    body: str | None  # None when the artifact has not been generated yet


def default_results_dir() -> Path:
    return Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def collect_sections(results_dir: str | Path | None = None) -> list[ReportSection]:
    """Load every known artifact (missing ones are flagged, not skipped)."""
    directory = Path(results_dir) if results_dir else default_results_dir()
    sections = []
    for key, title in SECTIONS:
        path = directory / f"{key}.txt"
        body = path.read_text().rstrip() if path.exists() else None
        sections.append(ReportSection(key, title, body))
    return sections


def render_report(
    sections: list[ReportSection] | None = None,
    results_dir: str | Path | None = None,
) -> str:
    """Markdown document with one section per experiment artifact."""
    sections = sections or collect_sections(results_dir)
    generated = sum(1 for s in sections if s.body is not None)
    lines = [
        "# Reproduction report",
        "",
        f"{generated}/{len(sections)} experiment artifacts present"
        " (run `pytest benchmarks/ --benchmark-only` to regenerate).",
        "",
    ]
    for section in sections:
        lines.append(f"## {section.title}")
        lines.append("")
        if section.body is None:
            lines.append("*not generated in this run*")
        else:
            lines.append("```")
            lines.append(section.body)
            lines.append("```")
        lines.append("")
    return "\n".join(lines)


def write_report(
    path: str | Path | None = None,
    results_dir: str | Path | None = None,
) -> Path:
    """Write the stitched report next to the results (or to ``path``)."""
    directory = Path(results_dir) if results_dir else default_results_dir()
    target = Path(path) if path else directory / "REPORT.md"
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(render_report(results_dir=directory))
    return target
