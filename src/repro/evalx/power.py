"""Clock tree power estimation.

The paper's introduction lists power among the CTS objectives ("choosing
node pairs with smaller distance ... reduces delay and power in the final
clock tree"); this module quantifies it. The clock switches every node
once per edge, so dynamic power is the textbook

    P_dyn = f_clk * Vdd^2 * C_switched

with ``C_switched`` the sum of wire capacitance, sink load capacitance
and buffer gate/drain capacitances. Buffer short-circuit power is
approximated with the classic ~10% adder on the buffer component.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.tech.technology import Technology
from repro.tree.clocktree import ClockTree
from repro.tree.nodes import NodeKind, TreeNode

#: Short-circuit power fraction added on top of buffer switching power.
SHORT_CIRCUIT_FRACTION = 0.10


@dataclass(frozen=True)
class PowerReport:
    """Switched capacitance breakdown and dynamic power at a frequency."""

    wire_cap: float  # F
    sink_cap: float
    buffer_cap: float  # gate + drain parasitics of all buffers
    frequency: float  # Hz
    vdd: float

    @property
    def total_cap(self) -> float:
        return self.wire_cap + self.sink_cap + self.buffer_cap

    @property
    def dynamic_power(self) -> float:
        """Watts at the report's frequency."""
        base = self.frequency * self.vdd**2 * self.total_cap
        short_circuit = (
            SHORT_CIRCUIT_FRACTION
            * self.frequency
            * self.vdd**2
            * self.buffer_cap
        )
        return base + short_circuit

    def row(self) -> dict:
        return {
            "wire_cap_pF": self.wire_cap * 1e12,
            "sink_cap_pF": self.sink_cap * 1e12,
            "buffer_cap_pF": self.buffer_cap * 1e12,
            "total_cap_pF": self.total_cap * 1e12,
            "power_mW": self.dynamic_power * 1e3,
        }


def tree_power(
    tree: ClockTree | TreeNode,
    tech: Technology,
    frequency: float = 1.0e9,
) -> PowerReport:
    """Switched-capacitance power of a synthesized clock tree."""
    root = tree.root if isinstance(tree, ClockTree) else tree
    wire_cap = 0.0
    sink_cap = 0.0
    buffer_cap = 0.0
    for node in root.walk():
        wire_cap += tech.wire.capacitance_per_unit * node.wire_to_parent
        if node.kind is NodeKind.SINK:
            sink_cap += node.cap
        elif node.kind is NodeKind.BUFFER:
            buf = node.buffer
            # Both inverter stages switch: input + internal + output caps.
            buffer_cap += (
                buf.input_cap(tech)
                + tech.gate_cap_per_x * buf.size  # second-stage gate
                + tech.drain_cap_per_x * buf.input_size  # first-stage drain
                + buf.output_cap(tech)
            )
    return PowerReport(wire_cap, sink_cap, buffer_cap, frequency, tech.vdd)
