"""Drivers for the paper's data figures (1.1, 3.2, 3.4, 3.6/3.7)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.charlib.build import load_default_library
from repro.charlib.library import DelaySlewLibrary
from repro.charlib.sweep import CharConfig, InputShaper
from repro.spice.stages import branch_spec, simulate_stage, single_wire_spec
from repro.tech.presets import default_technology, sizing_sweep_library
from repro.tech.technology import Technology
from repro.timing.waveform import ramp_waveform


def fig_1_1_rows(
    lengths: tuple[float, ...] = (500.0, 1000.0, 2000.0, 4000.0, 6000.0, 8000.0),
    buffer_names: tuple[str, ...] = ("BUF20X", "BUF30X"),
    input_slew: float = 100.0e-12,
    load_cap: float = 15.0e-15,
    tech: Technology | None = None,
    dt: float = 1.0e-12,
) -> list[dict]:
    """Fig. 1.1: wire output slew vs length for two driving buffer sizes.

    The paper's point: slew explodes with wire length and upsizing the
    driver from 20X to 30X "only provides a slight improvement" — buffer
    sizing alone cannot control slew; buffers must go *into* the wires.
    """
    tech = tech or default_technology()
    buffers = sizing_sweep_library()
    wave = ramp_waveform(tech.vdd, input_slew, t_start=50.0e-12)
    rows = []
    for length in lengths:
        row: dict = {"length": length}
        for name in buffer_names:
            spec = single_wire_spec(buffers[name], length, load_cap)
            sim = simulate_stage(tech, spec, wave, dt=dt)
            row[f"slew_{name.lower()}_ps"] = sim.slew_at(1) * 1e12
        rows.append(row)
    return rows


@dataclass
class CurveVsRampResult:
    """Fig. 3.2: same measured slew, different waveform shape, shifted
    downstream response.

    ``output_shift`` follows the paper's framing: both inputs are applied
    at the same time (aligned at the 10% crossing, where the transition
    visibly starts), and the buffered outputs' 50% crossings are compared.
    An RC-curved waveform front-loads its rise, so its 50% point sits much
    earlier inside the equal 10-90 window than the ramp's — mispredicting
    absolute timing when a curve is modeled as a ramp.
    ``delay_difference_5050`` is the residual error under per-waveform
    50%-to-50% delay accounting (smaller, but nonzero — shape still
    matters even with ideal alignment).
    """

    input_slew: float
    output_shift: float  # outputs' 50% shift with inputs aligned at 10%
    delay_difference_5050: float  # per-input 50%-to-50% delay difference
    curve_delay: float
    ramp_delay: float
    output_slew_curve: float
    output_slew_ramp: float


def fig_3_2_experiment(
    target_slew: float = 150.0e-12,
    wire_length: float = 1500.0,
    tech: Technology | None = None,
    dt: float = 0.5e-12,
) -> CurveVsRampResult:
    """Drive the same buffer+wire+load with a real curved waveform and an
    ideal ramp of identical measured 10-90 slew; measure the output shift.

    The curve is produced exactly like the paper's Fig. 3.1 setup: an
    input buffer driving a wire whose length is bisected until the
    waveform at the component input has the target slew. The ramp is then
    constructed with the same measured slew, so the only difference is
    the waveform *shape* — in particular the slow settling tail a long
    RC wire adds beyond the 10-90 window.
    """
    tech = tech or default_technology()
    buffers = sizing_sweep_library()
    drive = buffers["BUF10X"]
    load_cap = buffers["BUF20X"].input_cap(tech)
    spec = single_wire_spec(drive, wire_length, load_cap)

    config = CharConfig(dt=dt)
    shaper = InputShaper(tech, buffers["BUF10X"], config)
    # Bisect Linput so the curved input's slew hits the target.
    lo, hi = 0.0, 9000.0
    curve, slew = shaper.shaped_input(hi / 2, drive.input_cap(tech))
    for _ in range(18):
        mid = (lo + hi) / 2.0
        curve, slew = shaper.shaped_input(mid, drive.input_cap(tech))
        if abs(slew - target_slew) < 0.5e-12:
            break
        if slew < target_slew:
            lo = mid
        else:
            hi = mid

    ramp = ramp_waveform(tech.vdd, slew, t_start=100.0e-12)
    delays = {}
    slews = {}
    start_to_out = {}
    for shape, wave in (("ramp", ramp), ("curve", curve)):
        sim = simulate_stage(tech, spec, wave, dt=dt)
        delays[shape] = sim.delay_to(1)
        slews[shape] = sim.slew_at(1)
        t_start10 = sim.input_waveform().cross_time(0.1 * tech.vdd)
        t_out50 = sim.waveform(1).cross_time(0.5 * tech.vdd)
        start_to_out[shape] = t_out50 - t_start10
    return CurveVsRampResult(
        input_slew=slew,
        output_shift=abs(start_to_out["curve"] - start_to_out["ramp"]),
        delay_difference_5050=abs(delays["curve"] - delays["ramp"]),
        curve_delay=delays["curve"],
        ramp_delay=delays["ramp"],
        output_slew_curve=slews["curve"],
        output_slew_ramp=slews["ramp"],
    )


def fig_3_4_rows(
    library: DelaySlewLibrary | None = None,
    validate_points: int = 12,
    tech: Technology | None = None,
    seed: int = 7,
) -> list[dict]:
    """Fig. 3.4: buffer-intrinsic-delay surfaces — fit quality.

    For each (drive, load) combination: the training residuals of the
    polynomial surface plus a fresh-simulation validation error on random
    off-grid (input slew, length) points.
    """
    tech = tech or default_technology()
    library = library or load_default_library(tech)
    from repro.tech.presets import cts_buffer_library

    buffers = cts_buffer_library()
    config = CharConfig()
    rng = np.random.default_rng(seed)
    rows = []
    for (drive, load), fits in sorted(library.single.items()):
        fit = fits["buffer_delay"]
        shaper = InputShaper(tech, buffers[drive], config)
        errors = []
        for _ in range(validate_points):
            linput = rng.uniform(100.0, 3800.0)
            length = rng.uniform(100.0, 4800.0)
            wave, slew_in = shaper.shaped_input(linput, buffers[drive].input_cap(tech))
            spec = single_wire_spec(
                buffers[drive], length, buffers[load].input_cap(tech)
            )
            sim = simulate_stage(tech, spec, wave, dt=config.dt)
            predicted = fit.predict(slew_in, length)
            errors.append(abs(predicted - sim.buffer_delay()))
        rows.append(
            {
                "drive": drive,
                "load": load,
                "train_rms_ps": fit.quality.rms_error * 1e12,
                "train_max_ps": fit.quality.max_error * 1e12,
                "r_squared": fit.quality.r_squared,
                "validate_mean_ps": float(np.mean(errors)) * 1e12,
                "validate_max_ps": float(np.max(errors)) * 1e12,
            }
        )
    return rows


def fig_3_6_3_7_rows(
    library: DelaySlewLibrary | None = None,
    validate_points: int = 10,
    tech: Technology | None = None,
    seed: int = 11,
) -> list[dict]:
    """Figs. 3.6/3.7: branch wire-delay hyperplanes — fit quality.

    Validates the left/right branch delay fits against fresh simulations
    on random branch configurations.
    """
    tech = tech or default_technology()
    library = library or load_default_library(tech)
    from repro.tech.presets import cts_buffer_library

    buffers = cts_buffer_library()
    config = CharConfig()
    rng = np.random.default_rng(seed)
    rows = []
    for drive, fits in sorted(library.branch.items()):
        shaper = InputShaper(tech, buffers[drive], config)
        errors = {"left_delay": [], "right_delay": []}
        for _ in range(validate_points):
            linput = rng.uniform(*config.branch_linput_range)
            stem = rng.uniform(*config.branch_stem_range)
            ll = rng.uniform(*config.branch_length_range)
            rl = rng.uniform(*config.branch_length_range)
            cl = rng.uniform(*config.branch_cap_range)
            cr = rng.uniform(*config.branch_cap_range)
            wave, slew_in = shaper.shaped_input(linput, buffers[drive].input_cap(tech))
            spec = branch_spec(buffers[drive], ll, rl, cl, cr, stem_length=stem)
            sim = simulate_stage(tech, spec, wave, dt=config.dt)
            buffer_delay = sim.buffer_delay()
            measured = {
                "left_delay": sim.delay_to(2) - buffer_delay,
                "right_delay": sim.delay_to(3) - buffer_delay,
            }
            for fn in errors:
                predicted = fits[fn].predict(slew_in, stem, ll, rl, cl, cr)
                errors[fn].append(abs(predicted - measured[fn]))
        for fn, figure in (("left_delay", "3.6"), ("right_delay", "3.7")):
            fit = fits[fn]
            rows.append(
                {
                    "figure": figure,
                    "drive": drive,
                    "function": fn,
                    "train_rms_ps": fit.quality.rms_error * 1e12,
                    "r_squared": fit.quality.r_squared,
                    "validate_mean_ps": float(np.mean(errors[fn])) * 1e12,
                    "validate_max_ps": float(np.max(errors[fn])) * 1e12,
                }
            )
    return rows
