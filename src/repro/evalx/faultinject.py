"""Deterministic fault injection for the resilience layer.

A fault plan is a comma list of ``site:index:mode`` specs (env
``REPRO_FAULT_PLAN``, or ``CTSOptions.fault_plan``), e.g.::

    worker_batch:2:crash,batch_commit:1:raise,route_finish:0:timeout

Sites are the supervised/guarded points of the synthesis flow:

==================  ====================================================
``worker_batch``    a pool worker about to route one shipped batch;
                    ``index`` is the batch's global submission ordinal
                    (assigned by the parent), so firing is deterministic
                    regardless of worker scheduling — and a retried
                    batch deterministically fails again
``batch_commit``    one vectorized lockstep commit round; ``index``
                    counts vectorized rounds per process
``shared_windows``  one shared-window (maze) ``route_level`` call
``batch_expansion``  one lockstep profile-expansion scheduler call
                    (the level's batched ``PathBuilder`` expansion)
``route_finish``    one level-batched route-finishing kernel call
``checkpoint``      one per-level checkpoint write (``halt`` here
                    simulates a kill at a level boundary)
``job_hang``        the level-loop heartbeat pulse; ``hang`` here stops
                    the heartbeat mid-run so a job supervisor's
                    staleness watchdog must notice and kill the process
``job_oom``         the level-loop heartbeat pulse; ``balloon`` here
                    pins hundreds of MB of RSS so a supervisor's memory
                    budget must trip
``checkpoint_torn``  one per-level checkpoint write; ``torn`` makes the
                    writer truncate the file it just finished —
                    simulating a torn write the resume path must detect
                    and skip
==================  ====================================================

Modes: ``raise`` throws :class:`FaultInjected`; ``crash`` kills the
process with ``os._exit`` (the parent sees ``BrokenProcessPool``);
``timeout`` sleeps long enough that both the supervised gather *and*
its doubled backoff retry give up (then proceeds normally — the stale
result is never read); ``halt`` throws :class:`SynthesisHalted`;
``hang`` parks the process in a very long sleep (only an external
watchdog ends it); ``balloon`` allocates :data:`BALLOON_BYTES` of
touched memory and then hangs holding it; ``torn`` raises nothing —
:meth:`FaultPlan.consult` returns the mode string and the *call site*
implements the corruption (only the checkpoint writer does).

Counter sites fire each spec at most once per process; explicit-ordinal
sites (``worker_batch``) re-fire on every visit with the matching
ordinal. Plans are per-process singletons keyed by their text
(:func:`active_plan`), so a fork-spawned worker starts from the parent's
state at fork time but counts its own visits afterwards.

This module deliberately imports nothing from the rest of the package:
the kernel guards import it lazily (and only when a plan is set), so the
clean path pays nothing and no import cycle can form.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass

SITES = (
    "worker_batch",
    "batch_commit",
    "shared_windows",
    "batch_expansion",
    "route_finish",
    "checkpoint",
    "job_hang",
    "job_oom",
    "checkpoint_torn",
    "soa_commit",
)
MODES = ("crash", "raise", "timeout", "halt", "hang", "balloon", "torn", "oom")

#: ``hang``/``balloon`` park the process this long; supervised runs are
#: SIGKILLed by their watchdog long before the sleep ends, and SIGKILL
#: cannot be masked, so the sleep never actually completes.
HANG_SECONDS = 3600.0

#: Touched RSS a ``balloon`` fault pins (zero-filled, so every page is
#: resident). Sized to dwarf a worker's baseline footprint while staying
#: harmless on CI runners.
BALLOON_BYTES = 384 * 1024 * 1024

#: The balloon allocation, kept alive so the RSS stays pinned until the
#: supervisor kills the process.
_ballast: bytearray | None = None


class FaultInjected(RuntimeError):
    """The exception an injected ``raise`` fault throws."""


class SynthesisHalted(BaseException):
    """Raised by a ``halt`` fault to simulate a kill at a level boundary.

    A ``BaseException`` on purpose: no degradation guard (they catch
    ``Exception``) may swallow it — it must unwind the whole synthesis
    the way SIGKILL would end the process, leaving the checkpoint
    directory as the only survivor.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One parsed ``site:index:mode`` entry."""

    site: str
    index: int
    mode: str


class FaultPlan:
    """A parsed fault plan plus its per-process firing state."""

    def __init__(self, specs: tuple[FaultSpec, ...]):
        self.specs = specs
        self._counts: dict[str, int] = {}
        self._fired: set[FaultSpec] = set()

    @classmethod
    def parse(cls, text: str) -> "FaultPlan":
        specs = []
        for part in text.split(","):
            part = part.strip()
            if not part:
                continue
            pieces = part.split(":")
            if len(pieces) != 3:
                raise ValueError(
                    f"bad fault spec {part!r}: expected site:index:mode"
                )
            site, index_text, mode = pieces
            if site not in SITES:
                raise ValueError(
                    f"bad fault spec {part!r}: unknown site {site!r}"
                    f" (one of {', '.join(SITES)})"
                )
            if mode not in MODES:
                raise ValueError(
                    f"bad fault spec {part!r}: unknown mode {mode!r}"
                    f" (one of {', '.join(MODES)})"
                )
            try:
                index = int(index_text)
            except ValueError:
                raise ValueError(
                    f"bad fault spec {part!r}: index must be an integer"
                ) from None
            if index < 0:
                raise ValueError(f"bad fault spec {part!r}: index must be >= 0")
            specs.append(FaultSpec(site, index, mode))
        return cls(tuple(specs))

    def consult(
        self, site: str, ordinal: int | None = None, sleep_s: float = 1.0
    ) -> str | None:
        """Fire any spec matching this visit of ``site``.

        Counter sites (``ordinal`` None) number their visits per process
        and fire each spec at most once; explicit-ordinal sites pass the
        visit number in and re-fire on every matching visit. Returns the
        mode of a fired *effect* spec (``timeout``/``hang``/``balloon``
        after their sleep, ``torn`` immediately) so the call site can
        implement corruption modes itself; raising/exiting modes never
        return.
        """
        if ordinal is None:
            n = self._counts.get(site, 0)
            self._counts[site] = n + 1
        else:
            n = ordinal
        fired: str | None = None
        for spec in self.specs:
            if spec.site != site or spec.index != n:
                continue
            if ordinal is None:
                if spec in self._fired:
                    continue
                self._fired.add(spec)
            fired = self._trigger(spec, sleep_s) or fired
        return fired

    @staticmethod
    def _trigger(spec: FaultSpec, sleep_s: float) -> str | None:
        global _ballast
        if spec.mode == "crash":
            os._exit(17)
        if spec.mode == "timeout":
            # Sleep past the gather timeout AND the doubled backoff
            # retry, then return normally; the parent stopped listening.
            time.sleep(sleep_s)
            return "timeout"
        if spec.mode == "hang":
            # Stop making progress (and stamping heartbeats) without
            # exiting: only a supervisor's kill ends this.
            time.sleep(HANG_SECONDS)
            return "hang"
        if spec.mode == "balloon":
            # bytearray zero-fills, so the whole allocation is resident
            # RSS; the module-level reference keeps it pinned while the
            # process hangs waiting for the memory watchdog.
            _ballast = bytearray(BALLOON_BYTES)
            time.sleep(HANG_SECONDS)
            return "balloon"
        if spec.mode == "torn":
            return "torn"
        if spec.mode == "halt":
            raise SynthesisHalted(
                f"injected halt at {spec.site}:{spec.index}"
            )
        if spec.mode == "oom":
            # A real allocation failure. Degradation guards must NOT
            # swallow this — every one re-raises MemoryError, so the
            # fault unwinds the synthesis even in non-strict runs.
            raise MemoryError(
                f"injected oom at {spec.site}:{spec.index}"
            )
        raise FaultInjected(
            f"injected fault {spec.site}:{spec.index}:{spec.mode}"
        )


_PLANS: dict[str, FaultPlan] = {}


def active_plan(text: str) -> FaultPlan | None:
    """The per-process :class:`FaultPlan` singleton for ``text``.

    One plan object per distinct text, so every consult site of a run
    shares the same counters and fired set; empty text means no plan.
    """
    if not text:
        return None
    plan = _PLANS.get(text)
    if plan is None:
        plan = _PLANS[text] = FaultPlan.parse(text)
    return plan


def reset_plans() -> None:
    """Drop all per-process plan state (tests reuse plan texts)."""
    _PLANS.clear()
