"""Published numbers from the paper, for side-by-side table rendering.

All values transcribed from the thesis (Tables 5.1, 5.2, 5.3); times in
picoseconds unless noted.
"""

#: Table 5.1 — GSRC r-series: ours (worst slew / skew / max latency [ns])
#: plus comparison skews quoted from [6], [8], [16].
TABLE_5_1 = {
    "r1": {"sinks": 267, "worst_slew": 89.5, "skew": 69.7, "latency_ns": 1.30,
           "skew_ref6": 100.0, "skew_ref8": 57.0, "skew_ref16": 37.0},
    "r2": {"sinks": 598, "worst_slew": 89.3, "skew": 59.9, "latency_ns": 1.69,
           "skew_ref6": 96.0, "skew_ref8": 87.4, "skew_ref16": 59.5},
    "r3": {"sinks": 862, "worst_slew": 89.7, "skew": 64.2, "latency_ns": 1.95,
           "skew_ref6": 101.0, "skew_ref8": 59.6, "skew_ref16": 49.5},
    "r4": {"sinks": 1903, "worst_slew": 100.0, "skew": 107.1, "latency_ns": 2.75,
           "skew_ref6": 176.0, "skew_ref8": 98.6, "skew_ref16": 59.8},
    "r5": {"sinks": 3101, "worst_slew": 98.3, "skew": 89.4, "latency_ns": 3.00,
           "skew_ref6": 110.0, "skew_ref8": 86.9, "skew_ref16": 50.6},
}

#: Table 5.2 — ISPD 2009 benchmarks: worst slew / skew / max latency [ns].
TABLE_5_2 = {
    "f11": {"sinks": 121, "worst_slew": 99.2, "skew": 45.2, "latency_ns": 2.26},
    "f12": {"sinks": 117, "worst_slew": 83.6, "skew": 45.8, "latency_ns": 1.92},
    "f21": {"sinks": 117, "worst_slew": 99.2, "skew": 51.1, "latency_ns": 2.16},
    "f22": {"sinks": 91, "worst_slew": 100.0, "skew": 42.4, "latency_ns": 1.62},
    "f31": {"sinks": 273, "worst_slew": 98.1, "skew": 65.1, "latency_ns": 4.22},
    "f32": {"sinks": 190, "worst_slew": 85.2, "skew": 52.3, "latency_ns": 3.38},
    "fnb1": {"sinks": 330, "worst_slew": 80.0, "skew": 68.6, "latency_ns": 4.67},
}

#: Table 5.3 — H-structure corrections: skew ratios vs the original flow
#: (negative = improvement) and the number of corrected pairings.
TABLE_5_3 = {
    "r1": {"reestimate_ratio": 23.07, "correct_ratio": 18.75, "flippings": 51},
    "r2": {"reestimate_ratio": 4.79, "correct_ratio": 4.57, "flippings": 116},
    "r3": {"reestimate_ratio": 5.32, "correct_ratio": 5.05, "flippings": 164},
    "r4": {"reestimate_ratio": -12.11, "correct_ratio": -13.78, "flippings": 293},
    "r5": {"reestimate_ratio": -3.80, "correct_ratio": -3.95, "flippings": 509},
    "f11": {"reestimate_ratio": -21.68, "correct_ratio": -27.67, "flippings": 19},
    "f12": {"reestimate_ratio": 20.69, "correct_ratio": 17.14, "flippings": 21},
    "f21": {"reestimate_ratio": 25.78, "correct_ratio": 20.50, "flippings": 22},
    "f22": {"reestimate_ratio": -32.66, "correct_ratio": -48.50, "flippings": 17},
    "f31": {"reestimate_ratio": -9.32, "correct_ratio": -10.28, "flippings": 44},
    "f32": {"reestimate_ratio": -20.30, "correct_ratio": -25.47, "flippings": 42},
    "fnb1": {"reestimate_ratio": -8.99, "correct_ratio": -9.88, "flippings": 71},
}

#: Table 5.3 averages quoted in the text.
TABLE_5_3_AVERAGES = {"reestimate": -2.43, "correct": -6.13}

#: Fig. 3.2 — the curve-vs-ramp experiment: equal 150 ps input slews shift
#: the buffered output by about 32 ps.
FIG_3_2 = {"input_slew_ps": 150.0, "output_shift_ps": 32.0}

#: Sec. 3.1 — a 10X buffer's intrinsic delay varies up to ~10 ps with
#: input slew at 45 nm.
INTRINSIC_DELAY_VARIATION_10X_PS = 10.0

#: Sec. 5.1 — the slew limit and synthesis margin.
SLEW_LIMIT_PS = 100.0
SYNTHESIS_SLEW_TARGET_PS = 80.0
