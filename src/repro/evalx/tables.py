"""Plain-text table rendering for the benches and EXPERIMENTS.md."""

from __future__ import annotations


def format_table(
    headers: list[str],
    rows: list[list],
    title: str | None = None,
    float_fmt: str = "{:.1f}",
) -> str:
    """Fixed-width table with right-aligned numeric columns."""

    def cell(value) -> str:
        if isinstance(value, float):
            return float_fmt.format(value)
        return str(value)

    str_rows = [[cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, value in enumerate(row):
            widths[i] = max(widths[i], len(value))

    def render(cells: list[str]) -> str:
        return "  ".join(c.rjust(w) for c, w in zip(cells, widths))

    lines = []
    if title:
        lines.append(title)
    lines.append(render(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(render(row) for row in str_rows)
    return "\n".join(lines)


def ratio_str(ours: float, paper: float) -> str:
    """'ours (paper)' convenience for side-by-side columns."""
    return f"{ours:.1f} ({paper:.1f})"
