"""Simulated clock tree metrics (worst slew / skew / latency).

The tree is simulated stage by stage in topological order: each stage's
driver input waveform is the waveform computed at that node by the
upstream stage (trimmed to its transition window), so the composition is
electrically exact while every linear solve stays tiny. Slew is monitored
at *every* node of every stage — including internal wire nodes — matching
the paper's "maximum slew among all nodes in the clock tree reported by
SPICE".
"""

from __future__ import annotations

import time
import warnings
from dataclasses import dataclass, field

from repro.spice.stages import simulate_stage
from repro.tech.technology import Technology
from repro.timing.analysis import LibraryTimingEngine
from repro.timing.waveform import Waveform, ramp_waveform
from repro.tree.clocktree import ClockTree
from repro.tree.nodes import NodeKind, TreeNode
from repro.tree.stages_map import stage_spec_for

#: Default slew of the ideal ramp presented by the clock source.
DEFAULT_SOURCE_SLEW = 60.0e-12


@dataclass
class TreeMetrics:
    """The paper's per-benchmark report (Tables 5.1 / 5.2)."""

    n_sinks: int
    worst_slew: float  # s
    skew: float  # s
    latency: float  # s (max source-to-sink delay)
    min_latency: float  # s
    wirelength: float  # layout units
    n_buffers: int
    sink_arrivals: dict[str, float] = field(default_factory=dict)
    runtime: float = 0.0  # wall-clock seconds of the evaluation
    method: str = "spice"
    #: Sinks whose simulated waveform saturated below the logic threshold
    #: (badly slewed baseline trees): skipped from skew/latency with a
    #: per-node warning instead of aborting the whole evaluation.
    skipped_sinks: list[str] = field(default_factory=list)

    def row(self) -> dict:
        """Flat dict with ps-scaled values, for table rendering."""
        return {
            "sinks": self.n_sinks,
            "worst_slew_ps": self.worst_slew * 1e12,
            "skew_ps": self.skew * 1e12,
            "latency_ns": self.latency * 1e9,
            "buffers": self.n_buffers,
            "wirelength": self.wirelength,
            "skipped_sinks": len(self.skipped_sinks),
        }


def _as_root(tree: ClockTree | TreeNode) -> TreeNode:
    return tree.root if isinstance(tree, ClockTree) else tree


def evaluate_tree(
    tree: ClockTree | TreeNode,
    tech: Technology,
    source_slew: float = DEFAULT_SOURCE_SLEW,
    dt: float = 1.0e-12,
    segment_length: float = 400.0,
) -> TreeMetrics:
    """Simulate the tree with the mini-SPICE substrate and measure it."""
    root = _as_root(tree)
    if root.kind is not NodeKind.SOURCE:
        raise ValueError("evaluate_tree expects a tree rooted at a SOURCE")
    t0 = time.perf_counter()
    source_wave = ramp_waveform(tech.vdd, source_slew, t_start=50.0e-12)
    threshold = tech.logic_threshold_voltage()
    t_ref = source_wave.cross_time(threshold)

    worst_slew = 0.0
    arrivals: dict[str, float] = {}
    skipped: list[str] = []
    queue: list[tuple[TreeNode, Waveform]] = [(root, source_wave)]
    while queue:
        stage_root, wave_in = queue.pop()
        spec, id_map = stage_spec_for(stage_root, tech)
        if not spec.wires and not spec.load_caps and stage_root.kind is NodeKind.SOURCE:
            raise ValueError("source drives nothing")
        # Badly slewed trees (e.g. unbuffered baselines) can need far more
        # settling time than a healthy stage; widen the window until every
        # load actually reaches the rail.
        allowance = 1.5e-9
        for _ in range(3):
            sim = simulate_stage(
                tech,
                spec,
                wave_in,
                dt=dt,
                segment_length=segment_length,
                settle_allowance=allowance,
            )
            finals = [
                sim.waveform(node_id).v_final
                for node_id, tree_node in id_map.items()
                if tree_node is not stage_root
            ]
            if not finals or min(finals) > 0.95 * tech.vdd:
                break
            allowance *= 4.0
        worst_slew = max(worst_slew, sim.worst_slew())
        for node_id, tree_node in id_map.items():
            if tree_node is stage_root:
                continue
            if tree_node.kind is NodeKind.SINK:
                wave = sim.waveform(node_id)
                try:
                    arrivals[tree_node.name] = wave.cross_time(threshold) - t_ref
                except ValueError:
                    # A badly slewed stage (unbuffered baselines at harsh
                    # scales) can saturate below the logic threshold; the
                    # sink is electrically unusable but the rest of the
                    # tree is still measurable. Skip-and-report instead
                    # of aborting the whole evaluation.
                    skipped.append(tree_node.name)
                    warnings.warn(
                        f"sink {tree_node.name}: simulated waveform "
                        f"saturates at {wave.v_final:.3f} V, below the "
                        f"{threshold:.3f} V logic threshold; excluded "
                        "from skew/latency",
                        RuntimeWarning,
                        stacklevel=2,
                    )
            elif tree_node.kind is NodeKind.BUFFER:
                queue.append((tree_node, sim.trimmed_waveform(node_id)))

    sinks = root.sinks()
    if set(arrivals) | set(skipped) != {s.name for s in sinks}:
        missing = {s.name for s in sinks} - set(arrivals) - set(skipped)
        raise RuntimeError(f"sinks not reached by simulation: {sorted(missing)}")
    if not arrivals:
        raise RuntimeError(
            "no sink waveform crossed the logic threshold; the tree is"
            " electrically dead"
        )
    values = list(arrivals.values())
    return TreeMetrics(
        n_sinks=len(sinks),
        worst_slew=worst_slew,
        skew=max(values) - min(values),
        latency=max(values),
        min_latency=min(values),
        wirelength=sum(n.wire_to_parent for n in root.walk()),
        n_buffers=len(root.buffers()),
        sink_arrivals=arrivals,
        runtime=time.perf_counter() - t0,
        method="spice",
        skipped_sinks=skipped,
    )


def engine_metrics(
    tree: ClockTree | TreeNode,
    engine: LibraryTimingEngine,
    source_slew: float = DEFAULT_SOURCE_SLEW,
) -> TreeMetrics:
    """Same report computed by the library timing engine (no simulation).

    Used for engine-vs-SPICE accuracy studies and as the fast estimate
    during synthesis experiments.
    """
    root = _as_root(tree)
    t0 = time.perf_counter()
    timing = engine.analyze(root, source_slew)
    arrivals = {s.name: timing.arrivals[s.id].arrival for s in timing.sink_nodes}
    values = list(arrivals.values())
    return TreeMetrics(
        n_sinks=len(timing.sink_nodes),
        worst_slew=timing.worst_slew,
        skew=max(values) - min(values),
        latency=max(values),
        min_latency=min(values),
        wirelength=sum(n.wire_to_parent for n in root.walk()),
        n_buffers=len(root.buffers()),
        sink_arrivals=arrivals,
        runtime=time.perf_counter() - t0,
        method="engine",
    )
