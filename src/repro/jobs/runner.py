"""The supervised batch runner: watchdog, retry ladder, quarantine.

One :class:`BatchRunner` executes a manifest's jobs sequentially (the
JSONL event log is part of the deterministic contract; parallel job
dispatch would reorder it), each attempt in its own subprocess
(``python -m repro.jobs.child``). While an attempt runs, the watchdog
polls every ``poll_interval_s`` and SIGKILLs the child on the first
budget violation:

- ``deadline``          — attempt exceeded ``deadline_s`` wall-clock
- ``heartbeat_stall``   — the heartbeat file's *content* (not mtime)
                          unchanged for ``heartbeat_stall_s``; the
                          parent runs its own monotonic timer, no
                          cross-process clock is ever compared
- ``oom``               — VmRSS from ``/proc/<pid>/status`` exceeded
                          ``mem_mb``

A failed attempt (killed, crashed, or exited without a result) retries
after a deterministic exponential backoff, resuming from the job's
checkpoint directory — the resume path picks the highest *valid*
checkpoint, so a crash mid-write or an injected torn file costs one
level, never the job. After ``max_attempts`` failures the job is
quarantined: ``quarantine.json`` names every attempt's reason and the
batch moves on. Kill reasons are split into a stable ``reason`` code
(asserted by the determinism tests) and a volatile ``detail`` string
(timings, RSS numbers — stripped by :func:`repro.jobs.events
.stable_view`).
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from dataclasses import dataclass, field

from repro.jobs.events import RunLog, read_events, summarize
from repro.jobs.heartbeat import read_heartbeat, stamp_heartbeat
from repro.jobs.manifest import BatchManifest, JobSpec
from repro.jobs.policy import JobPolicy


def proc_rss_mb(pid: int) -> float | None:
    """Current VmRSS of ``pid`` in MiB, or None once it is gone."""
    try:
        with open(f"/proc/{pid}/status", "r", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return float(line.split()[1]) / 1024.0
    except (OSError, ValueError, IndexError):
        return None
    return None


@dataclass
class AttemptRecord:
    """One attempt's outcome, as recorded in logs and quarantine."""

    attempt: int
    outcome: str  # "ok" | "killed" | "crashed" | "no_result"
    reason: str  # stable code: "ok", "deadline", "heartbeat_stall",
    #   "oom", "exit:<code>", "signal:<num>", "no_result"
    detail: str = ""  # volatile human text (timings, RSS, paths)
    resumed_from: int | None = None

    def as_dict(self) -> dict:
        return {
            "attempt": self.attempt,
            "outcome": self.outcome,
            "reason": self.reason,
            "detail": self.detail,
            "resumed_from": self.resumed_from,
        }


@dataclass
class JobOutcome:
    """Final state of one job after its attempts."""

    job_id: str
    ok: bool
    attempts: list[AttemptRecord] = field(default_factory=list)
    result: dict | None = None


@dataclass
class BatchResult:
    """What a whole batch run produced."""

    run_dir: str
    outcomes: list[JobOutcome]

    @property
    def ok(self) -> list[JobOutcome]:
        return [o for o in self.outcomes if o.ok]

    @property
    def quarantined(self) -> list[JobOutcome]:
        return [o for o in self.outcomes if not o.ok]


def _write_json(path: str, payload: dict) -> None:
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh, sort_keys=True, indent=2)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


class BatchRunner:
    """Run one manifest under supervision; see the module docstring."""

    def __init__(
        self,
        manifest: BatchManifest,
        run_dir: str,
        policy: JobPolicy | None = None,
        manifest_path: str = "",
        final_overrides: dict | None = None,
    ):
        base = policy if policy is not None else JobPolicy()
        self.manifest = manifest
        self.policy = base.with_overrides(manifest.policy)
        #: Highest-precedence overrides (explicit CLI flags): applied
        #: again after each job's own policy block, so a manifest can
        #: never silently undo what the operator typed.
        self.final_overrides = dict(final_overrides or {})
        self.policy = self.policy.with_overrides(self.final_overrides)
        self.run_dir = run_dir
        self.manifest_path = manifest_path
        os.makedirs(run_dir, exist_ok=True)
        leftovers = sorted(
            n for n in os.listdir(run_dir) if not n.startswith(".")
        )
        if leftovers:
            raise ValueError(
                f"run dir {run_dir!r} is not empty ({leftovers[:3]}...);"
                " each batch run owns a fresh directory"
            )
        self.log = RunLog(os.path.join(run_dir, "events.jsonl"))

    # ------------------------------------------------------------------

    def run(self) -> BatchResult:
        """Execute every job; quarantine never aborts the batch."""
        self.log.emit(
            "batch_start",
            name=self.manifest.name,
            n_jobs=len(self.manifest.jobs),
            manifest=self.manifest_path,
        )
        outcomes = [self._run_job(spec) for spec in self.manifest.jobs]
        batch = BatchResult(self.run_dir, outcomes)
        total_attempts = sum(len(o.attempts) for o in outcomes)
        self.log.emit(
            "batch_end",
            ok=len(batch.ok),
            quarantined=len(batch.quarantined),
            attempts=total_attempts,
        )
        _write_json(
            os.path.join(self.run_dir, "batch.json"),
            {
                "name": self.manifest.name,
                "ok": [o.job_id for o in batch.ok],
                "quarantined": [o.job_id for o in batch.quarantined],
                "results": {
                    o.job_id: o.result for o in batch.ok if o.result
                },
            },
        )
        return batch

    # ------------------------------------------------------------------

    def _run_job(self, spec: JobSpec) -> JobOutcome:
        policy = self.policy.with_overrides(spec.policy).with_overrides(
            self.final_overrides
        )
        job_dir = os.path.join(self.run_dir, spec.job_id)
        ckpt_dir = os.path.join(job_dir, "checkpoints")
        os.makedirs(ckpt_dir, exist_ok=True)
        self.log.emit(
            "job_start", job=spec.job_id, max_attempts=policy.max_attempts
        )
        outcome = JobOutcome(spec.job_id, ok=False)
        for attempt in range(1, policy.max_attempts + 1):
            backoff = policy.backoff_before(attempt)
            if backoff:
                self.log.emit(
                    "retry",
                    job=spec.job_id,
                    attempt=attempt,
                    backoff_s=backoff,
                )
                time.sleep(backoff)
            record, result = self._run_attempt(
                spec, policy, job_dir, ckpt_dir, attempt
            )
            outcome.attempts.append(record)
            self.log.emit(
                "attempt_end",
                job=spec.job_id,
                attempt=attempt,
                outcome=record.outcome,
                reason=record.reason,
                detail=record.detail,
                resumed_from=record.resumed_from,
            )
            if record.outcome == "ok":
                outcome.ok = True
                outcome.result = result
                self.log.emit(
                    "job_done",
                    job=spec.job_id,
                    attempts=attempt,
                    signature=result["signature"],
                    levels=result["levels"],
                    resumed_from=result["resumed_from"],
                    runtime_s=result["runtime_s"],
                )
                return outcome
        quarantine = {
            "job": spec.job_id,
            "instance": spec.instance,
            "options": spec.options,
            "attempts": [r.as_dict() for r in outcome.attempts],
        }
        _write_json(os.path.join(job_dir, "quarantine.json"), quarantine)
        self.log.emit(
            "quarantine",
            job=spec.job_id,
            attempts=len(outcome.attempts),
            reasons=[r.reason for r in outcome.attempts],
        )
        return outcome

    # ------------------------------------------------------------------

    def _run_attempt(
        self,
        spec: JobSpec,
        policy: JobPolicy,
        job_dir: str,
        ckpt_dir: str,
        attempt: int,
    ) -> tuple[AttemptRecord, dict | None]:
        heartbeat = os.path.join(job_dir, "heartbeat")
        result_file = os.path.join(job_dir, f"result_{attempt}.json")
        resume_from = ckpt_dir if self._has_checkpoints(ckpt_dir) else None
        child_spec = {
            "job": spec.job_id,
            "attempt": attempt,
            "instance": spec.instance,
            "options": spec.options,
            "checkpoint_dir": ckpt_dir,
            "resume_from": resume_from,
            "heartbeat_file": heartbeat,
            "result_file": result_file,
            "fault_plan": spec.fault_plan_for(attempt),
        }
        spec_path = os.path.join(job_dir, f"spec_{attempt}.json")
        _write_json(spec_path, child_spec)
        # Defined heartbeat content before spawn: the stall timer starts
        # now and any child-side stamp is a content change.
        stamp_heartbeat(heartbeat, f"spawn:attempt-{attempt}")
        env = dict(os.environ)
        pkg_parent = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        env["PYTHONPATH"] = (
            pkg_parent + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH")
            else pkg_parent
        )
        stderr_path = os.path.join(job_dir, f"stderr_{attempt}.log")
        with open(stderr_path, "ab") as stderr_fh:
            proc = subprocess.Popen(
                [sys.executable, "-m", "repro.jobs.child", spec_path],
                stdout=stderr_fh,
                stderr=stderr_fh,
                env=env,
            )
            kill_reason, kill_detail, rss_peak = self._watch(
                proc, policy, heartbeat
            )
        if kill_reason is not None:
            record = AttemptRecord(
                attempt,
                "killed",
                kill_reason,
                f"{kill_detail}; rss_peak={rss_peak:.0f}MiB",
            )
            self.log.emit(
                "kill",
                job=spec.job_id,
                attempt=attempt,
                reason=kill_reason,
                detail=kill_detail,
                rss_peak_mb=round(rss_peak, 1),
            )
            return record, None
        if proc.returncode != 0:
            code = proc.returncode
            reason = (
                f"signal:{-code}" if code < 0 else f"exit:{code}"
            )
            return (
                AttemptRecord(
                    attempt,
                    "crashed",
                    reason,
                    f"child exited {code}; stderr at {stderr_path}",
                ),
                None,
            )
        if not os.path.exists(result_file):
            return (
                AttemptRecord(
                    attempt,
                    "no_result",
                    "no_result",
                    "child exited 0 without writing its result file",
                ),
                None,
            )
        with open(result_file, "r", encoding="utf-8") as fh:
            result = json.load(fh)
        record = AttemptRecord(
            attempt,
            "ok",
            "ok",
            f"rss_peak={rss_peak:.0f}MiB",
            resumed_from=result.get("resumed_from"),
        )
        return record, result

    # ------------------------------------------------------------------

    def _watch(
        self, proc: subprocess.Popen, policy: JobPolicy, heartbeat: str
    ) -> tuple[str | None, str, float]:
        """Poll the child until exit or the first budget violation.

        Returns ``(reason, detail, rss_peak_mb)``; reason None means the
        child exited on its own (its exit code tells the rest).
        """
        start = time.perf_counter()
        last_beat = read_heartbeat(heartbeat)
        beat_seen = time.perf_counter()
        rss_peak = 0.0
        while True:
            if proc.poll() is not None:
                return None, "", rss_peak
            now = time.perf_counter()
            rss = proc_rss_mb(proc.pid)
            if rss is not None:
                rss_peak = max(rss_peak, rss)
            beat = read_heartbeat(heartbeat)
            if beat != last_beat:
                last_beat = beat
                beat_seen = now
            if policy.deadline_s and now - start > policy.deadline_s:
                reason, detail = (
                    "deadline",
                    f"exceeded {policy.deadline_s}s wall-clock",
                )
            elif (
                policy.heartbeat_stall_s
                and now - beat_seen > policy.heartbeat_stall_s
            ):
                reason, detail = (
                    "heartbeat_stall",
                    f"no heartbeat change for {policy.heartbeat_stall_s}s",
                )
            elif policy.mem_mb and rss is not None and rss > policy.mem_mb:
                reason, detail = (
                    "oom",
                    f"VmRSS {rss:.0f}MiB over budget {policy.mem_mb:.0f}MiB",
                )
            else:
                time.sleep(policy.poll_interval_s)
                continue
            self._kill(proc)
            return reason, detail, rss_peak

    @staticmethod
    def _kill(proc: subprocess.Popen) -> None:
        """SIGKILL, not SIGTERM: a hung or ballooning child may not be
        able to run cleanup handlers anyway, and the checkpoint design
        makes abrupt death safe by construction."""
        try:
            proc.send_signal(signal.SIGKILL)
        except ProcessLookupError:
            pass
        proc.wait()

    @staticmethod
    def _has_checkpoints(ckpt_dir: str) -> bool:
        names = sorted(
            n
            for n in os.listdir(ckpt_dir)
            if n.startswith("level_") and n.endswith(".ckpt")
        )
        return bool(names)

def run_batch_report(run_dir: str) -> str:
    """Render the ``--report`` summary for a finished (or live) run."""
    events_path = os.path.join(run_dir, "events.jsonl")
    if not os.path.exists(events_path):
        raise ValueError(f"no events.jsonl under {run_dir!r}")
    return summarize(read_events(events_path))
