"""Structured JSONL run log of a supervised batch.

Every event is one JSON object per line, written append-only with
sorted keys and a monotonically increasing ``seq`` number, so the log
of a batch is deterministic *except* for explicitly volatile fields
(wall times, RSS peaks, free-text kill details, absolute paths).
:func:`stable_view` strips exactly those fields; the determinism test
asserts that two reruns of the same chaotic batch produce equal stable
views, which pins event order, attempt counts, kill *reason codes*, and
result digests without pretending timings are reproducible.
"""

from __future__ import annotations

import json
import os

#: Event fields that legitimately differ between identical reruns.
#: Everything else — event kinds, order, job ids, attempt numbers, kill
#: reason codes, exit codes, signatures, resume levels — must be stable.
VOLATILE_KEYS = frozenset(
    {"runtime_s", "rss_peak_mb", "detail", "run_dir", "manifest"}
)


class RunLog:
    """Append-only JSONL event writer with sequence numbering."""

    def __init__(self, path: str):
        self.path = path
        self._seq = 0

    def emit(self, event: str, **payload) -> dict:
        """Append one event line; returns the full record."""
        record = {"seq": self._seq, "event": event, **payload}
        self._seq += 1
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.write(line + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        return record


def read_events(path: str) -> list[dict]:
    """Parse a JSONL run log; a torn final line is dropped, not fatal.

    The log is fsynced per event, but the *reader* may race a live
    writer or see a log from a crashed parent — the one place a partial
    line can legitimately appear is the tail.
    """
    events: list[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            events.append(json.loads(line))
        except json.JSONDecodeError:
            if i == len(lines) - 1:
                break
            raise ValueError(
                f"run log {path!r} line {i + 1} is corrupt mid-file"
            ) from None
    return events


def stable_view(events: list[dict]) -> list[dict]:
    """The deterministic projection of a run log (see module docstring)."""
    return [
        {k: v for k, v in event.items() if k not in VOLATILE_KEYS}
        for event in events
    ]


def summarize(events: list[dict]) -> str:
    """Human-readable report of one batch run (``run-batch --report``)."""
    lines: list[str] = []
    jobs: dict[str, dict] = {}
    for ev in events:
        kind = ev.get("event")
        if kind == "batch_start":
            lines.append(
                f"batch: {ev.get('n_jobs', '?')} jobs"
                f" (manifest {ev.get('manifest', '?')})"
            )
        elif kind == "attempt_end":
            job = jobs.setdefault(ev["job"], {"attempts": []})
            job["attempts"].append(ev)
        elif kind == "job_done":
            jobs.setdefault(ev["job"], {"attempts": []})["done"] = ev
        elif kind == "quarantine":
            jobs.setdefault(ev["job"], {"attempts": []})["quarantine"] = ev
        elif kind == "batch_end":
            lines.append(
                f"result: {ev.get('ok', 0)} ok,"
                f" {ev.get('quarantined', 0)} quarantined,"
                f" {ev.get('attempts', 0)} attempts total"
            )
    for job_id in sorted(jobs):
        job = jobs[job_id]
        attempts = job["attempts"]
        if "done" in job:
            done = job["done"]
            status = (
                f"ok in {len(attempts)} attempt(s),"
                f" signature {done.get('signature', '?')[:12]}"
            )
            if done.get("resumed_from") is not None:
                status += f", resumed from level {done['resumed_from']}"
        elif "quarantine" in job:
            status = f"QUARANTINED after {len(attempts)} attempt(s)"
        else:
            status = "incomplete"
        lines.append(f"  {job_id}: {status}")
        for att in attempts:
            outcome = att.get("outcome", "?")
            reason = att.get("reason")
            note = f" ({reason})" if reason and reason != outcome else ""
            lines.append(
                f"    attempt {att.get('attempt', '?')}: {outcome}{note}"
            )
    return "\n".join(lines)
