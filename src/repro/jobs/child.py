"""The per-job child process: ``python -m repro.jobs.child spec.json``.

The runner serializes one attempt's fully resolved spec (instance
block, option overrides, checkpoint/heartbeat paths, this attempt's
fault plan) to a JSON file and spawns this module on it. The parent
stamps the heartbeat itself at spawn (so the stall clock starts with
defined content); the child re-stamps as soon as the interpreter hands
it control, then at each setup milestone (instance built, timing
engine built), then once per topology level from inside the synthesis
loop. Between milestones the longest silent stretch is the engine
build — library characterization when the on-disk cache is cold — so
``heartbeat_stall_s`` must exceed that; with warm caches every gap is
sub-second. On success the child writes a small result JSON (signature
digest, levels, resume level, degradation records, runtime) atomically
next to the spec; the parent treats a missing result file after a
clean exit as a failed attempt.

The child never retries and never supervises itself: every budget is
the parent's job, so a SIGKILL at any instant loses at most one level
of work past the last checkpoint.
"""

from __future__ import annotations

import json
import os
import sys
import time

from repro.jobs.heartbeat import stamp_heartbeat


def run_job(spec: dict) -> dict:
    """Execute one synthesis attempt; returns the result record."""
    # Heavy imports happen here, after main() stamped the first
    # heartbeat — see the module docstring.
    from repro.core import AggressiveBufferedCTS, CTSOptions
    from repro.jobs.manifest import build_instance
    from repro.tree.export import signature_digest, tree_signature
    from repro.tree.nodes import peek_node_id

    t0 = time.perf_counter()
    inst = build_instance(spec["instance"])
    stamp_heartbeat(spec["heartbeat_file"], "instance-built")
    options = CTSOptions(
        # Explicit defaults for the supervision plumbing: the child must
        # not inherit the *parent's* env (a CI leg's REPRO_STRICT or
        # REPRO_FAULT_PLAN would leak into every batch job).
        strict=bool(spec["options"].get("strict", False)),
        fault_plan=spec.get("fault_plan", ""),
        checkpoint_dir=spec["checkpoint_dir"],
        resume_from=spec.get("resume_from"),
        heartbeat_file=spec["heartbeat_file"],
        **{
            k: v
            for k, v in spec["options"].items()
            if k not in ("strict",)
        },
    )
    cts = AggressiveBufferedCTS(
        options=options, blockages=inst.blockages or None
    )
    stamp_heartbeat(spec["heartbeat_file"], "engine-built")
    base = peek_node_id()
    result = cts.synthesize(inst.sink_pairs(), inst.source)
    signature = tree_signature(result.tree, base)
    return {
        "job": spec["job"],
        "attempt": spec["attempt"],
        "signature": signature_digest(signature),
        "levels": result.levels,
        "resumed_from": result.resumed_from,
        "degradations": [d.as_record() for d in result.degradations],
        "runtime_s": time.perf_counter() - t0,
    }


def main(argv: list[str]) -> int:
    if len(argv) != 1:
        print("usage: python -m repro.jobs.child <spec.json>", file=sys.stderr)
        return 2
    with open(argv[0], "r", encoding="utf-8") as fh:
        spec = json.load(fh)
    # First child-side stamp, before the synthesis-layer work begins;
    # the parent already stamped at spawn, so the stall timer is live.
    stamp_heartbeat(spec["heartbeat_file"], "start")
    result = run_job(spec)
    result_path = spec["result_file"]
    tmp = f"{result_path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(result, fh, sort_keys=True)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, result_path)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
