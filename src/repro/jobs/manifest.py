"""Batch manifest: the JSON description of a job fleet.

A manifest names the jobs of one batch — each an (instance x options)
pair — plus optional batch-wide policy overrides::

    {
      "name": "nightly-sweep",
      "policy": {"deadline_s": 120, "max_retries": 2},
      "jobs": [
        {
          "id": "rand120-base",
          "instance": {"kind": "random", "n_sinks": 120, "area": 30000,
                       "seed": 7},
          "options": {"router": "maze", "seed": 3},
          "policy": {"mem_mb": 512},
          "fault_plans": ["job_hang:1:hang", ""]
        }
      ]
    }

``options`` takes any :class:`repro.core.options.CTSOptions` field
except the reserved plumbing the runner owns (checkpoint/resume paths,
heartbeat file, fault plan) — those are derived per attempt, and a
manifest that sets them is rejected loudly rather than silently
overridden. ``fault_plans`` is a *per-attempt* list (attempt 1 runs
under ``fault_plans[0]``, attempt 2 under ``fault_plans[1]``, attempts
past the end run clean): chaos tests inject a fault into the first
attempt and let the retry prove checkpoint resume, which a single plan
re-firing every attempt could never terminate.
"""

from __future__ import annotations

import json
import re
from dataclasses import dataclass, field, fields

_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

#: Option fields the runner derives per attempt; a manifest may not set
#: them (it would fight the supervisor's checkpoint/retry machinery).
RESERVED_OPTIONS = (
    "checkpoint_dir",
    "resume_from",
    "heartbeat_file",
    "fault_plan",
)

_INSTANCE_KINDS = ("random", "gsrc", "ispd", "file", "inline")


@dataclass(frozen=True)
class JobSpec:
    """One job of a batch: an instance, option overrides, local policy."""

    job_id: str
    instance: dict
    options: dict = field(default_factory=dict)
    policy: dict = field(default_factory=dict)
    fault_plans: tuple[str, ...] = ()

    def fault_plan_for(self, attempt: int) -> str:
        """The fault plan of 1-based ``attempt`` ("" = run clean)."""
        if 1 <= attempt <= len(self.fault_plans):
            return self.fault_plans[attempt - 1]
        return ""


@dataclass(frozen=True)
class BatchManifest:
    """A parsed manifest: ordered jobs plus batch-wide policy overrides."""

    name: str
    jobs: tuple[JobSpec, ...]
    policy: dict = field(default_factory=dict)


def _check_options(job_id: str, options: dict) -> None:
    from repro.core.options import CTSOptions

    known = {f.name for f in fields(CTSOptions)}
    for key in options:
        if key in RESERVED_OPTIONS:
            raise ValueError(
                f"job {job_id!r}: option {key!r} is reserved — the batch"
                " runner derives it per attempt (use 'fault_plans' for"
                " fault injection)"
            )
        if key not in known:
            raise ValueError(
                f"job {job_id!r}: unknown CTSOptions field {key!r}"
            )


def _check_fault_plans(job_id: str, plans) -> tuple[str, ...]:
    from repro.evalx.faultinject import FaultPlan

    if not isinstance(plans, list) or not all(
        isinstance(p, str) for p in plans
    ):
        raise ValueError(
            f"job {job_id!r}: 'fault_plans' must be a list of strings"
            " (one per attempt)"
        )
    for plan in plans:
        if plan:
            # Parse for validation only; per-process firing state lives
            # in the child's own singleton.
            FaultPlan.parse(plan)
    return tuple(plans)


def _parse_job(data: dict, seen_ids: set[str]) -> JobSpec:
    if not isinstance(data, dict):
        raise ValueError(f"manifest job entries must be objects, got {data!r}")
    job_id = data.get("id")
    if not isinstance(job_id, str) or not _ID_RE.match(job_id):
        raise ValueError(
            f"manifest job id {job_id!r} must match {_ID_RE.pattern}"
            " (it names directories and log records)"
        )
    if job_id in seen_ids:
        raise ValueError(f"duplicate job id {job_id!r} in manifest")
    seen_ids.add(job_id)
    unknown = sorted(
        set(data) - {"id", "instance", "options", "policy", "fault_plans"}
    )
    if unknown:
        raise ValueError(f"job {job_id!r}: unknown manifest keys {unknown}")
    instance = data.get("instance")
    if not isinstance(instance, dict) or "kind" not in instance:
        raise ValueError(
            f"job {job_id!r}: 'instance' must be an object with a 'kind'"
        )
    if instance["kind"] not in _INSTANCE_KINDS:
        raise ValueError(
            f"job {job_id!r}: unknown instance kind {instance['kind']!r}"
            f" (one of {', '.join(_INSTANCE_KINDS)})"
        )
    options = data.get("options", {})
    if not isinstance(options, dict):
        raise ValueError(f"job {job_id!r}: 'options' must be an object")
    _check_options(job_id, options)
    policy = data.get("policy", {})
    if not isinstance(policy, dict):
        raise ValueError(f"job {job_id!r}: 'policy' must be an object")
    fault_plans = _check_fault_plans(job_id, data.get("fault_plans", []))
    return JobSpec(
        job_id=job_id,
        instance=dict(instance),
        options=dict(options),
        policy=dict(policy),
        fault_plans=fault_plans,
    )


def load_manifest(path: str) -> BatchManifest:
    """Parse and validate a manifest file; every problem fails loudly."""
    with open(path, "r", encoding="utf-8") as fh:
        try:
            data = json.load(fh)
        except json.JSONDecodeError as exc:
            raise ValueError(f"manifest {path!r} is not JSON: {exc}") from exc
    if not isinstance(data, dict):
        raise ValueError(f"manifest {path!r} must hold a JSON object")
    unknown = sorted(set(data) - {"name", "policy", "jobs"})
    if unknown:
        raise ValueError(f"manifest {path!r}: unknown keys {unknown}")
    jobs_data = data.get("jobs")
    if not isinstance(jobs_data, list) or not jobs_data:
        raise ValueError(f"manifest {path!r} needs a non-empty 'jobs' list")
    policy = data.get("policy", {})
    if not isinstance(policy, dict):
        raise ValueError(f"manifest {path!r}: 'policy' must be an object")
    seen_ids: set[str] = set()
    jobs = tuple(_parse_job(entry, seen_ids) for entry in jobs_data)
    name = data.get("name", "batch")
    if not isinstance(name, str) or not name:
        raise ValueError(f"manifest {path!r}: 'name' must be a non-empty string")
    return BatchManifest(name=name, jobs=jobs, policy=dict(policy))


def build_instance(spec: dict):
    """Materialize a manifest ``instance`` block as a BenchmarkInstance.

    Deterministic by construction: generated kinds are seeded, loaded
    kinds come from fixed files, and an optional ``scale_to`` count
    scales down with the instance seed.
    """
    from repro.benchio import gsrc_instance, ispd_instance, random_instance
    from repro.benchio.gsrc import parse_gsrc
    from repro.benchio.instance import BenchmarkInstance, Sink
    from repro.geom.bbox import BBox
    from repro.geom.point import Point

    kind = spec["kind"]
    if kind == "random":
        inst = random_instance(
            int(spec["n_sinks"]),
            float(spec.get("area", 30000.0)),
            seed=int(spec.get("seed", 0)),
            name=spec.get("name"),
        )
    elif kind == "gsrc":
        inst = gsrc_instance(spec["name"])
    elif kind == "ispd":
        inst = ispd_instance(spec["name"])
    elif kind == "file":
        inst = parse_gsrc(spec["path"], name=spec.get("name"))
    elif kind == "inline":
        inst = BenchmarkInstance(
            name=spec.get("name", "inline"),
            sinks=[
                Sink(str(name), Point(float(x), float(y)), float(cap))
                for name, x, y, cap in spec["sinks"]
            ],
            source=(
                Point(*map(float, spec["source"]))
                if spec.get("source") is not None
                else None
            ),
        )
    else:  # pragma: no cover - load_manifest validated the kind
        raise ValueError(f"unknown instance kind {kind!r}")
    if spec.get("scale_to"):
        inst = inst.scaled_down(
            int(spec["scale_to"]), seed=int(spec.get("seed", 0))
        )
    if spec.get("blockages"):
        inst.blockages.extend(
            BBox(*map(float, corners)) for corners in spec["blockages"]
        )
        inst._validate_blockages()
    return inst
