"""Supervision budgets and retry schedule for batch jobs.

These knobs live here — not on :class:`repro.core.options.CTSOptions` —
because they govern the *parent* watchdog, never the synthesized tree:
a job killed at any budget and retried from its checkpoint still
produces the bit-identical tree, so none of them belong in the
checkpoint options digest. Like every ``REPRO_*`` knob they are
declared in the lintx contract tables (``JOB_CONTRACTS``; rule CON308
fails the build on an undeclared or undocumented one).

Precedence, lowest to highest: built-in default < environment knob <
manifest-wide ``policy`` block < per-job ``policy`` block < explicit
CLI flag.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, fields, replace


def _default_deadline_s() -> float:
    """Honor ``REPRO_JOB_DEADLINE`` (wall-clock seconds per attempt;
    0 disables the deadline)."""
    return float(os.environ.get("REPRO_JOB_DEADLINE", "600") or 0.0)


def _default_mem_mb() -> float:
    """Honor ``REPRO_JOB_MEM_MB`` (peak RSS budget per job process in
    MiB; 0 disables the memory watchdog)."""
    return float(os.environ.get("REPRO_JOB_MEM_MB", "0") or 0.0)


def _default_max_retries() -> int:
    """Honor ``REPRO_JOB_RETRIES`` (retries after the first attempt;
    total attempts = retries + 1)."""
    return int(os.environ.get("REPRO_JOB_RETRIES", "2") or 0)


def _default_heartbeat_stall_s() -> float:
    """Honor ``REPRO_HEARTBEAT_STALL`` (seconds without a heartbeat
    change before a job counts as hung; 0 disables stall detection)."""
    return float(os.environ.get("REPRO_HEARTBEAT_STALL", "60") or 0.0)


@dataclass(frozen=True)
class JobPolicy:
    """Budgets the watchdog enforces and the retry schedule it follows."""

    deadline_s: float = field(default_factory=_default_deadline_s)
    #   wall-clock seconds one attempt may run before SIGKILL
    #   (reason "deadline"); 0 = no deadline (env REPRO_JOB_DEADLINE)
    mem_mb: float = field(default_factory=_default_mem_mb)
    #   peak RSS (VmRSS from /proc/<pid>/status, MiB) one attempt may
    #   reach before SIGKILL (reason "oom"); 0 = unlimited
    #   (env REPRO_JOB_MEM_MB)
    max_retries: int = field(default_factory=_default_max_retries)
    #   retries after the first attempt before the job is quarantined;
    #   each retry resumes from the last valid checkpoint
    #   (env REPRO_JOB_RETRIES)
    heartbeat_stall_s: float = field(default_factory=_default_heartbeat_stall_s)
    #   seconds without a heartbeat-file change before an attempt counts
    #   as hung and is SIGKILLed (reason "heartbeat_stall"); 0 disables
    #   (env REPRO_HEARTBEAT_STALL)
    backoff_base_s: float = 0.5  # sleep before retry k is
    backoff_factor: float = 2.0  # base * factor**(k-1) — deterministic,
    #   no jitter, so reruns produce identical event sequences
    poll_interval_s: float = 0.05  # watchdog wake period; budgets are
    #   enforced to this granularity

    def __post_init__(self) -> None:
        if self.deadline_s < 0:
            raise ValueError("deadline_s must be >= 0 (0 disables)")
        if self.mem_mb < 0:
            raise ValueError("mem_mb must be >= 0 (0 disables)")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.heartbeat_stall_s < 0:
            raise ValueError("heartbeat_stall_s must be >= 0 (0 disables)")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be >= 0")
        if self.backoff_factor < 1:
            raise ValueError("backoff_factor must be >= 1")
        if self.poll_interval_s <= 0:
            raise ValueError("poll_interval_s must be > 0")

    @property
    def max_attempts(self) -> int:
        """Total attempts before quarantine (first run + retries)."""
        return self.max_retries + 1

    def backoff_before(self, attempt: int) -> float:
        """Seconds to sleep before 1-based ``attempt`` (0 for the first)."""
        if attempt <= 1:
            return 0.0
        return self.backoff_base_s * self.backoff_factor ** (attempt - 2)

    def with_overrides(self, overrides: dict) -> "JobPolicy":
        """A copy with ``overrides`` applied; unknown keys fail loudly."""
        known = {f.name for f in fields(self)}
        unknown = sorted(set(overrides) - known)
        if unknown:
            raise ValueError(
                f"unknown JobPolicy keys {unknown} (known:"
                f" {', '.join(sorted(known))})"
            )
        return replace(self, **overrides)
