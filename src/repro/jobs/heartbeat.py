"""The heartbeat protocol between a synthesis child and its watchdog.

The child stamps one small file (``<pid>:<tag>\\n``) at every liveness
milestone — process start, imports done, engine built, then once per
completed topology level via the :meth:`_level_pulse` hook in the
synthesis loop. The parent never parses timestamps out of the file
(cross-process clocks are exactly the non-determinism repro-lint bans);
it watches the *content* and runs its own monotonic stall timer: if the
bytes stop changing for ``heartbeat_stall_s`` the job is hung. The pid
prefix guarantees a fresh attempt always changes the content even when
it restarts at the same tag.

Stamps are atomic (tmp sibling + ``os.replace``) so the parent never
reads a torn stamp; they are deliberately *not* fsynced — a heartbeat
is a visibility signal to a live reader, not durable state, and an
fsync per topology level would tax exactly the hot loop the rest of
this codebase optimizes.

This module imports nothing from the rest of the package: the synthesis
loop loads it lazily, only when ``options.heartbeat_file`` is set, so
the unsupervised path pays nothing.
"""

from __future__ import annotations

import os


def stamp_heartbeat(path: str, tag: str) -> None:
    """Atomically write ``<pid>:<tag>`` to ``path``."""
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(f"{os.getpid()}:{tag}\n")
    os.replace(tmp, path)


def read_heartbeat(path: str) -> bytes | None:
    """The current stamp bytes, or None before the first stamp.

    Returns raw bytes: the watchdog only compares stamps for change, it
    never interprets them (the tag is for humans reading a run dir).
    """
    try:
        with open(path, "rb") as fh:
            return fh.read()
    except FileNotFoundError:
        return None
