"""Supervised batch synthesis: the job layer above one synthesis run.

`repro run-batch manifest.json` executes each (instance x options) job
of a manifest in its own subprocess under a watchdog (wall-clock
deadline, heartbeat-staleness hang detection, RSS memory budget),
retries failures on deterministic backoff resuming from the last valid
checkpoint, quarantines jobs that keep failing, and appends every
event to a JSONL run log. See RESILIENCE.md ("Job supervision").
"""

from repro.jobs.events import RunLog, read_events, stable_view
from repro.jobs.heartbeat import read_heartbeat, stamp_heartbeat
from repro.jobs.manifest import BatchManifest, JobSpec, load_manifest
from repro.jobs.policy import JobPolicy
from repro.jobs.runner import BatchResult, BatchRunner

__all__ = [
    "BatchManifest",
    "BatchResult",
    "BatchRunner",
    "JobPolicy",
    "JobSpec",
    "RunLog",
    "load_manifest",
    "read_events",
    "read_heartbeat",
    "stable_view",
    "stamp_heartbeat",
]
